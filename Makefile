# Convenience targets; everything is plain cargo underneath.

TRACE_DIR ?= target/trace-demo

.PHONY: all check fmt clippy test tables tables-quick bench trace-demo clean

all: check test

check: fmt clippy

fmt:
	cargo fmt --all --check

clippy:
	cargo clippy --workspace --all-targets

test:
	cargo build --release
	cargo test -q

tables:
	cargo run -p vopp-bench --release --bin tables -- all

tables-quick:
	cargo run -p vopp-bench --release --bin tables -- all --quick

bench:
	cargo bench --workspace

# A Perfetto-ready trace of IS on 4 nodes (quick scale): load the
# *.perfetto.json files from $(TRACE_DIR) in https://ui.perfetto.dev
trace-demo:
	cargo run -p vopp-bench --release --bin tables -- table1 --quick --trace $(TRACE_DIR)
	@echo "Perfetto files in $(TRACE_DIR):"
	@ls $(TRACE_DIR)

clean:
	cargo clean
