# Convenience targets; everything is plain cargo underneath.

TRACE_DIR ?= target/trace-demo
METRICS_DIR ?= target/bench-metrics
BASELINE_DIR ?= crates/bench/baselines
CRITPATH_DIR ?= target/bench-critpath
CRITPATH_BASELINE_DIR ?= crates/bench/baselines-critpath

.PHONY: all check fmt clippy test tables tables-quick serve scaling netgen \
        bench bench-micro bench-wallclock baseline critpath baseline-critpath \
        metrics-demo trace-demo racecheck parkernel clean

all: check test

check: fmt clippy

fmt:
	cargo fmt --all --check

clippy:
	cargo clippy --workspace --all-targets

test:
	cargo build --release
	cargo test -q

tables:
	cargo run -p vopp-bench --release --bin tables -- all

tables-quick:
	cargo run -p vopp-bench --release --bin tables -- all --quick

# The serving workload (docs/SERVING.md): open-loop sharded KV store
# across the protocol matrix, two offered loads, and loss/slowdown/crash
# fault scenarios. Opt-in like `ext`; not part of `all`.
serve:
	cargo run -p vopp-bench --release --bin tables -- serve --quick

# The 64/128-node scaling family (docs/PERFORMANCE.md §7): IS/Gauss/SOR at
# 64 and 128 nodes under LRC_d, HLRC, and VC_sd — the event-dense regime
# the intra-run parallel kernel targets. Runs the family sequentially and
# at `--sim-workers auto`, prints both sweep wall-clocks, and checks the
# artifacts byte-identical. Opt-in like `ext`; not part of `all`.
scaling:
	cargo run -p vopp-bench --release --bin tables -- scaling --quick --metrics target/scaling-seq
	cargo run -p vopp-bench --release --bin tables -- scaling --quick --sim-workers auto --metrics target/scaling-auto
	diff -r --exclude=BENCH_wallclock.json target/scaling-seq target/scaling-auto

# Modern network generations (docs/NETWORK.md): IS/Gauss/SOR/NN across
# 100 Mbps / 10 GbE / RDMA under LRC_d, VC_sd, and the RDMA-native VC_rdma,
# with phase-accounting breakdown rows. Runs the byte-identity test suite
# first; the BENCH_netgen.json regression gate runs inside `bench`, which
# sweeps netgen alongside the paper tables. Opt-in like `ext`; not part of
# `all`.
netgen:
	cargo test --release -p vopp-bench --test netgen
	cargo run -p vopp-bench --release --bin tables -- netgen --quick --metrics target/netgen-metrics

# Quick tables with machine-readable metrics, then the perf-regression
# gate against the committed baselines (>2% time drift or any count drift
# fails the build).
bench:
	cargo run -p vopp-bench --release --bin tables -- all serve scaling netgen --quick --metrics $(METRICS_DIR)
	cargo run -p vopp-bench --release --bin metrics_diff -- $(BASELINE_DIR) $(METRICS_DIR)

# Full quick sweep on every core, reporting real time per cell. Wall-clock
# is machine-dependent and never gated; see docs/PERFORMANCE.md.
bench-wallclock:
	cargo run -p vopp-bench --release --bin tables -- all serve scaling netgen --quick --metrics $(METRICS_DIR)
	@echo "Wall-clock artifact:"
	@cat $(METRICS_DIR)/BENCH_wallclock.json

# Refresh the committed baselines after an intentional perf change. The
# machine-dependent wall-clock artifact is never committed as a baseline.
baseline:
	cargo run -p vopp-bench --release --bin tables -- all serve scaling netgen --quick --metrics $(BASELINE_DIR)
	rm -f $(BASELINE_DIR)/BENCH_wallclock.json

# Critical-path profile of the full quick sweep (docs/OBSERVABILITY.md):
# every table gains CP blame rows and what-if ceilings, the sweep writes
# BENCH_critpath.json, and the critpath regression gate runs against the
# committed baselines. Covers all five protocols (stats tables + ext +
# serve).
critpath:
	cargo run -p vopp-bench --release --bin tables -- all ext serve --quick --critpath --metrics $(CRITPATH_DIR)
	cargo run -p vopp-bench --release --bin metrics_diff -- $(CRITPATH_BASELINE_DIR) $(CRITPATH_DIR)

# Refresh the committed critpath baselines after an intentional change to
# the protocols or the cost model. Only BENCH_critpath.json is committed;
# the per-app artifacts stay gated by `make baseline`.
baseline-critpath:
	cargo run -p vopp-bench --release --bin tables -- all ext serve --quick --critpath --metrics $(CRITPATH_DIR)
	cp $(CRITPATH_DIR)/BENCH_critpath.json $(CRITPATH_BASELINE_DIR)/BENCH_critpath.json

# One metered table, artifacts left in target/metrics-demo for inspection.
metrics-demo:
	cargo run -p vopp-bench --release --bin tables -- table1 --quick --metrics target/metrics-demo
	@echo "Metrics artifacts in target/metrics-demo:"
	@ls target/metrics-demo

bench-micro:
	cargo bench --workspace

# A Perfetto-ready trace of IS on 4 nodes (quick scale): load the
# *.perfetto.json files from $(TRACE_DIR) in https://ui.perfetto.dev
trace-demo:
	cargo run -p vopp-bench --release --bin tables -- table1 --quick --trace $(TRACE_DIR)
	@echo "Perfetto files in $(TRACE_DIR):"
	@ls $(TRACE_DIR)

# The intra-run parallel kernel (docs/PERFORMANCE.md §7): the byte-identity
# test suite, then a quick sweep at 4 sim workers vs sequential — metrics
# must pass the regression gate and be byte-identical (wall-clock excluded
# by design; its `sim` section reports the window/merge counters).
parkernel:
	cargo test --release -p vopp-bench --test parkernel
	cargo run -p vopp-bench --release --bin tables -- all serve scaling netgen --quick --jobs 4 --sim-workers 4 --metrics target/park-metrics
	cargo run -p vopp-bench --release --bin tables -- all serve scaling netgen --quick --jobs 4 --metrics target/park-seq
	cargo run -p vopp-bench --release --bin metrics_diff -- $(BASELINE_DIR) target/park-metrics
	diff -r --exclude=BENCH_wallclock.json target/park-metrics target/park-seq

# The dynamic-checker suite (docs/CORRECTNESS.md): clean applications
# across all five protocol×style cells must report zero violations, the
# seeded-racy variants their exact known-answer counts.
racecheck:
	cargo run -p vopp-bench --release --bin tables -- --racecheck

clean:
	cargo clean
