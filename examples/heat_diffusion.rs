//! Heat diffusion on a simulated DSM cluster: the SOR pattern of the paper
//! (§3.3) — local grid blocks, border views for the halo exchange, and a
//! comparison of all three DSM systems on the same computation.
//!
//! ```text
//! cargo run --release --example heat_diffusion
//! ```

use vopp_repro::apps::sor::{run_sor, sor_reference, SorParams, SorVariant};
use vopp_repro::prelude::*;

fn main() {
    let p = SorParams {
        rows: 512,
        cols: 256,
        iters: 30,
        seed: 7,
    };
    let nprocs = 8;
    println!(
        "relaxing a {}x{} grid for {} iterations on {} simulated nodes\n",
        p.rows, p.cols, p.iters, nprocs
    );

    let expect = sor_reference(&p);

    // Traditional program on LRC_d: whole grid in shared memory.
    let tr = run_sor(
        &ClusterConfig::new(nprocs, Protocol::LrcD),
        &p,
        SorVariant::Traditional,
    );
    assert_eq!(tr.value, expect, "traditional result must match");

    // VOPP program on both VC systems: local blocks + border views.
    let vcd = run_sor(
        &ClusterConfig::new(nprocs, Protocol::VcD),
        &p,
        SorVariant::Vopp,
    );
    let vcsd = run_sor(
        &ClusterConfig::new(nprocs, Protocol::VcSd),
        &p,
        SorVariant::Vopp,
    );
    assert_eq!(vcd.value, expect);
    assert_eq!(vcsd.value, expect);

    println!("{:<28}{:>10}{:>10}{:>10}", "", "LRC_d", "VC_d", "VC_sd");
    let row = |label: &str, f: &dyn Fn(&RunStats) -> String| {
        println!(
            "{label:<28}{:>10}{:>10}{:>10}",
            f(&tr.stats),
            f(&vcd.stats),
            f(&vcsd.stats)
        );
    };
    row("virtual time (s)", &|s| format!("{:.3}", s.time_secs()));
    row("data on wire (MB)", &|s| format!("{:.2}", s.data_mbytes()));
    row("messages", &|s| s.num_msgs().to_string());
    row("diff requests", &|s| s.diff_requests().to_string());
    row("avg barrier (us)", &|s| {
        format!("{:.0}", s.barrier_time_usec())
    });
    println!(
        "\nall three systems computed the identical grid (checksum {expect:.6});\n\
         the VOPP versions move only border rows instead of whole falsely-shared pages."
    );
}
