//! A dense Gauss–Jacobi linear solver written directly against the VOPP
//! API: the solution vector is exchanged every iteration through
//! per-processor slice views (writers) read by everyone (readers).
//!
//! This is the "views as communication channels" style: each processor owns
//! a slice view of the iterate `x`, publishes its slice after every sweep,
//! and reads the other slices under `acquire_Rview`. Ping-pong view
//! generations keep readers of iteration `k` isolated from writers of
//! iteration `k+1`.
//!
//! ```text
//! cargo run --release --example linear_solver
//! ```

use vopp_repro::apps::workload::{share, unit_f64};
use vopp_repro::prelude::*;

const N: usize = 512;
const ITERS: usize = 40;
const SEED: u64 = 0xB0;

fn a(i: usize, j: usize) -> f64 {
    let v = unit_f64(SEED, (i * N + j) as u64);
    if i == j {
        N as f64 + v
    } else {
        v
    }
}

fn b(i: usize) -> f64 {
    unit_f64(SEED ^ 0xB0B0, i as u64) * N as f64
}

/// One Jacobi update of row `i`.
fn jacobi_row(row: &[f64], x: &[f64], bi: f64, i: usize) -> f64 {
    let mut s = 0.0;
    for (j, (aij, xj)) in row.iter().zip(x).enumerate() {
        if j != i {
            s += aij * xj;
        }
    }
    (bi - s) / row[i]
}

fn main() {
    let nprocs = 8;
    let mut world = WorldBuilder::new();
    // Two generations of per-processor slice views, homed at their writers.
    let gen: Vec<Vec<ViewRegion<f64>>> = (0..2)
        .map(|_| {
            (0..nprocs)
                .map(|q| {
                    let (qs, qe) = share(N, q, nprocs);
                    world.view_f64_at(qe - qs, q)
                })
                .collect()
        })
        .collect();

    let cfg = ClusterConfig::new(nprocs, Protocol::VcSd);
    let out = run_cluster(&cfg, world.build(), |ctx| {
        let me = ctx.me();
        let (rs, re) = share(N, me, nprocs);
        // The matrix block is processor-private (read in once, §3.1).
        let rows: Vec<Vec<f64>> = (rs..re)
            .map(|i| (0..N).map(|j| a(i, j)).collect())
            .collect();
        ctx.copy_cost(((re - rs) * N * 8) as u64);

        let mut x = vec![0.0; N];
        let mut mine = vec![0.0; re - rs];
        for it in 0..ITERS {
            let (src, dst) = (it % 2, (it + 1) % 2);
            // Gather the current iterate: remote slices under read views.
            for (q, view) in gen[src].iter().enumerate() {
                let (qs, qe) = share(N, q, nprocs);
                if q == me {
                    x[qs..qe].copy_from_slice(&mine);
                } else {
                    ctx.with_rview(view, |r| r.read_into(ctx, 0, &mut x[qs..qe]));
                }
            }
            for i in rs..re {
                mine[i - rs] = jacobi_row(&rows[i - rs], &x, b(i), i);
            }
            ctx.flops((2 * (re - rs) * N) as u64);
            // Publish my new slice for the next generation.
            ctx.with_view(&gen[dst][me], |r| r.write_all(ctx, &mine));
            ctx.barrier();
        }
        // Residual over my rows against the final iterate.
        for (q, view) in gen[ITERS % 2].iter().enumerate() {
            let (qs, qe) = share(N, q, nprocs);
            if q == me {
                x[qs..qe].copy_from_slice(&mine);
            } else {
                ctx.with_rview(view, |r| r.read_into(ctx, 0, &mut x[qs..qe]));
            }
        }
        let mut worst: f64 = 0.0;
        for i in rs..re {
            let lhs: f64 = rows[i - rs].iter().zip(&x).map(|(aij, xj)| aij * xj).sum();
            worst = worst.max((lhs - b(i)).abs());
        }
        ctx.flops((2 * (re - rs) * N) as u64);
        worst
    });

    let worst = out.results.iter().cloned().fold(0.0f64, f64::max);
    println!("solved {N}x{N} system in {ITERS} Jacobi iterations on {nprocs} nodes");
    println!("worst residual |Ax - b| = {worst:.3e}");
    println!(
        "virtual time {:.3} s, {} view acquires, {:.2} MB exchanged",
        out.stats.time_secs(),
        out.stats.acquires(),
        out.stats.data_mbytes()
    );
    assert!(worst < 1e-9, "Jacobi must converge on this system");
}
