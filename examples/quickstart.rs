//! Quickstart: the paper's "sum" pattern in View-Oriented Parallel
//! Programming.
//!
//! Eight simulated cluster nodes each add their contribution into a shared
//! accumulator view, synchronize at a barrier, then read the total back
//! under a read view. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vopp_repro::prelude::*;

fn main() {
    let nprocs = 8;

    // 1. Describe the shared world: one view holding a single counter.
    let mut world = WorldBuilder::new();
    let acc = world.view_u32(1);

    // 2. Pick a DSM system. VC_sd is the paper's optimal implementation:
    //    view grants piggy-back integrated diffs, so no page faults ever
    //    need a separate diff fetch.
    let cfg = ClusterConfig::new(nprocs, Protocol::VcSd);

    // 3. Run the SPMD program.
    let out = run_cluster(&cfg, world.build(), |ctx| {
        let me = ctx.me() as u32;

        // acquire_view / release_view bracket every access (paper §2);
        // `with_view` is the RAII form.
        ctx.with_view(&acc, |a| a.update(ctx, 0, |x| x + me + 1));

        // Barriers only synchronize under VC — no consistency payload.
        ctx.barrier();

        // Read views can be held by everyone simultaneously (§3.4).
        ctx.with_rview(&acc, |a| a.get(ctx, 0))
    });

    let expect: u32 = (1..=nprocs as u32).sum();
    println!("every node read {} (expected {expect})", out.results[0]);
    assert!(out.results.iter().all(|&r| r == expect));

    let s = &out.stats;
    println!(
        "virtual time {:.3} ms | {} acquires | {} messages | {:.1} KB on the wire | {} diff requests",
        s.time_secs() * 1e3,
        s.acquires(),
        s.num_msgs(),
        s.net.bytes as f64 / 1e3,
        s.diff_requests(),
    );
}
