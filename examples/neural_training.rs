//! Distributed neural-network training: VOPP versus MPI (the paper's §5.4
//! head-to-head). Both train the identical quantized-gradient model, so the
//! final losses are bit-identical — only the communication style differs.
//!
//! ```text
//! cargo run --release --example neural_training
//! ```

use vopp_repro::apps::nn::{nn_reference, run_nn, NnParams, NnVariant};
use vopp_repro::prelude::*;

fn main() {
    let p = NnParams {
        n_in: 12,
        n_hidden: 32,
        n_out: 4,
        samples: 2048,
        epochs: 25,
        lr: 0.03,
        seed: 99,
    };
    let nprocs = 8;
    println!(
        "training a {}-{}-{} network on {} samples for {} epochs, {} nodes\n",
        p.n_in, p.n_hidden, p.n_out, p.samples, p.epochs, nprocs
    );

    let expect = nn_reference(&p, nprocs);

    let vopp = run_nn(
        &ClusterConfig::new(nprocs, Protocol::VcSd),
        &p,
        NnVariant::Vopp,
    );
    let mpi = run_nn(
        &ClusterConfig::new(nprocs, Protocol::VcSd),
        &p,
        NnVariant::Mpi,
    );
    assert_eq!(vopp.value, expect, "VOPP training must be bit-exact");
    assert_eq!(mpi.value, expect, "MPI training must be bit-exact");

    println!("final loss (both, bit-identical): {expect:.6}");
    println!(
        "VOPP/VC_sd: {:.3} s virtual, {} msgs, {:.2} MB",
        vopp.stats.time_secs(),
        vopp.stats.num_msgs(),
        vopp.stats.data_mbytes()
    );
    println!(
        "MPI:        {:.3} s virtual, {} msgs, {:.2} MB",
        mpi.stats.time_secs(),
        mpi.stats.num_msgs(),
        mpi.stats.data_mbytes()
    );
    println!(
        "\nVOPP keeps the shared-memory programming model (weight views read\n\
         concurrently under acquire_Rview, per-processor gradient views);\n\
         MPI's tree allreduce wins on communication as processors grow — the\n\
         paper's Table 9 in miniature."
    );
}
