//! Integer key ranking (the paper's IS workload), demonstrating the §3.2
//! barrier-hoisting optimization: because `acquire_view` already gives
//! exclusive access to each histogram chunk, the barrier inside the
//! repetition loop is redundant and can be moved outside — the `lb`
//! variant's entire loop then runs without any global synchronization.
//!
//! ```text
//! cargo run --release --example key_ranking
//! ```

use vopp_repro::apps::is::{is_reference, run_is, IsParams, IsVariant};
use vopp_repro::prelude::*;

fn main() {
    let p = IsParams {
        n_keys: 1 << 16,
        bmax: 2000,
        reps: 10,
        chunks: 16,
        seed: 0x5eed,
    };
    let nprocs = 8;
    println!(
        "ranking {} keys into {} buckets, {} repetitions, {} nodes\n",
        p.n_keys, p.bmax, p.reps, nprocs
    );

    let cfg = ClusterConfig::new(nprocs, Protocol::VcSd);

    let std = run_is(&cfg, &p, IsVariant::Vopp);
    assert_eq!(std.value, is_reference(&p, nprocs, false));

    let lb = run_is(&cfg, &p, IsVariant::VoppLb);
    assert_eq!(lb.value, is_reference(&p, nprocs, true));

    println!(
        "standard VOPP : {:>8.3} s virtual, {:>4} barriers, {:>6} acquires",
        std.stats.time_secs(),
        std.stats.barriers(),
        std.stats.acquires()
    );
    println!(
        "barrier-hoisted: {:>8.3} s virtual, {:>4} barriers, {:>6} acquires",
        lb.stats.time_secs(),
        lb.stats.barriers(),
        lb.stats.acquires()
    );
    let gain = std.stats.time_secs() / lb.stats.time_secs();
    println!("\nhoisting the barrier out of the loop is {gain:.2}x faster (paper §3.2, Table 2)");
    assert!(lb.stats.time < std.stats.time);
}
