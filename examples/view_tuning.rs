//! View-partitioning tuning: the paper's §3.6 rule of thumb, measured.
//!
//! > "the more views are acquired, the more messages there are in the
//! > system; and the larger a view is, the more data traffic is caused in
//! > the system when the view is acquired."
//!
//! A fixed histogram-accumulation workload is run with the histogram split
//! into 2, 4, 8, 16 and 32 views. Few large views mean fewer messages but
//! more data per acquisition (and more contention); many small views mean
//! the opposite. The per-view statistics expose where the waiting happens.
//!
//! ```text
//! cargo run --release --example view_tuning
//! ```

use vopp_repro::apps::workload::share;
use vopp_repro::prelude::*;

const BUCKETS: usize = 8192;
const REPS: usize = 10;
const NPROCS: usize = 8;

fn run_with_chunks(chunks: usize) -> RunStats {
    let mut world = WorldBuilder::new();
    let views: Vec<_> = (0..chunks)
        .map(|c| {
            let (bs, be) = share(BUCKETS, c, chunks);
            world.view_u32(be - bs)
        })
        .collect();
    let cfg = ClusterConfig::new(NPROCS, Protocol::VcSd);
    let out = run_cluster(&cfg, world.build(), |ctx| {
        let me = ctx.me();
        for rep in 0..REPS {
            for k in 0..chunks {
                let c = (me + rep + k) % chunks;
                ctx.with_view(&views[c], |r| {
                    let mut buf = vec![0u32; r.len()];
                    r.read_into(ctx, 0, &mut buf);
                    for v in buf.iter_mut() {
                        *v += 1;
                    }
                    r.write_all(ctx, &buf);
                });
                ctx.int_ops(views[c].len() as u64);
            }
            ctx.compute_ns(2e6); // per-rep local work
        }
        ctx.barrier();
    });
    out.stats
}

fn main() {
    println!(
        "{:>7} {:>10} {:>10} {:>12} {:>14} {:>16}",
        "views", "acquires", "messages", "data (KB)", "time (ms)", "avg wait (us)"
    );
    for chunks in [2, 4, 8, 16, 32] {
        let s = run_with_chunks(chunks);
        println!(
            "{:>7} {:>10} {:>10} {:>12.0} {:>14.2} {:>16.0}",
            chunks,
            s.acquires(),
            s.num_msgs(),
            s.net.bytes as f64 / 1e3,
            s.time_secs() * 1e3,
            s.acquire_time_usec(),
        );
    }
    let s = run_with_chunks(8);
    println!("\nper-view breakdown at 8 views (paper §3.6 diagnostics):");
    println!(
        "{:>6} {:>10} {:>10} {:>14} {:>14}",
        "view", "acquires", "versions", "wait (ms)", "grants (KB)"
    );
    for (v, vs) in &s.nodes.views {
        println!(
            "{:>6} {:>10} {:>10} {:>14.2} {:>14.1}",
            v,
            vs.acquires,
            vs.versions,
            vs.wait_ns as f64 / 1e6,
            vs.grant_bytes as f64 / 1e3
        );
    }
}
