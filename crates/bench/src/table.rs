//! ASCII table rendering in the paper's format.

use std::fmt;

use vopp_trace::json::Value;

/// A rendered evaluation table.
#[derive(Debug, Clone)]
pub struct Table {
    /// e.g. "Table 1: Statistics of IS on 16 processors".
    pub title: String,
    /// Column headers (systems or processor counts).
    pub columns: Vec<String>,
    /// `(row label, one cell per column)`.
    pub rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Table {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Append a row; the cell count must match the columns.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) -> &mut Self {
        let cells_len = cells.len();
        self.rows.push((label.into(), cells));
        assert_eq!(cells_len, self.columns.len(), "cell/column mismatch");
        self
    }

    /// Cell for a float with `prec` decimals.
    pub fn f(v: f64, prec: usize) -> String {
        format!("{v:.prec$}")
    }

    /// The table as a JSON value: `{title, columns, rows: [[label, cells]]}`.
    pub fn to_value(&self) -> Value {
        let rows = self
            .rows
            .iter()
            .map(|(label, cells)| {
                Value::Arr(vec![
                    Value::Str(label.clone()),
                    Value::Arr(cells.iter().map(|c| Value::Str(c.clone())).collect()),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("title".into(), Value::Str(self.title.clone())),
            (
                "columns".into(),
                Value::Arr(self.columns.iter().map(|c| Value::Str(c.clone())).collect()),
            ),
            ("rows".into(), Value::Arr(rows)),
        ])
    }

    /// Cell for an integer with thousands separators (paper style).
    pub fn i(v: u64) -> String {
        let s = v.to_string();
        let mut out = String::new();
        for (i, ch) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(ch);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .max()
            .unwrap_or(0)
            .max(4);
        let mut col_w: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for (_, cells) in &self.rows {
            for (i, c) in cells.iter().enumerate() {
                col_w[i] = col_w[i].max(c.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let total = label_w + col_w.iter().map(|w| w + 2).sum::<usize>();
        writeln!(f, "{}", "-".repeat(total))?;
        write!(f, "{:<label_w$}", "")?;
        for (c, w) in self.columns.iter().zip(&col_w) {
            write!(f, "  {c:>w$}")?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(total))?;
        for (label, cells) in &self.rows {
            write!(f, "{label:<label_w$}")?;
            for (c, w) in cells.iter().zip(&col_w) {
                write!(f, "  {c:>w$}")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "{}", "-".repeat(total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Test", vec!["A".into(), "BB".into()]);
        t.row("x", vec!["1".into(), "2".into()]);
        t.row("longer", vec!["3.5".into(), "4,000".into()]);
        let s = t.to_string();
        assert!(s.contains("Test"));
        assert!(s.contains("4,000"));
    }

    #[test]
    fn thousands_separator() {
        assert_eq!(Table::i(0), "0");
        assert_eq!(Table::i(999), "999");
        assert_eq!(Table::i(1000), "1,000");
        assert_eq!(Table::i(1234567), "1,234,567");
    }

    #[test]
    fn json_value_parses_back() {
        let mut t = Table::new("Test", vec!["A".into()]);
        t.row("x", vec!["1".into()]);
        let parsed = Value::parse(&t.to_value().to_json()).unwrap();
        assert_eq!(parsed.get("title").unwrap().as_str().unwrap(), "Test");
        assert_eq!(parsed.get("rows").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_cell_count_panics() {
        let mut t = Table::new("T", vec!["A".into()]);
        t.row("x", vec!["1".into(), "2".into()]);
    }
}
