//! Lossless (de)serialization of [`RunStats`] for the on-disk sweep cache.
//!
//! The in-memory metrics export (`metrics.rs`) is intentionally lossy — it
//! condenses histograms to summaries for the regression gate. A cached cell,
//! by contrast, must reproduce the *exact* `RunStats` the simulator would
//! have produced, because table text and `BENCH_<app>.json` artifacts are
//! byte-gated against the cold run. This module therefore round-trips every
//! field: raw histogram buckets, the full phase breakdown, per-view
//! counters, and per-node end times.
//!
//! It also provides the content-addressing primitives: FNV-1a hashing and a
//! build fingerprint (hash of the running executable), so a cache produced
//! by one build is invalidated wholesale by the next.

use std::sync::OnceLock;

use vopp_dsm::stats::{NodeStats, RunStats, ViewStats, ViewStatsMap};
use vopp_dsm::NodeMetrics;
use vopp_metrics::hist::NBUCKETS;
use vopp_metrics::{Breakdown, Histogram, Phase};
use vopp_sim::SimTime;
use vopp_simnet::NetStats;
use vopp_trace::json::{num, obj, Value};

/// 64-bit FNV-1a over a byte string. Stable, dependency-free, and fast
/// enough for the megabytes-sized executable hashed once per process.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a hash of the running executable's bytes, computed once per process.
/// Any rebuild — new simulator code, new cost tables, new rustc — changes
/// this value and thereby invalidates every cached cell at once. Falls back
/// to 0 (an always-mismatching sentinel is unnecessary: a stable 0 still
/// only matches caches written by other unreadable-executable runs on the
/// same machine, and the context hash guards the configuration).
pub fn exe_fingerprint() -> u64 {
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        std::env::current_exe()
            .ok()
            .and_then(|p| std::fs::read(p).ok())
            .map(|bytes| fnv1a(&bytes))
            .unwrap_or(0)
    })
}

/// Lossless histogram encoding: raw buckets plus sum and max. Also used by
/// the sweep cache for the serve cells' latency histograms.
pub fn hist_to_value(h: &Histogram) -> Value {
    obj(vec![
        (
            "counts",
            Value::Arr(h.bucket_counts().iter().map(|&c| num(c)).collect()),
        ),
        ("sum_ns", num(h.sum_ns())),
        ("max_ns", num(h.max_ns())),
    ])
}

/// Rebuild a histogram from [`hist_to_value`] output; `None` on any
/// structural mismatch.
pub fn hist_from_value(v: &Value) -> Option<Histogram> {
    let arr = v.get("counts")?.as_arr()?;
    if arr.len() != NBUCKETS {
        return None;
    }
    let mut counts = [0u64; NBUCKETS];
    for (slot, item) in counts.iter_mut().zip(arr) {
        *slot = item.as_u64()?;
    }
    Some(Histogram::from_raw(
        counts,
        v.get("sum_ns")?.as_u64()?,
        v.get("max_ns")?.as_u64()?,
    ))
}

/// Breakdown as an array of numbers in `Phase::ALL` order.
fn breakdown_to_value(b: &Breakdown) -> Value {
    Value::Arr(Phase::ALL.iter().map(|&p| num(b.get(p))).collect())
}

fn breakdown_from_value(v: &Value) -> Option<Breakdown> {
    let arr = v.as_arr()?;
    if arr.len() != Phase::ALL.len() {
        return None;
    }
    let mut b = Breakdown::default();
    for (&phase, item) in Phase::ALL.iter().zip(arr) {
        b.charge(phase, item.as_u64()?);
    }
    Some(b)
}

/// One view's counters as `[id, acquires, versions, wait_ns, grant_bytes]`.
fn views_to_value(views: &ViewStatsMap) -> Value {
    Value::Arr(
        views
            .iter()
            .map(|(&id, v)| {
                Value::Arr(vec![
                    num(id as u64),
                    num(v.acquires),
                    num(v.versions),
                    num(v.wait_ns),
                    num(v.grant_bytes),
                ])
            })
            .collect(),
    )
}

fn views_from_value(v: &Value) -> Option<ViewStatsMap> {
    let mut map = ViewStatsMap::new();
    for row in v.as_arr()? {
        let row = row.as_arr()?;
        if row.len() != 5 {
            return None;
        }
        let id = row[0].as_u64()? as u32;
        map.insert(
            id,
            ViewStats {
                acquires: row[1].as_u64()?,
                versions: row[2].as_u64()?,
                wait_ns: row[3].as_u64()?,
                grant_bytes: row[4].as_u64()?,
            },
        );
    }
    Some(map)
}

fn metrics_to_value(m: &NodeMetrics) -> Value {
    obj(vec![
        ("breakdown", breakdown_to_value(&m.breakdown)),
        ("acquire_rtt", hist_to_value(&m.acquire_rtt)),
        ("barrier_rtt", hist_to_value(&m.barrier_rtt)),
        ("diff_rtt", hist_to_value(&m.diff_rtt)),
        ("rpc_rtt", hist_to_value(&m.rpc_rtt)),
    ])
}

fn metrics_from_value(v: &Value) -> Option<NodeMetrics> {
    Some(NodeMetrics {
        breakdown: breakdown_from_value(v.get("breakdown")?)?,
        acquire_rtt: hist_from_value(v.get("acquire_rtt")?)?,
        barrier_rtt: hist_from_value(v.get("barrier_rtt")?)?,
        diff_rtt: hist_from_value(v.get("diff_rtt")?)?,
        rpc_rtt: hist_from_value(v.get("rpc_rtt")?)?,
    })
}

fn nodes_to_value(n: &NodeStats) -> Value {
    obj(vec![
        ("barriers", num(n.barriers)),
        ("acquires", num(n.acquires)),
        ("diff_requests", num(n.diff_requests)),
        ("page_faults", num(n.page_faults)),
        ("rexmits", num(n.rexmits)),
        ("barrier_wait_ns", num(n.barrier_wait_ns)),
        ("acquire_wait_ns", num(n.acquire_wait_ns)),
        ("twins", num(n.twins)),
        ("diffs_created", num(n.diffs_created)),
        ("diffs_applied", num(n.diffs_applied)),
        ("views", views_to_value(&n.views)),
        ("metrics", metrics_to_value(&n.metrics)),
    ])
}

fn nodes_from_value(v: &Value) -> Option<NodeStats> {
    Some(NodeStats {
        barriers: v.get("barriers")?.as_u64()?,
        acquires: v.get("acquires")?.as_u64()?,
        diff_requests: v.get("diff_requests")?.as_u64()?,
        page_faults: v.get("page_faults")?.as_u64()?,
        rexmits: v.get("rexmits")?.as_u64()?,
        barrier_wait_ns: v.get("barrier_wait_ns")?.as_u64()?,
        acquire_wait_ns: v.get("acquire_wait_ns")?.as_u64()?,
        twins: v.get("twins")?.as_u64()?,
        diffs_created: v.get("diffs_created")?.as_u64()?,
        diffs_applied: v.get("diffs_applied")?.as_u64()?,
        views: views_from_value(v.get("views")?)?,
        metrics: metrics_from_value(v.get("metrics")?)?,
    })
}

/// Serialize a complete [`RunStats`] to a JSON value that
/// [`stats_from_value`] inverts exactly.
pub fn stats_to_value(s: &RunStats) -> Value {
    obj(vec![
        ("time_ns", num(s.time.0)),
        ("nprocs", num(s.nprocs as u64)),
        ("nodes", nodes_to_value(&s.nodes)),
        (
            "net",
            obj(vec![
                ("msgs", num(s.net.msgs)),
                ("bytes", num(s.net.bytes)),
                ("drops", num(s.net.drops)),
                ("loopback_msgs", num(s.net.loopback_msgs)),
                ("one_sided", num(s.net.one_sided)),
            ]),
        ),
        (
            "node_breakdowns",
            Value::Arr(s.node_breakdowns.iter().map(breakdown_to_value).collect()),
        ),
        (
            "node_end_ns",
            Value::Arr(s.node_end.iter().map(|t| num(t.0)).collect()),
        ),
    ])
}

/// Rebuild a [`RunStats`] from [`stats_to_value`] output. Returns `None`
/// on any structural mismatch (treated by the cache as a miss).
pub fn stats_from_value(v: &Value) -> Option<RunStats> {
    let net_v = v.get("net")?;
    let mut node_breakdowns = Vec::new();
    for b in v.get("node_breakdowns")?.as_arr()? {
        node_breakdowns.push(breakdown_from_value(b)?);
    }
    let mut node_end = Vec::new();
    for t in v.get("node_end_ns")?.as_arr()? {
        node_end.push(SimTime(t.as_u64()?));
    }
    Some(RunStats {
        time: SimTime(v.get("time_ns")?.as_u64()?),
        nprocs: v.get("nprocs")?.as_u64()? as usize,
        nodes: nodes_from_value(v.get("nodes")?)?,
        net: NetStats {
            msgs: net_v.get("msgs")?.as_u64()?,
            bytes: net_v.get("bytes")?.as_u64()?,
            drops: net_v.get("drops")?.as_u64()?,
            loopback_msgs: net_v.get("loopback_msgs")?.as_u64()?,
            one_sided: net_v.get("one_sided")?.as_u64()?,
        },
        node_breakdowns,
        node_end,
        // Critical paths are never cached: profiled sweeps re-simulate
        // every cell (see run_sweep_cached), so a cache hit has no path.
        crit: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A RunStats with every field populated with distinct values, so a
    /// field swapped or dropped during (de)serialization changes the bytes.
    fn dense_stats() -> RunStats {
        let mut nodes = NodeStats {
            barriers: 11,
            acquires: 12,
            diff_requests: 13,
            page_faults: 14,
            rexmits: 15,
            barrier_wait_ns: 16,
            acquire_wait_ns: 17,
            twins: 18,
            diffs_created: 19,
            diffs_applied: 20,
            ..NodeStats::default()
        };
        nodes.views.insert(
            3,
            ViewStats {
                acquires: 1,
                versions: 2,
                wait_ns: 3,
                grant_bytes: 4,
            },
        );
        nodes.views.insert(
            7,
            ViewStats {
                acquires: 5,
                versions: 6,
                wait_ns: 7,
                grant_bytes: 8,
            },
        );
        nodes.metrics.breakdown.charge(Phase::Compute, 100);
        nodes.metrics.breakdown.charge(Phase::SendWait, 200);
        nodes.metrics.acquire_rtt.record(1_500);
        nodes.metrics.barrier_rtt.record(70_000);
        nodes.metrics.diff_rtt.record(2_000_000_000);
        nodes.metrics.rpc_rtt.record(42);

        let mut bd0 = Breakdown::default();
        bd0.charge(Phase::Compute, 60);
        bd0.charge(Phase::BarrierWait, 40);
        let mut bd1 = Breakdown::default();
        bd1.charge(Phase::DataWait, 99);

        RunStats {
            time: SimTime(123_456_789),
            nprocs: 2,
            nodes,
            net: NetStats {
                msgs: 1000,
                bytes: 2000,
                drops: 3,
                loopback_msgs: 44,
                one_sided: 55,
            },
            node_breakdowns: vec![bd0, bd1],
            node_end: vec![SimTime(100), SimTime(123_456_789)],
            crit: None,
        }
    }

    #[test]
    fn stats_round_trip_is_byte_identical() {
        let original = dense_stats();
        let encoded = stats_to_value(&original);
        let decoded = stats_from_value(&encoded).expect("decode");
        // RunStats has no PartialEq; byte-compare the canonical encoding
        // (which covers every field by construction) plus spot checks.
        assert_eq!(stats_to_value(&decoded).to_json(), encoded.to_json());
        assert_eq!(decoded.time, original.time);
        assert_eq!(decoded.nodes.metrics, original.nodes.metrics);
        assert_eq!(decoded.node_breakdowns, original.node_breakdowns);
        assert_eq!(decoded.nodes.views, original.nodes.views);
    }

    #[test]
    fn parse_then_decode_round_trips_through_text() {
        let original = dense_stats();
        let text = stats_to_value(&original).to_json_pretty();
        let reparsed = Value::parse(&text).expect("parse");
        let decoded = stats_from_value(&reparsed).expect("decode");
        assert_eq!(
            stats_to_value(&decoded).to_json(),
            stats_to_value(&original).to_json()
        );
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        assert!(stats_from_value(&Value::Null).is_none());
        assert!(stats_from_value(&obj(vec![("time_ns", num(1))])).is_none());
        // Wrong bucket count in a histogram.
        let mut good = stats_to_value(&dense_stats());
        if let Value::Obj(fields) = &mut good {
            for (k, v) in fields.iter_mut() {
                if k == "nodes" {
                    if let Value::Obj(nf) = v {
                        for (nk, nv) in nf.iter_mut() {
                            if nk == "metrics" {
                                if let Value::Obj(mf) = nv {
                                    for (mk, mv) in mf.iter_mut() {
                                        if mk == "rpc_rtt" {
                                            *mv = obj(vec![
                                                ("counts", Value::Arr(vec![num(1)])),
                                                ("sum_ns", num(1)),
                                                ("max_ns", num(1)),
                                            ]);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(stats_from_value(&good).is_none());
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn exe_fingerprint_is_stable_and_nonzero() {
        let a = exe_fingerprint();
        let b = exe_fingerprint();
        assert_eq!(a, b);
        assert_ne!(a, 0, "test executable should be readable");
    }
}
