//! Parallel deterministic sweep runner.
//!
//! Every (application, variant, protocol, node-count) table cell is an
//! independent deterministic simulation, so the full sweep parallelizes
//! trivially: [`cells_for`] enumerates the exact cells a table renders,
//! [`run_sweep`] executes the de-duplicated cell list on a std-only
//! scoped-thread worker pool, and the resulting [`RunCache`] is attached to
//! [`Scale`] so the table functions consume precomputed results *in their
//! original sequential order*. Tables, `BENCH_<app>.json` metrics and trace
//! artifacts therefore come out byte-identical for any worker count — only
//! wall-clock changes.
//!
//! Wall-clock itself is reported (never gated): each cell is timed with
//! [`std::time::Instant`] outside the virtual-time world and
//! [`write_wallclock`] emits a `BENCH_wallclock.json` artifact
//! (schema [`WALLCLOCK_SCHEMA`]) with per-cell and total wall-clock plus the
//! estimated speedup over a sequential (`--jobs 1`) run.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use vopp_core::{Protocol, RunStats};
use vopp_trace::json::{num, obj, str, Value};

use crate::tables::{self, Scale};

/// Schema tag of the `BENCH_wallclock.json` artifact.
pub const WALLCLOCK_SCHEMA: &str = "vopp-bench-wallclock/1";

/// Application of a sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellApp {
    /// Integer Sort.
    Is,
    /// Gaussian elimination.
    Gauss,
    /// Successive over-relaxation.
    Sor,
    /// Neural network training.
    Nn,
}

impl CellApp {
    /// Artifact label (`is`, `gauss`, `sor`, `nn`).
    pub fn label(self) -> &'static str {
        match self {
            CellApp::Is => "is",
            CellApp::Gauss => "gauss",
            CellApp::Sor => "sor",
            CellApp::Nn => "nn",
        }
    }
}

/// Program variant of a sweep cell (union of the per-app variant enums).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellVariant {
    /// Lock/barrier program on a traditional DSM API.
    Traditional,
    /// View-oriented program.
    Vopp,
    /// View-oriented program with hoisted barriers (load-balanced).
    VoppLb,
    /// Message-passing reference (NN only).
    Mpi,
}

impl CellVariant {
    /// Artifact label (`trad`, `vopp`, `vopp_lb`, `mpi`).
    pub fn label(self) -> &'static str {
        match self {
            CellVariant::Traditional => "trad",
            CellVariant::Vopp => "vopp",
            CellVariant::VoppLb => "vopp_lb",
            CellVariant::Mpi => "mpi",
        }
    }
}

/// One sweep cell: a single deterministic cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    /// Application to run.
    pub app: CellApp,
    /// Program variant.
    pub variant: CellVariant,
    /// DSM protocol (the NN MPI variant still carries the protocol its
    /// table passes, matching the trace-file naming convention).
    pub proto: Protocol,
    /// Processor count.
    pub np: usize,
}

impl CellSpec {
    /// Cache/artifact key, matching the trace-file stem convention:
    /// `{app}_{variant}_{proto}_{np}p`.
    pub fn key(&self) -> String {
        format!(
            "{}_{}_{}_{}p",
            self.app.label(),
            self.variant.label(),
            self.proto.label().to_lowercase(),
            self.np
        )
    }
}

/// One precomputed run: verified statistics plus the real time it took.
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// The run's verified statistics (virtual time, counters).
    pub stats: RunStats,
    /// Real wall-clock spent simulating the cell, in nanoseconds.
    pub wall_ns: u64,
}

/// Precomputed sweep results, keyed by [`CellSpec::key`]. Attached to
/// [`Scale::cache`]; table functions consume hits in their original
/// sequential order so every artifact stays byte-identical.
#[derive(Debug, Default)]
pub struct RunCache {
    runs: BTreeMap<String, CachedRun>,
    /// Worker count the sweep ran with.
    pub jobs: usize,
    /// Real wall-clock of the whole sweep, in nanoseconds.
    pub total_wall_ns: u64,
}

impl RunCache {
    /// Look up a precomputed run.
    pub fn get(&self, key: &str) -> Option<&CachedRun> {
        self.runs.get(key)
    }

    /// Number of precomputed cells.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when the sweep produced no cells.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Sum of per-cell wall-clock — the estimated `--jobs 1` sweep time.
    pub fn cells_wall_ns(&self) -> u64 {
        self.runs.values().map(|r| r.wall_ns).sum()
    }
}

fn cell(app: CellApp, variant: CellVariant, proto: Protocol, np: usize) -> CellSpec {
    CellSpec {
        app,
        variant,
        proto,
        np,
    }
}

/// The cells one table renders, in its sequential run order. Mirrors the
/// table functions in [`crate::tables`] exactly (cell-equivalence is
/// asserted by `tests/parallel_sweep.rs` byte-comparing artifacts).
pub fn cells_for(table: &str, scale: &Scale) -> Vec<CellSpec> {
    use CellApp::{Gauss, Is, Nn, Sor};
    use CellVariant::{Mpi, Traditional, Vopp, VoppLb};
    use Protocol::{Hlrc, LrcD, VcD, VcSd};
    let np = scale.stats_procs();
    let speedup = scale.speedup_procs();
    let mut cells = Vec::new();
    match table {
        "table1" => {
            cells.push(cell(Is, Traditional, LrcD, np));
            cells.push(cell(Is, Vopp, VcD, np));
            cells.push(cell(Is, Vopp, VcSd, np));
        }
        "table2" => {
            cells.push(cell(Is, VoppLb, VcD, np));
            cells.push(cell(Is, VoppLb, VcSd, np));
        }
        "table3" => {
            cells.push(cell(Is, Traditional, LrcD, 1));
            for &n in &speedup {
                cells.push(cell(Is, Traditional, LrcD, n));
            }
            for &n in &speedup {
                cells.push(cell(Is, Vopp, VcSd, n));
            }
            for &n in &speedup {
                cells.push(cell(Is, VoppLb, VcSd, n));
            }
        }
        "table4" => {
            cells.push(cell(Gauss, Traditional, LrcD, np));
            cells.push(cell(Gauss, Vopp, VcD, np));
            cells.push(cell(Gauss, Vopp, VcSd, np));
        }
        "table5" => {
            cells.push(cell(Gauss, Traditional, LrcD, 1));
            for &n in &speedup {
                cells.push(cell(Gauss, Traditional, LrcD, n));
            }
            for &n in &speedup {
                cells.push(cell(Gauss, Vopp, VcSd, n));
            }
        }
        "table6" => {
            cells.push(cell(Sor, Traditional, LrcD, np));
            cells.push(cell(Sor, Vopp, VcD, np));
            cells.push(cell(Sor, Vopp, VcSd, np));
        }
        "table7" => {
            cells.push(cell(Sor, Traditional, LrcD, 1));
            for &n in &speedup {
                cells.push(cell(Sor, Traditional, LrcD, n));
            }
            for &n in &speedup {
                cells.push(cell(Sor, Vopp, VcSd, n));
            }
        }
        "table8" => {
            cells.push(cell(Nn, Traditional, LrcD, np));
            cells.push(cell(Nn, Vopp, VcD, np));
            cells.push(cell(Nn, Vopp, VcSd, np));
        }
        "table9" => {
            cells.push(cell(Nn, Traditional, LrcD, 1));
            for &n in &speedup {
                cells.push(cell(Nn, Traditional, LrcD, n));
            }
            for &n in &speedup {
                cells.push(cell(Nn, Vopp, VcSd, n));
            }
            for &n in &speedup {
                cells.push(cell(Nn, Mpi, VcSd, n));
            }
        }
        "ext" => {
            for app in [Is, Gauss, Sor, Nn] {
                cells.push(cell(app, Traditional, LrcD, np));
                cells.push(cell(app, Traditional, Hlrc, np));
            }
        }
        other => panic!("unknown table {other:?}"),
    }
    cells
}

/// De-duplicate a cell list by key, keeping first-occurrence order (the
/// same cell can appear in several tables; one simulation serves all).
pub fn dedup_cells(specs: &[CellSpec]) -> Vec<CellSpec> {
    let mut seen = std::collections::BTreeSet::new();
    specs
        .iter()
        .filter(|s| seen.insert(s.key()))
        .copied()
        .collect()
}

/// Run every cell on a scoped-thread worker pool with `jobs` workers and
/// return the populated [`RunCache`]. Each worker claims the next
/// unclaimed cell (atomic work index), simulates it through the same
/// verified path the tables use (including trace artifacts and conformance
/// checks when `scale.trace_dir` is set), and times it with a real
/// [`Instant`]. Results land keyed by cell, so worker scheduling cannot
/// influence any downstream artifact.
pub fn run_sweep(scale: &Scale, specs: &[CellSpec], jobs: usize) -> RunCache {
    let t0 = Instant::now();
    let jobs = jobs.clamp(1, specs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CachedRun>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                let c0 = Instant::now();
                let stats = tables::execute_cell(scale, spec);
                let wall_ns = c0.elapsed().as_nanos() as u64;
                *slots[i].lock().expect("sweep slot lock") = Some(CachedRun { stats, wall_ns });
            });
        }
    });
    let mut runs = BTreeMap::new();
    for (spec, slot) in specs.iter().zip(slots) {
        let run = slot
            .into_inner()
            .expect("sweep slot lock")
            .expect("worker pool completed every cell");
        runs.insert(spec.key(), run);
    }
    RunCache {
        runs,
        jobs,
        total_wall_ns: t0.elapsed().as_nanos() as u64,
    }
}

/// The `BENCH_wallclock.json` document for a finished sweep. Wall-clock is
/// machine-dependent by nature: this artifact is reported and uploaded,
/// never byte-compared by the regression gate (which `metrics_diff`
/// enforces by skipping it).
pub fn wallclock_document(cache: &RunCache) -> Value {
    let cells_ns = cache.cells_wall_ns();
    let speedup = if cache.total_wall_ns > 0 {
        Value::Num(cells_ns as f64 / cache.total_wall_ns as f64)
    } else {
        Value::Null
    };
    obj(vec![
        ("schema", str(WALLCLOCK_SCHEMA)),
        ("jobs", num(cache.jobs as u64)),
        (
            "cells",
            Value::Arr(
                cache
                    .runs
                    .iter()
                    .map(|(key, run)| {
                        obj(vec![
                            ("cell", str(key)),
                            ("wall_ns", num(run.wall_ns)),
                            ("wall_ms", Value::Num(run.wall_ns as f64 / 1e6)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "total",
            obj(vec![
                ("wall_ns", num(cache.total_wall_ns)),
                ("wall_secs", Value::Num(cache.total_wall_ns as f64 / 1e9)),
                // Estimated sequential sweep time: the sum of per-cell
                // wall-clock (what `--jobs 1` would spend simulating).
                ("cells_wall_ns", num(cells_ns)),
                ("speedup_vs_jobs1", speedup),
            ]),
        ),
    ])
}

/// Write `BENCH_wallclock.json` into `dir` (created if needed).
pub fn write_wallclock(cache: &RunCache, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("BENCH_wallclock.json"),
        wallclock_document(cache).to_json_pretty(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_match_trace_stems() {
        let spec = cell(CellApp::Nn, CellVariant::Mpi, Protocol::VcSd, 4);
        assert_eq!(spec.key(), "nn_mpi_vc_sd_4p");
        let spec = cell(CellApp::Is, CellVariant::Traditional, Protocol::LrcD, 16);
        assert_eq!(spec.key(), "is_trad_lrc_d_16p");
    }

    #[test]
    fn dedup_keeps_first_occurrence_order() {
        let a = cell(CellApp::Is, CellVariant::Traditional, Protocol::LrcD, 4);
        let b = cell(CellApp::Is, CellVariant::Vopp, Protocol::VcSd, 4);
        let out = dedup_cells(&[a, b, a, b, a]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].key(), a.key());
        assert_eq!(out[1].key(), b.key());
    }

    #[test]
    fn quick_table_enumeration_covers_every_run() {
        // table1 at quick scale: 3 stats cells.
        let scale = Scale::quick();
        assert_eq!(cells_for("table1", &scale).len(), 3);
        // table3: 1p base + 3 rows x 2 speedup counts.
        assert_eq!(cells_for("table3", &scale).len(), 7);
        // table9: 1p base + 3 rows x 2 speedup counts.
        assert_eq!(cells_for("table9", &scale).len(), 7);
        assert_eq!(cells_for("ext", &scale).len(), 8);
    }

    #[test]
    fn sweep_runs_cells_and_times_them() {
        let scale = Scale::quick();
        let specs = dedup_cells(&cells_for("table1", &scale));
        let cache = run_sweep(&scale, &specs, 2);
        assert_eq!(cache.len(), 3);
        assert!(cache.total_wall_ns > 0);
        for spec in &specs {
            let run = cache.get(&spec.key()).expect("cell precomputed");
            assert!(run.stats.time.nanos() > 0);
        }
        let doc = wallclock_document(&cache);
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(WALLCLOCK_SCHEMA)
        );
        assert_eq!(
            doc.get("cells").and_then(Value::as_arr).map(<[_]>::len),
            Some(3)
        );
    }
}
