//! Parallel deterministic sweep runner.
//!
//! Every (application, variant, protocol, node-count) table cell is an
//! independent deterministic simulation, so the full sweep parallelizes
//! trivially: [`cells_for`] enumerates the exact cells a table renders,
//! [`run_sweep`] executes the de-duplicated cell list on a std-only
//! scoped-thread worker pool, and the resulting [`RunCache`] is attached to
//! [`Scale`] so the table functions consume precomputed results *in their
//! original sequential order*. Tables, `BENCH_<app>.json` metrics and trace
//! artifacts therefore come out byte-identical for any worker count — only
//! wall-clock changes.
//!
//! Wall-clock itself is reported (never gated): each cell is timed with
//! [`std::time::Instant`] outside the virtual-time world and
//! [`write_wallclock`] emits a `BENCH_wallclock.json` artifact
//! (schema [`WALLCLOCK_SCHEMA`]) with per-cell and total wall-clock plus the
//! estimated speedup over a sequential (`--jobs 1`) run.
//!
//! ## Persistent sweep cache
//!
//! Because every cell is a pure function of (cell key, problem scale, cost
//! model, simulator build), its result can be cached *across processes*:
//! [`DiskCache`] stores each cell's full-fidelity [`RunStats`] (see
//! [`crate::persist`]) in a single JSON file, content-addressed by a build
//! fingerprint (FNV-1a of the running executable) plus a [`context_hash`]
//! of the scale and cost models. `tables --cache DIR` opens the cache and
//! [`run_sweep_cached`] skips every warm cell — a warm rerun simulates
//! nothing and replays byte-identical tables and metrics artifacts. Any
//! rebuild or configuration change flips the fingerprint/context and
//! invalidates the file wholesale; writes are atomic (temp file + rename)
//! so a crashed sweep can never leave a torn cache behind.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use vopp_core::{Protocol, RunStats};
use vopp_dsm::CostModel;
use vopp_sim::handoff_totals;
use vopp_simnet::NetGen;
use vopp_trace::json::{num, obj, str, Value};

use crate::persist;
use crate::tables::{self, Scale};

/// Schema tag of the `BENCH_wallclock.json` artifact. `/2` adds the
/// `host` section (peak RSS, allocation counters) and the per-stage
/// (`enumerate`/`simulate`/`render`) timing array. `/3` adds the `sim`
/// section: the intra-run parallel kernel's worker width, window counters,
/// and execute/merge stage timers. `/4` extends `sim` with the adaptive
/// kernel's dispatch economics: the events-per-window density histogram,
/// the inline/parallel/serial window split (and inline share), spin-hit vs
/// park-wake doorbell counts, and the commit's routing vs record-append
/// nanosecond split.
pub const WALLCLOCK_SCHEMA: &str = "vopp-bench-wallclock/4";

/// Application of a sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellApp {
    /// Integer Sort.
    Is,
    /// Gaussian elimination.
    Gauss,
    /// Successive over-relaxation.
    Sor,
    /// Neural network training.
    Nn,
    /// Open-loop serving workload (`vopp-serve`).
    Serve,
}

impl CellApp {
    /// Artifact label (`is`, `gauss`, `sor`, `nn`, `serve`).
    pub fn label(self) -> &'static str {
        match self {
            CellApp::Is => "is",
            CellApp::Gauss => "gauss",
            CellApp::Sor => "sor",
            CellApp::Nn => "nn",
            CellApp::Serve => "serve",
        }
    }
}

/// Offered load of a serve cell: the base open-loop rate or double it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeLoad {
    /// The calibrated mean arrival rate.
    Base,
    /// Twice the base arrival rate (half the mean interarrival gap).
    High,
}

impl ServeLoad {
    /// Artifact label (`base`, `hi`).
    pub fn label(self) -> &'static str {
        match self {
            ServeLoad::Base => "base",
            ServeLoad::High => "hi",
        }
    }
}

/// Fault scenario of a serve cell, promoted into the run's
/// [`vopp_core::FaultPlan`] by the table runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFault {
    /// No injected faults.
    Clean,
    /// 2% datagram loss.
    Loss,
    /// Node 0 slowed 2x.
    Slow,
    /// Node 1 crashes mid-stream for a quarter of the schedule horizon and
    /// reconstructs its shard/view state from the home nodes (view-backed
    /// store only).
    Crash,
}

impl ServeFault {
    /// Artifact label (`clean`, `loss`, `slow`, `crash`).
    pub fn label(self) -> &'static str {
        match self {
            ServeFault::Clean => "clean",
            ServeFault::Loss => "loss",
            ServeFault::Slow => "slow",
            ServeFault::Crash => "crash",
        }
    }
}

/// The serve-specific dimensions of a cell (`None` on batch cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeCell {
    /// Offered load.
    pub load: ServeLoad,
    /// Injected fault scenario.
    pub fault: ServeFault,
}

impl ServeCell {
    /// Key/label fragment, e.g. `base_crash`.
    pub fn label(self) -> String {
        format!("{}_{}", self.load.label(), self.fault.label())
    }
}

/// Program variant of a sweep cell (union of the per-app variant enums).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellVariant {
    /// Lock/barrier program on a traditional DSM API.
    Traditional,
    /// View-oriented program.
    Vopp,
    /// View-oriented program with hoisted barriers (load-balanced).
    VoppLb,
    /// Message-passing reference (NN only).
    Mpi,
}

impl CellVariant {
    /// Artifact label (`trad`, `vopp`, `vopp_lb`, `mpi`).
    pub fn label(self) -> &'static str {
        match self {
            CellVariant::Traditional => "trad",
            CellVariant::Vopp => "vopp",
            CellVariant::VoppLb => "vopp_lb",
            CellVariant::Mpi => "mpi",
        }
    }
}

/// One sweep cell: a single deterministic cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    /// Application to run.
    pub app: CellApp,
    /// Program variant.
    pub variant: CellVariant,
    /// DSM protocol (the NN MPI variant still carries the protocol its
    /// table passes, matching the trace-file naming convention).
    pub proto: Protocol,
    /// Processor count.
    pub np: usize,
    /// Serve-only dimensions: offered load and fault scenario. Always
    /// `Some` on [`CellApp::Serve`] cells, `None` otherwise.
    pub serve: Option<ServeCell>,
    /// Network generation the cell runs on (`tables netgen` cells only).
    /// `None` means the default configuration — the paper's 100 Mbps
    /// testbed — so every pre-existing cell key is unchanged.
    pub netgen: Option<NetGen>,
}

impl CellSpec {
    /// Cache/artifact key, matching the trace-file stem convention:
    /// `{app}_{variant}_{proto}_{np}p`, with the load/fault fragment after
    /// the variant on serve cells (`serve_vopp_base_crash_vc_sd_4p`) and
    /// the generation label after the variant on netgen cells
    /// (`is_vopp_rdma_vc_rdma_16p`).
    pub fn key(&self) -> String {
        let mut head = format!("{}_{}", self.app.label(), self.variant.label());
        if let Some(sc) = self.serve {
            head.push('_');
            head.push_str(&sc.label());
        }
        if let Some(gen) = self.netgen {
            head.push('_');
            head.push_str(gen.label());
        }
        format!("{head}_{}_{}p", self.proto.label().to_lowercase(), self.np)
    }
}

/// The serve-specific results of one cell, cached alongside its
/// [`RunStats`]: the merged per-request latency histogram and the
/// convergence evidence (checksum, GET digest, pages reconstructed after
/// crashes). `None` on batch cells.
#[derive(Debug, Clone, PartialEq)]
pub struct ServePayload {
    /// Per-request service latency, merged across all serving nodes.
    pub latency: vopp_metrics::Histogram,
    /// Final-store checksum (equal to the sequential reference).
    pub checksum: u64,
    /// Order-independent digest of every GET's observed value.
    pub get_digest: u64,
    /// Requests served (the whole schedule, exactly once).
    pub served: u64,
    /// Pages shed by crash windows and rebuilt from the home nodes.
    pub recovered_pages: u64,
}

impl ServePayload {
    /// Lossless JSON encoding for the persistent sweep cache.
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("latency", persist::hist_to_value(&self.latency)),
            ("checksum", str(&format!("{:016x}", self.checksum))),
            ("get_digest", str(&format!("{:016x}", self.get_digest))),
            ("served", num(self.served)),
            ("recovered_pages", num(self.recovered_pages)),
        ])
    }

    /// Inverse of [`ServePayload::to_value`]; `None` on any mismatch
    /// (treated by the cache as a miss).
    pub fn from_value(v: &Value) -> Option<ServePayload> {
        let hex = |field: &str| {
            v.get(field)
                .and_then(Value::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
        };
        Some(ServePayload {
            latency: persist::hist_from_value(v.get("latency")?)?,
            checksum: hex("checksum")?,
            get_digest: hex("get_digest")?,
            served: v.get("served")?.as_u64()?,
            recovered_pages: v.get("recovered_pages")?.as_u64()?,
        })
    }
}

/// One precomputed run: verified statistics plus the real time it took.
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// The run's verified statistics (virtual time, counters).
    pub stats: RunStats,
    /// Serve-only results (latency histogram, convergence evidence);
    /// `None` on batch cells.
    pub serve: Option<ServePayload>,
    /// Real wall-clock spent simulating the cell, in nanoseconds.
    pub wall_ns: u64,
}

/// Precomputed sweep results, keyed by [`CellSpec::key`]. Attached to
/// [`Scale::cache`]; table functions consume hits in their original
/// sequential order so every artifact stays byte-identical.
#[derive(Debug, Default)]
pub struct RunCache {
    runs: BTreeMap<String, CachedRun>,
    /// Worker count the sweep ran with.
    pub jobs: usize,
    /// Real wall-clock of the whole sweep, in nanoseconds.
    pub total_wall_ns: u64,
    /// Cells replayed from the persistent [`DiskCache`] without simulating.
    pub warm_cells: usize,
    /// Cells actually simulated this run.
    pub simulated_cells: usize,
}

impl RunCache {
    /// Look up a precomputed run.
    pub fn get(&self, key: &str) -> Option<&CachedRun> {
        self.runs.get(key)
    }

    /// Number of precomputed cells.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when the sweep produced no cells.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Sum of per-cell wall-clock — the estimated `--jobs 1` sweep time.
    pub fn cells_wall_ns(&self) -> u64 {
        self.runs.values().map(|r| r.wall_ns).sum()
    }
}

fn cell(app: CellApp, variant: CellVariant, proto: Protocol, np: usize) -> CellSpec {
    CellSpec {
        app,
        variant,
        proto,
        np,
        serve: None,
        netgen: None,
    }
}

fn serve_cell(
    variant: CellVariant,
    proto: Protocol,
    np: usize,
    load: ServeLoad,
    fault: ServeFault,
) -> CellSpec {
    CellSpec {
        app: CellApp::Serve,
        variant,
        proto,
        np,
        serve: Some(ServeCell { load, fault }),
        netgen: None,
    }
}

fn netgen_cell(
    app: CellApp,
    variant: CellVariant,
    gen: NetGen,
    proto: Protocol,
    np: usize,
) -> CellSpec {
    CellSpec {
        netgen: Some(gen),
        ..cell(app, variant, proto, np)
    }
}

/// The generations the `netgen` family sweeps: the paper's testbed, a
/// modern Ethernet, and the RDMA-class interconnect. The in-between
/// presets exist ([`NetGen::ALL`]) but three points tell the story.
pub const NETGEN_GENS: [NetGen; 3] = [NetGen::Eth100m, NetGen::Eth10g, NetGen::Rdma];

/// The protocol columns of the `netgen` family: the paper's baseline, its
/// headline protocol, and the RDMA-native variant.
pub const NETGEN_PROTOS: [(Protocol, CellVariant); 3] = [
    (Protocol::LrcD, CellVariant::Traditional),
    (Protocol::VcSd, CellVariant::Vopp),
    (Protocol::VcRdma, CellVariant::Vopp),
];

/// The cells one table renders, in its sequential run order. Mirrors the
/// table functions in [`crate::tables`] exactly (cell-equivalence is
/// asserted by `tests/parallel_sweep.rs` byte-comparing artifacts).
pub fn cells_for(table: &str, scale: &Scale) -> Vec<CellSpec> {
    use CellApp::{Gauss, Is, Nn, Sor};
    use CellVariant::{Mpi, Traditional, Vopp, VoppLb};
    use Protocol::{Hlrc, LrcD, ScC, VcD, VcSd};
    let np = scale.stats_procs();
    let speedup = scale.speedup_procs();
    let mut cells = Vec::new();
    match table {
        "table1" => {
            cells.push(cell(Is, Traditional, LrcD, np));
            cells.push(cell(Is, Vopp, VcD, np));
            cells.push(cell(Is, Vopp, VcSd, np));
        }
        "table2" => {
            cells.push(cell(Is, VoppLb, VcD, np));
            cells.push(cell(Is, VoppLb, VcSd, np));
        }
        "table3" => {
            cells.push(cell(Is, Traditional, LrcD, 1));
            for &n in &speedup {
                cells.push(cell(Is, Traditional, LrcD, n));
            }
            for &n in &speedup {
                cells.push(cell(Is, Vopp, VcSd, n));
            }
            for &n in &speedup {
                cells.push(cell(Is, VoppLb, VcSd, n));
            }
        }
        "table4" => {
            cells.push(cell(Gauss, Traditional, LrcD, np));
            cells.push(cell(Gauss, Vopp, VcD, np));
            cells.push(cell(Gauss, Vopp, VcSd, np));
        }
        "table5" => {
            cells.push(cell(Gauss, Traditional, LrcD, 1));
            for &n in &speedup {
                cells.push(cell(Gauss, Traditional, LrcD, n));
            }
            for &n in &speedup {
                cells.push(cell(Gauss, Vopp, VcSd, n));
            }
        }
        "table6" => {
            cells.push(cell(Sor, Traditional, LrcD, np));
            cells.push(cell(Sor, Vopp, VcD, np));
            cells.push(cell(Sor, Vopp, VcSd, np));
        }
        "table7" => {
            cells.push(cell(Sor, Traditional, LrcD, 1));
            for &n in &speedup {
                cells.push(cell(Sor, Traditional, LrcD, n));
            }
            for &n in &speedup {
                cells.push(cell(Sor, Vopp, VcSd, n));
            }
        }
        "table8" => {
            cells.push(cell(Nn, Traditional, LrcD, np));
            cells.push(cell(Nn, Vopp, VcD, np));
            cells.push(cell(Nn, Vopp, VcSd, np));
        }
        "table9" => {
            cells.push(cell(Nn, Traditional, LrcD, 1));
            for &n in &speedup {
                cells.push(cell(Nn, Traditional, LrcD, n));
            }
            for &n in &speedup {
                cells.push(cell(Nn, Vopp, VcSd, n));
            }
            for &n in &speedup {
                cells.push(cell(Nn, Mpi, VcSd, n));
            }
        }
        "ext" => {
            for app in [Is, Gauss, Sor, Nn] {
                cells.push(cell(app, Traditional, LrcD, np));
                cells.push(cell(app, Traditional, Hlrc, np));
            }
        }
        "serve" => {
            use ServeFault::{Clean, Crash, Loss, Slow};
            use ServeLoad::{Base, High};
            // Clean serving across the full protocol matrix at base load.
            cells.push(serve_cell(Traditional, LrcD, np, Base, Clean));
            cells.push(serve_cell(Traditional, Hlrc, np, Base, Clean));
            cells.push(serve_cell(Traditional, ScC, np, Base, Clean));
            cells.push(serve_cell(Vopp, VcD, np, Base, Clean));
            cells.push(serve_cell(Vopp, VcSd, np, Base, Clean));
            // Doubled load and the loss/slowdown scenarios: the paper's
            // baseline protocol vs the headline VOPP one.
            cells.push(serve_cell(Traditional, LrcD, np, High, Clean));
            cells.push(serve_cell(Vopp, VcSd, np, High, Clean));
            for fault in [Loss, Slow] {
                cells.push(serve_cell(Traditional, LrcD, np, Base, fault));
                cells.push(serve_cell(Vopp, VcSd, np, Base, fault));
            }
            // Crash/recovery is modelled for the view-backed store only.
            cells.push(serve_cell(Vopp, VcD, np, Base, Crash));
            cells.push(serve_cell(Vopp, VcSd, np, Base, Crash));
        }
        "scaling" => {
            // Column-major over app x nodes, protocols innermost — the
            // exact order `table_scaling` consumes them.
            for app in [Is, Gauss, Sor] {
                for &n in &scale.scaling_procs() {
                    cells.push(cell(app, Traditional, LrcD, n));
                    cells.push(cell(app, Traditional, Hlrc, n));
                    cells.push(cell(app, Vopp, VcSd, n));
                }
            }
        }
        "netgen" => {
            // App-major, generations next, protocols innermost — the exact
            // order `table_netgen` consumes them. Every cell (including
            // eth100m, which equals the default config bit-for-bit) carries
            // its generation in the key, so the family never aliases the
            // paper tables' cells in the sweep cache.
            for app in [Is, Gauss, Sor, Nn] {
                for gen in NETGEN_GENS {
                    for (proto, variant) in NETGEN_PROTOS {
                        cells.push(netgen_cell(app, variant, gen, proto, np));
                    }
                }
            }
        }
        other => panic!("unknown table {other:?}"),
    }
    cells
}

/// De-duplicate a cell list by key, keeping first-occurrence order (the
/// same cell can appear in several tables; one simulation serves all).
pub fn dedup_cells(specs: &[CellSpec]) -> Vec<CellSpec> {
    let mut seen = std::collections::BTreeSet::new();
    specs
        .iter()
        .filter(|s| seen.insert(s.key()))
        .copied()
        .collect()
}

/// Schema tag of the persistent sweep-cache file. `/3` adds the one-sided
/// datagram counter to the persisted network statistics.
pub const CACHE_SCHEMA: &str = "vopp-sweep-cache/3";

/// File name of the persistent sweep cache inside `--cache DIR`.
pub const CACHE_FILE: &str = "sweep-cache.json";

/// Hash of everything *besides* the cell key that determines a run's
/// result: problem scale (quick vs full), the network/CPU cost models and
/// the global fault plan. Folded into the cache address so e.g. a
/// `--quick` cache can never serve a full-scale sweep, nor a faulted sweep
/// a fault-free one. The cost models hash via their `Debug` form, which
/// covers every field.
pub fn context_hash(scale: &Scale) -> u64 {
    let net = scale.net_override.clone().unwrap_or_default();
    let cost = CostModel::default();
    let text = format!(
        "quick={} net={net:?} cost={cost:?} faults={}",
        scale.quick,
        scale.faults.label()
    );
    persist::fnv1a(text.as_bytes())
}

/// On-disk, content-addressed store of finished sweep cells.
///
/// The whole cache lives in one JSON file ([`CACHE_FILE`]) whose header
/// carries the build fingerprint and [`context_hash`]; a mismatch on either
/// invalidates every entry at once (the stale file is simply overwritten by
/// the next [`DiskCache::save`]). Cell entries store the lossless
/// [`crate::persist`] encoding of [`RunStats`] plus the original simulate
/// wall-clock, so replayed cells report how much real time they saved.
#[derive(Debug)]
pub struct DiskCache {
    path: PathBuf,
    fingerprint: u64,
    context: u64,
    cells: BTreeMap<String, CachedRun>,
}

impl DiskCache {
    /// Open (or initialize empty) the cache in `dir` for the current build.
    pub fn open(dir: &Path, context: u64) -> DiskCache {
        DiskCache::open_with_fingerprint(dir, context, persist::exe_fingerprint())
    }

    /// [`DiskCache::open`] with an explicit build fingerprint (tests use
    /// this to exercise invalidation without rebuilding the executable).
    pub fn open_with_fingerprint(dir: &Path, context: u64, fingerprint: u64) -> DiskCache {
        let path = dir.join(CACHE_FILE);
        let mut cells = BTreeMap::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(doc) = Value::parse(&text) {
                let fp_hex = format!("{fingerprint:016x}");
                let ctx_hex = format!("{context:016x}");
                let matches = doc.get("schema").and_then(Value::as_str) == Some(CACHE_SCHEMA)
                    && doc.get("fingerprint").and_then(Value::as_str) == Some(fp_hex.as_str())
                    && doc.get("context").and_then(Value::as_str) == Some(ctx_hex.as_str());
                if matches {
                    if let Some(Value::Obj(entries)) = doc.get("cells") {
                        for (key, entry) in entries {
                            let wall = entry.get("wall_ns").and_then(Value::as_u64);
                            let stats = entry.get("stats").and_then(persist::stats_from_value);
                            // A serve entry must decode its payload too; a
                            // malformed one falls back to a cache miss.
                            let serve = match entry.get("serve") {
                                None => None,
                                Some(v) => match ServePayload::from_value(v) {
                                    Some(p) => Some(p),
                                    None => continue,
                                },
                            };
                            if let (Some(wall_ns), Some(stats)) = (wall, stats) {
                                cells.insert(
                                    key.clone(),
                                    CachedRun {
                                        stats,
                                        serve,
                                        wall_ns,
                                    },
                                );
                            }
                        }
                    }
                }
                // On mismatch: start empty — wholesale invalidation. The
                // stale file stays until the next save overwrites it.
            }
        }
        DiskCache {
            path,
            fingerprint,
            context,
            cells,
        }
    }

    /// Look up a finished cell.
    pub fn get(&self, key: &str) -> Option<&CachedRun> {
        self.cells.get(key)
    }

    /// Record a finished cell (persisted on the next [`DiskCache::save`]).
    pub fn insert(&mut self, key: String, run: CachedRun) {
        self.cells.insert(key, run);
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells are cached.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomically persist the cache: write a sibling temp file, then rename
    /// over [`CACHE_FILE`], so readers never observe a torn document.
    pub fn save(&self) -> std::io::Result<()> {
        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let doc = obj(vec![
            ("schema", str(CACHE_SCHEMA)),
            ("fingerprint", str(&format!("{:016x}", self.fingerprint))),
            ("context", str(&format!("{:016x}", self.context))),
            (
                "cells",
                Value::Obj(
                    self.cells
                        .iter()
                        .map(|(key, run)| {
                            let mut fields = vec![
                                ("wall_ns", num(run.wall_ns)),
                                ("stats", persist::stats_to_value(&run.stats)),
                            ];
                            if let Some(p) = &run.serve {
                                fields.push(("serve", p.to_value()));
                            }
                            (key.clone(), obj(fields))
                        })
                        .collect(),
                ),
            ),
        ]);
        let tmp = self.path.with_extension("json.tmp");
        std::fs::write(&tmp, doc.to_json_pretty())?;
        std::fs::rename(&tmp, &self.path)
    }
}

/// Run every cell on a scoped-thread worker pool with `jobs` workers and
/// return the populated [`RunCache`]. Each worker claims the next
/// unclaimed cell (atomic work index), simulates it through the same
/// verified path the tables use (including trace artifacts and conformance
/// checks when `scale.trace_dir` is set), and times it with a real
/// [`Instant`]. Results land keyed by cell, so worker scheduling cannot
/// influence any downstream artifact.
pub fn run_sweep(scale: &Scale, specs: &[CellSpec], jobs: usize) -> RunCache {
    run_sweep_cached(scale, specs, jobs, None)
}

/// [`run_sweep`] backed by a persistent [`DiskCache`]: warm cells are
/// replayed from disk without simulating (their stored `wall_ns` still
/// reports the original simulate cost), cold cells go through the worker
/// pool as usual and are written back. The cache is saved once at the end
/// of the sweep (atomic rename), and only when something new was simulated.
/// Which cells were warm cannot influence any downstream artifact: both
/// paths produce the identical [`RunStats`] keyed by cell.
pub fn run_sweep_cached(
    scale: &Scale,
    specs: &[CellSpec],
    jobs: usize,
    mut disk: Option<&mut DiskCache>,
) -> RunCache {
    let t0 = Instant::now();
    let mut runs: BTreeMap<String, CachedRun> = BTreeMap::new();
    let mut cold: Vec<CellSpec> = Vec::new();
    // Trace artifacts and critical paths only exist for cells that are
    // actually simulated — a warm replay would silently produce neither.
    // With tracing or profiling requested, every cell runs cold (results
    // are still written back, so the cache warms up for ordinary sweeps).
    let replay_warm = scale.trace_dir.is_none() && !scale.critpath;
    for spec in specs {
        let key = spec.key();
        match disk
            .as_ref()
            .filter(|_| replay_warm)
            .and_then(|d| d.get(&key))
        {
            Some(run) => {
                runs.insert(key, run.clone());
            }
            None => cold.push(*spec),
        }
    }
    let warm_cells = runs.len();
    let jobs = jobs.clamp(1, cold.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CachedRun>>> = cold.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = cold.get(i) else { break };
                let c0 = Instant::now();
                let (stats, serve) = tables::execute_cell(scale, spec);
                let wall_ns = c0.elapsed().as_nanos() as u64;
                *slots[i].lock().expect("sweep slot lock") = Some(CachedRun {
                    stats,
                    serve,
                    wall_ns,
                });
            });
        }
    });
    for (spec, slot) in cold.iter().zip(slots) {
        let run = slot
            .into_inner()
            .expect("sweep slot lock")
            .expect("worker pool completed every cell");
        if let Some(d) = disk.as_deref_mut() {
            d.insert(spec.key(), run.clone());
        }
        runs.insert(spec.key(), run);
    }
    if let Some(d) = disk {
        if !cold.is_empty() {
            if let Err(e) = d.save() {
                eprintln!("warning: could not persist sweep cache: {e}");
            }
        }
    }
    RunCache {
        runs,
        jobs,
        total_wall_ns: t0.elapsed().as_nanos() as u64,
        warm_cells,
        simulated_cells: cold.len(),
    }
}

/// The `BENCH_wallclock.json` document for a finished sweep, including
/// host-side self-profiling: peak RSS, cumulative allocation counters
/// (live only when the binary installs [`crate::hostprof::CountingAlloc`])
/// and per-stage wall-clock/allocation deltas. Wall-clock and memory are
/// machine-dependent by nature: this artifact is reported and uploaded,
/// never byte-compared by the regression gate (which `metrics_diff`
/// enforces by skipping it).
pub fn wallclock_document(cache: &RunCache, stages: &[crate::hostprof::StageStats]) -> Value {
    let cells_ns = cache.cells_wall_ns();
    let (allocs, alloc_bytes) = crate::hostprof::alloc_totals();
    let peak_rss = crate::hostprof::peak_rss_bytes().map_or(Value::Null, num);
    let speedup = if cache.total_wall_ns > 0 {
        Value::Num(cells_ns as f64 / cache.total_wall_ns as f64)
    } else {
        Value::Null
    };
    let handoff = handoff_totals();
    let win = vopp_sim::window_totals();
    obj(vec![
        ("schema", str(WALLCLOCK_SCHEMA)),
        ("jobs", num(cache.jobs as u64)),
        // Host-side resource accounting (never gated): the process's
        // high-water RSS (`null` off Linux) and cumulative allocation
        // counters, zero unless the binary installed the counting
        // allocator.
        (
            "host",
            obj(vec![
                ("peak_rss_bytes", peak_rss),
                ("allocs", num(allocs)),
                ("alloc_bytes", num(alloc_bytes)),
            ]),
        ),
        // Per-stage cost of the whole table run (enumerate cells, simulate
        // the sweep, render tables/artifacts). Empty when the caller did
        // not time stages.
        (
            "stages",
            Value::Arr(
                stages
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("name", str(s.name)),
                            ("wall_ns", num(s.wall_ns)),
                            ("wall_ms", Value::Num(s.wall_ns as f64 / 1e6)),
                            ("allocs", num(s.allocs)),
                            ("alloc_bytes", num(s.alloc_bytes)),
                        ])
                    })
                    .collect(),
            ),
        ),
        // Process-wide kernel scheduling counters: how many same-instant
        // wake-ups the direct-handoff path served without a controller
        // round-trip. Machine/schedule-independent for a given sweep, but
        // reported here (not in the gated artifacts) alongside wall-clock.
        (
            "handoff",
            obj(vec![
                ("direct", num(handoff.direct)),
                ("via_controller", num(handoff.via_controller)),
                (
                    "direct_share",
                    if handoff.total() > 0 {
                        Value::Num(handoff.direct as f64 / handoff.total() as f64)
                    } else {
                        Value::Null
                    },
                ),
            ]),
        ),
        // Intra-run parallel kernel counters (process-wide totals): the
        // configured worker width, how many conservative-lookahead windows
        // ran (inline = single-group on the coordinator, parallel =
        // multi-group on the worker pool, serial = multi-group executed
        // serially by the adaptive mode below its density threshold), the
        // events they drained, wall time spent executing windows vs.
        // committing their logs (split into order-sensitive routing and
        // bulk record appends), the doorbell dispatch economics (spin-hit
        // vs park-wake), the events-per-window density histogram
        // (bucket i counts windows with 2^i..2^(i+1) events; the last is
        // open-ended), and runs that requested workers but fell back to
        // the sequential kernel. Virtual-time artifacts are byte-identical
        // at any width; only these wall-clock numbers move.
        (
            "sim",
            obj(vec![
                (
                    "sim_workers",
                    // The adaptive sentinel is not a meaningful number;
                    // report it as the string the CLI accepts.
                    if vopp_sim::sim_workers_default() == vopp_sim::SIM_WORKERS_AUTO {
                        str("auto")
                    } else {
                        num(vopp_sim::sim_workers_default() as u64)
                    },
                ),
                ("windows", num(win.windows)),
                ("inline_windows", num(win.inline_windows)),
                ("parallel_windows", num(win.parallel_windows)),
                ("serial_windows", num(win.serial_windows)),
                (
                    "inline_share",
                    if win.windows > 0 {
                        Value::Num(win.inline_windows as f64 / win.windows as f64)
                    } else {
                        Value::Null
                    },
                ),
                ("window_events", num(win.window_events)),
                (
                    "density_histogram",
                    Value::Arr(win.density.iter().map(|&c| num(c)).collect()),
                ),
                ("exec_ns", num(win.exec_ns)),
                ("merge_ns", num(win.merge_ns)),
                ("commit_route_ns", num(win.commit_route_ns)),
                ("commit_append_ns", num(win.commit_append_ns)),
                ("spin_hits", num(win.spin_hits)),
                ("park_wakes", num(win.park_wakes)),
                ("fallback_runs", num(win.fallback_runs)),
            ]),
        ),
        // Persistent-cache effect on this sweep: cells replayed from disk
        // vs. actually simulated.
        (
            "cache",
            obj(vec![
                ("warm_cells", num(cache.warm_cells as u64)),
                ("simulated_cells", num(cache.simulated_cells as u64)),
            ]),
        ),
        (
            "cells",
            Value::Arr(
                cache
                    .runs
                    .iter()
                    .map(|(key, run)| {
                        obj(vec![
                            ("cell", str(key)),
                            ("wall_ns", num(run.wall_ns)),
                            ("wall_ms", Value::Num(run.wall_ns as f64 / 1e6)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "total",
            obj(vec![
                ("wall_ns", num(cache.total_wall_ns)),
                ("wall_secs", Value::Num(cache.total_wall_ns as f64 / 1e9)),
                // Estimated sequential sweep time: the sum of per-cell
                // wall-clock (what `--jobs 1` would spend simulating).
                ("cells_wall_ns", num(cells_ns)),
                ("speedup_vs_jobs1", speedup),
            ]),
        ),
    ])
}

/// Write `BENCH_wallclock.json` into `dir` (created if needed).
pub fn write_wallclock(
    cache: &RunCache,
    stages: &[crate::hostprof::StageStats],
    dir: &Path,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("BENCH_wallclock.json"),
        wallclock_document(cache, stages).to_json_pretty(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_match_trace_stems() {
        let spec = cell(CellApp::Nn, CellVariant::Mpi, Protocol::VcSd, 4);
        assert_eq!(spec.key(), "nn_mpi_vc_sd_4p");
        let spec = cell(CellApp::Is, CellVariant::Traditional, Protocol::LrcD, 16);
        assert_eq!(spec.key(), "is_trad_lrc_d_16p");
        let spec = serve_cell(
            CellVariant::Vopp,
            Protocol::VcSd,
            4,
            ServeLoad::Base,
            ServeFault::Crash,
        );
        assert_eq!(spec.key(), "serve_vopp_base_crash_vc_sd_4p");
        let spec = serve_cell(
            CellVariant::Traditional,
            Protocol::ScC,
            16,
            ServeLoad::High,
            ServeFault::Clean,
        );
        assert_eq!(spec.key(), "serve_trad_hi_clean_scc_d_16p");
        // Netgen cells carry the generation after the variant; the default
        // (None) keys are untouched, so pre-existing caches and artifacts
        // keep their addressing.
        let spec = netgen_cell(
            CellApp::Is,
            CellVariant::Vopp,
            NetGen::Rdma,
            Protocol::VcRdma,
            16,
        );
        assert_eq!(spec.key(), "is_vopp_rdma_vc_rdma_16p");
        let spec = netgen_cell(
            CellApp::Sor,
            CellVariant::Traditional,
            NetGen::Eth100m,
            Protocol::LrcD,
            4,
        );
        assert_eq!(spec.key(), "sor_trad_eth100m_lrc_d_4p");
    }

    #[test]
    fn dedup_keeps_first_occurrence_order() {
        let a = cell(CellApp::Is, CellVariant::Traditional, Protocol::LrcD, 4);
        let b = cell(CellApp::Is, CellVariant::Vopp, Protocol::VcSd, 4);
        let out = dedup_cells(&[a, b, a, b, a]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].key(), a.key());
        assert_eq!(out[1].key(), b.key());
    }

    #[test]
    fn quick_table_enumeration_covers_every_run() {
        // table1 at quick scale: 3 stats cells.
        let scale = Scale::quick();
        assert_eq!(cells_for("table1", &scale).len(), 3);
        // table3: 1p base + 3 rows x 2 speedup counts.
        assert_eq!(cells_for("table3", &scale).len(), 7);
        // table9: 1p base + 3 rows x 2 speedup counts.
        assert_eq!(cells_for("table9", &scale).len(), 7);
        assert_eq!(cells_for("ext", &scale).len(), 8);
        // serve: 5 clean protocols + 2 hi-load + 2x2 loss/slow + 2 crash.
        let serve = cells_for("serve", &scale);
        assert_eq!(serve.len(), 13);
        assert_eq!(dedup_cells(&serve).len(), 13, "serve cells are distinct");
        assert!(serve.iter().all(|c| c.serve.is_some()));
        // scaling: 3 apps x 2 node counts x 3 protocols, all distinct.
        let scaling = cells_for("scaling", &scale);
        assert_eq!(scaling.len(), 18);
        assert_eq!(dedup_cells(&scaling).len(), 18);
        assert!(scaling.iter().all(|c| c.np >= 64));
        // netgen: 4 apps x 3 generations x 3 protocols, all distinct, every
        // cell tagged with its generation (no aliasing the paper cells).
        let netgen = cells_for("netgen", &scale);
        assert_eq!(netgen.len(), 36);
        assert_eq!(dedup_cells(&netgen).len(), 36);
        assert!(netgen.iter().all(|c| c.netgen.is_some()));
    }

    /// The sweep cache can never serve a cell across network generations:
    /// the generation is part of the cell key, and the scale-level override
    /// is part of the context hash.
    #[test]
    fn cache_addressing_covers_the_network_dimension() {
        // Same (app, variant, proto, np) under different generations are
        // different cache keys.
        let keys: std::collections::BTreeSet<String> = NETGEN_GENS
            .iter()
            .map(|&g| netgen_cell(CellApp::Is, CellVariant::Vopp, g, Protocol::VcSd, 4).key())
            .collect();
        assert_eq!(keys.len(), NETGEN_GENS.len());
        // A scale-wide net override flips the context hash, so a cache
        // populated under one network can never warm another.
        let base = Scale::quick();
        let mut overridden = Scale::quick();
        overridden.net_override = Some(NetGen::Rdma.config());
        assert_ne!(context_hash(&base), context_hash(&overridden));
        // eth100m is bit-for-bit the default config, so its override hashes
        // like no override at all — the byte-identity invariant in hash form.
        let mut eth = Scale::quick();
        eth.net_override = Some(NetGen::Eth100m.config());
        assert_eq!(context_hash(&base), context_hash(&eth));
    }

    #[test]
    fn sweep_runs_cells_and_times_them() {
        let scale = Scale::quick();
        let specs = dedup_cells(&cells_for("table1", &scale));
        let cache = run_sweep(&scale, &specs, 2);
        assert_eq!(cache.len(), 3);
        assert!(cache.total_wall_ns > 0);
        for spec in &specs {
            let run = cache.get(&spec.key()).expect("cell precomputed");
            assert!(run.stats.time.nanos() > 0);
        }
        let stages = [crate::hostprof::StageStats {
            name: "simulate",
            wall_ns: 123,
            allocs: 0,
            alloc_bytes: 0,
        }];
        let doc = wallclock_document(&cache, &stages);
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(WALLCLOCK_SCHEMA)
        );
        assert_eq!(
            doc.get("cells").and_then(Value::as_arr).map(<[_]>::len),
            Some(3)
        );
        // Host accounting is always present; counters may be zero (no
        // counting allocator in tests), RSS may be null off Linux.
        let host = doc.get("host").expect("host section");
        assert!(host.get("allocs").and_then(Value::as_u64).is_some());
        assert!(host.get("alloc_bytes").and_then(Value::as_u64).is_some());
        assert!(host.get("peak_rss_bytes").is_some());
        let staged = doc.get("stages").and_then(Value::as_arr).expect("stages");
        assert_eq!(staged.len(), 1);
        assert_eq!(
            staged[0].get("name").and_then(Value::as_str),
            Some("simulate")
        );
        assert_eq!(staged[0].get("wall_ns").and_then(Value::as_u64), Some(123));
        // No disk cache: every cell simulated.
        let cache_doc = doc.get("cache").expect("cache section");
        assert_eq!(cache_doc.get("warm_cells").and_then(Value::as_u64), Some(0));
        assert_eq!(
            cache_doc.get("simulated_cells").and_then(Value::as_u64),
            Some(3)
        );
        assert!(doc.get("handoff").is_some());
        // `/4`: the parallel-kernel section is always present, with the
        // configured width, all window/stage counters, the dispatch
        // economics, and the density histogram.
        let sim = doc.get("sim").expect("sim section");
        assert!(sim.get("sim_workers").and_then(Value::as_u64).is_some());
        for key in [
            "windows",
            "inline_windows",
            "parallel_windows",
            "serial_windows",
            "window_events",
            "exec_ns",
            "merge_ns",
            "commit_route_ns",
            "commit_append_ns",
            "spin_hits",
            "park_wakes",
            "fallback_runs",
        ] {
            assert!(sim.get(key).and_then(Value::as_u64).is_some(), "sim.{key}");
        }
        assert!(sim.get("inline_share").is_some());
        let density = sim
            .get("density_histogram")
            .and_then(Value::as_arr)
            .expect("density histogram");
        assert_eq!(density.len(), vopp_sim::DENSITY_BUCKETS);
    }

    /// Fresh scratch directory under the target-adjacent temp dir; unique
    /// per test name so parallel tests never collide.
    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("vopp-sweep-cache-tests")
            .join(format!("{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn sample_run(seed: u64) -> CachedRun {
        let mut stats = RunStats {
            nprocs: 4,
            ..RunStats::default()
        };
        stats.time = vopp_sim::SimTime(1_000 + seed);
        stats.nodes.barriers = seed;
        stats.net.msgs = 10 * seed;
        CachedRun {
            stats,
            serve: None,
            wall_ns: 5_000 + seed,
        }
    }

    fn sample_serve_run(seed: u64) -> CachedRun {
        let mut run = sample_run(seed);
        let mut latency = vopp_metrics::Histogram::default();
        latency.record(1_000 + seed);
        latency.record(90_000_000);
        run.serve = Some(ServePayload {
            latency,
            checksum: 0xdead_beef ^ seed,
            get_digest: 0x5eed ^ seed,
            served: 400,
            recovered_pages: seed,
        });
        run
    }

    #[test]
    fn serve_payload_survives_the_disk_cache() {
        let dir = scratch("serve-payload");
        let mut cache = DiskCache::open_with_fingerprint(&dir, 0xC0, 0xF0);
        cache.insert("serve_vopp_base_crash_vc_sd_4p".into(), sample_serve_run(3));
        cache.save().expect("save cache");

        let warm = DiskCache::open_with_fingerprint(&dir, 0xC0, 0xF0);
        let run = warm.get("serve_vopp_base_crash_vc_sd_4p").expect("warm");
        let original = sample_serve_run(3);
        assert_eq!(run.serve, original.serve);
        let p = run.serve.as_ref().unwrap();
        assert_eq!(p.latency.count(), 2);
        assert_eq!(p.latency.max_ns(), 90_000_000);

        // A corrupted serve payload turns the entry into a miss instead of
        // replaying a half-decoded cell.
        let text = std::fs::read_to_string(dir.join(CACHE_FILE)).expect("read cache");
        std::fs::write(
            dir.join(CACHE_FILE),
            text.replace("recovered_pages", "recovered"),
        )
        .expect("corrupt");
        assert!(DiskCache::open_with_fingerprint(&dir, 0xC0, 0xF0).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_round_trips_and_invalidates() {
        let dir = scratch("round-trip");
        let mut cache = DiskCache::open_with_fingerprint(&dir, 0xC0, 0xF0);
        assert!(cache.is_empty());
        cache.insert("is_vopp_vc_d_4p".into(), sample_run(7));
        cache.save().expect("save cache");
        assert!(dir.join(CACHE_FILE).exists());

        // Same fingerprint + context: the cell is warm and byte-identical.
        let warm = DiskCache::open_with_fingerprint(&dir, 0xC0, 0xF0);
        assert_eq!(warm.len(), 1);
        let run = warm.get("is_vopp_vc_d_4p").expect("warm cell");
        assert_eq!(run.wall_ns, 5_007);
        assert_eq!(
            persist::stats_to_value(&run.stats).to_json(),
            persist::stats_to_value(&sample_run(7).stats).to_json()
        );

        // Different build fingerprint or context: wholesale invalidation.
        assert!(DiskCache::open_with_fingerprint(&dir, 0xC0, 0xF1).is_empty());
        assert!(DiskCache::open_with_fingerprint(&dir, 0xC1, 0xF0).is_empty());
        // Corrupt file: treated as empty, not an error.
        std::fs::write(dir.join(CACHE_FILE), "{ torn").expect("corrupt");
        assert!(DiskCache::open_with_fingerprint(&dir, 0xC0, 0xF0).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_sweep_replays_without_simulating() {
        let dir = scratch("warm-sweep");
        let scale = Scale::quick();
        let ctx = context_hash(&scale);
        let specs = dedup_cells(&cells_for("table1", &scale));

        let mut disk = DiskCache::open(&dir, ctx);
        let cold = run_sweep_cached(&scale, &specs, 2, Some(&mut disk));
        assert_eq!((cold.warm_cells, cold.simulated_cells), (0, 3));

        let mut disk = DiskCache::open(&dir, ctx);
        assert_eq!(disk.len(), 3);
        let warm = run_sweep_cached(&scale, &specs, 2, Some(&mut disk));
        assert_eq!((warm.warm_cells, warm.simulated_cells), (3, 0));
        for spec in &specs {
            let a = cold.get(&spec.key()).expect("cold cell");
            let b = warm.get(&spec.key()).expect("warm cell");
            assert_eq!(
                persist::stats_to_value(&a.stats).to_json(),
                persist::stats_to_value(&b.stats).to_json(),
                "replayed stats must be byte-identical for {}",
                spec.key()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression test: a warm cache used to make `--trace` (and would make
    /// `--critpath`) silently no-ops — zero cells simulated means zero
    /// trace files and zero critical paths. Both flags must force every
    /// cell cold.
    #[test]
    fn traced_or_profiled_sweeps_resimulate_warm_cells() {
        let dir = scratch("trace-vs-cache");
        let scale = Scale::quick();
        let ctx = context_hash(&scale);
        let specs = dedup_cells(&cells_for("table1", &scale));
        let mut disk = DiskCache::open(&dir, ctx);
        run_sweep_cached(&scale, &specs, 2, Some(&mut disk));

        // A traced sweep over the now-warm cache still simulates every
        // cell and writes its trace artifacts.
        let trace_dir = dir.join("traces");
        let mut traced_scale = scale.clone();
        traced_scale.trace_dir = Some(trace_dir.clone());
        let mut disk = DiskCache::open(&dir, ctx);
        assert_eq!(disk.len(), 3, "cache is warm");
        let traced = run_sweep_cached(&traced_scale, &specs, 2, Some(&mut disk));
        assert_eq!((traced.warm_cells, traced.simulated_cells), (0, 3));
        for spec in &specs {
            let f = trace_dir.join(format!("{}.perfetto.json", spec.key()));
            assert!(f.exists(), "trace missing for {}", spec.key());
        }

        // Same for a profiled sweep: a warm replay would carry no path.
        let mut prof_scale = scale.clone();
        prof_scale.critpath = true;
        let mut disk = DiskCache::open(&dir, ctx);
        let prof = run_sweep_cached(&prof_scale, &specs, 2, Some(&mut disk));
        assert_eq!((prof.warm_cells, prof.simulated_cells), (0, 3));
        for spec in &specs {
            let run = prof.get(&spec.key()).expect("profiled cell");
            assert!(run.stats.crit.is_some(), "{} lost its path", spec.key());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
