#![warn(missing_docs)]

//! # vopp-bench — the evaluation harness
//!
//! [`tables`] regenerates every table of the paper's §5 (see the `tables`
//! binary: `cargo run -p vopp-bench --release --bin tables -- all`, and
//! `--trace DIR` for per-run structured traces and conformance checks);
//! the benches under `benches/` measure the substrates (diffing, network
//! model, protocol operations) and the ablations called out in DESIGN.md.

pub mod harness;
pub mod table;
pub mod tables;

pub use table::Table;
pub use tables::{all_tables, Scale};
