#![warn(missing_docs)]

//! # vopp-bench — the evaluation harness
//!
//! [`tables`] regenerates every table of the paper's §5 (see the `tables`
//! binary: `cargo run -p vopp-bench --release --bin tables -- all`, with
//! `--trace DIR` for per-run structured traces and conformance checks and
//! `--metrics DIR` for machine-readable `BENCH_<app>.json` artifacts);
//! [`metrics`] implements those artifacts and the perf-regression gate
//! (`metrics_diff` binary) comparing them against committed baselines;
//! the benches under `benches/` measure the substrates (diffing, network
//! model, protocol operations) and the ablations called out in DESIGN.md.

pub mod harness;
pub mod hostprof;
pub mod metrics;
pub mod persist;
pub mod racecheck;
pub mod sweep;
pub mod table;
pub mod tables;

pub use hostprof::{alloc_totals, peak_rss_bytes, CountingAlloc, StageStats, StageTimer};
pub use metrics::MetricsSink;
pub use racecheck::{run_racecheck, RacecheckOutcome};
pub use sweep::{
    cells_for, context_hash, dedup_cells, run_sweep, run_sweep_cached, CellSpec, DiskCache,
    RunCache, ServeCell, ServeFault, ServeLoad, ServePayload,
};
pub use table::Table;
pub use tables::{all_tables, Scale};
