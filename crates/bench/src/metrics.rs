//! Machine-readable benchmark artifacts and the perf-regression gate.
//!
//! When table generation runs with a [`MetricsSink`] attached (the `tables`
//! binary's `--metrics DIR` flag), every verified cluster run is recorded as
//! a *cell* and the sink writes one `BENCH_<app>.json` per application.
//! Each cell carries the exact integers the gate compares (virtual
//! `time_ns`, message/byte totals, diff-request and retransmission counts)
//! plus derived values for humans (seconds, MB, speedup, the phase
//! breakdown, and latency summaries). The simulator is fully deterministic,
//! so committed baselines compare exactly across machines.
//!
//! [`compare`]/[`compare_dirs`] implement the gate: a candidate fails on a
//! missing cell, on more than [`TIME_DRIFT_PCT`] percent of virtual-time
//! drift, or on *any* drift of the exact counters.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Mutex;

use vopp_core::RunStats;
use vopp_metrics::Histogram;
use vopp_trace::json::{num, obj, str, Value};

/// Schema tag written into every artifact, bumped on breaking changes.
pub const SCHEMA: &str = "vopp-bench-metrics/1";

/// Schema tag of the serving artifact (`BENCH_serve.json`), whose cells
/// additionally carry per-request latency percentiles and the convergence
/// evidence of the sharded store.
pub const SERVE_SCHEMA: &str = "vopp-bench-serve/1";

/// Schema tag of the critical-path artifact (`BENCH_critpath.json`): one
/// cell per profiled run with the path's blame decomposition and the
/// what-if speedup ceilings. Deterministic and byte-stable across `--jobs`
/// values; gated by its own baselines (`baselines-critpath/`).
pub const CRITPATH_SCHEMA: &str = "vopp-bench-critpath/1";

/// Schema tag of the network-generation artifact (`BENCH_netgen.json`):
/// the `tables netgen` family, whose cells carry the generation in the
/// variant label (`is_vopp_rdma`). Structurally identical to [`SCHEMA`]
/// cells but tagged separately so the baseline's sweep dimensions are
/// explicit; gated exactly like every other artifact.
pub const NETGEN_SCHEMA: &str = "vopp-bench-netgen/1";

/// Maximum tolerated relative drift of a cell's `time_ns`, in percent.
pub const TIME_DRIFT_PCT: f64 = 2.0;

/// Counters that must not drift at all between baseline and candidate.
const EXACT_KEYS: [&str; 5] = ["msgs", "bytes", "barriers", "diff_requests", "rexmits"];

/// One recorded table cell: a verified cluster run and where it came from.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Table that produced the run (`table1` .. `table9`, `ext`).
    pub table: String,
    /// Application (`is`, `gauss`, `sor`, `nn`).
    pub app: String,
    /// Program variant (`trad`, `vopp`, `vopp_lb`, `mpi`).
    pub variant: String,
    /// Protocol label, lowercased (`lrc_d`, `vc_sd`, ...).
    pub protocol: String,
    /// Processor count.
    pub nprocs: usize,
    /// The run's statistics.
    pub stats: RunStats,
    /// Serving-workload extras (`BENCH_serve.json` cells only).
    pub serve: Option<ServeCellMetrics>,
}

/// The serving-specific fields of a recorded cell.
#[derive(Debug, Clone)]
pub struct ServeCellMetrics {
    /// Per-request service latency, merged across all serving nodes.
    pub latency: Histogram,
    /// Requests served (the whole schedule, exactly once).
    pub served: u64,
    /// Final-store checksum, equal to the sequential reference.
    pub checksum: u64,
    /// Pages shed by crash windows and rebuilt from the home nodes.
    pub recovered_pages: u64,
}

fn cell_key(table: &str, variant: &str, protocol: &str, nprocs: usize) -> String {
    format!("{table}/{variant}/{protocol}/{nprocs}p")
}

/// Collects cells across a table-generation run and writes the
/// `BENCH_<app>.json` artifacts. Shared behind `Arc` by [`crate::Scale`].
#[derive(Debug, Default)]
pub struct MetricsSink {
    cells: Mutex<Vec<Cell>>,
    crit_cells: Mutex<Vec<CritCell>>,
    current_table: Mutex<String>,
}

/// One critical-path cell: the blame decomposition of a profiled run.
#[derive(Debug, Clone)]
struct CritCell {
    table: String,
    app: String,
    variant: String,
    protocol: String,
    nprocs: usize,
    crit: std::sync::Arc<vopp_metrics::CritPath>,
}

impl MetricsSink {
    /// A fresh, empty sink.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }

    /// Label the table whose runs are recorded next.
    pub fn begin_table(&self, name: &str) {
        name.clone_into(&mut self.current_table.lock().expect("sink lock"));
    }

    /// Record one verified run under the current table label.
    pub fn record(
        &self,
        app: &str,
        variant: &str,
        protocol: &str,
        nprocs: usize,
        stats: &RunStats,
    ) {
        let table = self.current_table.lock().expect("sink lock").clone();
        self.record_crit(&table, app, variant, protocol, nprocs, stats);
        self.cells.lock().expect("sink lock").push(Cell {
            table,
            app: app.to_string(),
            variant: variant.to_string(),
            protocol: protocol.to_string(),
            nprocs,
            stats: stats.clone(),
            serve: None,
        });
    }

    /// When the run carried a critical path, also record a critpath cell
    /// (destined for `BENCH_critpath.json`). Zero cost when unprofiled.
    fn record_crit(
        &self,
        table: &str,
        app: &str,
        variant: &str,
        protocol: &str,
        nprocs: usize,
        stats: &RunStats,
    ) {
        if let Some(crit) = &stats.crit {
            self.crit_cells.lock().expect("sink lock").push(CritCell {
                table: table.to_string(),
                app: app.to_string(),
                variant: variant.to_string(),
                protocol: protocol.to_string(),
                nprocs,
                crit: crit.clone(),
            });
        }
    }

    /// Record one verified serving run under the current table label. The
    /// cell lands in `BENCH_serve.json` (schema [`SERVE_SCHEMA`]) with the
    /// request-latency percentiles and convergence evidence attached; its
    /// exact counters are gated like every other cell's.
    #[allow(clippy::too_many_arguments)]
    pub fn record_serve(
        &self,
        variant: &str,
        protocol: &str,
        nprocs: usize,
        stats: &RunStats,
        latency: &Histogram,
        served: u64,
        checksum: u64,
        recovered_pages: u64,
    ) {
        let table = self.current_table.lock().expect("sink lock").clone();
        self.record_crit(&table, "serve", variant, protocol, nprocs, stats);
        self.cells.lock().expect("sink lock").push(Cell {
            table,
            app: "serve".to_string(),
            variant: variant.to_string(),
            protocol: protocol.to_string(),
            nprocs,
            stats: stats.clone(),
            serve: Some(ServeCellMetrics {
                latency: latency.clone(),
                served,
                checksum,
                recovered_pages,
            }),
        });
    }

    /// Number of cells recorded so far.
    pub fn len(&self) -> usize {
        self.cells.lock().expect("sink lock").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Group the recorded cells into one JSON document per application,
    /// plus a `critpath` document when any run was profiled.
    pub fn to_documents(&self) -> BTreeMap<String, Value> {
        let cells = self.cells.lock().expect("sink lock");
        let mut by_app: BTreeMap<String, Vec<&Cell>> = BTreeMap::new();
        for c in cells.iter() {
            by_app.entry(c.app.clone()).or_default().push(c);
        }
        let mut docs: BTreeMap<String, Value> = {
            let crit = self.crit_cells.lock().expect("sink lock");
            if crit.is_empty() {
                BTreeMap::new()
            } else {
                let doc = obj(vec![
                    ("schema", str(CRITPATH_SCHEMA)),
                    (
                        "cells",
                        Value::Arr(crit.iter().map(crit_cell_value).collect()),
                    ),
                ]);
                [("critpath".to_string(), doc)].into_iter().collect()
            }
        };
        docs.extend(by_app.into_iter().map(|(app, cells)| {
            // Speedup base: the application's single-processor run (the
            // speedup tables' sequential baseline). Cells recorded
            // before any 1p run still resolve — the base is looked up
            // across the whole app, not positionally.
            let base_ns = cells
                .iter()
                .find(|c| c.nprocs == 1)
                .map(|c| c.stats.time.nanos());
            let doc = obj(vec![
                (
                    "schema",
                    str(match app.as_str() {
                        "serve" => SERVE_SCHEMA,
                        "netgen" => NETGEN_SCHEMA,
                        _ => SCHEMA,
                    }),
                ),
                ("app", str(&app)),
                (
                    "cells",
                    Value::Arr(cells.iter().map(|c| cell_value(c, base_ns)).collect()),
                ),
            ]);
            (app, doc)
        }));
        docs
    }

    /// Write `BENCH_<app>.json` for every recorded application into `dir`
    /// (created if needed). Returns the written file names.
    pub fn write_all(&self, dir: &Path) -> std::io::Result<Vec<String>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for (app, doc) in self.to_documents() {
            let name = format!("BENCH_{app}.json");
            std::fs::write(dir.join(&name), doc.to_json_pretty())?;
            written.push(name);
        }
        Ok(written)
    }
}

fn cell_value(c: &Cell, base_ns: Option<u64>) -> Value {
    let s = &c.stats;
    let speedup = match base_ns {
        Some(base) if s.time.nanos() > 0 => Value::Num(base as f64 / s.time.nanos() as f64),
        _ => Value::Null,
    };
    let mut fields = vec![
        ("table", str(&c.table)),
        ("app", str(&c.app)),
        ("variant", str(&c.variant)),
        ("protocol", str(&c.protocol)),
        ("nprocs", num(c.nprocs as u64)),
        // Exact integers: the gate's comparison surface.
        ("time_ns", num(s.time.nanos())),
        ("msgs", num(s.num_msgs())),
        ("bytes", num(s.net.bytes)),
        ("barriers", num(s.nodes.barriers)),
        ("acquires", num(s.acquires())),
        ("diff_requests", num(s.diff_requests())),
        ("rexmits", num(s.rexmits())),
        // Derived values for humans.
        ("time_secs", Value::Num(s.time_secs())),
        ("data_mb", Value::Num(s.data_mbytes())),
        ("speedup", speedup),
        ("breakdown", s.breakdown().to_value()),
        (
            "latency",
            obj(vec![
                ("acquire_rtt", s.acquire_latency().to_value()),
                ("barrier_rtt", s.barrier_latency().to_value()),
                ("diff_rtt", s.diff_latency().to_value()),
                ("rpc_rtt", s.nodes.metrics.rpc_rtt.summary().to_value()),
            ]),
        ),
    ];
    if let Some(sm) = &c.serve {
        // Serving extras: the open-loop request-latency summary (p50/p95/
        // p99/p99.9/max) plus the store's convergence evidence.
        fields.push(("request_latency", sm.latency.to_value()));
        fields.push(("request_latency_mean_ns", Value::Num(sm.latency.mean_ns())));
        fields.push(("served", num(sm.served)));
        fields.push(("checksum", str(&format!("{:016x}", sm.checksum))));
        fields.push(("recovered_pages", num(sm.recovered_pages)));
    }
    obj(fields)
}

fn crit_cell_value(c: &CritCell) -> Value {
    let cp = c.crit.as_ref();
    let whatif = |removed_ns: u64| {
        obj(vec![
            ("removed_ns", num(removed_ns)),
            ("speedup_ceiling", Value::Num(cp.ceiling(removed_ns))),
        ])
    };
    obj(vec![
        ("table", str(&c.table)),
        ("app", str(&c.app)),
        ("variant", str(&c.variant)),
        ("protocol", str(&c.protocol)),
        ("nprocs", num(c.nprocs as u64)),
        // The gate's comparison surface: segment count exactly, the ns
        // decomposition within the makespan drift budget.
        ("cp_segments", num(cp.segs.len() as u64)),
        ("makespan_ns", num(cp.makespan_ns)),
        ("end_node", num(cp.end_node as u64)),
        ("cpu_ns", num(cp.cpu_ns())),
        ("cpu_app_ns", num(cp.cpu_app_ns())),
        ("cpu_overhead_ns", num(cp.cpu_overhead_ns())),
        ("diff_cpu_ns", num(cp.diff_cpu_ns())),
        ("idle_ns", num(cp.cpu_op_ns(vopp_metrics::OpKind::Idle))),
        ("net_ns", num(cp.net_ns())),
        ("timeout_ns", num(cp.timeout_ns())),
        (
            "barrier_wait_ns",
            num(cp.wait_ns(vopp_metrics::OpKind::Barrier)),
        ),
        (
            "acquire_wait_ns",
            num(cp.wait_ns(vopp_metrics::OpKind::Acquire)),
        ),
        ("data_wait_ns", num(cp.wait_ns(vopp_metrics::OpKind::Data))),
        (
            "flush_wait_ns",
            num(cp.wait_ns(vopp_metrics::OpKind::Flush)),
        ),
        (
            "whatif",
            obj(vec![
                ("net_free", whatif(cp.whatif_net_free_ns())),
                ("diff_free", whatif(cp.whatif_diff_free_ns())),
                ("barrier_free", whatif(cp.whatif_barrier_free_ns())),
            ]),
        ),
    ])
}

/// Compare one candidate document against its baseline; returns one message
/// per violation (empty = pass). Candidate cells absent from the baseline
/// are allowed (new tables extend coverage without invalidating old
/// baselines); baseline cells absent from the candidate fail.
///
/// `BENCH_critpath.json` documents (schema [`CRITPATH_SCHEMA`]) use their
/// own rules: exact `cp_segments`, and every `*_ns` field within
/// [`TIME_DRIFT_PCT`] percent of the baseline *makespan* (so zero-valued
/// components have a well-defined budget too).
pub fn compare(app: &str, baseline: &Value, candidate: &Value) -> Vec<String> {
    if baseline.get("schema").and_then(Value::as_str) == Some(CRITPATH_SCHEMA) {
        return compare_critpath(app, baseline, candidate);
    }
    let mut errors = Vec::new();
    let cells_of = |v: &Value| -> BTreeMap<String, Value> {
        v.get("cells")
            .and_then(Value::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|c| {
                let key = cell_key(
                    c.get("table")?.as_str()?,
                    c.get("variant")?.as_str()?,
                    c.get("protocol")?.as_str()?,
                    c.get("nprocs")?.as_usize()?,
                );
                Some((key, c.clone()))
            })
            .collect()
    };
    let base = cells_of(baseline);
    let cand = cells_of(candidate);
    if base.is_empty() {
        errors.push(format!("{app}: baseline has no readable cells"));
    }
    for (key, b) in &base {
        let Some(c) = cand.get(key) else {
            errors.push(format!("{app}/{key}: cell missing from candidate"));
            continue;
        };
        let int_of = |v: &Value, field: &str| v.get(field).and_then(Value::as_u64);
        match (int_of(b, "time_ns"), int_of(c, "time_ns")) {
            (Some(bt), Some(ct)) if bt > 0 => {
                let drift = (ct as f64 - bt as f64).abs() * 100.0 / bt as f64;
                if drift > TIME_DRIFT_PCT {
                    errors.push(format!(
                        "{app}/{key}: time_ns drifted {drift:.2}% \
                         (baseline {bt}, candidate {ct}, limit {TIME_DRIFT_PCT}%)"
                    ));
                }
            }
            _ => errors.push(format!("{app}/{key}: unreadable time_ns")),
        }
        for field in EXACT_KEYS {
            match (int_of(b, field), int_of(c, field)) {
                (Some(bv), Some(cv)) if bv == cv => {}
                (Some(bv), Some(cv)) => errors.push(format!(
                    "{app}/{key}: {field} changed from {bv} to {cv} (must match exactly)"
                )),
                _ => errors.push(format!("{app}/{key}: unreadable {field}")),
            }
        }
    }
    errors
}

/// The `*_ns` decomposition fields of a critpath cell. Each is allowed to
/// drift by [`TIME_DRIFT_PCT`] percent *of the baseline makespan* — an
/// absolute budget, so components that are zero in the baseline (say,
/// `timeout_ns` on a lossless run) still have a meaningful tolerance.
const CRITPATH_NS_KEYS: [&str; 12] = [
    "makespan_ns",
    "cpu_ns",
    "cpu_app_ns",
    "cpu_overhead_ns",
    "diff_cpu_ns",
    "idle_ns",
    "net_ns",
    "timeout_ns",
    "barrier_wait_ns",
    "acquire_wait_ns",
    "data_wait_ns",
    "flush_wait_ns",
];

fn compare_critpath(app: &str, baseline: &Value, candidate: &Value) -> Vec<String> {
    let mut errors = Vec::new();
    // Critpath cells span every application in one document, so the key
    // carries the cell's own `app` field (the document-level `app` is the
    // artifact name, "critpath").
    let cells_of = |v: &Value| -> BTreeMap<String, Value> {
        v.get("cells")
            .and_then(Value::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|c| {
                let key = format!(
                    "{}/{}",
                    c.get("app")?.as_str()?,
                    cell_key(
                        c.get("table")?.as_str()?,
                        c.get("variant")?.as_str()?,
                        c.get("protocol")?.as_str()?,
                        c.get("nprocs")?.as_usize()?,
                    )
                );
                Some((key, c.clone()))
            })
            .collect()
    };
    let base = cells_of(baseline);
    let cand = cells_of(candidate);
    if base.is_empty() {
        errors.push(format!("{app}: baseline has no readable cells"));
    }
    for (key, b) in &base {
        let Some(c) = cand.get(key) else {
            errors.push(format!("{app}/{key}: cell missing from candidate"));
            continue;
        };
        let int_of = |v: &Value, field: &str| v.get(field).and_then(Value::as_u64);
        let Some(makespan) = int_of(b, "makespan_ns") else {
            errors.push(format!("{app}/{key}: unreadable makespan_ns"));
            continue;
        };
        let budget_ns = makespan as f64 * TIME_DRIFT_PCT / 100.0;
        match (int_of(b, "cp_segments"), int_of(c, "cp_segments")) {
            (Some(bv), Some(cv)) if bv == cv => {}
            (Some(bv), Some(cv)) => errors.push(format!(
                "{app}/{key}: cp_segments changed from {bv} to {cv} (must match exactly)"
            )),
            _ => errors.push(format!("{app}/{key}: unreadable cp_segments")),
        }
        for field in CRITPATH_NS_KEYS {
            match (int_of(b, field), int_of(c, field)) {
                (Some(bv), Some(cv)) => {
                    let drift = (cv as f64 - bv as f64).abs();
                    if drift > budget_ns {
                        errors.push(format!(
                            "{app}/{key}: {field} drifted {drift:.0}ns \
                             (baseline {bv}, candidate {cv}, \
                             budget {budget_ns:.0}ns = {TIME_DRIFT_PCT}% of makespan)"
                        ));
                    }
                }
                _ => errors.push(format!("{app}/{key}: unreadable {field}")),
            }
        }
    }
    errors
}

/// Compare every `BENCH_*.json` in `baseline_dir` against the same-named
/// file in `candidate_dir`. Returns `(cells compared, violations)`.
pub fn compare_dirs(baseline_dir: &Path, candidate_dir: &Path) -> (usize, Vec<String>) {
    let mut errors = Vec::new();
    let mut compared = 0;
    let mut names: Vec<String> = match std::fs::read_dir(baseline_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            // BENCH_wallclock.json reports machine-dependent real time;
            // it is never byte-gated.
            .filter(|n| {
                n.starts_with("BENCH_") && n.ends_with(".json") && n != "BENCH_wallclock.json"
            })
            .collect(),
        Err(e) => {
            return (
                0,
                vec![format!(
                    "cannot read baseline dir {}: {e}",
                    baseline_dir.display()
                )],
            )
        }
    };
    names.sort();
    if names.is_empty() {
        errors.push(format!(
            "no BENCH_*.json baselines in {}",
            baseline_dir.display()
        ));
    }
    for name in names {
        let app = name
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json")
            .to_string();
        let read = |dir: &Path| -> Result<Value, String> {
            let path = dir.join(&name);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("{app}: cannot read {}: {e}", path.display()))?;
            Value::parse(&text).map_err(|e| format!("{app}: {} is not JSON: {e}", path.display()))
        };
        match (read(baseline_dir), read(candidate_dir)) {
            (Ok(b), Ok(c)) => {
                compared += b.get("cells").and_then(Value::as_arr).map_or(0, <[_]>::len);
                errors.extend(compare(&app, &b, &c));
            }
            (b, c) => errors.extend([b.err(), c.err()].into_iter().flatten()),
        }
    }
    (compared, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vopp_core::{NodeStats, RunStats};
    use vopp_sim::SimTime;

    fn stats(time_ns: u64, msgs: u64, diff_requests: u64) -> RunStats {
        RunStats {
            time: SimTime(time_ns),
            nprocs: 4,
            nodes: NodeStats {
                diff_requests,
                barriers: 8,
                ..Default::default()
            },
            net: vopp_simnet::NetStats {
                msgs,
                bytes: msgs * 100,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn sink_with(cells: &[(&str, &str, &str, &str, usize, RunStats)]) -> MetricsSink {
        let sink = MetricsSink::new();
        for (table, app, variant, proto, np, s) in cells {
            sink.begin_table(table);
            sink.record(app, variant, proto, *np, s);
        }
        sink
    }

    #[test]
    fn documents_group_by_app_and_compute_speedup() {
        let sink = sink_with(&[
            ("table3", "is", "trad", "lrc_d", 1, stats(4_000_000, 10, 0)),
            ("table3", "is", "trad", "lrc_d", 2, stats(2_000_000, 30, 5)),
            ("table6", "sor", "vopp", "vc_sd", 4, stats(1_000_000, 40, 0)),
        ]);
        let docs = sink.to_documents();
        assert_eq!(
            docs.keys().collect::<Vec<_>>(),
            ["is", "sor"],
            "one document per app"
        );
        let is = &docs["is"];
        assert_eq!(is.get("schema").unwrap().as_str(), Some(SCHEMA));
        let cells = is.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].get("speedup").unwrap().as_f64(), Some(1.0));
        assert_eq!(cells[1].get("speedup").unwrap().as_f64(), Some(2.0));
        // No 1p run for sor: speedup is null.
        let sor_cells = docs["sor"].get("cells").unwrap().as_arr().unwrap();
        assert_eq!(sor_cells[0].get("speedup"), Some(&Value::Null));
        assert_eq!(
            sor_cells[0].get("time_ns").unwrap().as_u64(),
            Some(1_000_000)
        );
    }

    #[test]
    fn netgen_cells_carry_their_own_schema_and_gate_exactly() {
        let sink = sink_with(&[
            (
                "netgen",
                "netgen",
                "is_vopp_rdma",
                "vc_rdma",
                4,
                stats(500_000, 20, 0),
            ),
            (
                "netgen",
                "netgen",
                "is_vopp_eth100m",
                "vc_sd",
                4,
                stats(4_000_000, 20, 0),
            ),
        ]);
        let doc = &sink.to_documents()["netgen"];
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(NETGEN_SCHEMA));
        assert_eq!(compare("netgen", doc, doc), Vec::<String>::new());
        // The generation lives in the variant label, so the same
        // app/protocol/np under another generation is a distinct gated cell.
        let drifted = sink_with(&[
            (
                "netgen",
                "netgen",
                "is_vopp_rdma",
                "vc_rdma",
                4,
                stats(500_000, 21, 0),
            ),
            (
                "netgen",
                "netgen",
                "is_vopp_eth100m",
                "vc_sd",
                4,
                stats(4_000_000, 20, 0),
            ),
        ]);
        // The fixture derives bytes from msgs, so one msgs bump drifts both
        // exact counters — and only in the rdma cell.
        let errs = compare("netgen", doc, &drifted.to_documents()["netgen"]);
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs.iter().all(|e| e.contains("is_vopp_rdma")), "{errs:?}");
    }

    #[test]
    fn identical_documents_pass_the_gate() {
        let sink = sink_with(&[("table1", "is", "trad", "lrc_d", 4, stats(1_000_000, 50, 3))]);
        let doc = &sink.to_documents()["is"];
        assert_eq!(compare("is", doc, doc), Vec::<String>::new());
    }

    #[test]
    fn gate_fails_on_time_drift_and_count_drift() {
        let base = sink_with(&[("table1", "is", "trad", "lrc_d", 4, stats(1_000_000, 50, 3))]);
        let base_doc = &base.to_documents()["is"];

        // 1% time drift passes; counts identical.
        let near = sink_with(&[("table1", "is", "trad", "lrc_d", 4, stats(1_010_000, 50, 3))]);
        assert!(compare("is", base_doc, &near.to_documents()["is"]).is_empty());

        // 5% time drift fails.
        let slow = sink_with(&[("table1", "is", "trad", "lrc_d", 4, stats(1_050_000, 50, 3))]);
        let errs = compare("is", base_doc, &slow.to_documents()["is"]);
        assert!(
            errs.iter().any(|e| e.contains("time_ns drifted")),
            "{errs:?}"
        );

        // Any message-count drift fails even with identical time.
        let chatty = sink_with(&[("table1", "is", "trad", "lrc_d", 4, stats(1_000_000, 51, 3))]);
        let errs = compare("is", base_doc, &chatty.to_documents()["is"]);
        assert!(errs.iter().any(|e| e.contains("msgs changed")), "{errs:?}");

        // A vanished cell fails.
        let empty = sink_with(&[("table9", "is", "mpi", "vc_sd", 2, stats(1_000_000, 5, 0))]);
        let errs = compare("is", base_doc, &empty.to_documents()["is"]);
        assert!(
            errs.iter().any(|e| e.contains("missing from candidate")),
            "{errs:?}"
        );
    }

    fn crit_stats(makespan_ns: u64, net_ns: u64) -> RunStats {
        use vopp_metrics::{CritPath, CritSeg, OpKind, SegCat};
        let cpu = makespan_ns - net_ns;
        let mut s = stats(makespan_ns, 10, 0);
        s.crit = Some(std::sync::Arc::new(CritPath {
            makespan_ns,
            end_node: 0,
            segs: vec![
                CritSeg {
                    node: 0,
                    lo_ns: 0,
                    hi_ns: cpu,
                    cat: SegCat::Cpu,
                    op: OpKind::App,
                    obj: 0,
                    app_ns: cpu,
                    overhead_ns: 0,
                    diff_ns: 0,
                },
                CritSeg {
                    node: 0,
                    lo_ns: cpu,
                    hi_ns: makespan_ns,
                    cat: SegCat::Net,
                    op: OpKind::Barrier,
                    obj: 0,
                    app_ns: 0,
                    overhead_ns: 0,
                    diff_ns: 0,
                },
            ],
        }));
        s
    }

    #[test]
    fn profiled_runs_produce_a_critpath_document() {
        let sink = MetricsSink::new();
        sink.begin_table("table3");
        sink.record("is", "vopp", "vc_sd", 4, &crit_stats(1_000_000, 250_000));
        sink.record("is", "trad", "lrc_d", 4, &stats(900_000, 10, 0)); // unprofiled
        let docs = sink.to_documents();
        assert_eq!(docs.keys().collect::<Vec<_>>(), ["critpath", "is"]);
        let doc = &docs["critpath"];
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(CRITPATH_SCHEMA));
        let cells = doc.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 1, "only the profiled run gets a cell");
        let c = &cells[0];
        assert_eq!(c.get("makespan_ns").unwrap().as_u64(), Some(1_000_000));
        assert_eq!(c.get("cpu_ns").unwrap().as_u64(), Some(750_000));
        assert_eq!(c.get("net_ns").unwrap().as_u64(), Some(250_000));
        assert_eq!(c.get("barrier_wait_ns").unwrap().as_u64(), Some(250_000));
        assert_eq!(c.get("cp_segments").unwrap().as_u64(), Some(2));
        // Ceilings: removing 250k of 1M caps speedup at 4/3.
        let net_free = c.get("whatif").unwrap().get("net_free").unwrap();
        assert_eq!(net_free.get("removed_ns").unwrap().as_u64(), Some(250_000));
        let ceiling = net_free.get("speedup_ceiling").unwrap().as_f64().unwrap();
        assert!((ceiling - 4.0 / 3.0).abs() < 1e-9, "{ceiling}");
    }

    #[test]
    fn critpath_gate_budgets_drift_against_the_makespan() {
        let doc_of = |makespan, net| {
            let sink = MetricsSink::new();
            sink.begin_table("table3");
            sink.record("is", "vopp", "vc_sd", 4, &crit_stats(makespan, net));
            sink.to_documents().remove("critpath").unwrap()
        };
        let base = doc_of(1_000_000, 250_000);
        // Identical passes.
        assert_eq!(compare("critpath", &base, &base), Vec::<String>::new());
        // net_ns moves by 1% of makespan: within the 2% budget even though
        // it is a 4% relative change of the field itself.
        let near = doc_of(1_000_000, 260_000);
        assert_eq!(compare("critpath", &base, &near), Vec::<String>::new());
        // net_ns moves by 5% of makespan: fails.
        let far = doc_of(1_000_000, 300_000);
        let errs = compare("critpath", &base, &far);
        assert!(
            errs.iter().any(|e| e.contains("net_ns drifted")),
            "{errs:?}"
        );
        // A vanished cell fails.
        let other = doc_of(2_000_000, 250_000);
        let sink = MetricsSink::new();
        sink.begin_table("table9");
        sink.record("sor", "vopp", "vc_d", 2, &crit_stats(500_000, 100_000));
        let missing = sink.to_documents().remove("critpath").unwrap();
        let errs = compare("critpath", &other, &missing);
        assert!(
            errs.iter().any(|e| e.contains("missing from candidate")),
            "{errs:?}"
        );
    }

    #[test]
    fn compare_dirs_round_trips_written_artifacts() {
        let base = std::env::temp_dir().join(format!("vopp-metrics-cmp-{}", std::process::id()));
        let (a, b) = (base.join("a"), base.join("b"));
        let sink = sink_with(&[
            ("table1", "is", "trad", "lrc_d", 4, stats(1_000_000, 50, 3)),
            (
                "table4",
                "gauss",
                "vopp",
                "vc_d",
                4,
                stats(2_000_000, 80, 7),
            ),
        ]);
        sink.write_all(&a).unwrap();
        sink.write_all(&b).unwrap();
        let (compared, errors) = compare_dirs(&a, &b);
        assert_eq!((compared, errors), (2, Vec::new()));

        // A missing candidate file is a violation, not a silent pass.
        std::fs::remove_file(b.join("BENCH_gauss.json")).unwrap();
        let (_, errors) = compare_dirs(&a, &b);
        assert!(!errors.is_empty());
        std::fs::remove_dir_all(&base).ok();
    }
}
