//! Regeneration of the paper's nine evaluation tables.
//!
//! Every run validates its application result against the sequential
//! reference before reporting statistics — a table is only produced from
//! verified executions.

use std::path::PathBuf;
use std::sync::Arc;

use vopp_apps::gauss::{gauss_reference, run_gauss, GaussParams, GaussVariant};
use vopp_apps::is::{is_reference, run_is, IsParams, IsVariant};
use vopp_apps::nn::{nn_reference, run_nn, NnParams, NnVariant};
use vopp_apps::sor::{run_sor, sor_reference, SorParams, SorVariant};
use vopp_core::{ClusterConfig, FaultPlan, NetConfig, Phase, Protocol, RunStats};
use vopp_serve::{build_schedule, run_serve, serve_reference, ServeParams, ServeVariant};
use vopp_sim::{SimDuration, SimTime};
use vopp_trace::{check, report, to_chrome_json, CheckConfig, Tracer};

use vopp_simnet::NetGen;

use crate::metrics::MetricsSink;
use crate::sweep::{
    CellApp, CellSpec, CellVariant, RunCache, ServeCell, ServeFault, ServeLoad, ServePayload,
    NETGEN_GENS, NETGEN_PROTOS,
};
use crate::table::Table;

/// Problem scaling: `quick` shrinks every instance for smoke tests; the
/// full scale is the calibrated reproduction reported in EXPERIMENTS.md.
/// When `trace_dir` is set, every cluster run records a structured event
/// trace, exports it (raw JSON, Chrome/Perfetto JSON, text report) into
/// that directory and asserts the protocol conformance invariants.
/// When `metrics` is set, every verified run is recorded as a cell for the
/// `BENCH_<app>.json` artifacts and the regression gate.
/// When `cache` is set (a [`RunCache`] populated by
/// [`crate::sweep::run_sweep`]), the run helpers consume precomputed
/// results instead of simulating inline — trace artifacts were already
/// written by the sweep workers, while metrics are still recorded here, at
/// consumption time, so cell order matches the sequential run exactly.
#[derive(Debug, Clone, Default)]
pub struct Scale {
    /// Use miniature problem instances and fewer processor counts.
    pub quick: bool,
    /// Where per-run trace artifacts go; `None` disables tracing.
    pub trace_dir: Option<PathBuf>,
    /// Sink for machine-readable per-run metrics; `None` disables.
    pub metrics: Option<Arc<MetricsSink>>,
    /// Replace the default network parameters of every run (used by the
    /// regression-gate tests to demonstrate that perturbing the cost model
    /// fails the gate).
    pub net_override: Option<NetConfig>,
    /// Run on a named network generation instead of the default (the
    /// paper's 100 Mbps testbed). Set per-cell by [`execute_cell`] from
    /// [`CellSpec::netgen`]; takes precedence over `net_override` and
    /// folds its label into trace/critpath file stems so netgen artifacts
    /// never collide with the paper tables'.
    pub netgen: Option<NetGen>,
    /// Global fault plan applied to every run (the `tables --faults SPEC`
    /// flag): datagram loss and node slowdowns reshape all cells; crash
    /// windows are acted on by the serving workload only. Folded into the
    /// sweep cache's context hash. The serve table's fault *dimension*
    /// stacks its scenario on top of this plan.
    pub faults: FaultPlan,
    /// Precomputed sweep results; `None` simulates every cell inline.
    pub cache: Option<Arc<RunCache>>,
    /// Attach a causal profiler to every cluster run (the `tables
    /// --critpath` flag): tables gain critical-path breakdown rows, the
    /// metrics sink gains the `BENCH_critpath.json` artifact, and (with
    /// `trace_dir`) each run writes a `<stem>.critpath.perfetto.json`
    /// track. Profiling is pure observation — every other artifact stays
    /// byte-identical.
    pub critpath: bool,
}

impl Scale {
    /// Quick (smoke-test) scale without tracing.
    pub fn quick() -> Scale {
        Scale {
            quick: true,
            ..Scale::default()
        }
    }

    /// Full paper scale without tracing.
    pub fn full() -> Scale {
        Scale::default()
    }

    /// Cluster configuration for one run, honoring the network override.
    fn cfg(&self, np: usize, proto: Protocol) -> ClusterConfig {
        let mut config = ClusterConfig::new(np, proto);
        if let Some(net) = &self.net_override {
            config.net = net.clone();
        }
        if let Some(gen) = self.netgen {
            config.net = gen.config();
        }
        config.faults = self.faults.clone();
        if self.critpath {
            // One fresh profiler per run: causal logs are per-run state.
            config.profiler = Some(Arc::new(vopp_sim::CausalProfiler::new(np)));
        }
        config
    }

    /// Label the table whose runs are recorded next (metrics sink only).
    fn begin_table(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.begin_table(name);
        }
    }

    /// Record one verified run in the metrics sink, if attached.
    fn record(&self, app: &str, variant: &str, protocol: &str, np: usize, stats: &RunStats) {
        if let Some(m) = &self.metrics {
            m.record(app, variant, protocol, np, stats);
        }
    }

    /// Precomputed statistics for a cell, when a sweep cache is attached.
    fn cached(
        &self,
        app: CellApp,
        variant: CellVariant,
        proto: Protocol,
        np: usize,
    ) -> Option<RunStats> {
        let spec = CellSpec {
            app,
            variant,
            proto,
            np,
            serve: None,
            netgen: self.netgen,
        };
        self.cache
            .as_ref()
            .and_then(|c| c.get(&spec.key()))
            .map(|r| r.stats.clone())
    }

    /// Precomputed serve cell, when a sweep cache is attached. A cached
    /// entry without its serve payload (impossible outside a corrupted
    /// store) falls back to simulating inline.
    fn cached_serve(
        &self,
        variant: CellVariant,
        proto: Protocol,
        np: usize,
        sc: ServeCell,
    ) -> Option<(RunStats, ServePayload)> {
        let spec = CellSpec {
            app: CellApp::Serve,
            variant,
            proto,
            np,
            serve: Some(sc),
            netgen: None,
        };
        self.cache
            .as_ref()
            .and_then(|c| c.get(&spec.key()))
            .and_then(|r| Some((r.stats.clone(), r.serve.clone()?)))
    }

    /// Trace/critpath file stem of one run, matching [`CellSpec::key`]:
    /// the generation label rides after the variant on netgen runs, so
    /// their artifacts never overwrite the default-network ones.
    fn stem(&self, app: &str, variant: &str, proto: Protocol, np: usize) -> String {
        let gen = self
            .netgen
            .map_or_else(String::new, |g| format!("{}_", g.label()));
        format!(
            "{app}_{variant}_{gen}{}_{np}p",
            proto.label().to_lowercase()
        )
    }

    /// Install a fresh tracer on `config` when tracing is requested.
    fn attach_tracer(&self, config: &mut ClusterConfig) -> Option<Arc<Tracer>> {
        let dir = self.trace_dir.as_ref()?;
        std::fs::create_dir_all(dir).expect("failed to create trace directory");
        let tracer = Arc::new(Tracer::default());
        config.tracer = Some(tracer.clone());
        Some(tracer)
    }

    /// Drain a run's tracer: write the raw event stream, the Chrome-trace
    /// JSON and the wait report under `trace_dir`, then run the protocol
    /// conformance checker and panic on any violation (a complete,
    /// non-truncated trace of a correct run must be violation-free).
    fn finish_trace(
        &self,
        tracer: Option<Arc<Tracer>>,
        app: &str,
        variant: &str,
        proto: Protocol,
        np: usize,
    ) {
        let Some(tr) = tracer else { return };
        let dir = self.trace_dir.as_ref().expect("tracer implies trace_dir");
        let trace = tr.take();
        let stem = self.stem(app, variant, proto, np);
        let w = |suffix: &str, content: String| {
            let path = dir.join(format!("{stem}.{suffix}"));
            std::fs::write(&path, content)
                .unwrap_or_else(|e| panic!("failed to write {}: {e}", path.display()));
        };
        w("events.json", trace.to_json());
        w("perfetto.json", to_chrome_json(&trace));
        w("report.txt", report(&trace, 10));
        if trace.evicted == 0 {
            let violations = check(&trace, &check_config_for(proto));
            assert!(
                violations.is_empty(),
                "{stem}: {} conformance violation(s):\n{}",
                violations.len(),
                violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        } else {
            // A wrapped ring lost its prefix; interval-pairing invariants
            // cannot be judged on a truncated stream.
            eprintln!(
                "[trace] {stem}: ring evicted {} events, checker skipped",
                trace.evicted
            );
        }
    }
    /// When both tracing and profiling are on, export the run's critical
    /// path as its own Perfetto track (`<stem>.critpath.perfetto.json`).
    /// A separate file keeps the existing `perfetto.json` stream
    /// byte-identical with the profiler on or off.
    fn finish_critpath(
        &self,
        stats: &RunStats,
        app: &str,
        variant: &str,
        proto: Protocol,
        np: usize,
    ) {
        if let (Some(dir), Some(cp)) = (self.trace_dir.as_ref(), stats.crit.as_deref()) {
            std::fs::create_dir_all(dir).expect("failed to create trace directory");
            let stem = self.stem(app, variant, proto, np);
            let path = dir.join(format!("{stem}.critpath.perfetto.json"));
            std::fs::write(&path, vopp_metrics::critpath_to_chrome_json(cp))
                .unwrap_or_else(|e| panic!("failed to write {}: {e}", path.display()));
        }
    }

    /// Processor count of the statistics tables (paper: 16).
    pub fn stats_procs(&self) -> usize {
        if self.quick {
            4
        } else {
            16
        }
    }

    /// Processor counts of the speedup tables (paper: 2..32).
    pub fn speedup_procs(&self) -> Vec<usize> {
        if self.quick {
            vec![2, 4]
        } else {
            vec![2, 4, 8, 16, 24, 32]
        }
    }

    /// Node counts of the scale-out family (`tables scaling`): the regime
    /// ROADMAP item 2 targets, well past the paper's 32-processor ceiling.
    /// Identical at both scales — `quick` shrinks the instances, not the
    /// cluster.
    pub fn scaling_procs(&self) -> Vec<usize> {
        vec![64, 128]
    }

    fn is(&self) -> IsParams {
        if self.quick {
            IsParams::quick()
        } else {
            IsParams::bench()
        }
    }

    fn gauss(&self) -> GaussParams {
        if self.quick {
            GaussParams::quick()
        } else {
            GaussParams::bench()
        }
    }

    fn sor(&self) -> SorParams {
        if self.quick {
            SorParams::quick()
        } else {
            SorParams::bench()
        }
    }

    fn nn(&self) -> NnParams {
        if self.quick {
            NnParams::quick()
        } else {
            NnParams::bench()
        }
    }

    /// IS instance for an `np`-node run. The paper tables (np <= 32) use
    /// the calibrated instances; the scale-out cells keep the full bench
    /// instance at full scale and, at quick scale, an instance sized so
    /// every rank still holds keys at 128 nodes.
    fn is_at(&self, np: usize) -> IsParams {
        let mut p = self.is();
        if self.quick && np >= SCALING_MIN_PROCS {
            p.n_keys = 1 << 15;
            p.reps = 2;
        }
        p
    }

    /// Gauss instance for an `np`-node run (see [`Scale::is_at`]).
    fn gauss_at(&self, np: usize) -> GaussParams {
        let mut p = self.gauss();
        if self.quick && np >= SCALING_MIN_PROCS {
            // 3 rows per rank at 128 nodes; short sweeps keep it smoke-test
            // sized.
            p.rows = 384;
            p.iters = 3;
        }
        p
    }

    /// SOR instance for an `np`-node run (see [`Scale::is_at`]).
    fn sor_at(&self, np: usize) -> SorParams {
        let mut p = self.sor();
        if self.quick && np >= SCALING_MIN_PROCS {
            // 4 rows per rank at 128 nodes.
            p.rows = 512;
            p.iters = 3;
        }
        p
    }

    fn serve(&self, load: ServeLoad) -> ServeParams {
        let mut p = if self.quick {
            ServeParams::quick()
        } else {
            ServeParams::bench()
        };
        if load == ServeLoad::High {
            // Double the offered load: half the mean interarrival gap.
            p.mean_gap_ns /= 2.0;
        }
        p
    }
}

/// Node counts at or above this use the scale-out instances (see
/// [`Scale::is_at`]); below it, the paper instances. The paper's largest
/// cluster is 32 processors, so the two regimes never overlap.
const SCALING_MIN_PROCS: usize = 64;

/// The conformance-invariant set a protocol's traces must satisfy.
///
/// * `VC_sd` ships integrated diffs on grants, so its runs must emit zero
///   diff requests (the paper's headline protocol property). `VC_rdma`
///   ships the same integrated diffs as one-sided writes, so it inherits
///   the invariant.
/// * Both VC protocols scope consistency to views, so their barrier
///   releases must carry no write notices (paper §3.2).
/// * All protocols run over the reliable transport whose retransmission
///   timeout is derived from the network generation (the historical 1 s on
///   the paper testbed), far above that network's round trip, so every
///   retransmission outside a synchronization wait must be covered by a
///   preceding datagram drop (queue overflow under bursts, or a background
///   bit error); during barrier/lock/view waits the reply is legitimately
///   deferred past the timeout.
pub fn check_config_for(proto: Protocol) -> CheckConfig {
    CheckConfig {
        expect_zero_diff_requests: matches!(proto, Protocol::VcSd | Protocol::VcRdma),
        expect_no_barrier_notices: proto.is_vc(),
        check_rexmit_overflow: true,
        check_non_nested: true,
    }
}

/// The statistics rows shared by Tables 1, 2, 4, 6 and 8.
fn stats_rows(t: &mut Table, runs: &[RunStats], with_acquire_time: bool) {
    t.row(
        "Time (Sec.)",
        runs.iter().map(|s| Table::f(s.time_secs(), 2)).collect(),
    );
    t.row(
        "Barriers",
        runs.iter().map(|s| Table::i(s.barriers())).collect(),
    );
    t.row(
        "Acquires",
        runs.iter().map(|s| Table::i(s.acquires())).collect(),
    );
    t.row(
        "Data (MByte)",
        runs.iter().map(|s| Table::f(s.data_mbytes(), 2)).collect(),
    );
    t.row(
        "Num. Msg",
        runs.iter().map(|s| Table::i(s.num_msgs())).collect(),
    );
    t.row(
        "Diff Requests",
        runs.iter().map(|s| Table::i(s.diff_requests())).collect(),
    );
    t.row(
        "Barrier Time (usec.)",
        runs.iter()
            .map(|s| Table::f(s.barrier_time_usec(), 0))
            .collect(),
    );
    if with_acquire_time {
        t.row(
            "Acquire Time (usec.)",
            runs.iter()
                .map(|s| Table::f(s.acquire_time_usec(), 0))
                .collect(),
        );
    }
    t.row(
        "Rexmit",
        runs.iter().map(|s| Table::i(s.rexmits())).collect(),
    );
    // Execution-time breakdown (§5 discussion): where did each protocol's
    // time go? Percentages of summed per-node virtual time; the four phase
    // rows plus send overhead cover every nanosecond except protocol CPU
    // counted inside "Send Overhead".
    for (label, phase) in [
        ("Compute (%)", Phase::Compute),
        ("Barrier Wait (%)", Phase::BarrierWait),
        ("Acquire Wait (%)", Phase::AcquireWait),
        ("Diff Wait (%)", Phase::DataWait),
    ] {
        t.row(
            label,
            runs.iter()
                .map(|s| Table::f(s.phase_pct(phase), 1))
                .collect(),
        );
    }
    t.row(
        "Send Overhead (%)",
        runs.iter()
            .map(|s| Table::f(s.send_overhead_pct(), 1))
            .collect(),
    );
    critpath_rows(
        t,
        &runs.iter().map(|s| s.crit.as_deref()).collect::<Vec<_>>(),
    );
}

/// Critical-path breakdown rows, appended to a statistics table when any
/// of its runs was profiled (`--critpath`). Every percentage is of the
/// *makespan*: unlike the summed-per-node breakdown above, these rows
/// decompose the single chain of events that determined the finish time.
/// Unprofiled columns (e.g. the NN MPI variant, which bypasses the cluster
/// runtime) render `-`.
fn critpath_rows(t: &mut Table, crits: &[Option<&vopp_metrics::CritPath>]) {
    use vopp_metrics::{CritPath, OpKind};
    if crits.iter().all(Option::is_none) {
        return;
    }
    let ceiling = |x: f64| {
        if x.is_finite() {
            format!("{x:.2}x")
        } else {
            "inf".to_string()
        }
    };
    let mut row = |label: &str, f: &dyn Fn(&CritPath) -> String| {
        t.row(
            label,
            crits
                .iter()
                .map(|c| c.map_or_else(|| "-".to_string(), f))
                .collect(),
        );
    };
    row("CP Compute (%)", &|c| Table::f(c.pct(c.cpu_app_ns()), 1));
    row("CP Overhead (%)", &|c| {
        Table::f(c.pct(c.cpu_overhead_ns()), 1)
    });
    row("CP Diff CPU (%)", &|c| Table::f(c.pct(c.diff_cpu_ns()), 1));
    row("CP Idle (%)", &|c| {
        Table::f(c.pct(c.cpu_op_ns(OpKind::Idle)), 1)
    });
    row("CP Net Barrier (%)", &|c| {
        Table::f(c.pct(c.wait_ns(OpKind::Barrier)), 1)
    });
    row("CP Net Acquire (%)", &|c| {
        Table::f(c.pct(c.wait_ns(OpKind::Acquire)), 1)
    });
    row("CP Net Data (%)", &|c| {
        Table::f(c.pct(c.wait_ns(OpKind::Data)), 1)
    });
    row("CP Net Flush (%)", &|c| {
        Table::f(c.pct(c.wait_ns(OpKind::Flush)), 1)
    });
    row("CP Timeout (%)", &|c| Table::f(c.pct(c.timeout_ns()), 1));
    row("Ceil. net free", &|c| {
        ceiling(c.ceiling(c.whatif_net_free_ns()))
    });
    row("Ceil. diff free", &|c| {
        ceiling(c.ceiling(c.whatif_diff_free_ns()))
    });
    row("Ceil. barrier free", &|c| {
        ceiling(c.ceiling(c.whatif_barrier_free_ns()))
    });
}

// -------------------------------------------------------------------
// IS (Tables 1-3)
// -------------------------------------------------------------------

fn is_exec(
    scale: &Scale,
    np: usize,
    proto: Protocol,
    p: &IsParams,
    variant: IsVariant,
) -> RunStats {
    let mut config = scale.cfg(np, proto);
    let tracer = scale.attach_tracer(&mut config);
    let out = run_is(&config, p, variant);
    let lb = variant == IsVariant::VoppLb;
    assert_eq!(out.value, is_reference(p, np, lb), "IS result mismatch");
    scale.finish_trace(tracer, "is", variant_label(variant), proto, np);
    scale.finish_critpath(&out.stats, "is", variant_label(variant), proto, np);
    out.stats
}

fn is_run(scale: &Scale, np: usize, proto: Protocol, p: &IsParams, variant: IsVariant) -> RunStats {
    let stats = scale
        .cached(CellApp::Is, variant.into(), proto, np)
        .unwrap_or_else(|| is_exec(scale, np, proto, p, variant));
    scale.record(
        "is",
        variant_label(variant),
        &proto_label(proto),
        np,
        &stats,
    );
    stats
}

fn proto_label(proto: Protocol) -> String {
    proto.label().to_lowercase()
}

impl From<IsVariant> for CellVariant {
    fn from(v: IsVariant) -> CellVariant {
        match v {
            IsVariant::Traditional => CellVariant::Traditional,
            IsVariant::Vopp => CellVariant::Vopp,
            IsVariant::VoppLb => CellVariant::VoppLb,
        }
    }
}

impl From<GaussVariant> for CellVariant {
    fn from(v: GaussVariant) -> CellVariant {
        match v {
            GaussVariant::Traditional => CellVariant::Traditional,
            GaussVariant::Vopp => CellVariant::Vopp,
        }
    }
}

impl From<SorVariant> for CellVariant {
    fn from(v: SorVariant) -> CellVariant {
        match v {
            SorVariant::Traditional => CellVariant::Traditional,
            SorVariant::Vopp => CellVariant::Vopp,
        }
    }
}

impl From<NnVariant> for CellVariant {
    fn from(v: NnVariant) -> CellVariant {
        match v {
            NnVariant::Traditional => CellVariant::Traditional,
            NnVariant::Vopp => CellVariant::Vopp,
            NnVariant::Mpi => CellVariant::Mpi,
        }
    }
}

/// Simulate one sweep cell through the same verified path the tables use
/// (reference check, trace artifacts, conformance assertions) and return
/// its statistics, plus the serve payload on serve cells. Called by the
/// sweep workers; does *not* record metrics — that happens at consumption
/// time so cell order stays sequential.
pub(crate) fn execute_cell(scale: &Scale, spec: &CellSpec) -> (RunStats, Option<ServePayload>) {
    // Netgen cells run on their named generation; everything else on the
    // scale's defaults. The derived scale also routes the generation label
    // into trace stems and cache lookups.
    let scale = &Scale {
        netgen: spec.netgen,
        ..scale.clone()
    };
    let (np, proto) = (spec.np, spec.proto);
    let stats = match spec.app {
        CellApp::Is => {
            let v = match spec.variant {
                CellVariant::Traditional => IsVariant::Traditional,
                CellVariant::Vopp => IsVariant::Vopp,
                CellVariant::VoppLb => IsVariant::VoppLb,
                CellVariant::Mpi => panic!("IS has no MPI variant"),
            };
            is_exec(scale, np, proto, &scale.is_at(np), v)
        }
        CellApp::Gauss => {
            let v = match spec.variant {
                CellVariant::Traditional => GaussVariant::Traditional,
                CellVariant::Vopp => GaussVariant::Vopp,
                other => panic!("Gauss has no {other:?} variant"),
            };
            gauss_exec(scale, np, proto, &scale.gauss_at(np), v)
        }
        CellApp::Sor => {
            let v = match spec.variant {
                CellVariant::Traditional => SorVariant::Traditional,
                CellVariant::Vopp => SorVariant::Vopp,
                other => panic!("SOR has no {other:?} variant"),
            };
            sor_exec(scale, np, proto, &scale.sor_at(np), v)
        }
        CellApp::Nn => {
            let v = match spec.variant {
                CellVariant::Traditional => NnVariant::Traditional,
                CellVariant::Vopp => NnVariant::Vopp,
                CellVariant::Mpi => NnVariant::Mpi,
                CellVariant::VoppLb => panic!("NN has no VoppLb variant"),
            };
            nn_exec(scale, np, proto, &scale.nn(), v)
        }
        CellApp::Serve => {
            let sc = spec.serve.expect("serve cells carry load/fault dims");
            let (stats, payload) = serve_exec(scale, np, proto, sc);
            return (stats, Some(payload));
        }
    };
    (stats, None)
}

fn variant_label<V: std::fmt::Debug>(v: V) -> &'static str {
    // The three app-variant enums share the same labels; Mpi only on NN.
    match format!("{v:?}").as_str() {
        "Traditional" => "trad",
        "Vopp" => "vopp",
        "VoppLb" => "vopp_lb",
        "Mpi" => "mpi",
        other => panic!("unlabelled variant {other}"),
    }
}

/// Table 1: Statistics of IS on the stats processor count.
pub fn table1(scale: &Scale) -> Table {
    scale.begin_table("table1");
    let p = scale.is();
    let np = scale.stats_procs();
    let runs = vec![
        is_run(scale, np, Protocol::LrcD, &p, IsVariant::Traditional),
        is_run(scale, np, Protocol::VcD, &p, IsVariant::Vopp),
        is_run(scale, np, Protocol::VcSd, &p, IsVariant::Vopp),
    ];
    let mut t = Table::new(
        format!("Table 1: Statistics of IS on {np} processors"),
        vec!["LRC_d".into(), "VC_d".into(), "VC_sd".into()],
    );
    stats_rows(&mut t, &runs, false);
    t
}

/// Table 2: Statistics of IS with fewer barriers (barrier hoisted, §3.2).
pub fn table2(scale: &Scale) -> Table {
    scale.begin_table("table2");
    let p = scale.is();
    let np = scale.stats_procs();
    let runs = vec![
        is_run(scale, np, Protocol::VcD, &p, IsVariant::VoppLb),
        is_run(scale, np, Protocol::VcSd, &p, IsVariant::VoppLb),
    ];
    let mut t = Table::new(
        format!("Table 2: Statistics of IS with fewer barriers on {np} processors"),
        vec!["VC_d".into(), "VC_sd".into()],
    );
    stats_rows(&mut t, &runs, false);
    t
}

/// Table 3: Speedup of IS on LRC_d and VC_sd (plus the hoisted-barrier
/// VOPP variant, the paper's `VC_sd lb` row).
pub fn table3(scale: &Scale) -> Table {
    scale.begin_table("table3");
    let p = scale.is();
    let procs = scale.speedup_procs();
    // Base: the traditional program on one processor.
    let base = is_run(scale, 1, Protocol::LrcD, &p, IsVariant::Traditional)
        .time
        .as_secs_f64();
    let speedup = |np: usize, proto: Protocol, variant: IsVariant| {
        let s = is_run(scale, np, proto, &p, variant);
        Table::f(base / s.time_secs(), 2)
    };
    let mut t = Table::new(
        "Table 3: Speedup of IS on LRC_d and VC_sd",
        procs.iter().map(|p| format!("{p}-p")).collect(),
    );
    t.row(
        "LRC_d",
        procs
            .iter()
            .map(|&np| speedup(np, Protocol::LrcD, IsVariant::Traditional))
            .collect(),
    );
    t.row(
        "VC_sd",
        procs
            .iter()
            .map(|&np| speedup(np, Protocol::VcSd, IsVariant::Vopp))
            .collect(),
    );
    t.row(
        "VC_sd lb",
        procs
            .iter()
            .map(|&np| speedup(np, Protocol::VcSd, IsVariant::VoppLb))
            .collect(),
    );
    t
}

// -------------------------------------------------------------------
// Gauss (Tables 4-5)
// -------------------------------------------------------------------

fn gauss_exec(
    scale: &Scale,
    np: usize,
    proto: Protocol,
    p: &GaussParams,
    variant: GaussVariant,
) -> RunStats {
    let mut config = scale.cfg(np, proto);
    let tracer = scale.attach_tracer(&mut config);
    let out = run_gauss(&config, p, variant);
    assert_eq!(out.value, gauss_reference(p, np), "Gauss result mismatch");
    scale.finish_trace(tracer, "gauss", variant_label(variant), proto, np);
    scale.finish_critpath(&out.stats, "gauss", variant_label(variant), proto, np);
    out.stats
}

fn gauss_run(
    scale: &Scale,
    np: usize,
    proto: Protocol,
    p: &GaussParams,
    variant: GaussVariant,
) -> RunStats {
    let stats = scale
        .cached(CellApp::Gauss, variant.into(), proto, np)
        .unwrap_or_else(|| gauss_exec(scale, np, proto, p, variant));
    scale.record(
        "gauss",
        variant_label(variant),
        &proto_label(proto),
        np,
        &stats,
    );
    stats
}

/// Table 4: Statistics of Gauss.
pub fn table4(scale: &Scale) -> Table {
    scale.begin_table("table4");
    let p = scale.gauss();
    let np = scale.stats_procs();
    let runs = vec![
        gauss_run(scale, np, Protocol::LrcD, &p, GaussVariant::Traditional),
        gauss_run(scale, np, Protocol::VcD, &p, GaussVariant::Vopp),
        gauss_run(scale, np, Protocol::VcSd, &p, GaussVariant::Vopp),
    ];
    let mut t = Table::new(
        format!("Table 4: Statistics of Gauss on {np} processors"),
        vec!["LRC_d".into(), "VC_d".into(), "VC_sd".into()],
    );
    stats_rows(&mut t, &runs, false);
    t
}

/// Table 5: Speedup of Gauss on LRC_d and VC_sd.
pub fn table5(scale: &Scale) -> Table {
    scale.begin_table("table5");
    let p = scale.gauss();
    let procs = scale.speedup_procs();
    let base = gauss_run(scale, 1, Protocol::LrcD, &p, GaussVariant::Traditional)
        .time
        .as_secs_f64();
    let mut t = Table::new(
        "Table 5: Speedup of Gauss on LRC_d and VC_sd",
        procs.iter().map(|p| format!("{p}-p")).collect(),
    );
    t.row(
        "LRC_d",
        procs
            .iter()
            .map(|&np| {
                let s = gauss_run(scale, np, Protocol::LrcD, &p, GaussVariant::Traditional);
                Table::f(base / s.time_secs(), 2)
            })
            .collect(),
    );
    t.row(
        "VC_sd",
        procs
            .iter()
            .map(|&np| {
                let s = gauss_run(scale, np, Protocol::VcSd, &p, GaussVariant::Vopp);
                Table::f(base / s.time_secs(), 2)
            })
            .collect(),
    );
    t
}

// -------------------------------------------------------------------
// SOR (Tables 6-7)
// -------------------------------------------------------------------

fn sor_exec(
    scale: &Scale,
    np: usize,
    proto: Protocol,
    p: &SorParams,
    variant: SorVariant,
) -> RunStats {
    let mut config = scale.cfg(np, proto);
    let tracer = scale.attach_tracer(&mut config);
    let out = run_sor(&config, p, variant);
    assert_eq!(out.value, sor_reference(p), "SOR result mismatch");
    scale.finish_trace(tracer, "sor", variant_label(variant), proto, np);
    scale.finish_critpath(&out.stats, "sor", variant_label(variant), proto, np);
    out.stats
}

fn sor_run(
    scale: &Scale,
    np: usize,
    proto: Protocol,
    p: &SorParams,
    variant: SorVariant,
) -> RunStats {
    let stats = scale
        .cached(CellApp::Sor, variant.into(), proto, np)
        .unwrap_or_else(|| sor_exec(scale, np, proto, p, variant));
    scale.record(
        "sor",
        variant_label(variant),
        &proto_label(proto),
        np,
        &stats,
    );
    stats
}

/// Table 6: Statistics of SOR.
pub fn table6(scale: &Scale) -> Table {
    scale.begin_table("table6");
    let p = scale.sor();
    let np = scale.stats_procs();
    let runs = vec![
        sor_run(scale, np, Protocol::LrcD, &p, SorVariant::Traditional),
        sor_run(scale, np, Protocol::VcD, &p, SorVariant::Vopp),
        sor_run(scale, np, Protocol::VcSd, &p, SorVariant::Vopp),
    ];
    let mut t = Table::new(
        format!("Table 6: Statistics of SOR on {np} processors"),
        vec!["LRC_d".into(), "VC_d".into(), "VC_sd".into()],
    );
    stats_rows(&mut t, &runs, false);
    t
}

/// Table 7: Speedup of SOR on LRC_d and VC_sd.
pub fn table7(scale: &Scale) -> Table {
    scale.begin_table("table7");
    let p = scale.sor();
    let procs = scale.speedup_procs();
    let base = sor_run(scale, 1, Protocol::LrcD, &p, SorVariant::Traditional)
        .time
        .as_secs_f64();
    let mut t = Table::new(
        "Table 7: Speedup of SOR on LRC_d and VC_sd",
        procs.iter().map(|p| format!("{p}-p")).collect(),
    );
    t.row(
        "LRC_d",
        procs
            .iter()
            .map(|&np| {
                let s = sor_run(scale, np, Protocol::LrcD, &p, SorVariant::Traditional);
                Table::f(base / s.time_secs(), 2)
            })
            .collect(),
    );
    t.row(
        "VC_sd",
        procs
            .iter()
            .map(|&np| {
                let s = sor_run(scale, np, Protocol::VcSd, &p, SorVariant::Vopp);
                Table::f(base / s.time_secs(), 2)
            })
            .collect(),
    );
    t
}

// -------------------------------------------------------------------
// NN (Tables 8-9)
// -------------------------------------------------------------------

fn nn_exec(
    scale: &Scale,
    np: usize,
    proto: Protocol,
    p: &NnParams,
    variant: NnVariant,
) -> RunStats {
    let mut config = scale.cfg(np, proto);
    let tracer = scale.attach_tracer(&mut config);
    let out = run_nn(&config, p, variant);
    assert_eq!(out.value, nn_reference(p, np), "NN result mismatch");
    scale.finish_trace(tracer, "nn", variant_label(variant), proto, np);
    scale.finish_critpath(&out.stats, "nn", variant_label(variant), proto, np);
    out.stats
}

fn nn_run(scale: &Scale, np: usize, proto: Protocol, p: &NnParams, variant: NnVariant) -> RunStats {
    let stats = scale
        .cached(CellApp::Nn, variant.into(), proto, np)
        .unwrap_or_else(|| nn_exec(scale, np, proto, p, variant));
    // The MPI variant runs message passing, not a DSM protocol.
    let plabel = if variant == NnVariant::Mpi {
        "mpi".to_string()
    } else {
        proto_label(proto)
    };
    scale.record("nn", variant_label(variant), &plabel, np, &stats);
    stats
}

/// Table 8: Statistics of NN (includes the Acquire Time row).
pub fn table8(scale: &Scale) -> Table {
    scale.begin_table("table8");
    let p = scale.nn();
    let np = scale.stats_procs();
    let runs = vec![
        nn_run(scale, np, Protocol::LrcD, &p, NnVariant::Traditional),
        nn_run(scale, np, Protocol::VcD, &p, NnVariant::Vopp),
        nn_run(scale, np, Protocol::VcSd, &p, NnVariant::Vopp),
    ];
    let mut t = Table::new(
        format!("Table 8: Statistics of NN on {np} processors"),
        vec!["LRC_d".into(), "VC_d".into(), "VC_sd".into()],
    );
    stats_rows(&mut t, &runs, true);
    t
}

/// Table 9: Speedup of NN on LRC_d, VC_sd and MPI.
pub fn table9(scale: &Scale) -> Table {
    scale.begin_table("table9");
    let p = scale.nn();
    let procs = scale.speedup_procs();
    let base = nn_run(scale, 1, Protocol::LrcD, &p, NnVariant::Traditional)
        .time
        .as_secs_f64();
    let mut t = Table::new(
        "Table 9: Speedup of NN on LRC_d, VC_sd and MPI",
        procs.iter().map(|p| format!("{p}-p")).collect(),
    );
    t.row(
        "LRC_d",
        procs
            .iter()
            .map(|&np| {
                let s = nn_run(scale, np, Protocol::LrcD, &p, NnVariant::Traditional);
                Table::f(base / s.time_secs(), 2)
            })
            .collect(),
    );
    t.row(
        "VC_sd",
        procs
            .iter()
            .map(|&np| {
                let s = nn_run(scale, np, Protocol::VcSd, &p, NnVariant::Vopp);
                Table::f(base / s.time_secs(), 2)
            })
            .collect(),
    );
    t.row(
        "MPI",
        procs
            .iter()
            .map(|&np| {
                let s = nn_run(scale, np, Protocol::VcSd, &p, NnVariant::Mpi);
                Table::f(base / s.time_secs(), 2)
            })
            .collect(),
    );
    t
}

/// Extension table (not in the paper): the four traditional applications
/// on homeless vs. home-based LRC at the stats processor count — the
/// trade-off studied in the authors' companion work.
pub fn table_ext(scale: &Scale) -> Table {
    scale.begin_table("ext");
    let np = scale.stats_procs();
    let is = scale.is();
    let gauss = scale.gauss();
    let sor = scale.sor();
    let nn = scale.nn();
    let mut t = Table::new(
        format!("Extension: traditional applications on LRC_d vs HLRC_d, {np} processors"),
        vec![
            "IS LRC_d".into(),
            "IS HLRC".into(),
            "Gauss LRC_d".into(),
            "Gauss HLRC".into(),
            "SOR LRC_d".into(),
            "SOR HLRC".into(),
            "NN LRC_d".into(),
            "NN HLRC".into(),
        ],
    );
    let runs = [
        is_run(scale, np, Protocol::LrcD, &is, IsVariant::Traditional),
        is_run(scale, np, Protocol::Hlrc, &is, IsVariant::Traditional),
        gauss_run(scale, np, Protocol::LrcD, &gauss, GaussVariant::Traditional),
        gauss_run(scale, np, Protocol::Hlrc, &gauss, GaussVariant::Traditional),
        sor_run(scale, np, Protocol::LrcD, &sor, SorVariant::Traditional),
        sor_run(scale, np, Protocol::Hlrc, &sor, SorVariant::Traditional),
        nn_run(scale, np, Protocol::LrcD, &nn, NnVariant::Traditional),
        nn_run(scale, np, Protocol::Hlrc, &nn, NnVariant::Traditional),
    ];
    t.row(
        "Time (Sec.)",
        runs.iter().map(|s| Table::f(s.time_secs(), 2)).collect(),
    );
    t.row(
        "Data (MByte)",
        runs.iter().map(|s| Table::f(s.data_mbytes(), 2)).collect(),
    );
    t.row(
        "Num. Msg",
        runs.iter().map(|s| Table::i(s.num_msgs())).collect(),
    );
    t.row(
        "Diff/Page Requests",
        runs.iter().map(|s| Table::i(s.diff_requests())).collect(),
    );
    critpath_rows(
        &mut t,
        &runs.iter().map(|s| s.crit.as_deref()).collect::<Vec<_>>(),
    );
    t
}

// -------------------------------------------------------------------
// Serving (the `serve` cell family; not in the paper)
// -------------------------------------------------------------------

/// The store style a protocol serves with: views on the VC family, a
/// lock-per-shard store on the LRC family.
fn serve_style(proto: Protocol) -> (ServeVariant, CellVariant) {
    if proto.is_vc() {
        (ServeVariant::Vopp, CellVariant::Vopp)
    } else {
        (ServeVariant::Traditional, CellVariant::Traditional)
    }
}

/// Metrics/trace variant label of a serve cell, e.g. `vopp_base_crash`.
fn serve_variant_label(variant: CellVariant, sc: ServeCell) -> String {
    format!("{}_{}", variant.label(), sc.label())
}

/// Promote a serve cell's fault dimension into the run's fault plan,
/// stacked on top of the global `--faults` plan.
fn serve_fault_plan(p: &ServeParams, base: FaultPlan, fault: ServeFault) -> FaultPlan {
    match fault {
        ServeFault::Clean => base,
        ServeFault::Loss => base.with_loss(0.02, 7),
        ServeFault::Slow => base.with_slowdown(0, 2.0),
        ServeFault::Crash => {
            // Crash node 1 at a quarter of the schedule horizon, down for
            // another quarter: recovery happens mid-stream with plenty of
            // post-recovery traffic left to measure.
            let horizon = build_schedule(p).last().expect("nonempty schedule").arrival;
            base.with_crash(
                1,
                SimTime(horizon / 4),
                SimDuration::from_nanos(horizon / 4),
            )
        }
    }
}

fn serve_exec(
    scale: &Scale,
    np: usize,
    proto: Protocol,
    sc: ServeCell,
) -> (RunStats, ServePayload) {
    let p = scale.serve(sc.load);
    let (style, variant) = serve_style(proto);
    let mut config = scale.cfg(np, proto);
    config.faults = serve_fault_plan(&p, config.faults.clone(), sc.fault);
    let tracer = scale.attach_tracer(&mut config);
    let out = run_serve(&config, &p, style);
    assert_eq!(
        out.checksum,
        serve_reference(&p),
        "serve store diverged from the sequential reference"
    );
    scale.finish_trace(
        tracer,
        "serve",
        &serve_variant_label(variant, sc),
        proto,
        np,
    );
    scale.finish_critpath(
        &out.stats,
        "serve",
        &serve_variant_label(variant, sc),
        proto,
        np,
    );
    (
        out.stats,
        ServePayload {
            latency: out.latency,
            checksum: out.checksum,
            get_digest: out.get_digest,
            served: out.served,
            recovered_pages: out.recovered_pages,
        },
    )
}

fn serve_run(scale: &Scale, np: usize, proto: Protocol, sc: ServeCell) -> (RunStats, ServePayload) {
    let (_, variant) = serve_style(proto);
    let (stats, payload) = scale
        .cached_serve(variant, proto, np, sc)
        .unwrap_or_else(|| serve_exec(scale, np, proto, sc));
    if let Some(m) = &scale.metrics {
        m.record_serve(
            &serve_variant_label(variant, sc),
            &proto_label(proto),
            np,
            &stats,
            &payload.latency,
            payload.served,
            payload.checksum,
            payload.recovered_pages,
        );
    }
    (stats, payload)
}

/// The serving table (not in the paper): the open-loop sharded KV store
/// across the full protocol matrix, at two offered loads and under the
/// fault scenarios of [`ServeFault`]. Latency columns report per-request
/// service time; the `x clean` rows divide each column's tail by the same
/// protocol's fault-free base-load cell, so crash/recovery degradation is
/// visible directly in the table.
pub fn table_serve(scale: &Scale) -> Table {
    scale.begin_table("serve");
    let np = scale.stats_procs();
    use Protocol::{Hlrc, LrcD, ScC, VcD, VcSd};
    use ServeFault::{Clean, Crash, Loss, Slow};
    use ServeLoad::{Base, High};
    let matrix: Vec<(String, Protocol, ServeLoad, ServeFault)> = vec![
        ("LRC_d".into(), LrcD, Base, Clean),
        ("HLRC".into(), Hlrc, Base, Clean),
        ("ScC_d".into(), ScC, Base, Clean),
        ("VC_d".into(), VcD, Base, Clean),
        ("VC_sd".into(), VcSd, Base, Clean),
        ("LRC_d hi".into(), LrcD, High, Clean),
        ("VC_sd hi".into(), VcSd, High, Clean),
        ("LRC_d loss".into(), LrcD, Base, Loss),
        ("VC_sd loss".into(), VcSd, Base, Loss),
        ("LRC_d slow".into(), LrcD, Base, Slow),
        ("VC_sd slow".into(), VcSd, Base, Slow),
        ("VC_d crash".into(), VcD, Base, Crash),
        ("VC_sd crash".into(), VcSd, Base, Crash),
    ];
    let runs: Vec<(Protocol, RunStats, ServePayload)> = matrix
        .iter()
        .map(|&(_, proto, load, fault)| {
            let (stats, payload) = serve_run(scale, np, proto, ServeCell { load, fault });
            (proto, stats, payload)
        })
        .collect();
    // Fault-free base-load tail per protocol: the degradation denominator.
    let clean_of = |proto: Protocol| -> &ServePayload {
        matrix
            .iter()
            .zip(&runs)
            .find(|((_, p, load, fault), _)| *p == proto && *load == Base && *fault == Clean)
            .map(|(_, (_, _, payload))| payload)
            .expect("every protocol has a clean base cell")
    };
    let mut t = Table::new(
        format!("Serve: open-loop KV store on {np} processors (protocol x load x faults)"),
        matrix.iter().map(|(name, ..)| name.clone()).collect(),
    );
    let usec = |ns: u64| Table::f(ns as f64 / 1000.0, 1);
    t.row(
        "Time (Sec.)",
        runs.iter()
            .map(|(_, s, _)| Table::f(s.time_secs(), 2))
            .collect(),
    );
    t.row(
        "Latency p50 (usec.)",
        runs.iter()
            .map(|(_, _, p)| usec(p.latency.quantile(0.5)))
            .collect(),
    );
    t.row(
        "Latency p99 (usec.)",
        runs.iter().map(|(_, _, p)| usec(p.latency.p99())).collect(),
    );
    t.row(
        "Latency p99.9 (usec.)",
        runs.iter()
            .map(|(_, _, p)| usec(p.latency.p999()))
            .collect(),
    );
    t.row(
        "Latency max (usec.)",
        runs.iter()
            .map(|(_, _, p)| usec(p.latency.max_ns()))
            .collect(),
    );
    t.row(
        "p99 x clean",
        runs.iter()
            .map(|(proto, _, p)| {
                Table::f(
                    p.latency.p99() as f64 / clean_of(*proto).latency.p99().max(1) as f64,
                    2,
                )
            })
            .collect(),
    );
    t.row(
        "p99.9 x clean",
        runs.iter()
            .map(|(proto, _, p)| {
                Table::f(
                    p.latency.p999() as f64 / clean_of(*proto).latency.p999().max(1) as f64,
                    2,
                )
            })
            .collect(),
    );
    t.row(
        "Num. Msg",
        runs.iter()
            .map(|(_, s, _)| Table::i(s.num_msgs()))
            .collect(),
    );
    t.row(
        "Rexmit",
        runs.iter().map(|(_, s, _)| Table::i(s.rexmits())).collect(),
    );
    t.row(
        "Recovered Pages",
        runs.iter()
            .map(|(_, _, p)| Table::i(p.recovered_pages))
            .collect(),
    );
    critpath_rows(
        &mut t,
        &runs
            .iter()
            .map(|(_, s, _)| s.crit.as_deref())
            .collect::<Vec<_>>(),
    );
    t
}

// -------------------------------------------------------------------
// Scale-out (the `scaling` cell family; not in the paper)
// -------------------------------------------------------------------

/// One scale-out run, recorded under the `scaling` app so the family ships
/// its own gated `BENCH_scaling.json`. The variant label carries the
/// application (`is_trad`, `sor_vopp`, ...) to keep cell keys unique
/// within the table.
fn scaling_run(
    scale: &Scale,
    app: CellApp,
    variant: CellVariant,
    proto: Protocol,
    np: usize,
) -> RunStats {
    let stats = scale.cached(app, variant, proto, np).unwrap_or_else(|| {
        let spec = CellSpec {
            app,
            variant,
            proto,
            np,
            serve: None,
            netgen: None,
        };
        execute_cell(scale, &spec).0
    });
    scale.record(
        "scaling",
        &format!("{}_{}", app.label(), variant.label()),
        &proto_label(proto),
        np,
        &stats,
    );
    stats
}

/// Scale-out table (not in the paper): IS, Gauss and SOR at 64 and 128
/// nodes on the paper's baseline (LRC_d), home-based LRC and the headline
/// VOPP protocol (VC_sd). This is the regime ROADMAP item 2 targets —
/// and the one where conservative-lookahead windows are dense enough for
/// `--sim-workers` to pay off (docs/PERFORMANCE.md §7).
pub fn table_scaling(scale: &Scale) -> Table {
    scale.begin_table("scaling");
    let procs = scale.scaling_procs();
    let apps = [
        (CellApp::Is, "IS"),
        (CellApp::Gauss, "Gauss"),
        (CellApp::Sor, "SOR"),
    ];
    let protos = [
        (Protocol::LrcD, CellVariant::Traditional),
        (Protocol::Hlrc, CellVariant::Traditional),
        (Protocol::VcSd, CellVariant::Vopp),
    ];
    let mut headers = Vec::new();
    // runs[proto][column]: column-major over app x nodes, matching
    // `cells_for("scaling")` cell order exactly.
    let mut runs: Vec<Vec<RunStats>> = protos.iter().map(|_| Vec::new()).collect();
    for (app, label) in apps {
        for &np in &procs {
            headers.push(format!("{label} {np}p"));
            for (i, &(proto, variant)) in protos.iter().enumerate() {
                runs[i].push(scaling_run(scale, app, variant, proto, np));
            }
        }
    }
    let mut t = Table::new(
        "Scale-out: IS/Gauss/SOR at 64 and 128 nodes".to_string(),
        headers,
    );
    for (i, &(proto, _)) in protos.iter().enumerate() {
        t.row(
            format!("{} Time (Sec.)", proto.label()),
            runs[i].iter().map(|s| Table::f(s.time_secs(), 2)).collect(),
        );
    }
    // The headline protocol's communication profile at scale.
    let vc = &runs[2];
    t.row(
        "VC_sd Data (MByte)",
        vc.iter().map(|s| Table::f(s.data_mbytes(), 2)).collect(),
    );
    t.row(
        "VC_sd Num. Msg",
        vc.iter().map(|s| Table::i(s.num_msgs())).collect(),
    );
    critpath_rows(
        &mut t,
        &vc.iter().map(|s| s.crit.as_deref()).collect::<Vec<_>>(),
    );
    t
}

// -------------------------------------------------------------------
// Network generations (the `netgen` cell family; not in the paper)
// -------------------------------------------------------------------

/// One netgen run, recorded under the `netgen` app so the family ships its
/// own gated `BENCH_netgen.json`. The variant label carries the
/// application and generation (`is_vopp_rdma`, ...) to keep cell keys
/// unique within the table.
fn netgen_run(
    scale: &Scale,
    app: CellApp,
    variant: CellVariant,
    gen: NetGen,
    proto: Protocol,
    np: usize,
) -> RunStats {
    let spec = CellSpec {
        app,
        variant,
        proto,
        np,
        serve: None,
        netgen: Some(gen),
    };
    let stats = scale
        .cache
        .as_ref()
        .and_then(|c| c.get(&spec.key()))
        .map(|r| r.stats.clone())
        .unwrap_or_else(|| execute_cell(scale, &spec).0);
    scale.record(
        "netgen",
        &format!("{}_{}_{}", app.label(), variant.label(), gen.label()),
        &proto_label(proto),
        np,
        &stats,
    );
    stats
}

/// Network-generation table (not in the paper): the four applications
/// under LRC_d, VC_sd and VC_rdma as the interconnect advances from the
/// paper's 100 Mbps testbed through 10 GbE to an RDMA-class fabric. The
/// phase-accounting rows make the bottleneck shift directly visible: the
/// wait shares that dominate at 100 Mbps collapse with the network, the
/// compute share rises toward 100%, and on the RDMA fabric VC_rdma sheds
/// the residual acquire wait and protocol CPU that VC_sd still pays for
/// inline diff application.
pub fn table_netgen(scale: &Scale) -> Table {
    scale.begin_table("netgen");
    let np = scale.stats_procs();
    let apps = [
        (CellApp::Is, "IS"),
        (CellApp::Gauss, "Gauss"),
        (CellApp::Sor, "SOR"),
        (CellApp::Nn, "NN"),
    ];
    let mut headers = Vec::new();
    for gen in NETGEN_GENS {
        for (proto, _) in NETGEN_PROTOS {
            headers.push(format!("{} {}", gen.label(), proto.label()));
        }
    }
    // runs[app][column]: generation-major columns, matching
    // `cells_for("netgen")` cell order exactly.
    let runs: Vec<Vec<RunStats>> = apps
        .iter()
        .map(|&(app, _)| {
            let mut row = Vec::new();
            for gen in NETGEN_GENS {
                for (proto, variant) in NETGEN_PROTOS {
                    row.push(netgen_run(scale, app, variant, gen, proto, np));
                }
            }
            row
        })
        .collect();
    let mut t = Table::new(
        format!("Netgen: network generations on {np} processors (LRC_d / VC_sd / VC_rdma)"),
        headers,
    );
    for ((_, label), runs) in apps.iter().zip(&runs) {
        t.row(
            format!("{label} Time (Sec.)"),
            runs.iter().map(|s| Table::f(s.time_secs(), 2)).collect(),
        );
        t.row(
            format!("{label} Data (MByte)"),
            runs.iter().map(|s| Table::f(s.data_mbytes(), 2)).collect(),
        );
        t.row(
            format!("{label} Rexmit"),
            runs.iter().map(|s| Table::i(s.rexmits())).collect(),
        );
        for (phase_label, phase) in [
            ("Compute (%)", Phase::Compute),
            ("Proto CPU (%)", Phase::ProtoCpu),
            ("Barrier Wait (%)", Phase::BarrierWait),
            ("Acquire Wait (%)", Phase::AcquireWait),
            ("Diff Wait (%)", Phase::DataWait),
        ] {
            t.row(
                format!("{label} {phase_label}"),
                runs.iter()
                    .map(|s| Table::f(s.phase_pct(phase), 1))
                    .collect(),
            );
        }
        t.row(
            format!("{label} Send Overhead (%)"),
            runs.iter()
                .map(|s| Table::f(s.send_overhead_pct(), 1))
                .collect(),
        );
    }
    t
}

/// All tables in paper order.
pub fn all_tables(scale: &Scale) -> Vec<Table> {
    vec![
        table1(scale),
        table2(scale),
        table3(scale),
        table4(scale),
        table5(scale),
        table6(scale),
        table7(scale),
        table8(scale),
        table9(scale),
    ]
}
