//! Minimal wall-clock micro-benchmark harness.
//!
//! A dependency-free stand-in for an external bench framework: each target
//! under `benches/` builds a [`Runner`], registers measurements with
//! [`Runner::bench`], and prints one line per result. `cargo bench` drives
//! the targets (they are `harness = false`); a positional argument filters
//! benchmarks by substring, like the standard harness.
//!
//! Timing is auto-calibrated: fast closures are batched until a batch
//! takes about a millisecond, then the median per-iteration time over a
//! few batches is reported. The benches assert *directions* (which choice
//! wins), not absolute numbers, so the harness only needs to be stable
//! enough to rank.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed batches per benchmark (the median is reported).
const SAMPLES: usize = 5;

/// Target duration of one timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(1);

/// One benchmark suite run.
pub struct Runner {
    filter: Option<String>,
    /// `(name, per-iteration median)` of every benchmark that ran.
    pub results: Vec<(String, Duration)>,
}

impl Runner {
    /// Build a runner from the process arguments (`cargo bench -- FILTER`).
    pub fn from_args() -> Runner {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Runner {
            filter,
            results: Vec::new(),
        }
    }

    /// Time `f` and report the median per-iteration duration, or `None`
    /// when the name does not match the command-line filter.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> Option<Duration> {
        if let Some(fl) = &self.filter {
            if !name.contains(fl.as_str()) {
                return None;
            }
        }
        // Calibrate the batch size on the live function (this doubles as
        // warmup): grow until one batch reaches the target duration.
        let mut inner: u32 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..inner {
                black_box(f());
            }
            if t0.elapsed() >= BATCH_TARGET || inner >= 1 << 20 {
                break;
            }
            inner *= 8;
        }
        let mut samples: Vec<Duration> = (0..SAMPLES)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..inner {
                    black_box(f());
                }
                t0.elapsed() / inner
            })
            .collect();
        samples.sort();
        let med = samples[SAMPLES / 2];
        println!(
            "{name:<44} {:>14}/iter   (min {}, {inner} iter/batch)",
            fmt(med),
            fmt(samples[0]),
        );
        self.results.push((name.to_string(), med));
        Some(med)
    }
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else {
        format!("{:.2} ms", ns as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut r = Runner {
            filter: None,
            results: Vec::new(),
        };
        let med = r.bench("spin", || black_box(17u64).wrapping_mul(31));
        assert!(med.is_some());
        assert_eq!(r.results.len(), 1);
        assert_eq!(r.results[0].0, "spin");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut r = Runner {
            filter: Some("only_this".into()),
            results: Vec::new(),
        };
        assert!(r.bench("something_else", || ()).is_none());
        assert!(r.results.is_empty());
    }
}
