//! Host-side self-profiling: where does the *benchmark process* spend real
//! memory and wall-clock?
//!
//! Everything here observes the host, never the simulation: peak RSS and
//! allocation counters have no connection to virtual time, so they are
//! reported (in `BENCH_wallclock.json`) but never gated by `metrics_diff`.
//!
//! * [`CountingAlloc`] — a `GlobalAlloc` wrapper counting allocations and
//!   allocated bytes (cumulative, relaxed atomics; a few ns per malloc).
//!   Installed by the `tables` binary only, so the library and its tests
//!   pay nothing.
//! * [`peak_rss_bytes`] — the process's high-water resident set, read from
//!   `/proc/self/status` (`VmHWM`) on Linux; `None` elsewhere.
//! * [`StageStats`] / [`StageTimer`] — wall-clock and allocation deltas per
//!   sweep stage (enumerate / simulate / render).

// The one place in the crate allowed to write `unsafe`: implementing the
// (unsafe-by-design) GlobalAlloc trait as a pure pass-through to System.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator. Install with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counters are relaxed atomics
// with no allocation or panicking on the alloc path.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Cumulative allocation counters since process start: `(count, bytes)`.
/// Both are zero unless [`CountingAlloc`] is the global allocator.
pub fn alloc_totals() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// The process's peak resident set size in bytes (`VmHWM`), or `None` when
/// the platform does not expose it. Best-effort by design: callers report
/// it as an optional field, never branch on it.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Wall-clock and allocation cost of one sweep stage.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// Stage name (`enumerate`, `simulate`, `render`).
    pub name: &'static str,
    /// Wall-clock spent in the stage, in nanoseconds.
    pub wall_ns: u64,
    /// Allocations performed during the stage (0 without [`CountingAlloc`]).
    pub allocs: u64,
    /// Bytes allocated during the stage (0 without [`CountingAlloc`]).
    pub alloc_bytes: u64,
}

/// Measures one stage: construct at stage start, [`StageTimer::finish`] at
/// stage end.
pub struct StageTimer {
    name: &'static str,
    start: Instant,
    allocs0: u64,
    bytes0: u64,
}

impl StageTimer {
    /// Start timing a stage.
    pub fn start(name: &'static str) -> StageTimer {
        let (allocs0, bytes0) = alloc_totals();
        StageTimer {
            name,
            start: Instant::now(),
            allocs0,
            bytes0,
        }
    }

    /// Stop timing and report the stage's deltas.
    pub fn finish(self) -> StageStats {
        let (allocs, bytes) = alloc_totals();
        StageStats {
            name: self.name,
            wall_ns: self.start.elapsed().as_nanos() as u64,
            allocs: allocs - self.allocs0,
            alloc_bytes: bytes - self.bytes0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timer_reports_monotone_deltas() {
        let t = StageTimer::start("test");
        let s = t.finish();
        assert_eq!(s.name, "test");
        // Without the global allocator installed the counters stay zero;
        // with it they only grow. Either way the deltas are non-negative
        // (u64 subtraction would have panicked in debug on regression).
        let _ = (s.allocs, s.alloc_bytes, s.wall_ns);
    }

    #[test]
    fn peak_rss_is_plausible_when_present() {
        if let Some(rss) = peak_rss_bytes() {
            // A test process occupies at least a few hundred KiB and less
            // than a TiB.
            assert!(rss > 100 * 1024, "rss {rss}");
            assert!(rss < 1 << 40, "rss {rss}");
        }
    }
}
