//! The `tables --racecheck` suite: dynamic correctness checking of the
//! paper's application matrix (see `docs/CORRECTNESS.md`).
//!
//! Two kinds of cells are run, each with a [`RaceChecker`] attached to the
//! cluster:
//!
//! * **Clean cells** — IS and SOR in both styles across all five
//!   protocol×style cells of the paper's matrix (traditional on
//!   LRC_d/HLRC_d/ScC under a happens-before checker, VOPP on VC_d/VC_sd
//!   under a view-discipline checker). Every cell must report **zero**
//!   violations: the paper's programs are race-free and view-disciplined.
//! * **Seeded cells** — the deliberately broken variants of
//!   [`vopp_apps::racy`], whose violation counts are known exactly. Every
//!   cell must report exactly its expected count, proving the checker
//!   detects what it claims to detect.
//!
//! The suite always runs the quick problem instances: checking validates
//! correctness properties, which do not depend on problem scale. Checking
//! is pure observation (it never advances virtual time), so the table
//! sweep itself is never affected — `--racecheck` adds runs, it does not
//! perturb existing artifacts.

use std::fmt::Write as _;
use std::sync::Arc;

use vopp_apps::is::{run_is, IsParams, IsVariant};
use vopp_apps::racy::{is_racy_expected, run_is_racy, run_sor_racy, sor_racy_expected};
use vopp_apps::sor::{run_sor, SorParams, SorVariant};
use vopp_core::{ClusterConfig, Protocol, RaceChecker, RacecheckMode};
use vopp_serve::{run_serve, run_serve_undisciplined, undisciplined_expected, ServeParams};

/// Processor count for every racecheck cell.
const NP: usize = 4;

/// The result of one checked cell.
pub struct CellReport {
    /// Cell label, e.g. `clean is traditional LRC_d`.
    pub label: String,
    /// Violations reported by the checker.
    pub found: usize,
    /// Violations the cell must report.
    pub expected: usize,
    /// The checker's full violation report (empty when clean).
    pub report: String,
}

impl CellReport {
    /// Whether the cell reported exactly its expected count.
    pub fn ok(&self) -> bool {
        self.found == self.expected
    }
}

/// The outcome of the whole suite.
pub struct RacecheckOutcome {
    /// One report per cell, in run order.
    pub cells: Vec<CellReport>,
}

impl RacecheckOutcome {
    /// Whether every cell matched its expected violation count.
    pub fn ok(&self) -> bool {
        self.cells.iter().all(CellReport::ok)
    }

    /// Human-readable summary, one line per cell plus violation reports
    /// for the seeded cells.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            let _ = writeln!(
                out,
                "[racecheck] {:<44} {} violation(s), expected {} — {}",
                c.label,
                c.found,
                c.expected,
                if c.ok() { "ok" } else { "FAIL" }
            );
            if !c.report.is_empty() {
                for line in c.report.lines() {
                    let _ = writeln!(out, "    {line}");
                }
            }
        }
        let _ = writeln!(
            out,
            "[racecheck] {}/{} cells ok",
            self.cells.iter().filter(|c| c.ok()).count(),
            self.cells.len()
        );
        out
    }
}

fn checked(np: usize, proto: Protocol, mode: RacecheckMode) -> (ClusterConfig, Arc<RaceChecker>) {
    let rc = Arc::new(RaceChecker::new(mode, np));
    let mut cfg = ClusterConfig::lossless(np, proto);
    cfg.racecheck = Some(rc.clone());
    (cfg, rc)
}

fn cell(label: String, expected: usize, rc: &RaceChecker) -> CellReport {
    CellReport {
        label,
        found: rc.count(),
        expected,
        report: rc.report(),
    }
}

/// Run the full racecheck matrix: clean cells must be silent, seeded cells
/// must report their exact known-answer counts.
pub fn run_racecheck() -> RacecheckOutcome {
    let mut cells = Vec::new();
    let is_p = IsParams::quick();
    let sor_p = SorParams::quick();

    // Clean cells: the paper's programs, all five protocol×style cells.
    for proto in [Protocol::LrcD, Protocol::Hlrc, Protocol::ScC] {
        let (cfg, rc) = checked(NP, proto, RacecheckMode::HappensBefore);
        run_is(&cfg, &is_p, IsVariant::Traditional);
        cells.push(cell(format!("clean is traditional {proto}"), 0, &rc));
        let (cfg, rc) = checked(NP, proto, RacecheckMode::HappensBefore);
        run_sor(&cfg, &sor_p, SorVariant::Traditional);
        cells.push(cell(format!("clean sor traditional {proto}"), 0, &rc));
    }
    for proto in [Protocol::VcD, Protocol::VcSd] {
        let (cfg, rc) = checked(NP, proto, RacecheckMode::ViewDiscipline);
        run_is(&cfg, &is_p, IsVariant::Vopp);
        cells.push(cell(format!("clean is vopp {proto}"), 0, &rc));
        let (cfg, rc) = checked(NP, proto, RacecheckMode::ViewDiscipline);
        run_sor(&cfg, &sor_p, SorVariant::Vopp);
        cells.push(cell(format!("clean sor vopp {proto}"), 0, &rc));
    }

    // Seeded cells: known-answer violation counts.
    for proto in [Protocol::LrcD, Protocol::Hlrc, Protocol::ScC] {
        let (cfg, rc) = checked(NP, proto, RacecheckMode::HappensBefore);
        run_is_racy(&cfg, 600, 2);
        cells.push(cell(
            format!("seeded is-racy traditional {proto}"),
            is_racy_expected(NP),
            &rc,
        ));
    }
    for proto in [Protocol::VcD, Protocol::VcSd] {
        let (cfg, rc) = checked(NP, proto, RacecheckMode::ViewDiscipline);
        run_sor_racy(&cfg, 64, 2);
        cells.push(cell(
            format!("seeded sor-racy vopp {proto}"),
            sor_racy_expected(),
            &rc,
        ));
    }

    // The serving store: the shard-view discipline must be clean across
    // all five protocol×style cells, and the seeded undisciplined variant
    // must report exactly one violation per discipline rule.
    let serve_p = ServeParams::quick();
    for proto in [Protocol::LrcD, Protocol::Hlrc, Protocol::ScC] {
        let (cfg, rc) = checked(NP, proto, RacecheckMode::HappensBefore);
        run_serve(&cfg, &serve_p, vopp_serve::ServeVariant::Traditional);
        cells.push(cell(format!("clean serve traditional {proto}"), 0, &rc));
    }
    for proto in [Protocol::VcD, Protocol::VcSd] {
        let (cfg, rc) = checked(NP, proto, RacecheckMode::ViewDiscipline);
        run_serve(&cfg, &serve_p, vopp_serve::ServeVariant::Vopp);
        cells.push(cell(format!("clean serve vopp {proto}"), 0, &rc));
        let (cfg, rc) = checked(NP, proto, RacecheckMode::ViewDiscipline);
        run_serve_undisciplined(&cfg, &serve_p);
        cells.push(cell(
            format!("seeded serve-undisciplined vopp {proto}"),
            undisciplined_expected(),
            &rc,
        ));
    }
    RacecheckOutcome { cells }
}
