//! Regenerate the paper's evaluation tables.
//!
//! ```text
//! cargo run -p vopp-bench --release --bin tables -- all
//! cargo run -p vopp-bench --release --bin tables -- table1 table3
//! cargo run -p vopp-bench --release --bin tables -- all --quick
//! cargo run -p vopp-bench --release --bin tables -- all --json > tables.json
//! cargo run -p vopp-bench --release --bin tables -- table1 --trace /tmp/t
//! ```
//!
//! `--trace <dir>` records a structured event trace of every cluster run,
//! writes `<app>_<variant>_<protocol>_<N>p.{events.json,perfetto.json,report.txt}`
//! into `<dir>` (the Perfetto file loads in <https://ui.perfetto.dev>), and
//! asserts the protocol conformance invariants on each trace.

use std::path::PathBuf;
use std::time::Instant;

use vopp_bench::tables;
use vopp_bench::{Scale, Table};
use vopp_trace::json::Value;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let trace_dir = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| match args.get(i + 1) {
            Some(dir) if !dir.starts_with("--") => PathBuf::from(dir),
            _ => {
                eprintln!("--trace requires a directory argument");
                std::process::exit(2);
            }
        });
    let wanted: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            // Skip flags and the --trace operand.
            !a.starts_with("--")
                && !matches!(args.get(i.wrapping_sub(1)), Some(prev) if prev == "--trace")
        })
        .map(|(_, s)| s.as_str())
        .collect();
    if wanted.is_empty() {
        eprintln!("usage: tables [--quick] [--json] [--trace DIR] (all | table1 .. table9 | ext)+");
        std::process::exit(2);
    }
    let scale = Scale { quick, trace_dir };
    type TableFn = fn(&Scale) -> Table;
    let jobs: Vec<(&str, TableFn)> = vec![
        ("table1", tables::table1),
        ("table2", tables::table2),
        ("table3", tables::table3),
        ("table4", tables::table4),
        ("table5", tables::table5),
        ("table6", tables::table6),
        ("table7", tables::table7),
        ("table8", tables::table8),
        ("table9", tables::table9),
        ("ext", tables::table_ext),
    ];
    let run_all = wanted.contains(&"all");
    let mut produced = Vec::new();
    for (name, f) in jobs {
        let in_all = run_all && name != "ext"; // `ext` is opt-in
        if in_all || wanted.contains(&name) {
            let t0 = Instant::now();
            let table = f(&scale);
            eprintln!("[{name} generated in {:.1?}]", t0.elapsed());
            if json {
                produced.push(table);
            } else {
                println!("{table}");
            }
        }
    }
    if json {
        let v = Value::Arr(produced.iter().map(Table::to_value).collect());
        println!("{}", v.to_json_pretty());
    }
}
