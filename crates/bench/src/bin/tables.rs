//! Regenerate the paper's evaluation tables.
//!
//! ```text
//! cargo run -p vopp-bench --release --bin tables -- all
//! cargo run -p vopp-bench --release --bin tables -- table1 table3
//! cargo run -p vopp-bench --release --bin tables -- all --quick
//! cargo run -p vopp-bench --release --bin tables -- all --json > tables.json
//! cargo run -p vopp-bench --release --bin tables -- table1 --trace /tmp/t
//! cargo run -p vopp-bench --release --bin tables -- all --quick --metrics out/
//! ```
//!
//! `--trace <dir>` records a structured event trace of every cluster run,
//! writes `<app>_<variant>_<protocol>_<N>p.{events.json,perfetto.json,report.txt}`
//! into `<dir>` (the Perfetto file loads in <https://ui.perfetto.dev>), and
//! asserts the protocol conformance invariants on each trace.
//!
//! `--metrics <dir>` records every verified run and writes one
//! `BENCH_<app>.json` per application into `<dir>` — the machine-readable
//! artifacts consumed by the `metrics_diff` regression gate.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use vopp_bench::tables;
use vopp_bench::{MetricsSink, Scale, Table};
use vopp_trace::json::Value;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let dir_flag = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .map(|i| match args.get(i + 1) {
                Some(dir) if !dir.starts_with("--") => PathBuf::from(dir),
                _ => {
                    eprintln!("{flag} requires a directory argument");
                    std::process::exit(2);
                }
            })
    };
    let trace_dir = dir_flag("--trace");
    let metrics_dir = dir_flag("--metrics");
    let wanted: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            // Skip flags and the --trace/--metrics operands.
            !a.starts_with("--")
                && !matches!(args.get(i.wrapping_sub(1)), Some(prev) if prev == "--trace" || prev == "--metrics")
        })
        .map(|(_, s)| s.as_str())
        .collect();
    if wanted.is_empty() {
        eprintln!(
            "usage: tables [--quick] [--json] [--trace DIR] [--metrics DIR] \
             (all | table1 .. table9 | ext)+"
        );
        std::process::exit(2);
    }
    let sink = metrics_dir.as_ref().map(|_| Arc::new(MetricsSink::new()));
    let scale = Scale {
        quick,
        trace_dir,
        metrics: sink.clone(),
        net_override: None,
    };
    type TableFn = fn(&Scale) -> Table;
    let jobs: Vec<(&str, TableFn)> = vec![
        ("table1", tables::table1),
        ("table2", tables::table2),
        ("table3", tables::table3),
        ("table4", tables::table4),
        ("table5", tables::table5),
        ("table6", tables::table6),
        ("table7", tables::table7),
        ("table8", tables::table8),
        ("table9", tables::table9),
        ("ext", tables::table_ext),
    ];
    let run_all = wanted.contains(&"all");
    let mut produced = Vec::new();
    for (name, f) in jobs {
        let in_all = run_all && name != "ext"; // `ext` is opt-in
        if in_all || wanted.contains(&name) {
            let t0 = Instant::now();
            let table = f(&scale);
            eprintln!("[{name} generated in {:.1?}]", t0.elapsed());
            if json {
                produced.push(table);
            } else {
                println!("{table}");
            }
        }
    }
    if json {
        let v = Value::Arr(produced.iter().map(Table::to_value).collect());
        println!("{}", v.to_json_pretty());
    }
    if let (Some(sink), Some(dir)) = (sink, metrics_dir) {
        match sink.write_all(&dir) {
            Ok(files) => eprintln!(
                "[metrics: {} cells -> {} in {}]",
                sink.len(),
                files.join(", "),
                dir.display()
            ),
            Err(e) => {
                eprintln!("failed to write metrics into {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
}
