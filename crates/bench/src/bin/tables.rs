//! Regenerate the paper's evaluation tables.
//!
//! ```text
//! cargo run -p vopp-bench --release --bin tables -- all
//! cargo run -p vopp-bench --release --bin tables -- table1 table3
//! cargo run -p vopp-bench --release --bin tables -- all --quick
//! cargo run -p vopp-bench --release --bin tables -- all --json > tables.json
//! cargo run -p vopp-bench --release --bin tables -- table1 --trace /tmp/t
//! cargo run -p vopp-bench --release --bin tables -- all --quick --metrics out/
//! cargo run -p vopp-bench --release --bin tables -- all --jobs 4
//! ```
//!
//! `--trace <dir>` records a structured event trace of every cluster run,
//! writes `<app>_<variant>_<protocol>_<N>p.{events.json,perfetto.json,report.txt}`
//! into `<dir>` (the Perfetto file loads in <https://ui.perfetto.dev>), and
//! asserts the protocol conformance invariants on each trace.
//!
//! `--metrics <dir>` records every verified run and writes one
//! `BENCH_<app>.json` per application into `<dir>` — the machine-readable
//! artifacts consumed by the `metrics_diff` regression gate — plus
//! `BENCH_wallclock.json` (real time per cell; reported, never gated).
//!
//! `--jobs N` (or `VOPP_JOBS=N`; default: available parallelism) sizes the
//! worker pool that precomputes the sweep's cells. Every artifact is
//! byte-identical for any worker count — cells are independent
//! deterministic simulations consumed in sequential order.
//!
//! `--sim-workers N|auto` (or `VOPP_SIM_WORKERS=...`; default: 1)
//! additionally parallelizes *inside* each simulation: the kernel executes
//! conservative-lookahead windows of causally independent events on N
//! threads and merges them in virtual-time order (see `docs/PERFORMANCE.md`
//! §7). `auto` sizes the pool from the host and engages it only while the
//! rolling events-per-window density clears a measured crossover threshold,
//! so sparse paper-scale runs never pay dispatch costs. Composes with
//! `--jobs`; every artifact stays byte-identical for any combination. Runs
//! on networks without a lookahead bound (or below the 1 us floor, e.g. the
//! zero-latency what-if) fall back to sequential with a one-time notice.
//!
//! The `scaling` table (64/128-node scale-out cells, the regime where
//! `--sim-workers` pays) is opt-in like `ext` and `serve`: request it by
//! name (`tables scaling`).
//!
//! The `netgen` table (IS/Gauss/SOR/NN across network generations under
//! LRC_d, VC_sd and VC_rdma, see `docs/NETWORK.md`) is opt-in the same
//! way: request it by name (`tables netgen`).
//!
//! `--cache <dir>` keeps a persistent content-addressed store of finished
//! cells (`sweep-cache.json`) across invocations: a warm rerun simulates
//! nothing and replays the identical tables/metrics from disk. The cache is
//! addressed by a build fingerprint plus a scale/cost-model hash, so any
//! rebuild or configuration change invalidates it wholesale. Ignored when
//! `--trace` is set (trace artifacts require actually running the cells).
//!
//! `--faults <plan>` applies a global fault plan to every cell (e.g.
//! `loss=0.02@7,slow=0x1.5`): message loss and slowdowns reshape the
//! timing of all runs, while crash entries are acted on only by the
//! `serve` table (batch apps ignore them). The plan is folded into the
//! sweep-cache context hash, so cached cells never mix fault regimes.
//!
//! The `serve` table (open-loop service workload, see `docs/SERVING.md`)
//! is opt-in like `ext`: request it by name (`tables serve`), it is not
//! part of `all`.
//!
//! `--critpath` attaches the causal profiler to every run: each table
//! gains `CP ...` rows decomposing the virtual-time critical path (plus
//! what-if speedup ceilings), `--metrics` additionally writes
//! `BENCH_critpath.json`, and `--trace` additionally writes a
//! `<stem>.critpath.perfetto.json` track per run. Profiling is pure
//! observation: every other table, metric and trace stream stays
//! byte-identical. Like `--trace`, it disables `--cache` (a warm replay
//! carries no causal log to walk).
//!
//! `--racecheck` additionally runs the dynamic-checker suite (see
//! `docs/CORRECTNESS.md`): clean applications across all five
//! protocol×style cells must report zero violations, and the seeded-racy
//! variants must report their exact known-answer counts. Exits nonzero on
//! any mismatch. May be used alone (`tables --racecheck`) without
//! generating tables. Checking never perturbs the table sweep: all other
//! artifacts stay byte-identical with or without this flag.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use vopp_bench::hostprof::{peak_rss_bytes, CountingAlloc, StageStats, StageTimer};
use vopp_bench::sweep::{
    cells_for, context_hash, dedup_cells, run_sweep_cached, write_wallclock, DiskCache,
};
use vopp_bench::tables;
use vopp_bench::{MetricsSink, Scale, Table};
use vopp_core::FaultPlan;
use vopp_trace::json::Value;

/// Count every allocation the table run makes; the per-stage deltas land
/// in `BENCH_wallclock.json`. Library users and tests don't pay for this —
/// only this binary installs the counting allocator.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn jobs_from(args: &[String]) -> usize {
    let parse = |s: &str, what: &str| match s.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("{what} must be a positive integer, got {s:?}");
            std::process::exit(2);
        }
    };
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        match args.get(i + 1) {
            Some(n) if !n.starts_with("--") => return parse(n, "--jobs"),
            _ => {
                eprintln!("--jobs requires a positive integer argument");
                std::process::exit(2);
            }
        }
    }
    if let Ok(n) = std::env::var("VOPP_JOBS") {
        return parse(&n, "VOPP_JOBS");
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

fn sim_workers_from(args: &[String]) -> usize {
    let parse = |s: &str, what: &str| {
        if s == "auto" {
            return vopp_sim::SIM_WORKERS_AUTO;
        }
        match s.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("{what} must be a positive integer or \"auto\", got {s:?}");
                std::process::exit(2);
            }
        }
    };
    if let Some(i) = args.iter().position(|a| a == "--sim-workers") {
        match args.get(i + 1) {
            Some(n) if !n.starts_with("--") => return parse(n, "--sim-workers"),
            _ => {
                eprintln!("--sim-workers requires a positive integer or \"auto\"");
                std::process::exit(2);
            }
        }
    }
    if let Ok(n) = std::env::var("VOPP_SIM_WORKERS") {
        return parse(&n, "VOPP_SIM_WORKERS");
    }
    1
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let racecheck = args.iter().any(|a| a == "--racecheck");
    let critpath = args.iter().any(|a| a == "--critpath");
    let jobs = jobs_from(&args);
    // Intra-run parallel kernel width for every simulation this process
    // runs. Composes freely with --jobs: --jobs parallelizes across cells,
    // --sim-workers inside each one; artifacts are byte-identical for any
    // combination. The race-checker suite always forces its own runs
    // sequential (see `vopp_dsm::ClusterConfig::sim_workers`).
    vopp_sim::set_sim_workers_default(sim_workers_from(&args));
    let dir_flag = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .map(|i| match args.get(i + 1) {
                Some(dir) if !dir.starts_with("--") => PathBuf::from(dir),
                _ => {
                    eprintln!("{flag} requires a directory argument");
                    std::process::exit(2);
                }
            })
    };
    let trace_dir = dir_flag("--trace");
    let metrics_dir = dir_flag("--metrics");
    let mut cache_dir = dir_flag("--cache");
    let faults = match args.iter().position(|a| a == "--faults") {
        None => FaultPlan::default(),
        Some(i) => match args.get(i + 1) {
            Some(spec) if !spec.starts_with("--") => match FaultPlan::parse(spec) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("--faults: {e}");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!("--faults requires a fault-plan argument (e.g. loss=0.02@7)");
                std::process::exit(2);
            }
        },
    };
    if cache_dir.is_some() && trace_dir.is_some() {
        eprintln!("[cache: disabled — --trace requires simulating every cell]");
        cache_dir = None;
    }
    if cache_dir.is_some() && critpath {
        eprintln!("[cache: disabled — --critpath requires simulating every cell]");
        cache_dir = None;
    }
    let wanted: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            // Skip flags and the --trace/--metrics/--jobs/--cache/--faults
            // operands.
            !a.starts_with("--")
                && !matches!(args.get(i.wrapping_sub(1)),
                    Some(prev) if prev == "--trace" || prev == "--metrics"
                        || prev == "--jobs" || prev == "--cache"
                        || prev == "--faults" || prev == "--sim-workers")
        })
        .map(|(_, s)| s.as_str())
        .collect();
    if wanted.is_empty() && !racecheck {
        eprintln!(
            "usage: tables [--quick] [--json] [--jobs N] [--sim-workers N|auto] [--trace DIR] \
             [--metrics DIR] [--cache DIR] [--faults PLAN] [--critpath] [--racecheck] \
             (all | table1 .. table9 | ext | serve | scaling | netgen)*"
        );
        std::process::exit(2);
    }
    if racecheck && wanted.is_empty() {
        run_racecheck_suite();
        return;
    }
    let sink = metrics_dir.as_ref().map(|_| Arc::new(MetricsSink::new()));
    let mut scale = Scale {
        quick,
        trace_dir,
        metrics: sink.clone(),
        net_override: None,
        netgen: None,
        cache: None,
        faults,
        critpath,
    };
    type TableFn = fn(&Scale) -> Table;
    let table_fns: Vec<(&str, TableFn)> = vec![
        ("table1", tables::table1),
        ("table2", tables::table2),
        ("table3", tables::table3),
        ("table4", tables::table4),
        ("table5", tables::table5),
        ("table6", tables::table6),
        ("table7", tables::table7),
        ("table8", tables::table8),
        ("table9", tables::table9),
        ("ext", tables::table_ext),
        ("serve", tables::table_serve),
        ("scaling", tables::table_scaling),
        ("netgen", tables::table_netgen),
    ];
    let run_all = wanted.contains(&"all");
    let opt_in = ["ext", "serve", "scaling", "netgen"];
    let selected: Vec<(&str, TableFn)> = table_fns
        .into_iter()
        .filter(|(name, _)| (run_all && !opt_in.contains(name)) || wanted.contains(name))
        .collect();

    // Precompute every selected cell on the worker pool; the table
    // functions below consume the cache in their original sequential
    // order, so all artifacts stay byte-identical for any --jobs value.
    // Each stage's wall-clock and allocation delta lands in
    // `BENCH_wallclock.json`.
    let mut stages: Vec<StageStats> = Vec::new();
    let stage = StageTimer::start("enumerate");
    let specs = dedup_cells(
        &selected
            .iter()
            .flat_map(|(name, _)| cells_for(name, &scale))
            .collect::<Vec<_>>(),
    );
    stages.push(stage.finish());
    let stage = StageTimer::start("simulate");
    let mut disk = cache_dir
        .as_ref()
        .map(|dir| DiskCache::open(dir, context_hash(&scale)));
    let cache = Arc::new(run_sweep_cached(&scale, &specs, jobs, disk.as_mut()));
    stages.push(stage.finish());
    eprintln!(
        "[sweep: {} cells on {} worker(s) in {:.1?}]",
        cache.len(),
        cache.jobs,
        std::time::Duration::from_nanos(cache.total_wall_ns)
    );
    if disk.is_some() {
        eprintln!(
            "[cache: {} warm, {} simulated]",
            cache.warm_cells, cache.simulated_cells
        );
    }
    scale.cache = Some(cache.clone());

    let stage = StageTimer::start("render");
    let mut produced = Vec::new();
    for (name, f) in &selected {
        let t0 = Instant::now();
        let table = f(&scale);
        eprintln!("[{name} generated in {:.1?}]", t0.elapsed());
        if json {
            produced.push(table);
        } else {
            println!("{table}");
        }
    }
    if json {
        let v = Value::Arr(produced.iter().map(Table::to_value).collect());
        println!("{}", v.to_json_pretty());
    }
    if let (Some(sink), Some(dir)) = (&sink, &metrics_dir) {
        match sink.write_all(dir) {
            Ok(files) => eprintln!(
                "[metrics: {} cells -> {} in {}]",
                sink.len(),
                files.join(", "),
                dir.display()
            ),
            Err(e) => {
                eprintln!("failed to write metrics into {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    stages.push(stage.finish());
    // Written last so the artifact covers every stage of the run.
    if let Some(dir) = &metrics_dir {
        if let Err(e) = write_wallclock(&cache, &stages, dir) {
            eprintln!("failed to write BENCH_wallclock.json: {e}");
            std::process::exit(1);
        }
    }
    if let Some(rss) = peak_rss_bytes() {
        eprintln!("[host: peak RSS {:.1} MiB]", rss as f64 / (1024.0 * 1024.0));
    }
    if racecheck {
        run_racecheck_suite();
    }
}

/// Run the dynamic-checker suite and exit nonzero on any count mismatch.
fn run_racecheck_suite() {
    let t0 = Instant::now();
    let outcome = vopp_bench::run_racecheck();
    print!("{}", outcome.render());
    eprintln!("[racecheck suite in {:.1?}]", t0.elapsed());
    if !outcome.ok() {
        std::process::exit(1);
    }
}
