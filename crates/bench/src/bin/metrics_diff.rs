//! Perf-regression gate over `BENCH_<app>.json` artifacts.
//!
//! ```text
//! cargo run -p vopp-bench --release --bin tables -- all --quick --metrics out/
//! cargo run -p vopp-bench --release --bin metrics_diff -- bench/baselines out/
//! ```
//!
//! Compares every `BENCH_*.json` under the baseline directory against the
//! same-named candidate file. Exits nonzero (printing one line per
//! violation) when a baseline cell is missing, its virtual time drifts by
//! more than the tolerance, or any exact counter (messages, bytes,
//! barriers, diff requests, retransmissions) changes at all. The simulator
//! is deterministic, so a clean tree always passes and any protocol or
//! cost-model change is caught.

use std::path::PathBuf;

use vopp_bench::metrics::{compare_dirs, TIME_DRIFT_PCT};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline, candidate] = args.as_slice() else {
        eprintln!("usage: metrics_diff BASELINE_DIR CANDIDATE_DIR");
        std::process::exit(2);
    };
    let (compared, errors) = compare_dirs(&PathBuf::from(baseline), &PathBuf::from(candidate));
    if errors.is_empty() {
        println!(
            "metrics gate OK: {compared} cells within {TIME_DRIFT_PCT}% time drift, counts exact"
        );
    } else {
        for e in &errors {
            eprintln!("FAIL {e}");
        }
        eprintln!("metrics gate FAILED: {} violation(s)", errors.len());
        std::process::exit(1);
    }
}
