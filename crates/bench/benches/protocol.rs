//! Protocol-operation benchmarks: wall-clock cost of simulating the three
//! DSM systems end to end on small kernels (the simulator's own throughput,
//! complementing the virtual-time results of the `tables` binary).

use vopp_bench::harness::Runner;
use vopp_core::prelude::*;

fn bench_view_pingpong(r: &mut Runner) {
    for proto in [Protocol::VcD, Protocol::VcSd] {
        r.bench(&format!("view_pingpong/{proto}"), || {
            let mut world = WorldBuilder::new();
            let v = world.view_u32(64);
            let cfg = ClusterConfig::lossless(2, proto);
            run_cluster(&cfg, world.build(), move |ctx| {
                for _ in 0..50 {
                    ctx.with_view(&v, |r| r.update(ctx, 0, |x| x + 1));
                }
                ctx.barrier();
            })
        });
    }
}

fn bench_barrier(r: &mut Runner) {
    for proto in [Protocol::LrcD, Protocol::VcSd] {
        r.bench(&format!("barrier_100x/{proto}"), || {
            let world = WorldBuilder::new();
            let cfg = ClusterConfig::lossless(8, proto);
            run_cluster(&cfg, world.build(), |ctx| {
                for _ in 0..100 {
                    ctx.barrier();
                }
            })
        });
    }
}

fn bench_fault_path(r: &mut Runner) {
    // LRC producer/consumer: measures twin + diff + fault + fetch machinery.
    r.bench("lrc_fault_fetch_64pages", || {
        let mut world = WorldBuilder::new();
        let arr = world.alloc_u32(64 * 1024); // 64 pages
        let cfg = ClusterConfig::lossless(2, Protocol::LrcD);
        run_cluster(&cfg, world.build(), move |ctx| {
            if ctx.me() == 0 {
                let data = vec![7u32; 64 * 1024];
                arr.write_all(ctx, &data);
            }
            ctx.barrier();
            if ctx.me() == 1 {
                let mut buf = vec![0u32; 64 * 1024];
                arr.read_into(ctx, 0, &mut buf);
            }
            ctx.barrier();
        })
    });
}

fn main() {
    let mut r = Runner::from_args();
    bench_view_pingpong(&mut r);
    bench_barrier(&mut r);
    bench_fault_path(&mut r);
}
