//! Protocol-operation benchmarks: wall-clock cost of simulating the three
//! DSM systems end to end on small kernels (the simulator's own throughput,
//! complementing the virtual-time results of the `tables` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vopp_core::prelude::*;

fn bench_view_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("view_pingpong");
    g.sample_size(10);
    for proto in [Protocol::VcD, Protocol::VcSd] {
        g.bench_with_input(BenchmarkId::from_parameter(proto), &proto, |b, &proto| {
            b.iter(|| {
                let mut world = WorldBuilder::new();
                let v = world.view_u32(64);
                let cfg = ClusterConfig::lossless(2, proto);
                run_cluster(&cfg, world.build(), move |ctx| {
                    for _ in 0..50 {
                        ctx.with_view(&v, |r| r.update(ctx, 0, |x| x + 1));
                    }
                    ctx.barrier();
                })
            })
        });
    }
    g.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier_100x");
    g.sample_size(10);
    for proto in [Protocol::LrcD, Protocol::VcSd] {
        g.bench_with_input(BenchmarkId::from_parameter(proto), &proto, |b, &proto| {
            b.iter(|| {
                let world = WorldBuilder::new();
                let cfg = ClusterConfig::lossless(8, proto);
                run_cluster(&cfg, world.build(), |ctx| {
                    for _ in 0..100 {
                        ctx.barrier();
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_fault_path(c: &mut Criterion) {
    // LRC producer/consumer: measures twin + diff + fault + fetch machinery.
    c.bench_function("lrc_fault_fetch_64pages", |b| {
        b.iter(|| {
            let mut world = WorldBuilder::new();
            let arr = world.alloc_u32(64 * 1024); // 64 pages
            let cfg = ClusterConfig::lossless(2, Protocol::LrcD);
            run_cluster(&cfg, world.build(), move |ctx| {
                if ctx.me() == 0 {
                    let data = vec![7u32; 64 * 1024];
                    arr.write_all(ctx, &data);
                }
                ctx.barrier();
                if ctx.me() == 1 {
                    let mut buf = vec![0u32; 64 * 1024];
                    arr.read_into(ctx, 0, &mut buf);
                }
                ctx.barrier();
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_view_pingpong, bench_barrier, bench_fault_path
}
criterion_main!(benches);
