//! Micro-benchmarks of the memory and network substrates.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vopp_page::{Diff, PageBuf, SharedHeap, VTime, PAGE_WORDS};
use vopp_sim::{NetModel, RouteRequest, SimTime};
use vopp_simnet::{EthernetModel, NetConfig};

fn bench_diff(c: &mut Criterion) {
    let twin = PageBuf::zeroed();
    // Sparse page: every 8th word modified.
    let mut sparse = PageBuf::zeroed();
    for w in (0..PAGE_WORDS).step_by(8) {
        sparse.set_word(w, w as u32 + 1);
    }
    // Dense page: everything modified.
    let mut dense = PageBuf::zeroed();
    for w in 0..PAGE_WORDS {
        dense.set_word(w, w as u32 + 1);
    }
    c.bench_function("diff_create_sparse", |b| {
        b.iter(|| Diff::create(black_box(&twin), black_box(&sparse)))
    });
    c.bench_function("diff_create_dense", |b| {
        b.iter(|| Diff::create(black_box(&twin), black_box(&dense)))
    });
    let d_sparse = Diff::create(&twin, &sparse);
    let d_dense = Diff::create(&twin, &dense);
    c.bench_function("diff_apply_sparse", |b| {
        let mut page = PageBuf::zeroed();
        b.iter(|| d_sparse.apply(black_box(&mut page)))
    });
    c.bench_function("diff_merge_integration", |b| {
        b.iter(|| black_box(&d_sparse).merge(black_box(&d_dense)))
    });
}

fn bench_vtime(c: &mut Criterion) {
    let mut a = VTime::zero(32);
    let mut bvt = VTime::zero(32);
    for i in 0..32 {
        a.set(i, (i * 7 % 13) as u32);
        bvt.set(i, (i * 5 % 11) as u32);
    }
    c.bench_function("vtime_join_32", |b| {
        b.iter(|| black_box(&a).join(black_box(&bvt)))
    });
    c.bench_function("vtime_dominates_32", |b| {
        b.iter(|| black_box(&a).dominates(black_box(&bvt)))
    });
}

fn bench_heap(c: &mut Criterion) {
    c.bench_function("heap_alloc_1000", |b| {
        b.iter(|| {
            let mut h = SharedHeap::new();
            for i in 0..1000 {
                black_box(h.alloc(64 + (i % 100), 8));
            }
            h.pages_needed()
        })
    });
}

fn bench_net(c: &mut Criterion) {
    c.bench_function("ethernet_route", |b| {
        let mut m = EthernetModel::new(32, NetConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            m.route(RouteRequest {
                now: SimTime(t),
                src: (t % 31) as usize,
                dst: ((t + 7) % 32) as usize,
                wire_bytes: 512,
                pending_at_dst: 2,
                pending_bytes_at_dst: 1024,
            })
        })
    });
}

criterion_group!(benches, bench_diff, bench_vtime, bench_heap, bench_net);
criterion_main!(benches);
