//! Micro-benchmarks of the memory and network substrates.

use std::any::Any;
use std::sync::Arc;

use vopp_bench::harness::{black_box, Runner};
use vopp_page::{Diff, DiffRun, PageBuf, PagePool, SharedHeap, VTime, PAGE_WORDS};
use vopp_sim::{DeliveryClass, NetModel, Payload, RouteRequest, Sim, SimDuration, SimTime};
use vopp_simnet::{EthernetModel, NetConfig};

/// The pre-chunking `Diff::create`, replicated verbatim from the seed: a
/// word-by-word scan growing each run's vector by push. Kept as the
/// measured reference the chunked kernel is compared against (run-for-run
/// equivalence itself is asserted by the randomized suite in `vopp-page`).
fn scalar_create_runs(twin: &PageBuf, current: &PageBuf) -> Vec<DiffRun> {
    let mut runs = Vec::new();
    let mut w = 0;
    while w < PAGE_WORDS {
        if twin.word(w) != current.word(w) {
            let start = w;
            let mut words = Vec::new();
            while w < PAGE_WORDS && twin.word(w) != current.word(w) {
                words.push(current.word(w));
                w += 1;
            }
            runs.push(DiffRun {
                word_off: start as u32,
                words,
            });
        } else {
            w += 1;
        }
    }
    runs
}

/// Diff kernels on the canonical dirtiness patterns: sparse (one small
/// contiguous write — the common DSM case of a node touching a few adjacent
/// array elements in a page), scattered (eight isolated stores across the
/// page), dense (every 8th word), and full-page (every word modified).
fn bench_diff(r: &mut Runner) {
    let twin = PageBuf::zeroed();
    let mut pages = Vec::new();
    let mut sparse = PageBuf::zeroed();
    for w in 256..264 {
        sparse.set_word(w, w as u32 + 1);
    }
    pages.push(("sparse", sparse));
    for (label, step) in [("scattered", 128), ("dense", 8), ("full", 1)] {
        let mut cur = PageBuf::zeroed();
        for w in (0..PAGE_WORDS).step_by(step) {
            cur.set_word(w, w as u32 + 1);
        }
        pages.push((label, cur));
    }
    for (label, cur) in &pages {
        let chunked = r.bench(&format!("diff_create_{label}"), || {
            Diff::create(black_box(&twin), black_box(cur))
        });
        let scalar = r.bench(&format!("diff_create_{label}_scalar_ref"), || {
            scalar_create_runs(black_box(&twin), black_box(cur))
        });
        if let (Some(c), Some(s)) = (chunked, scalar) {
            println!(
                "    -> chunked create is {:.1}x the scalar reference ({label})",
                s.as_nanos() as f64 / c.as_nanos().max(1) as f64
            );
        }
    }
    for (label, cur) in &pages {
        let d = Diff::create(&twin, cur);
        let mut page = PageBuf::zeroed();
        r.bench(&format!("diff_apply_{label}"), || {
            d.apply(black_box(&mut page))
        });
    }
    // Merge (diff integration): newer overlapping runs shadow older ones.
    let d_sparse = Diff::create(&twin, &pages[1].1); // scattered
    let d_dense = Diff::create(&twin, &pages[2].1);
    let d_full = Diff::create(&twin, &pages[3].1);
    r.bench("diff_merge_sparse_into_dense", || {
        black_box(&d_dense).merge(black_box(&d_sparse))
    });
    r.bench("diff_merge_integration", || {
        black_box(&d_sparse).merge(black_box(&d_dense))
    });
    r.bench("diff_merge_full_page", || {
        black_box(&d_dense).merge(black_box(&d_full))
    });
}

/// Page recycling vs. fresh heap allocation per twin.
fn bench_pool(r: &mut Runner) {
    let src = {
        let mut p = PageBuf::zeroed();
        for w in (0..PAGE_WORDS).step_by(8) {
            p.set_word(w, w as u32 + 1);
        }
        p
    };
    let mut pool = PagePool::default();
    r.bench("pool_acquire_release_zeroed", || {
        let b = pool.acquire_zeroed();
        pool.release(black_box(b));
    });
    r.bench("pool_acquire_release_copy", || {
        let b = pool.acquire_copy(black_box(&src));
        pool.release(black_box(b));
    });
    r.bench("pool_miss_fresh_alloc", || {
        // The un-pooled baseline: allocate and drop a page per twin.
        black_box(Box::new(src.clone()))
    });
}

fn bench_vtime(r: &mut Runner) {
    let mut a = VTime::zero(32);
    let mut bvt = VTime::zero(32);
    for i in 0..32 {
        a.set(i, (i * 7 % 13) as u32);
        bvt.set(i, (i * 5 % 11) as u32);
    }
    r.bench("vtime_join_32", || black_box(&a).join(black_box(&bvt)));
    r.bench("vtime_dominates_32", || {
        black_box(&a).dominates(black_box(&bvt))
    });
}

fn bench_heap(r: &mut Runner) {
    r.bench("heap_alloc_1000", || {
        let mut h = SharedHeap::new();
        for i in 0..1000 {
            black_box(h.alloc(64 + (i % 100), 8));
        }
        h.pages_needed()
    });
}

fn bench_net(r: &mut Runner) {
    let mut m = EthernetModel::new(32, NetConfig::default());
    let mut t = 0u64;
    r.bench("ethernet_route", || {
        t += 1000;
        m.route(RouteRequest {
            now: SimTime(t),
            src: (t % 31) as usize,
            dst: ((t + 7) % 32) as usize,
            wire_bytes: 512,
            pending_bytes_at_dst: 1024,
            reliable: false,
        })
    });
}

/// One lockstep cluster run: 8 processes each advancing their clocks in
/// identical compute slices, so after the first round every wake-up is a
/// same-instant `Resume` for the next process — the direct-handoff fast
/// path's best case (and the shape of every barrier release in the DSM
/// protocols). Returns the kernel's handoff counters.
fn lockstep_run(direct: bool) -> (u64, u64) {
    let mut sim = Sim::new(8, Box::new(EthernetModel::new(8, NetConfig::lossless())));
    sim.set_direct_handoff(direct);
    let out = sim.run(|ctx| {
        for _ in 0..64 {
            ctx.compute(SimDuration::from_micros(10));
        }
        0u64
    });
    (out.handoff.direct, out.handoff.via_controller)
}

/// Kernel wake-up path: the same 8-process lockstep workload with the
/// direct-handoff fast path on vs off (every wake-up through the
/// controller thread). The measured delta is pure scheduling overhead —
/// virtual-time results are identical by construction.
fn bench_kernel(r: &mut Runner) {
    let (direct, via_ctl) = lockstep_run(true);
    println!("    -> lockstep handoff counters: {direct} direct, {via_ctl} via controller");
    let on = r.bench("kernel_lockstep_handoff_on", || {
        black_box(lockstep_run(true))
    });
    let off = r.bench("kernel_lockstep_handoff_off", || {
        black_box(lockstep_run(false))
    });
    if let (Some(on), Some(off)) = (on, off) {
        println!(
            "    -> direct handoff runs the lockstep cluster in {:.2}x the time of the controller path",
            on.as_nanos() as f64 / off.as_nanos().max(1) as f64
        );
    }
}

/// One neighbor-exchange cluster run: every process alternates a compute
/// slice with a ring send/recv — the communication shape of the SOR/Gauss
/// boundary exchanges, and dense enough in events that the parallel kernel's
/// windows carry real work. Returns the (worker-invariant) virtual end time
/// as a self-check token.
fn exchange_run(nodes: usize, workers: usize) -> u64 {
    let mut sim = Sim::new(
        nodes,
        Box::new(EthernetModel::new(nodes, NetConfig::lossless())),
    );
    sim.set_workers(workers);
    let out = sim.run(|ctx| {
        let n = ctx.nprocs();
        let me = ctx.me();
        for _ in 0..24 {
            ctx.compute(SimDuration::from_micros(30));
            ctx.send((me + 1) % n, 512, DeliveryClass::App, 0, Arc::new(0u8));
            let _ = ctx.recv();
        }
        0u8
    });
    out.end_time.nanos()
}

/// Intra-run parallel kernel: the neighbor-exchange workload across
/// 1/2/4/8 sim workers at 8–64 nodes. Virtual time is identical at every
/// width (asserted); only wall-clock moves. The printed speedups are the
/// coordination-overhead picture `docs/PERFORMANCE.md` §7 discusses.
fn bench_parkernel(r: &mut Runner) {
    for nodes in [8usize, 16, 32, 64] {
        let vt = exchange_run(nodes, 1);
        let mut base = None;
        for workers in [1usize, 2, 4, 8] {
            let d = r.bench(&format!("parkernel_exchange_{nodes}n_{workers}w"), || {
                let end = black_box(exchange_run(nodes, workers));
                assert_eq!(end, vt, "virtual time must not depend on width");
                end
            });
            match (workers, d, base) {
                (1, Some(d), _) => base = Some(d),
                (_, Some(d), Some(b)) => println!(
                    "    -> {workers} workers run the {nodes}-node exchange in {:.2}x sequential time",
                    d.as_nanos() as f64 / b.as_nanos().max(1) as f64
                ),
                _ => {}
            }
        }
    }
}

/// One density-controlled exchange run: 8 processes each alternate a fixed
/// compute slice with a `burst`-deep neighbor exchange, so events per
/// lookahead window scale with `burst` while the communication shape stays
/// fixed. Returns the virtual end time plus the kernel's window counters
/// (for the measured events-per-window figure).
fn density_run(burst: usize, workers: usize) -> (u64, vopp_sim::WindowStats) {
    let nodes = 8;
    let mut sim = Sim::new(
        nodes,
        Box::new(EthernetModel::new(nodes, NetConfig::lossless())),
    );
    sim.set_workers(workers);
    let out = sim.run(move |ctx| {
        let n = ctx.nprocs();
        let me = ctx.me();
        for _ in 0..16 {
            ctx.compute(SimDuration::from_micros(60));
            for k in 0..burst {
                ctx.send(
                    (me + 1) % n,
                    256,
                    DeliveryClass::App,
                    k as u64,
                    Arc::new(0u8),
                );
            }
            for _ in 0..burst {
                let _ = ctx.recv();
            }
        }
        0u8
    });
    (out.end_time.nanos(), out.windows)
}

/// Event-density sweep for the adaptive kernel: the exchange workload at
/// growing burst depths, sequential vs 4 sim workers. The printed crossover
/// (the lowest measured events-per-window where 4 workers beat sequential)
/// is what seeds `vopp_sim::AUTO_ENGAGE_DEFAULT` — `--sim-workers auto`
/// dispatches to the pool only above that density.
fn bench_parkernel_density(r: &mut Runner) {
    let mut crossover = None;
    for burst in [1usize, 2, 4, 8, 16, 32] {
        let (vt, _) = density_run(burst, 1);
        let (_, win) = density_run(burst, 4);
        let density = win.window_events.checked_div(win.windows).unwrap_or(0);
        let seq = r.bench(&format!("parkernel_density_b{burst}_1w"), || {
            let (end, _) = density_run(black_box(burst), 1);
            assert_eq!(end, vt, "virtual time must not depend on width");
            end
        });
        let par = r.bench(&format!("parkernel_density_b{burst}_4w"), || {
            let (end, _) = density_run(black_box(burst), 4);
            assert_eq!(end, vt, "virtual time must not depend on width");
            end
        });
        if let (Some(s), Some(p)) = (seq, par) {
            let ratio = p.as_nanos() as f64 / s.as_nanos().max(1) as f64;
            println!(
                "    -> ~{density} events/window: 4 workers run the exchange in \
                 {ratio:.2}x sequential time"
            );
            if ratio < 1.0 && crossover.is_none() {
                crossover = Some(density);
            }
        }
    }
    match crossover {
        Some(d) => println!(
            "    -> measured crossover: 4 workers win above ~{d} events/window \
             (auto engages at {}, AUTO_ENGAGE_DEFAULT)",
            vopp_sim::AUTO_ENGAGE_DEFAULT
        ),
        None => println!(
            "    -> no crossover on this host (available parallelism {}): 4 workers never \
             beat sequential, so `--sim-workers auto` stays sequential here \
             (engage threshold {} events/window)",
            std::thread::available_parallelism().map_or(1, usize::from),
            vopp_sim::AUTO_ENGAGE_DEFAULT
        ),
    }
}

/// Payload fan-out: sharing one `Arc` allocation across 32 destinations
/// (what the transport does for broadcasts and retransmissions) vs the
/// seed's per-destination deep clone of a 4 KiB message.
fn bench_payload(r: &mut Runner) {
    let msg = vec![0xABu8; 4096];
    let arc: Payload = Arc::new(msg.clone());
    let shared = r.bench("payload_fanout32_arc_share", || {
        let mut v: Vec<Payload> = Vec::with_capacity(32);
        for _ in 0..32 {
            v.push(black_box(&arc).clone());
        }
        v
    });
    let cloned = r.bench("payload_fanout32_deep_clone_ref", || {
        let mut v: Vec<Box<dyn Any + Send + Sync>> = Vec::with_capacity(32);
        for _ in 0..32 {
            v.push(Box::new(black_box(&msg).clone()));
        }
        v
    });
    if let (Some(s), Some(c)) = (shared, cloned) {
        println!(
            "    -> Arc sharing is {:.1}x the deep-clone reference (32-way fan-out, 4 KiB)",
            c.as_nanos() as f64 / s.as_nanos().max(1) as f64
        );
    }
}

fn main() {
    let mut r = Runner::from_args();
    bench_diff(&mut r);
    bench_pool(&mut r);
    bench_vtime(&mut r);
    bench_heap(&mut r);
    bench_net(&mut r);
    bench_kernel(&mut r);
    bench_parkernel(&mut r);
    bench_parkernel_density(&mut r);
    bench_payload(&mut r);
}
