//! Micro-benchmarks of the memory and network substrates.

use vopp_bench::harness::{black_box, Runner};
use vopp_page::{Diff, PageBuf, SharedHeap, VTime, PAGE_WORDS};
use vopp_sim::{NetModel, RouteRequest, SimTime};
use vopp_simnet::{EthernetModel, NetConfig};

fn bench_diff(r: &mut Runner) {
    let twin = PageBuf::zeroed();
    // Sparse page: every 8th word modified.
    let mut sparse = PageBuf::zeroed();
    for w in (0..PAGE_WORDS).step_by(8) {
        sparse.set_word(w, w as u32 + 1);
    }
    // Dense page: everything modified.
    let mut dense = PageBuf::zeroed();
    for w in 0..PAGE_WORDS {
        dense.set_word(w, w as u32 + 1);
    }
    r.bench("diff_create_sparse", || {
        Diff::create(black_box(&twin), black_box(&sparse))
    });
    r.bench("diff_create_dense", || {
        Diff::create(black_box(&twin), black_box(&dense))
    });
    let d_sparse = Diff::create(&twin, &sparse);
    let d_dense = Diff::create(&twin, &dense);
    let mut page = PageBuf::zeroed();
    r.bench("diff_apply_sparse", || d_sparse.apply(black_box(&mut page)));
    r.bench("diff_merge_integration", || {
        black_box(&d_sparse).merge(black_box(&d_dense))
    });
}

fn bench_vtime(r: &mut Runner) {
    let mut a = VTime::zero(32);
    let mut bvt = VTime::zero(32);
    for i in 0..32 {
        a.set(i, (i * 7 % 13) as u32);
        bvt.set(i, (i * 5 % 11) as u32);
    }
    r.bench("vtime_join_32", || black_box(&a).join(black_box(&bvt)));
    r.bench("vtime_dominates_32", || {
        black_box(&a).dominates(black_box(&bvt))
    });
}

fn bench_heap(r: &mut Runner) {
    r.bench("heap_alloc_1000", || {
        let mut h = SharedHeap::new();
        for i in 0..1000 {
            black_box(h.alloc(64 + (i % 100), 8));
        }
        h.pages_needed()
    });
}

fn bench_net(r: &mut Runner) {
    let mut m = EthernetModel::new(32, NetConfig::default());
    let mut t = 0u64;
    r.bench("ethernet_route", || {
        t += 1000;
        m.route(RouteRequest {
            now: SimTime(t),
            src: (t % 31) as usize,
            dst: ((t + 7) % 32) as usize,
            wire_bytes: 512,
            pending_at_dst: 2,
            pending_bytes_at_dst: 1024,
        })
    });
}

fn main() {
    let mut r = Runner::from_args();
    bench_diff(&mut r);
    bench_vtime(&mut r);
    bench_heap(&mut r);
    bench_net(&mut r);
}
