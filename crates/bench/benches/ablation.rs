//! Ablations of the design choices called out in DESIGN.md, reported in
//! *virtual* time (the metric that matters): each benchmark runs the
//! miniature workload and asserts the ablation direction, while the
//! harness tracks the simulator's wall-clock throughput.

use std::sync::Arc;

use vopp_apps::is::{run_is, IsParams, IsVariant};
use vopp_apps::nn::{run_nn, NnParams, NnVariant};
use vopp_bench::harness::Runner;
use vopp_core::{ClusterConfig, Protocol};
use vopp_trace::Tracer;

/// Diff integration + piggy-backing (VC_sd) vs separate fault-time fetches
/// (VC_d): the integrated protocol must use fewer messages and zero diff
/// requests.
fn ablation_diff_integration(r: &mut Runner) {
    let p = IsParams::quick();
    r.bench("ablation_vcd_vs_vcsd", || {
        let d = run_is(
            &ClusterConfig::lossless(4, Protocol::VcD),
            &p,
            IsVariant::Vopp,
        );
        let sd = run_is(
            &ClusterConfig::lossless(4, Protocol::VcSd),
            &p,
            IsVariant::Vopp,
        );
        assert!(sd.stats.num_msgs() < d.stats.num_msgs());
        assert_eq!(sd.stats.diff_requests(), 0);
        assert!(d.stats.diff_requests() > 0);
        assert!(sd.stats.time <= d.stats.time);
        (d.stats.time, sd.stats.time)
    });
}

/// Barrier hoisting (§3.2): the lb variant of IS must beat the standard
/// VOPP variant in virtual time.
fn ablation_barrier_hoisting(r: &mut Runner) {
    let p = IsParams::quick();
    r.bench("ablation_barrier_hoisting", || {
        let std = run_is(
            &ClusterConfig::lossless(4, Protocol::VcSd),
            &p,
            IsVariant::Vopp,
        );
        let lb = run_is(
            &ClusterConfig::lossless(4, Protocol::VcSd),
            &p,
            IsVariant::VoppLb,
        );
        assert!(lb.stats.time < std.stats.time);
        assert!(lb.stats.barriers() < std.stats.barriers());
        (std.stats.time, lb.stats.time)
    });
}

/// Read views (§3.4): concurrent weight reads in NN vs exclusive access —
/// VC_sd with Rviews must not serialize readers (checked via acquire wait).
fn ablation_read_views(r: &mut Runner) {
    let p = NnParams::quick();
    r.bench("ablation_nn_rviews", || {
        let out = run_nn(
            &ClusterConfig::lossless(4, Protocol::VcSd),
            &p,
            NnVariant::Vopp,
        );
        out.stats.time
    });
}

/// Automated view insertion (§6 future work) vs programmer-placed
/// primitives: naive per-access acquisition must cost more acquires,
/// messages and virtual time.
fn ablation_auto_views(r: &mut Runner) {
    use vopp_core::{run_cluster, WorldBuilder};
    r.bench("ablation_auto_vs_manual_views", || {
        let manual = {
            let mut w = WorldBuilder::new();
            let v = w.view_u32(128);
            run_cluster(
                &ClusterConfig::lossless(4, Protocol::VcSd),
                w.build(),
                move |ctx| {
                    use vopp_core::VoppExt;
                    let _g = ctx.view(v.view);
                    for i in 0..64 {
                        v.region.set(ctx, i, i as u32);
                    }
                    drop(_g);
                    ctx.barrier();
                },
            )
        };
        let auto = {
            let mut w = WorldBuilder::new();
            let v = w.view_u32(128);
            run_cluster(
                &ClusterConfig::lossless(4, Protocol::VcSd),
                w.build(),
                move |ctx| {
                    ctx.set_auto_views(true);
                    for i in 0..64 {
                        v.region.set(ctx, i, i as u32);
                    }
                    ctx.barrier();
                },
            )
        };
        assert!(auto.stats.acquires() > 10 * manual.stats.acquires());
        assert!(auto.stats.time > manual.stats.time);
        (manual.stats.time, auto.stats.time)
    });
}

/// Homeless (TreadMarks) vs home-based LRC on the SOR workload: the home
/// variant trades eager flush traffic for single-round-trip faults.
fn ablation_homeless_vs_home_lrc(r: &mut Runner) {
    use vopp_apps::sor::{run_sor, SorParams, SorVariant};
    let p = SorParams::quick();
    r.bench("ablation_lrc_vs_hlrc_sor", || {
        let homeless = run_sor(
            &ClusterConfig::lossless(4, Protocol::LrcD),
            &p,
            SorVariant::Traditional,
        );
        let home = run_sor(
            &ClusterConfig::lossless(4, Protocol::Hlrc),
            &p,
            SorVariant::Traditional,
        );
        assert_eq!(homeless.value, home.value);
        // Home-based: fewer fault round trips, more flush data.
        assert!(home.stats.diff_requests() <= homeless.stats.diff_requests());
        assert!(home.stats.data_mbytes() > homeless.stats.data_mbytes());
        (homeless.stats.time, home.stats.time)
    });
}

/// The tracer when disabled (or absent) must not perturb the simulation:
/// virtual time is byte-identical with no tracer, with a disabled tracer
/// and with an enabled one, and the disabled-tracer wall-clock cost stays
/// within noise of the no-tracer baseline (every hook is a pointer test).
fn ablation_trace_overhead(r: &mut Runner) {
    let p = IsParams::quick();
    let run = |tracer: Option<Arc<Tracer>>| {
        let mut cfg = ClusterConfig::lossless(4, Protocol::VcSd);
        cfg.tracer = tracer;
        run_is(&cfg, &p, IsVariant::Vopp).stats.time
    };
    let disabled_tracer = || {
        let t = Arc::new(Tracer::default());
        t.set_enabled(false);
        t
    };
    let vt_none = run(None);
    let vt_disabled = run(Some(disabled_tracer()));
    let vt_enabled = run(Some(Arc::new(Tracer::default())));
    assert_eq!(vt_none, vt_disabled, "disabled tracer changed virtual time");
    assert_eq!(vt_none, vt_enabled, "enabled tracer changed virtual time");

    let base = r.bench("trace_overhead/none", || run(None));
    let off = r.bench("trace_overhead/disabled", || run(Some(disabled_tracer())));
    if let (Some(base), Some(off)) = (base, off) {
        // Generous bound: wall clock on shared machines is noisy; the real
        // guarantee is the virtual-time equality above plus "well under 2x".
        assert!(
            off.as_secs_f64() <= base.as_secs_f64() * 1.75 + 2e-3,
            "disabled tracing cost {off:?} vs baseline {base:?}"
        );
    }
}

fn main() {
    let mut r = Runner::from_args();
    ablation_diff_integration(&mut r);
    ablation_barrier_hoisting(&mut r);
    ablation_read_views(&mut r);
    ablation_auto_views(&mut r);
    ablation_homeless_vs_home_lrc(&mut r);
    ablation_trace_overhead(&mut r);
}
