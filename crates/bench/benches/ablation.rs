//! Ablations of the design choices called out in DESIGN.md, reported in
//! *virtual* time (the metric that matters) via custom Criterion output:
//! each benchmark runs the miniature workload and asserts the ablation
//! direction, while Criterion tracks the simulator's wall-clock throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use vopp_apps::is::{run_is, IsParams, IsVariant};
use vopp_apps::nn::{run_nn, NnParams, NnVariant};
use vopp_core::{ClusterConfig, Protocol};

/// Diff integration + piggy-backing (VC_sd) vs separate fault-time fetches
/// (VC_d): the integrated protocol must use fewer messages and zero diff
/// requests.
fn ablation_diff_integration(c: &mut Criterion) {
    let p = IsParams::quick();
    c.bench_function("ablation_vcd_vs_vcsd", |b| {
        b.iter(|| {
            let d = run_is(&ClusterConfig::lossless(4, Protocol::VcD), &p, IsVariant::Vopp);
            let sd = run_is(&ClusterConfig::lossless(4, Protocol::VcSd), &p, IsVariant::Vopp);
            assert!(sd.stats.num_msgs() < d.stats.num_msgs());
            assert_eq!(sd.stats.diff_requests(), 0);
            assert!(d.stats.diff_requests() > 0);
            assert!(sd.stats.time <= d.stats.time);
            (d.stats.time, sd.stats.time)
        })
    });
}

/// Barrier hoisting (§3.2): the lb variant of IS must beat the standard
/// VOPP variant in virtual time.
fn ablation_barrier_hoisting(c: &mut Criterion) {
    let p = IsParams::quick();
    c.bench_function("ablation_barrier_hoisting", |b| {
        b.iter(|| {
            let std = run_is(&ClusterConfig::lossless(4, Protocol::VcSd), &p, IsVariant::Vopp);
            let lb = run_is(&ClusterConfig::lossless(4, Protocol::VcSd), &p, IsVariant::VoppLb);
            assert!(lb.stats.time < std.stats.time);
            assert!(lb.stats.barriers() < std.stats.barriers());
            (std.stats.time, lb.stats.time)
        })
    });
}

/// Read views (§3.4): concurrent weight reads in NN vs exclusive access —
/// VC_sd with Rviews must not serialize readers (checked via acquire wait).
fn ablation_read_views(c: &mut Criterion) {
    let p = NnParams::quick();
    c.bench_function("ablation_nn_rviews", |b| {
        b.iter(|| {
            let out = run_nn(&ClusterConfig::lossless(4, Protocol::VcSd), &p, NnVariant::Vopp);
            out.stats.time
        })
    });
}

/// Automated view insertion (§6 future work) vs programmer-placed
/// primitives: naive per-access acquisition must cost more acquires,
/// messages and virtual time.
fn ablation_auto_views(c: &mut Criterion) {
    use vopp_core::{run_cluster, WorldBuilder};
    c.bench_function("ablation_auto_vs_manual_views", |b| {
        b.iter(|| {
            let manual = {
                let mut w = WorldBuilder::new();
                let v = w.view_u32(128);
                run_cluster(
                    &ClusterConfig::lossless(4, Protocol::VcSd),
                    w.build(),
                    move |ctx| {
                        use vopp_core::VoppExt;
                        let _g = ctx.view(v.view);
                        for i in 0..64 {
                            v.region.set(ctx, i, i as u32);
                        }
                        drop(_g);
                        ctx.barrier();
                    },
                )
            };
            let auto = {
                let mut w = WorldBuilder::new();
                let v = w.view_u32(128);
                run_cluster(
                    &ClusterConfig::lossless(4, Protocol::VcSd),
                    w.build(),
                    move |ctx| {
                        ctx.set_auto_views(true);
                        for i in 0..64 {
                            v.region.set(ctx, i, i as u32);
                        }
                        ctx.barrier();
                    },
                )
            };
            assert!(auto.stats.acquires() > 10 * manual.stats.acquires());
            assert!(auto.stats.time > manual.stats.time);
            (manual.stats.time, auto.stats.time)
        })
    });
}

/// Homeless (TreadMarks) vs home-based LRC on the SOR workload: the home
/// variant trades eager flush traffic for single-round-trip faults.
fn ablation_homeless_vs_home_lrc(c: &mut Criterion) {
    use vopp_apps::sor::{run_sor, SorParams, SorVariant};
    let p = SorParams::quick();
    c.bench_function("ablation_lrc_vs_hlrc_sor", |b| {
        b.iter(|| {
            let homeless = run_sor(
                &ClusterConfig::lossless(4, Protocol::LrcD),
                &p,
                SorVariant::Traditional,
            );
            let home = run_sor(
                &ClusterConfig::lossless(4, Protocol::Hlrc),
                &p,
                SorVariant::Traditional,
            );
            assert_eq!(homeless.value, home.value);
            // Home-based: fewer fault round trips, more flush data.
            assert!(home.stats.diff_requests() <= homeless.stats.diff_requests());
            assert!(home.stats.data_mbytes() > homeless.stats.data_mbytes());
            (homeless.stats.time, home.stats.time)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_diff_integration, ablation_barrier_hoisting, ablation_read_views, ablation_auto_views, ablation_homeless_vs_home_lrc
}
criterion_main!(benches);
