//! Every protocol's traces must satisfy its conformance-invariant set —
//! including the two protocols (HLRC_d, ScC_d) that the paper's statistics
//! tables never exercise. Each run here uses the default (lossy) network,
//! so the rexmit-covered invariant is checked under realistic conditions.

use std::sync::Arc;

use vopp_bench::tables::check_config_for;
use vopp_core::prelude::*;
use vopp_core::VoppExt;
use vopp_trace::{check, EventKind, Tracer};

const NPROCS: usize = 4;
const ROUNDS: u32 = 3;

/// Run `body` under `proto` with a tracer attached; return the drained trace.
fn traced_run<F>(proto: Protocol, layout: Arc<vopp_core::Layout>, body: F) -> vopp_trace::Trace
where
    F: Fn(&DsmCtx<'_>) + Send + Sync,
{
    let mut cfg = ClusterConfig::new(NPROCS, proto);
    let tracer = Arc::new(Tracer::default());
    cfg.tracer = Some(tracer.clone());
    run_cluster(&cfg, layout, body);
    tracer.take()
}

/// Traditional lock + barrier workload (the LRC family's API).
fn lrc_family_trace(proto: Protocol) -> vopp_trace::Trace {
    let mut w = WorldBuilder::new();
    let arr = w.alloc_u32(1024);
    traced_run(proto, w.build(), move |ctx| {
        for _ in 0..ROUNDS {
            ctx.lock_acquire(0);
            arr.update(ctx, 0, |x| x + 1);
            ctx.lock_release(0);
            ctx.barrier();
            let _ = arr.get(ctx, 0);
            ctx.barrier();
        }
    })
}

/// View bracket + barrier workload (the VOPP API).
fn vc_trace(proto: Protocol) -> vopp_trace::Trace {
    let mut w = WorldBuilder::new();
    let v = w.view_u32(64);
    traced_run(proto, w.build(), move |ctx| {
        for _ in 0..ROUNDS {
            ctx.with_view(&v, |r| r.update(ctx, 0, |x| x + 1));
            ctx.barrier();
            let first = ctx.with_rview(&v, |r| r.get(ctx, 0));
            assert!(first > 0);
            ctx.barrier();
        }
    })
}

fn assert_conformant(proto: Protocol, trace: &vopp_trace::Trace) {
    assert_eq!(trace.evicted, 0, "{proto}: ring must not wrap at this size");
    assert!(!trace.events.is_empty(), "{proto}: empty trace");
    let violations = check(trace, &check_config_for(proto));
    assert!(
        violations.is_empty(),
        "{proto}: {} violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn all_five_protocols_pass_conformance() {
    for proto in [Protocol::LrcD, Protocol::Hlrc, Protocol::ScC] {
        let trace = lrc_family_trace(proto);
        assert!(
            trace
                .events
                .iter()
                .any(|e| matches!(e.kind, EventKind::LockAcquireStart { .. })),
            "{proto}: no lock events recorded"
        );
        assert_conformant(proto, &trace);
    }
    for proto in [Protocol::VcD, Protocol::VcSd] {
        let trace = vc_trace(proto);
        assert!(
            trace
                .events
                .iter()
                .any(|e| matches!(e.kind, EventKind::AcquireStart { .. })),
            "{proto}: no view events recorded"
        );
        assert_conformant(proto, &trace);
    }
}

/// The checker must reject hand-mutated streams — exercised per invariant
/// in `vopp_trace::check`'s unit tests; here we spot-check on a real trace:
/// duplicating a write notice breaks vector-time causality.
#[test]
fn mutated_real_trace_is_rejected() {
    let mut trace = lrc_family_trace(Protocol::LrcD);
    let idx = trace
        .events
        .iter()
        .position(|e| matches!(e.kind, EventKind::WriteNoticeApply { .. }))
        .expect("LRC_d trace carries write notices");
    let dup = trace.events[idx].clone();
    trace.events.push(dup);
    let violations = check(&trace, &check_config_for(Protocol::LrcD));
    assert!(
        violations
            .iter()
            .any(|v| v.invariant == "vector-time-causality"),
        "duplicated notice must violate causality, got: {violations:?}"
    );
}
