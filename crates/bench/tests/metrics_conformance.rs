//! The phase-accounting invariant: on every protocol (and on MPI), each
//! node's breakdown must classify *every* nanosecond of its virtual time —
//! `compute + proto cpu + waits == run time`, per node, exactly. The DSM
//! and MPI runtimes `debug_assert` this against the kernel's independent
//! compute/blocked split; this test asserts it unconditionally so the
//! release profile is covered too.

use vopp_apps::nn::{nn_reference, run_nn, NnParams, NnVariant};
use vopp_core::prelude::*;
use vopp_core::VoppExt;

const NPROCS: usize = 4;
const ROUNDS: u32 = 3;

fn assert_accounted(label: &str, stats: &RunStats) {
    assert_eq!(
        stats.node_breakdowns.len(),
        stats.node_end.len(),
        "{label}: one breakdown per node"
    );
    assert!(!stats.node_breakdowns.is_empty(), "{label}: no breakdowns");
    for (p, (bd, end)) in stats
        .node_breakdowns
        .iter()
        .zip(&stats.node_end)
        .enumerate()
    {
        assert_eq!(
            bd.total_ns(),
            end.nanos(),
            "{label} node {p}: breakdown must sum to the node's run time"
        );
    }
    // The aggregate breakdown is exactly the sum of the per-node ones.
    let per_node: u64 = stats.node_breakdowns.iter().map(|b| b.total_ns()).sum();
    assert_eq!(stats.breakdown().total_ns(), per_node, "{label}: aggregate");
}

/// Traditional lock + barrier workload (the LRC family's API).
fn lrc_family_stats(proto: Protocol) -> RunStats {
    let mut w = WorldBuilder::new();
    let arr = w.alloc_u32(1024);
    let cfg = ClusterConfig::new(NPROCS, proto);
    let out = run_cluster(&cfg, w.build(), move |ctx| {
        for _ in 0..ROUNDS {
            ctx.lock_acquire(0);
            arr.update(ctx, 0, |x| x + 1);
            ctx.lock_release(0);
            ctx.barrier();
            let _ = arr.get(ctx, 0);
            ctx.barrier();
        }
    });
    out.stats
}

/// View bracket + barrier workload (the VOPP API).
fn vc_stats(proto: Protocol) -> RunStats {
    let mut w = WorldBuilder::new();
    let v = w.view_u32(64);
    let cfg = ClusterConfig::new(NPROCS, proto);
    let out = run_cluster(&cfg, w.build(), move |ctx| {
        for _ in 0..ROUNDS {
            ctx.with_view(&v, |r| r.update(ctx, 0, |x| x + 1));
            ctx.barrier();
            let first = ctx.with_rview(&v, |r| r.get(ctx, 0));
            assert!(first > 0);
            ctx.barrier();
        }
    });
    out.stats
}

#[test]
fn all_five_protocols_account_every_nanosecond() {
    for proto in [Protocol::LrcD, Protocol::Hlrc, Protocol::ScC] {
        let stats = lrc_family_stats(proto);
        assert_accounted(proto.label(), &stats);
        // The workload synchronizes, so classified wait time must show up.
        assert!(
            stats.breakdown().blocked_ns() > 0,
            "{proto}: lock/barrier workload must record wait time"
        );
    }
    for proto in [Protocol::VcD, Protocol::VcSd] {
        let stats = vc_stats(proto);
        assert_accounted(proto.label(), &stats);
        assert!(
            stats.breakdown().get(vopp_core::Phase::BarrierWait) > 0,
            "{proto}: barriers must record barrier wait"
        );
    }
}

#[test]
fn mpi_accounts_every_nanosecond() {
    let p = NnParams::quick();
    let cfg = ClusterConfig::lossless(NPROCS, Protocol::VcSd);
    let out = run_nn(&cfg, &p, NnVariant::Mpi);
    assert_eq!(out.value, nn_reference(&p, NPROCS));
    assert_accounted("MPI", &out.stats);
    assert!(
        out.stats.breakdown().cpu_ns() > 0,
        "MPI run must record compute time"
    );
}
