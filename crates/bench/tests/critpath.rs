//! Critical-path profiler integration tests: artifact determinism across
//! worker counts, the pure-observation invariant on the gated artifacts,
//! and the zero-latency-network what-if validated against an actual
//! fast-network run.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use vopp_bench::metrics::CRITPATH_SCHEMA;
use vopp_bench::sweep::{cells_for, dedup_cells, run_sweep};
use vopp_bench::{tables, MetricsSink, Scale};
use vopp_core::NetConfig;
use vopp_sim::SimDuration;
use vopp_trace::json::Value;

/// Profile table1 on `jobs` workers and return every critpath artifact:
/// the rendered table (with its CP rows), `BENCH_critpath.json`, and the
/// per-run `.critpath.perfetto.json` tracks.
fn critpath_artifacts(jobs: usize, base: &Path) -> BTreeMap<String, String> {
    let traces = base.join("traces");
    let sink = Arc::new(MetricsSink::new());
    let mut scale = Scale {
        quick: true,
        trace_dir: Some(traces.clone()),
        metrics: Some(sink.clone()),
        critpath: true,
        ..Scale::default()
    };
    let specs = dedup_cells(&cells_for("table1", &scale));
    let cache = run_sweep(&scale, &specs, jobs);
    scale.cache = Some(Arc::new(cache));
    let mut files = BTreeMap::new();
    files.insert("table1.txt".into(), tables::table1(&scale).to_string());
    let docs = sink.to_documents();
    files.insert(
        "BENCH_critpath.json".into(),
        docs["critpath"].to_json_pretty(),
    );
    files.insert("BENCH_is.json".into(), docs["is"].to_json_pretty());
    for entry in std::fs::read_dir(&traces).expect("read trace dir") {
        let entry = entry.expect("trace entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".critpath.perfetto.json") {
            files.insert(
                name,
                std::fs::read_to_string(entry.path()).expect("read track"),
            );
        }
    }
    files
}

#[test]
fn critpath_artifacts_do_not_depend_on_worker_count() {
    let base = std::env::temp_dir().join(format!("vopp-critpath-jobs-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let f1 = critpath_artifacts(1, &base.join("j1"));
    let f4 = critpath_artifacts(4, &base.join("j4"));
    assert_eq!(
        f1.keys().collect::<Vec<_>>(),
        f4.keys().collect::<Vec<_>>(),
        "artifact sets must match"
    );
    assert_eq!(
        f1.keys()
            .filter(|k| k.ends_with(".critpath.perfetto.json"))
            .count(),
        3,
        "one critpath track per table1 cell"
    );
    for (name, body) in &f1 {
        assert_eq!(body, &f4[name], "{name} differs between --jobs 1 and 4");
    }
    // The table carries the CP rows and the artifact its schema.
    assert!(f1["table1.txt"].contains("CP Compute (%)"));
    assert!(f1["table1.txt"].contains("Ceil. net free"));
    assert!(f1["BENCH_critpath.json"].contains(CRITPATH_SCHEMA));
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn profiler_is_invisible_in_gated_artifacts() {
    let run = |critpath: bool| {
        let sink = Arc::new(MetricsSink::new());
        let scale = Scale {
            quick: true,
            metrics: Some(sink.clone()),
            critpath,
            ..Scale::default()
        };
        let text = tables::table1(&scale).to_string();
        (text, sink.to_documents())
    };
    let (text_off, off) = run(false);
    let (text_on, on) = run(true);
    // The gated per-app artifact is byte-identical with the profiler on or
    // off — profiling is pure observation.
    assert_eq!(
        off["is"].to_json_pretty(),
        on["is"].to_json_pretty(),
        "BENCH_is.json must not change under --critpath"
    );
    // The profiled run *adds* the critpath document and the CP table rows;
    // nothing is produced without the flag.
    assert!(!off.contains_key("critpath"));
    let doc = &on["critpath"];
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some(CRITPATH_SCHEMA)
    );
    assert_eq!(
        doc.get("cells").and_then(Value::as_arr).map(<[_]>::len),
        Some(3)
    );
    assert!(!text_off.contains("CP Compute (%)"));
    assert!(text_on.contains("CP Compute (%)"));
    // Every unprofiled row survives with identical values: the profiled
    // table is the unprofiled table with the CP rows spliced in before the
    // border. Only column padding may shift (the `x.xx x` ceiling cells
    // widen the columns), so rows are compared token-wise.
    let tokens = |l: &str| l.split_whitespace().map(String::from).collect::<Vec<_>>();
    let is_border = |l: &&str| !l.is_empty() && l.chars().all(|c| c == '-');
    let mut on_lines = text_on.lines();
    for want in text_off
        .lines()
        .filter(|l| !is_border(l))
        .map(tokens)
        .filter(|t| !t.is_empty())
    {
        assert!(
            on_lines.any(|l| tokens(l) == want),
            "unprofiled row {want:?} missing (or reordered) in profiled table"
        );
    }
}

/// The zero-latency-network what-if must agree with an actual fast run.
///
/// The estimator removes every network segment from the critical path:
/// `ceiling = T / (T - net_ns)` is the speedup if the baseline path's CPU
/// chain were the only remaining cost. It is validated against a real
/// rerun with 1 ns latencies, 1 Pbit/s bandwidth and zero loss. Documented
/// error bound (see docs/OBSERVABILITY.md): the measured speedup agrees
/// with the ceiling within 10% relative error. The estimate is not an
/// exact bound in either direction — the fast run is a *different
/// schedule* (a barrier's critical arrival chain can change, service CPU
/// interleaves differently, loss-free delivery removes retransmission
/// work), so the baseline path's CPU chain is not conserved — but on a
/// deterministic simulator the discrepancy is stable and small.
#[test]
fn net_free_ceiling_bounds_an_actual_fast_network_run() {
    let cell_of = |doc: &Value| -> Value {
        doc.get("cells")
            .and_then(Value::as_arr)
            .expect("cells")
            .iter()
            .find(|c| {
                c.get("variant").and_then(Value::as_str) == Some("vopp")
                    && c.get("protocol").and_then(Value::as_str) == Some("vc_sd")
            })
            .expect("IS vopp/vc_sd cell")
            .clone()
    };
    // Profiled run on the default network.
    let sink = Arc::new(MetricsSink::new());
    let scale = Scale {
        quick: true,
        metrics: Some(sink.clone()),
        critpath: true,
        ..Scale::default()
    };
    let _ = tables::table1(&scale);
    let crit = cell_of(&sink.to_documents()["critpath"]);
    let makespan = crit
        .get("makespan_ns")
        .and_then(Value::as_u64)
        .expect("makespan");
    let net_free = crit.get("whatif").and_then(|w| w.get("net_free")).unwrap();
    let ceiling = net_free
        .get("speedup_ceiling")
        .and_then(Value::as_f64)
        .expect("finite ceiling: a quick run has nonzero CPU on the path");

    // Actual run of the same cell on a near-free network.
    let fast_sink = Arc::new(MetricsSink::new());
    let fast_scale = Scale {
        quick: true,
        metrics: Some(fast_sink.clone()),
        net_override: Some(NetConfig {
            bandwidth_bps: 1e15,
            latency: SimDuration::from_nanos(1),
            loopback_latency: SimDuration::from_nanos(1),
            base_drop_prob: 0.0,
            ..NetConfig::default()
        }),
        ..Scale::default()
    };
    let _ = tables::table1(&fast_scale);
    let fast = cell_of(&fast_sink.to_documents()["is"]);
    let fast_ns = fast.get("time_ns").and_then(Value::as_u64).expect("time");

    let actual = makespan as f64 / fast_ns as f64;
    assert!(
        actual >= 1.0,
        "a faster network must not slow the run (got {actual:.3})"
    );
    assert!(
        ceiling > 1.0,
        "a sync-heavy quick run has network on its path (ceiling {ceiling:.3})"
    );
    let rel_err = (actual - ceiling).abs() / ceiling;
    assert!(
        rel_err <= 0.10,
        "what-if estimate outside the 10% error bound: \
         actual {actual:.3}x vs ceiling {ceiling:.3}x ({:.1}% off)",
        rel_err * 100.0
    );
}
