//! The metrics artifacts inherit the simulator's determinism: identical
//! table runs must write byte-identical `BENCH_<app>.json` files, the
//! regression gate must pass a clean tree against its own baseline, and it
//! must fail when the network cost model is perturbed.

use std::path::Path;
use std::sync::Arc;

use vopp_bench::metrics::compare_dirs;
use vopp_bench::{MetricsSink, Scale};
use vopp_core::NetConfig;
use vopp_sim::SimDuration;

fn run_table1_metered(dir: &Path, net_override: Option<NetConfig>) {
    let sink = Arc::new(MetricsSink::new());
    let scale = Scale {
        quick: true,
        metrics: Some(sink.clone()),
        net_override,
        ..Scale::default()
    };
    let t = vopp_bench::tables::table1(&scale);
    assert!(t.title.starts_with("Table 1"));
    assert!(!sink.is_empty(), "metered run recorded no cells");
    sink.write_all(dir).expect("write metrics artifacts");
}

#[test]
fn same_seed_bench_artifacts_are_byte_identical() {
    let base = std::env::temp_dir().join(format!("vopp-metrics-det-{}", std::process::id()));
    let (a, b) = (base.join("a"), base.join("b"));
    run_table1_metered(&a, None);
    run_table1_metered(&b, None);
    let lhs = std::fs::read(a.join("BENCH_is.json")).expect("first run artifact");
    let rhs = std::fs::read(b.join("BENCH_is.json")).expect("second run artifact");
    assert!(!lhs.is_empty());
    assert_eq!(lhs, rhs, "BENCH_is.json differs between identical runs");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn gate_passes_clean_and_fails_when_network_is_perturbed() {
    let base = std::env::temp_dir().join(format!("vopp-metrics-gate-{}", std::process::id()));
    let (baseline, clean, perturbed) = (base.join("base"), base.join("clean"), base.join("pert"));
    run_table1_metered(&baseline, None);
    run_table1_metered(&clean, None);
    let (compared, errors) = compare_dirs(&baseline, &clean);
    assert!(compared >= 3, "Table 1 records at least three cells");
    assert_eq!(
        errors,
        Vec::<String>::new(),
        "clean tree must pass the gate"
    );

    // Perturb the cost model: triple the one-way latency. Every run's
    // virtual time and wait structure shifts well past the 2% tolerance.
    let net = NetConfig {
        latency: SimDuration::from_micros(135),
        ..NetConfig::default()
    };
    run_table1_metered(&perturbed, Some(net));
    let (_, errors) = compare_dirs(&baseline, &perturbed);
    assert!(
        errors.iter().any(|e| e.contains("time_ns drifted")),
        "perturbed network must trip the time gate, got: {errors:?}"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// Tracing and metering compose: one table run can produce both artifact
/// families, and the metrics document carries the breakdown schema.
#[test]
fn traced_and_metered_quick_table_smoke() {
    let base = std::env::temp_dir().join(format!("vopp-metrics-both-{}", std::process::id()));
    let (traces, metrics) = (base.join("traces"), base.join("metrics"));
    let sink = Arc::new(MetricsSink::new());
    let scale = Scale {
        quick: true,
        trace_dir: Some(traces.clone()),
        metrics: Some(sink.clone()),
        ..Scale::default()
    };
    let t = vopp_bench::tables::table1(&scale);
    assert!(t.title.starts_with("Table 1"));
    sink.write_all(&metrics).expect("write metrics artifacts");

    // Both artifact families exist; the metrics JSON parses and each cell
    // carries a breakdown that sums to its time_ns.
    let np = scale.stats_procs();
    assert!(traces
        .join(format!("is_trad_lrc_d_{np}p.events.json"))
        .exists());
    let text = std::fs::read_to_string(metrics.join("BENCH_is.json")).expect("metrics artifact");
    let doc = vopp_trace::json::Value::parse(&text).expect("valid JSON");
    let cells = doc.get("cells").unwrap().as_arr().unwrap();
    assert_eq!(cells.len(), 3, "Table 1 is three runs");
    for c in cells {
        let time_ns = c.get("time_ns").unwrap().as_u64().unwrap();
        let bd = c.get("breakdown").unwrap();
        let total = bd.get("total_ns").unwrap().as_u64().unwrap();
        // Aggregate over nprocs nodes: nprocs x the (identical) end time
        // bounds it; each node ends at the run's end time or earlier.
        assert!(total >= time_ns, "aggregate breakdown covers the run");
        assert!(total <= time_ns * np as u64);
        let summed: u64 = [
            "compute_ns",
            "proto_cpu_ns",
            "barrier_wait_ns",
            "acquire_wait_ns",
            "data_wait_ns",
            "send_wait_ns",
        ]
        .iter()
        .map(|k| bd.get(k).unwrap().as_u64().unwrap())
        .sum();
        assert_eq!(summed, total, "breakdown fields sum to total_ns");
    }
    std::fs::remove_dir_all(&base).ok();
}
