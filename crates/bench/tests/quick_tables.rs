//! The table harness itself is under test: the quick-scale version of every
//! paper table must generate (each run is internally validated against its
//! sequential reference) and contain the expected rows and columns.

use vopp_bench::{all_tables, Scale};

#[test]
fn all_nine_tables_generate_at_quick_scale() {
    let tables = all_tables(&Scale::quick());
    assert_eq!(tables.len(), 9);
    // Paper order and shape.
    assert!(tables[0].title.starts_with("Table 1"));
    assert!(tables[8].title.starts_with("Table 9"));
    for t in &tables {
        assert!(!t.columns.is_empty());
        assert!(!t.rows.is_empty());
        for (label, cells) in &t.rows {
            assert!(!label.is_empty());
            assert_eq!(cells.len(), t.columns.len(), "{}", t.title);
        }
    }
    // Statistics tables carry the paper's row set.
    let t1 = &tables[0];
    let labels: Vec<&str> = t1.rows.iter().map(|(l, _)| l.as_str()).collect();
    for want in [
        "Time (Sec.)",
        "Barriers",
        "Acquires",
        "Data (MByte)",
        "Num. Msg",
        "Diff Requests",
        "Barrier Time (usec.)",
        "Rexmit",
    ] {
        assert!(labels.contains(&want), "Table 1 must have row {want}");
    }
    // Table 8 additionally reports acquire time.
    assert!(tables[7]
        .rows
        .iter()
        .any(|(l, _)| l == "Acquire Time (usec.)"));
    // Speedup tables are keyed by system.
    for idx in [2, 4, 6, 8] {
        let t = &tables[idx];
        assert!(
            t.rows.iter().any(|(l, _)| l.contains("LRC_d")),
            "{}",
            t.title
        );
        assert!(
            t.rows.iter().any(|(l, _)| l.contains("VC_sd")),
            "{}",
            t.title
        );
    }
    assert!(tables[8].rows.iter().any(|(l, _)| l == "MPI"));
}

#[test]
fn tables_render_and_serialize() {
    let t = vopp_bench::tables::table2(&Scale::quick());
    let text = t.to_string();
    assert!(text.contains("VC_sd"));
    let json = t.to_value().to_json();
    assert!(json.contains("\"title\""));
}

/// Tracing a quick table run end to end: the per-run artifacts exist, the
/// Perfetto export parses as JSON, and the conformance checker (which runs
/// inside the table generation and panics on violations) stays silent for
/// every protocol exercised by Table 1 (LRC_d, VC_d, VC_sd).
#[test]
fn traced_quick_table1_passes_conformance() {
    let dir = std::env::temp_dir().join(format!("vopp-trace-quick-{}", std::process::id()));
    let scale = Scale {
        quick: true,
        trace_dir: Some(dir.clone()),
        ..Scale::default()
    };
    let t = vopp_bench::tables::table1(&scale);
    assert!(t.title.starts_with("Table 1"));
    let np = scale.stats_procs();
    for stem in [
        format!("is_trad_lrc_d_{np}p"),
        format!("is_vopp_vc_d_{np}p"),
        format!("is_vopp_vc_sd_{np}p"),
    ] {
        for suffix in ["events.json", "perfetto.json", "report.txt"] {
            let path = dir.join(format!("{stem}.{suffix}"));
            let data = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing artifact {}: {e}", path.display()));
            assert!(!data.is_empty(), "{} is empty", path.display());
            if suffix.ends_with(".json") {
                vopp_trace::json::Value::parse(&data)
                    .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
