//! Determinism guard: the simulator is seeded and virtual-time ordered, so
//! two identical table runs must record byte-identical traces. Any
//! divergence means wall-clock state leaked into the simulation.

use std::path::Path;

use vopp_bench::Scale;

fn run_table1_traced(dir: &Path) {
    let scale = Scale {
        quick: true,
        trace_dir: Some(dir.to_path_buf()),
        ..Scale::default()
    };
    let t = vopp_bench::tables::table1(&scale);
    assert!(t.title.starts_with("Table 1"));
}

#[test]
fn same_seed_table1_traces_are_byte_identical() {
    let base = std::env::temp_dir().join(format!("vopp-trace-det-{}", std::process::id()));
    let (a, b) = (base.join("a"), base.join("b"));
    run_table1_traced(&a);
    run_table1_traced(&b);

    let mut compared = 0;
    for entry in std::fs::read_dir(&a).expect("first run produced no trace dir") {
        let name = entry.unwrap().file_name();
        let lhs = std::fs::read(a.join(&name)).unwrap();
        let rhs = std::fs::read(b.join(&name))
            .unwrap_or_else(|e| panic!("second run missing {}: {e}", name.to_string_lossy()));
        assert_eq!(
            lhs,
            rhs,
            "trace artifact {} differs between identical runs",
            name.to_string_lossy()
        );
        compared += 1;
    }
    // Table 1 is three runs x three artifacts.
    assert_eq!(compared, 9, "expected 9 artifacts to compare");
    std::fs::remove_dir_all(&base).ok();
}
