//! The intra-run parallel kernel (`--sim-workers`, see `docs/PERFORMANCE.md`
//! §7) must be invisible in every gated artifact: table text, per-app
//! `BENCH_*.json` metrics, trace files, and critical-path artifacts are
//! byte-identical between 4 sim workers and 1 — including faulted,
//! crash/recovery, and `--critpath` cells. The race-checker suite forces its
//! own runs sequential, so its verdicts don't depend on the width either.
//!
//! The worker width is a process-wide default, so the tests serialize on a
//! mutex and restore width 1 before releasing it.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use vopp_bench::sweep::{cells_for, dedup_cells, run_sweep};
use vopp_bench::{tables, MetricsSink, Scale, Table};
use vopp_core::FaultPlan;

static WIDTH: Mutex<()> = Mutex::new(());

/// Take the width lock (surviving another test's panic) — every test in
/// this binary mutates the process-wide sim-worker default.
fn lock_width() -> MutexGuard<'static, ()> {
    WIDTH.lock().unwrap_or_else(|e| e.into_inner())
}

/// Tables that together cover all five protocol columns (the statistics
/// sweep), plus the extended-systems and serving tables.
const TABLES: [&str; 11] = [
    "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9",
    "ext", "serve",
];

type TableFn = fn(&Scale) -> Table;

fn table_fn(name: &str) -> TableFn {
    match name {
        "table1" => tables::table1,
        "table2" => tables::table2,
        "table3" => tables::table3,
        "table4" => tables::table4,
        "table5" => tables::table5,
        "table6" => tables::table6,
        "table7" => tables::table7,
        "table8" => tables::table8,
        "table9" => tables::table9,
        "ext" => tables::table_ext,
        "serve" => tables::table_serve,
        "scaling" => tables::table_scaling,
        other => panic!("unknown table {other}"),
    }
}

/// Mirror the `tables` binary at `--sim-workers <width>`: quick scale,
/// traces + metrics, selected tables. Returns the rendered table text plus
/// every artifact file (wall-clock excluded — machine-dependent by design).
fn artifacts(
    width: usize,
    base: &Path,
    names: &[&str],
    faults: &FaultPlan,
    critpath: bool,
) -> (String, BTreeMap<String, String>) {
    vopp_sim::set_sim_workers_default(width);
    let traces = base.join("traces");
    let metrics = base.join("metrics");
    let sink = Arc::new(MetricsSink::new());
    let mut scale = Scale {
        quick: true,
        trace_dir: Some(traces.clone()),
        metrics: Some(sink.clone()),
        faults: faults.clone(),
        critpath,
        ..Scale::default()
    };
    let specs = dedup_cells(
        &names
            .iter()
            .flat_map(|name| cells_for(name, &scale))
            .collect::<Vec<_>>(),
    );
    scale.cache = Some(Arc::new(run_sweep(&scale, &specs, 1)));
    let text = names
        .iter()
        .map(|name| table_fn(name)(&scale).to_string())
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::create_dir_all(&metrics).expect("create metrics dir");
    sink.write_all(&metrics).expect("write metrics artifacts");
    let mut files = BTreeMap::new();
    for (dir, tag) in [(&metrics, "metrics"), (&traces, "traces")] {
        for entry in std::fs::read_dir(dir).expect("read artifact dir") {
            let entry = entry.expect("artifact entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            files.insert(
                format!("{tag}/{name}"),
                std::fs::read_to_string(entry.path()).expect("read artifact"),
            );
        }
    }
    (text, files)
}

fn assert_identical(
    label: &str,
    (t1, f1): &(String, BTreeMap<String, String>),
    (t4, f4): &(String, BTreeMap<String, String>),
) {
    assert_eq!(t1, t4, "{label}: table text depends on sim-worker count");
    assert_eq!(
        f1.keys().collect::<Vec<_>>(),
        f4.keys().collect::<Vec<_>>(),
        "{label}: artifact file sets differ"
    );
    for (name, body) in f1 {
        assert_eq!(
            body, &f4[name],
            "{label}: {name} differs between sim-workers 1 and 4"
        );
    }
}

#[test]
fn full_sweep_is_byte_identical_at_4_sim_workers() {
    let _w = lock_width();
    let base = std::env::temp_dir().join(format!("vopp-parkernel-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let none = FaultPlan::none();

    let seq = artifacts(1, &base.join("w1"), &TABLES, &none, false);
    let before = vopp_sim::window_totals();
    let par = artifacts(4, &base.join("w4"), &TABLES, &none, false);
    let after = vopp_sim::window_totals();
    vopp_sim::set_sim_workers_default(1);

    // The parallel kernel must actually have engaged: the default Ethernet
    // model exports a 45 us lookahead, far above the 1 us floor.
    assert!(
        after.windows > before.windows,
        "4-worker sweep carved no windows"
    );
    assert!(after.parallel_windows > before.parallel_windows);

    assert!(
        seq.1.keys().any(|k| k.starts_with("metrics/BENCH_")),
        "sweep produced no metrics artifacts"
    );
    assert!(
        seq.1.keys().any(|k| k.ends_with(".events.json")),
        "sweep produced no trace artifacts"
    );
    assert_identical("full sweep", &seq, &par);
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn faulted_and_crash_recovery_cells_are_byte_identical() {
    let _w = lock_width();
    let base = std::env::temp_dir().join(format!("vopp-parkernel-faults-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    // Elevated loss reshapes retransmission timing everywhere and a slowdown
    // skews one node's cost model. (Crash/recovery runs are covered by the
    // serve table's own fault dimension in the full-sweep test — a *global*
    // crash plan is rejected by the traditional serving variant.)
    let plan = FaultPlan::parse("loss=0.02@7,slow=0x1.5").expect("fault plan");
    let names = ["table1", "serve"];

    let seq = artifacts(1, &base.join("w1"), &names, &plan, false);
    let par = artifacts(4, &base.join("w4"), &names, &plan, false);
    vopp_sim::set_sim_workers_default(1);

    assert_identical("faulted sweep", &seq, &par);
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn critpath_artifacts_are_byte_identical() {
    let _w = lock_width();
    let base = std::env::temp_dir().join(format!("vopp-parkernel-crit-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let none = FaultPlan::none();
    let names = ["table1", "serve"];

    let seq = artifacts(1, &base.join("w1"), &names, &none, true);
    let par = artifacts(4, &base.join("w4"), &names, &none, true);
    vopp_sim::set_sim_workers_default(1);

    assert!(
        seq.1.contains_key("metrics/BENCH_critpath.json"),
        "critpath run produced no BENCH_critpath.json"
    );
    assert!(
        seq.1.keys().any(|k| k.ends_with(".critpath.perfetto.json")),
        "critpath run produced no per-run critical-path tracks"
    );
    assert_identical("critpath sweep", &seq, &par);
    std::fs::remove_dir_all(&base).ok();
}

/// `--sim-workers auto` must be as invisible as a forced width, on every
/// side of its engage boundary: never engaged (huge threshold), always
/// engaged (threshold 1), and toggling mid-run (a threshold near the quick
/// cells' mean density, so dense and sparse stretches cross it both ways).
/// The sweep covers faulted and `--critpath` cells; the width override pins
/// `auto` to 4 groups so the adaptive machinery is exercised even on hosts
/// whose available parallelism would resolve `auto` to sequential.
#[test]
fn auto_width_is_byte_identical_across_engage_boundaries() {
    let _w = lock_width();
    let base = std::env::temp_dir().join(format!("vopp-parkernel-auto-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let plan = FaultPlan::parse("loss=0.02@7,slow=0x1.5").expect("fault plan");
    let names = ["table1", "serve"];

    let seq = artifacts(1, &base.join("w1"), &names, &plan, true);

    vopp_sim::set_auto_workers_override(4);

    // Never engages: every multi-group window takes the serial deferred path.
    vopp_sim::set_auto_engage_threshold(u64::MAX >> 8);
    let before = vopp_sim::window_totals();
    let lazy = artifacts(
        vopp_sim::SIM_WORKERS_AUTO,
        &base.join("lazy"),
        &names,
        &plan,
        true,
    );
    let after = vopp_sim::window_totals();
    assert!(
        after.serial_windows > before.serial_windows,
        "lazy auto sweep ran no serially-deferred windows"
    );
    assert_eq!(
        after.parallel_windows, before.parallel_windows,
        "lazy auto sweep dispatched to the worker pool despite the threshold"
    );

    // Always engaged: every multi-group window goes to the worker pool.
    vopp_sim::set_auto_engage_threshold(1);
    let before = vopp_sim::window_totals();
    let eager = artifacts(
        vopp_sim::SIM_WORKERS_AUTO,
        &base.join("eager"),
        &names,
        &plan,
        true,
    );
    let after = vopp_sim::window_totals();
    assert!(
        after.parallel_windows > before.parallel_windows,
        "eager auto sweep never engaged the worker pool"
    );

    // Mid-run transitions: a threshold near the mean density makes the
    // rolling estimate cross the boundary in both directions within a run.
    vopp_sim::set_auto_engage_threshold(4);
    let before = vopp_sim::window_totals();
    let mixed = artifacts(
        vopp_sim::SIM_WORKERS_AUTO,
        &base.join("mixed"),
        &names,
        &plan,
        true,
    );
    let after = vopp_sim::window_totals();
    assert!(
        after.parallel_windows > before.parallel_windows
            && after.serial_windows > before.serial_windows,
        "mixed-threshold auto sweep never toggled engagement mid-run \
         (parallel {}->{}, serial {}->{})",
        before.parallel_windows,
        after.parallel_windows,
        before.serial_windows,
        after.serial_windows,
    );

    vopp_sim::set_auto_workers_override(0);
    vopp_sim::set_auto_engage_threshold(vopp_sim::AUTO_ENGAGE_DEFAULT);
    vopp_sim::set_sim_workers_default(1);

    assert_identical("auto never engaged", &seq, &lazy);
    assert_identical("auto always engaged", &seq, &eager);
    assert_identical("auto mid-run toggling", &seq, &mixed);
    std::fs::remove_dir_all(&base).ok();
}

/// The 64/128-node scaling family (`tables scaling`) is byte-identical
/// between sequential and 4 sim workers — the family exists to showcase the
/// parallel kernel, so its artifacts especially must not depend on it.
#[test]
fn scaling_table_is_byte_identical_at_4_sim_workers() {
    let _w = lock_width();
    let base = std::env::temp_dir().join(format!("vopp-parkernel-scaling-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let none = FaultPlan::none();
    let names = ["scaling"];

    let seq = artifacts(1, &base.join("w1"), &names, &none, false);
    let par = artifacts(4, &base.join("w4"), &names, &none, false);
    vopp_sim::set_sim_workers_default(1);

    assert!(
        seq.1.contains_key("metrics/BENCH_scaling.json"),
        "scaling sweep produced no BENCH_scaling.json"
    );
    assert_identical("scaling table", &seq, &par);
    std::fs::remove_dir_all(&base).ok();
}

/// Wall-clock measurement for `docs/PERFORMANCE.md` §7: one full-instance
/// 32-processor SOR cell (VC_sd) at sim-worker widths 1/2/4. Ignored by
/// default — it is a measurement, not a correctness gate; run it with
/// `cargo test --release -p vopp-bench --test parkernel -- --ignored measure --nocapture`.
#[test]
#[ignore]
fn measure_full_instance_speedup() {
    use vopp_apps::sor::{run_sor, SorParams, SorVariant};
    use vopp_dsm::{ClusterConfig, Protocol};

    use vopp_apps::gauss::{run_gauss, GaussParams, GaussVariant};
    use vopp_apps::is::{run_is, IsParams, IsVariant};
    use vopp_apps::nn::{run_nn, NnParams, NnVariant};

    let _w = lock_width();
    let measure = |label: &str, run: &dyn Fn(&ClusterConfig) -> (u64, u64)| {
        let mut checksum = None;
        for width in [1usize, 2, 4, vopp_sim::SIM_WORKERS_AUTO] {
            let name = if width == vopp_sim::SIM_WORKERS_AUTO {
                "auto".to_string()
            } else {
                width.to_string()
            };
            let mut cfg = ClusterConfig::new(32, Protocol::VcSd);
            cfg.sim_workers = width;
            let t0 = std::time::Instant::now();
            let (sum, virt) = run(&cfg);
            let wall = t0.elapsed();
            match checksum {
                None => checksum = Some(sum),
                Some(c) => assert_eq!(c, sum, "{label}: checksum diverged at width {name}"),
            }
            println!("{label} 32p VC_sd: sim_workers={name} wall={wall:.2?} virtual={virt}ns");
        }
    };
    measure("sor bench", &|cfg| {
        let o = run_sor(cfg, &SorParams::bench(), SorVariant::Vopp);
        (o.value.to_bits(), o.stats.time.nanos())
    });
    measure("gauss bench", &|cfg| {
        let o = run_gauss(cfg, &GaussParams::bench(), GaussVariant::Vopp);
        (o.value.to_bits(), o.stats.time.nanos())
    });
    measure("is bench", &|cfg| {
        let o = run_is(cfg, &IsParams::bench(), IsVariant::Vopp);
        (o.value, o.stats.time.nanos())
    });
    measure("nn bench", &|cfg| {
        let o = run_nn(cfg, &NnParams::bench(), NnVariant::Vopp);
        (o.value.to_bits(), o.stats.time.nanos())
    });
    vopp_sim::set_sim_workers_default(1);
}

#[test]
fn racecheck_suite_is_unaffected_by_the_width_default() {
    let _w = lock_width();
    // `run_cluster` forces its simulations sequential whenever a checker is
    // attached, so the suite's verdicts and rendering can't depend on the
    // process default.
    vopp_sim::set_sim_workers_default(1);
    let seq = vopp_bench::run_racecheck();
    vopp_sim::set_sim_workers_default(4);
    let par = vopp_bench::run_racecheck();
    vopp_sim::set_sim_workers_default(1);
    assert!(seq.ok(), "racecheck suite failed sequentially");
    assert!(par.ok(), "racecheck suite failed with a parallel default");
    assert_eq!(
        seq.render(),
        par.render(),
        "racecheck output depends on the sim-worker default"
    );
}
