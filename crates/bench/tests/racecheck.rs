//! Zero-cost guard for the dynamic checker: attaching a `RaceChecker` must
//! never change any artifact — metrics documents and trace streams stay
//! byte-identical whether a (silent) checker is attached or not, and a
//! tracing run only gains events for actual violations. Plus a smoke test
//! that the full `tables --racecheck` suite passes.

use std::sync::Arc;

use vopp_apps::is::{run_is, IsParams, IsVariant};
use vopp_apps::racy::{is_racy_expected, run_is_racy};
use vopp_bench::MetricsSink;
use vopp_core::{ClusterConfig, Protocol, RaceChecker, RacecheckMode, RunStats};
use vopp_trace::{EventKind, Tracer};

fn checked(np: usize, proto: Protocol, mode: RacecheckMode) -> (ClusterConfig, Arc<RaceChecker>) {
    let rc = Arc::new(RaceChecker::new(mode, np));
    let mut cfg = ClusterConfig::lossless(np, proto);
    cfg.racecheck = Some(rc.clone());
    (cfg, rc)
}

#[test]
fn full_racecheck_suite_is_green() {
    let outcome = vopp_bench::run_racecheck();
    assert_eq!(
        outcome.cells.len(),
        22,
        "5 clean app pairs + 5 seeded app cells + 5 clean serve + 2 seeded serve"
    );
    assert!(
        outcome.ok(),
        "racecheck suite failed:\n{}",
        outcome.render()
    );
}

fn record_one(sink: &MetricsSink, stats: &RunStats) {
    sink.begin_table("racecheck-identity");
    sink.record("is_racy", "traditional", "LRC_d", 2, stats);
}

#[test]
fn metrics_documents_are_byte_identical_with_checker_attached() {
    // Even a checker that FIRES must not perturb the recorded statistics.
    let plain = run_is_racy(&ClusterConfig::lossless(2, Protocol::LrcD), 600, 2);
    let (cfg, rc) = checked(2, Protocol::LrcD, RacecheckMode::HappensBefore);
    let with_rc = run_is_racy(&cfg, 600, 2);
    assert!(rc.count() > 0, "the seeded cell must actually fire");

    let (a, b) = (MetricsSink::new(), MetricsSink::new());
    record_one(&a, &plain.stats);
    record_one(&b, &with_rc.stats);
    let (da, db) = (a.to_documents(), b.to_documents());
    assert_eq!(
        da["is_racy"].to_json_pretty(),
        db["is_racy"].to_json_pretty(),
        "BENCH_is_racy.json differs when a checker is attached"
    );
}

fn traced_clean_is(rc: bool) -> String {
    let mut cfg = ClusterConfig::lossless(4, Protocol::VcSd);
    if rc {
        cfg.racecheck = Some(Arc::new(RaceChecker::new(RacecheckMode::ViewDiscipline, 4)));
    }
    let tracer = Arc::new(Tracer::default());
    cfg.tracer = Some(tracer.clone());
    run_is(&cfg, &IsParams::quick(), IsVariant::Vopp);
    tracer.take().to_json()
}

#[test]
fn clean_run_trace_is_byte_identical_with_checker_attached() {
    // A silent checker adds zero events: the event stream of a clean run is
    // byte-for-byte the stream of an unchecked run.
    assert_eq!(
        traced_clean_is(false),
        traced_clean_is(true),
        "clean-run trace differs when a silent checker is attached"
    );
}

#[test]
fn racy_run_trace_gains_exactly_the_violation_events() {
    let (cfg, rc) = checked(2, Protocol::LrcD, RacecheckMode::HappensBefore);
    let mut cfg = cfg;
    let tracer = Arc::new(Tracer::default());
    cfg.tracer = Some(tracer.clone());
    run_is_racy(&cfg, 600, 2);

    let trace = tracer.take();
    let races = trace.count_kind(|k| matches!(k, EventKind::RaceDetected { .. }));
    assert_eq!(rc.count(), is_racy_expected(2));
    assert_eq!(
        races,
        is_racy_expected(2),
        "one RaceDetected event per distinct race"
    );
    assert_eq!(
        trace.count_kind(|k| matches!(k, EventKind::DisciplineViolation { .. })),
        0,
        "a happens-before checker never emits discipline events"
    );
}
