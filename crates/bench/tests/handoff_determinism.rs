//! Direct thread handoff is a wall-clock optimization only: with the
//! fast path enabled or disabled, every protocol must produce the exact
//! same event stream — same events, same virtual timestamps, same global
//! order. This is the strongest determinism statement the simulator can
//! make, because the trace records every scheduling-visible action
//! (process starts, network sends/receives, protocol operations) in the
//! order they were committed.
//!
//! This file holds a single `#[test]` on purpose: it flips the
//! process-wide handoff default, so it must not share a process with
//! other tests (each integration-test file is its own binary).

use std::sync::Arc;

use vopp_core::prelude::*;
use vopp_core::VoppExt;
use vopp_sim::set_direct_handoff_default;
use vopp_trace::Tracer;

const NPROCS: usize = 8;
const ROUNDS: u32 = 4;

/// Run a protocol-appropriate workload under `proto` with a tracer
/// attached; return the serialized trace. Uses the default (lossy)
/// network so timer events and retransmissions are exercised too.
fn traced_trace(proto: Protocol) -> String {
    let mut cfg = ClusterConfig::new(NPROCS, proto);
    let tracer = Arc::new(Tracer::default());
    cfg.tracer = Some(tracer.clone());
    match proto {
        // Lock + barrier workload on the traditional API.
        Protocol::LrcD | Protocol::Hlrc | Protocol::ScC => {
            let mut w = WorldBuilder::new();
            let arr = w.alloc_u32(1024);
            run_cluster(&cfg, w.build(), move |ctx| {
                for round in 0..ROUNDS {
                    ctx.lock_acquire(0);
                    arr.update(ctx, round as usize, |x| x + 1);
                    ctx.lock_release(0);
                    ctx.barrier();
                    let _ = arr.get(ctx, round as usize);
                    ctx.barrier();
                }
            });
        }
        // View bracket + barrier workload on the VOPP API.
        Protocol::VcD | Protocol::VcSd | Protocol::VcRdma => {
            let mut w = WorldBuilder::new();
            let v = w.view_u32(64);
            run_cluster(&cfg, w.build(), move |ctx| {
                for round in 0..ROUNDS {
                    ctx.with_view(&v, |r| r.update(ctx, (round as usize) % 64, |x| x + 1));
                    ctx.barrier();
                    let first = ctx.with_rview(&v, |r| r.get(ctx, (round as usize) % 64));
                    assert!(first > 0);
                    ctx.barrier();
                }
            });
        }
    }
    let trace = tracer.take();
    assert_eq!(trace.evicted, 0, "{proto}: ring must not wrap at this size");
    assert!(!trace.events.is_empty(), "{proto}: empty trace");
    trace.to_json()
}

#[test]
fn handoff_on_and_off_produce_identical_traces() {
    for proto in [
        Protocol::LrcD,
        Protocol::VcD,
        Protocol::VcSd,
        Protocol::VcRdma,
        Protocol::Hlrc,
        Protocol::ScC,
    ] {
        set_direct_handoff_default(true);
        let on = traced_trace(proto);
        set_direct_handoff_default(false);
        let off = traced_trace(proto);
        set_direct_handoff_default(true);
        assert_eq!(on, off, "{proto}: direct handoff changed the event stream");
    }
}
