//! The `netgen` table (modern network generations × protocol, see
//! docs/NETWORK.md) must obey the same artifact invariants as the paper
//! tables: the sweep-pool worker count, the persistent disk cache, and the
//! intra-run parallel kernel are all invisible in the rendered table, in
//! `BENCH_netgen.json`, and in the trace files. The RDMA generation is the
//! interesting one for the parallel kernel — its ~1 us one-way latency sits
//! near the conservative-lookahead floor, so the test also proves that an
//! RDMA cell still opens parallel windows instead of degenerating to a
//! serial sweep.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use vopp_bench::metrics::NETGEN_SCHEMA;
use vopp_bench::sweep::{
    cells_for, context_hash, dedup_cells, run_sweep, run_sweep_cached, DiskCache,
};
use vopp_bench::{tables, MetricsSink, Scale};

/// Every test in this binary that mutates the process-wide sim-worker
/// default serializes on this lock (surviving another test's panic).
static WIDTH: Mutex<()> = Mutex::new(());

fn lock_width() -> MutexGuard<'static, ()> {
    WIDTH.lock().unwrap_or_else(|e| e.into_inner())
}

/// Render the quick netgen sweep with `jobs` pool workers, mirroring
/// `tables netgen --quick --trace ... --metrics ...`. Returns the table
/// text plus every metrics/trace artifact, keyed by relative name
/// (wall-clock excluded — machine-dependent by design).
fn netgen_artifacts(jobs: usize, base: &Path) -> (String, BTreeMap<String, String>) {
    let traces = base.join("traces");
    let metrics = base.join("metrics");
    let sink = Arc::new(MetricsSink::new());
    let mut scale = Scale {
        quick: true,
        trace_dir: Some(traces.clone()),
        metrics: Some(sink.clone()),
        ..Scale::default()
    };
    let specs = dedup_cells(&cells_for("netgen", &scale));
    scale.cache = Some(Arc::new(run_sweep(&scale, &specs, jobs)));
    let text = tables::table_netgen(&scale).to_string();
    std::fs::create_dir_all(&metrics).expect("create metrics dir");
    sink.write_all(&metrics).expect("write metrics artifacts");
    let mut files = BTreeMap::new();
    for (dir, tag) in [(&metrics, "metrics"), (&traces, "traces")] {
        for entry in std::fs::read_dir(dir).expect("read artifact dir") {
            let entry = entry.expect("artifact entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            if name == "BENCH_wallclock.json" {
                continue;
            }
            files.insert(
                format!("{tag}/{name}"),
                std::fs::read_to_string(entry.path()).expect("read artifact"),
            );
        }
    }
    (text, files)
}

#[test]
fn netgen_four_jobs_match_one_job_byte_for_byte() {
    let _w = lock_width();
    let base = std::env::temp_dir().join(format!("vopp-netgen-jobs-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let (t1, f1) = netgen_artifacts(1, &base.join("j1"));
    let (t4, f4) = netgen_artifacts(4, &base.join("j4"));

    assert_eq!(t1, t4, "netgen table text must not depend on worker count");
    assert_eq!(
        f1.keys().collect::<Vec<_>>(),
        f4.keys().collect::<Vec<_>>(),
        "artifact file sets must match"
    );
    let netgen_json = &f1["metrics/BENCH_netgen.json"];
    assert!(
        netgen_json.contains(NETGEN_SCHEMA),
        "BENCH_netgen.json must carry {NETGEN_SCHEMA}"
    );
    // Every generation folds into the trace stems, so rdma / 10g / eth100m
    // runs of the same app+protocol never collide on one file.
    for stem in [
        "traces/is_vopp_rdma_vc_rdma_4p.events.json",
        "traces/is_vopp_10g_vc_sd_4p.events.json",
        "traces/is_trad_eth100m_lrc_d_4p.events.json",
    ] {
        assert!(f1.contains_key(stem), "missing trace artifact {stem}");
    }
    for (name, body) in &f1 {
        assert_eq!(body, &f4[name], "{name} differs between --jobs 1 and 4");
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn netgen_warm_disk_cache_replays_byte_identical_artifacts() {
    let _w = lock_width();
    let base = std::env::temp_dir().join(format!("vopp-netgen-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let cache_dir = base.join("cache");

    let run = |metrics_dir: &Path| {
        let sink = Arc::new(MetricsSink::new());
        let mut scale = Scale {
            quick: true,
            metrics: Some(sink.clone()),
            ..Scale::default()
        };
        let specs = dedup_cells(&cells_for("netgen", &scale));
        let mut disk = DiskCache::open(&cache_dir, context_hash(&scale));
        let cache = run_sweep_cached(&scale, &specs, 2, Some(&mut disk));
        let simulated = cache.simulated_cells;
        assert_eq!(cache.warm_cells + simulated, specs.len());
        scale.cache = Some(Arc::new(cache));
        let text = tables::table_netgen(&scale).to_string();
        std::fs::create_dir_all(metrics_dir).expect("create metrics dir");
        sink.write_all(metrics_dir)
            .expect("write metrics artifacts");
        let json = std::fs::read_to_string(metrics_dir.join("BENCH_netgen.json"))
            .expect("read BENCH_netgen.json");
        (text, json, simulated)
    };

    // Cold: populates the persistent cache. The netgen generation lives in
    // the cell *key*, so all 36 cells are distinct entries under one
    // context hash.
    let (t_cold, j_cold, sim_cold) = run(&base.join("cold"));
    assert_eq!(sim_cold, 36, "cold run must simulate every netgen cell");

    // Warm: must simulate *nothing* and replay identical bytes — the
    // persisted stats round-trip includes the one-sided datagram counter.
    let (t_warm, j_warm, sim_warm) = run(&base.join("warm"));
    assert_eq!(sim_warm, 0, "warm run simulated cells despite a hot cache");
    assert_eq!(t_cold, t_warm, "table text differs between cold and warm");
    assert_eq!(j_cold, j_warm, "BENCH_netgen.json differs cold vs warm");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn rdma_cell_is_byte_identical_at_4_sim_workers_and_opens_windows() {
    let _w = lock_width();
    let base = std::env::temp_dir().join(format!("vopp-netgen-simw-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    // One RDMA-generation VC_rdma cell — the tightest lookahead in the
    // netgen family, so if any cell degenerates to a serial sweep it is
    // this one.
    let run = |width: usize, dir: &Path| {
        vopp_sim::set_sim_workers_default(width);
        let traces = dir.join("traces");
        let sink = Arc::new(MetricsSink::new());
        let mut scale = Scale {
            quick: true,
            trace_dir: Some(traces.clone()),
            metrics: Some(sink.clone()),
            ..Scale::default()
        };
        let spec = cells_for("netgen", &scale)
            .into_iter()
            .find(|s| s.key() == "is_vopp_rdma_vc_rdma_4p")
            .expect("rdma cell present in the netgen sweep");
        scale.cache = Some(Arc::new(run_sweep(&scale, &[spec], 1)));
        std::fs::read_to_string(traces.join("is_vopp_rdma_vc_rdma_4p.events.json"))
            .expect("read rdma trace")
    };

    let seq = run(1, &base.join("w1"));
    let before = vopp_sim::window_totals();
    let par = run(4, &base.join("w4"));
    let after = vopp_sim::window_totals();
    vopp_sim::set_sim_workers_default(1);

    // The conservative-lookahead floor must leave the RDMA generation room
    // to carve windows — a 4-worker run that windows nothing would mean the
    // ~1 us link latency collapsed the lookahead below the floor.
    assert!(
        after.windows > before.windows,
        "4-worker rdma cell carved no parallel windows"
    );
    assert_eq!(seq, par, "rdma trace differs between sim-workers 1 and 4");
    std::fs::remove_dir_all(&base).ok();
}
