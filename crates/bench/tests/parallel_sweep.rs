//! The parallel sweep runner must be invisible in every artifact: running
//! the full quick sweep with 4 workers produces byte-identical table text,
//! `BENCH_<app>.json` metrics, and trace files to a 1-worker run. Only
//! wall-clock (reported in `BENCH_wallclock.json`, never gated) may differ.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use vopp_bench::sweep::{
    cells_for, context_hash, dedup_cells, run_sweep, run_sweep_cached, write_wallclock, DiskCache,
    WALLCLOCK_SCHEMA,
};
use vopp_bench::{all_tables, MetricsSink, Scale};
use vopp_trace::json::Value;

const ALL_TABLES: [&str; 9] = [
    "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9",
];

/// Render the full quick sweep with `jobs` workers, mirroring the `tables`
/// binary: precompute the de-duplicated cell list on the pool, then let the
/// table functions consume the cache sequentially. Returns the concatenated
/// table text plus every metrics/trace file, keyed by relative name.
fn sweep_artifacts(jobs: usize, base: &Path) -> (String, BTreeMap<String, String>) {
    let traces = base.join("traces");
    let metrics = base.join("metrics");
    let sink = Arc::new(MetricsSink::new());
    let mut scale = Scale {
        quick: true,
        trace_dir: Some(traces.clone()),
        metrics: Some(sink.clone()),
        ..Scale::default()
    };
    let specs = dedup_cells(
        &ALL_TABLES
            .iter()
            .flat_map(|name| cells_for(name, &scale))
            .collect::<Vec<_>>(),
    );
    let cache = run_sweep(&scale, &specs, jobs);
    assert_eq!(cache.jobs, jobs.min(specs.len()));
    write_wallclock(&cache, &[], &metrics).expect("write wallclock artifact");
    scale.cache = Some(Arc::new(cache));
    let text = all_tables(&scale)
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    sink.write_all(&metrics).expect("write metrics artifacts");
    let mut files = BTreeMap::new();
    for (dir, tag) in [(&metrics, "metrics"), (&traces, "traces")] {
        for entry in std::fs::read_dir(dir).expect("read artifact dir") {
            let entry = entry.expect("artifact entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            // Wall-clock is machine-dependent by design — excluded from
            // the byte comparison, schema-checked separately below.
            if name == "BENCH_wallclock.json" {
                continue;
            }
            files.insert(
                format!("{tag}/{name}"),
                std::fs::read_to_string(entry.path()).expect("read artifact"),
            );
        }
    }
    (text, files)
}

#[test]
fn four_workers_match_one_worker_byte_for_byte() {
    let base = std::env::temp_dir().join(format!("vopp-parallel-sweep-{}", std::process::id()));
    let (t1, f1) = sweep_artifacts(1, &base.join("j1"));
    let (t4, f4) = sweep_artifacts(4, &base.join("j4"));

    assert_eq!(t1, t4, "table text must not depend on worker count");
    assert_eq!(
        f1.keys().collect::<Vec<_>>(),
        f4.keys().collect::<Vec<_>>(),
        "artifact file sets must match"
    );
    assert!(
        f1.keys().any(|k| k.starts_with("metrics/BENCH_")),
        "sweep produced no metrics artifacts"
    );
    assert!(
        f1.keys().any(|k| k.ends_with(".events.json")),
        "sweep produced no trace artifacts"
    );
    for (name, body) in &f1 {
        assert_eq!(body, &f4[name], "{name} differs between --jobs 1 and 4");
    }

    // The wall-clock artifact exists in both runs and carries its schema,
    // one timing entry per unique cell, and a positive total.
    for dir in ["j1", "j4"] {
        let path = base.join(dir).join("metrics/BENCH_wallclock.json");
        let doc = Value::parse(&std::fs::read_to_string(&path).expect("read wallclock"))
            .expect("wallclock is JSON");
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(WALLCLOCK_SCHEMA)
        );
        let cells = doc.get("cells").and_then(Value::as_arr).expect("cells");
        assert!(!cells.is_empty());
        let total = doc.get("total").expect("total section");
        assert!(total.get("wall_ns").and_then(Value::as_u64).unwrap() > 0);
    }
    std::fs::remove_dir_all(&base).ok();
}

/// Render the full quick sweep (metrics only — the persistent cache is
/// bypassed when tracing) through a [`DiskCache`] in `cache_dir`, mirroring
/// `tables --cache`. Returns the table text, the metrics artifacts, and the
/// number of cells actually simulated.
fn cached_sweep_artifacts(
    jobs: usize,
    cache_dir: &Path,
    metrics: &Path,
) -> (String, BTreeMap<String, String>, usize) {
    let sink = Arc::new(MetricsSink::new());
    let mut scale = Scale {
        quick: true,
        metrics: Some(sink.clone()),
        ..Scale::default()
    };
    let specs = dedup_cells(
        &ALL_TABLES
            .iter()
            .flat_map(|name| cells_for(name, &scale))
            .collect::<Vec<_>>(),
    );
    let mut disk = DiskCache::open(cache_dir, context_hash(&scale));
    let cache = run_sweep_cached(&scale, &specs, jobs, Some(&mut disk));
    let simulated = cache.simulated_cells;
    assert_eq!(cache.warm_cells + simulated, specs.len());
    scale.cache = Some(Arc::new(cache));
    let text = all_tables(&scale)
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    sink.write_all(metrics).expect("write metrics artifacts");
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(metrics).expect("read metrics dir") {
        let entry = entry.expect("metrics entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        files.insert(
            name,
            std::fs::read_to_string(entry.path()).expect("read artifact"),
        );
    }
    (text, files, simulated)
}

#[test]
fn warm_disk_cache_replays_byte_identical_artifacts() {
    let base = std::env::temp_dir().join(format!("vopp-warm-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let cache_dir = base.join("cache");

    // Cold, sequential: populates the persistent cache.
    let (t_cold, f_cold, sim_cold) = cached_sweep_artifacts(1, &cache_dir, &base.join("cold"));
    assert!(sim_cold > 0, "cold run must simulate");

    // Warm, parallel: must simulate *nothing* and replay identical bytes.
    let (t_warm, f_warm, sim_warm) = cached_sweep_artifacts(4, &cache_dir, &base.join("warm"));
    assert_eq!(sim_warm, 0, "warm run simulated cells despite a hot cache");

    assert_eq!(t_cold, t_warm, "table text differs between cold and warm");
    assert_eq!(
        f_cold.keys().collect::<Vec<_>>(),
        f_warm.keys().collect::<Vec<_>>()
    );
    assert!(f_cold.keys().any(|k| k.starts_with("BENCH_")));
    for (name, body) in &f_cold {
        assert_eq!(body, &f_warm[name], "{name} differs between cold and warm");
    }
    std::fs::remove_dir_all(&base).ok();
}
