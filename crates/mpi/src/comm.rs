//! The communicator: point-to-point API, collectives, and the runner.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use vopp_dsm::{CostModel, CpuDebt};
use vopp_metrics::{Breakdown, Histogram, Phase};
use vopp_sim::sync::Mutex;
use vopp_sim::{AppCtx, ProcId, Sim, SimTime};
use vopp_simnet::{EthernetModel, NetConfig, RpcClient};

use crate::p2p::{deliver_tag, make_handler, Delivered, MpiData, MpiNode, MpiPayload};

/// Configuration of an MPI run (same network and CPU models as the DSM).
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Number of ranks.
    pub nprocs: usize,
    /// Network parameters.
    pub net: NetConfig,
    /// CPU cost model.
    pub cost: CostModel,
}

impl MpiConfig {
    /// `nprocs` ranks with default calibration.
    pub fn new(nprocs: usize) -> MpiConfig {
        MpiConfig {
            nprocs,
            net: NetConfig::default(),
            cost: CostModel::default(),
        }
    }

    /// Lossless variant for tests.
    pub fn lossless(nprocs: usize) -> MpiConfig {
        MpiConfig {
            net: NetConfig::lossless(),
            ..MpiConfig::new(nprocs)
        }
    }
}

/// Outcome of an MPI run.
pub struct MpiOutcome<R> {
    /// Per-rank results.
    pub results: Vec<R>,
    /// Virtual execution time.
    pub time: SimTime,
    /// Datagrams on the wire.
    pub msgs: u64,
    /// Bytes on the wire.
    pub bytes: u64,
    /// Retransmissions.
    pub rexmits: u64,
    /// Per-rank phase breakdown of virtual time (same classification as the
    /// DSM runtime, so MPI and DSM runs are directly comparable).
    pub breakdowns: Vec<Breakdown>,
    /// Per-rank finish times.
    pub proc_end: Vec<SimTime>,
    /// Round-trip latencies of every reliable send (DATA -> ACK), merged
    /// across ranks.
    pub rpc_rtt: Histogram,
}

/// The per-rank communicator handle.
pub struct MpiCtx<'a> {
    sim: AppCtx<'a>,
    rpc: RefCell<RpcClient>,
    seq_out: RefCell<Vec<u64>>,
    debt: CpuDebt,
    cost: CostModel,
    breakdown: RefCell<Breakdown>,
    /// When set, blocking waits are charged to this phase instead of the
    /// default (send -> SendWait, recv -> DataWait). `barrier` uses it so
    /// its constituent sends/receives all count as barrier wait.
    wait_phase: Cell<Option<Phase>>,
}

impl<'a> MpiCtx<'a> {
    /// This rank.
    pub fn me(&self) -> ProcId {
        self.sim.me()
    }

    /// Communicator size.
    pub fn nprocs(&self) -> usize {
        self.sim.nprocs()
    }

    /// Current virtual time (flushes CPU debt).
    pub fn now(&self) -> SimTime {
        self.flush();
        self.sim.now()
    }

    /// Flush CPU debt into the clock, classifying the advance.
    fn flush(&self) {
        let f = self.debt.flush(&self.sim);
        if f.total_ns() != 0 {
            let mut bd = self.breakdown.borrow_mut();
            bd.charge(Phase::Compute, f.app_ns);
            bd.charge(Phase::ProtoCpu, f.overhead_ns);
        }
    }

    /// Charge the time since `since` to `phase` (or the barrier override).
    fn charge_wait(&self, phase: Phase, since: SimTime) {
        let waited = (self.sim.now() - since).nanos();
        let phase = self.wait_phase.get().unwrap_or(phase);
        self.breakdown.borrow_mut().charge(phase, waited);
    }

    /// Charge floating-point work.
    pub fn flops(&self, n: u64) {
        self.debt.add_ns(n as f64 * self.cost.ns_per_flop);
    }

    /// Charge integer work.
    pub fn int_ops(&self, n: u64) {
        self.debt.add_ns(n as f64 * self.cost.ns_per_int);
    }

    /// Charge raw nanoseconds.
    pub fn compute_ns(&self, ns: f64) {
        self.debt.add_ns(ns);
    }

    /// Blocking reliable send to `dst` with message tag `tag`.
    pub fn send(&self, dst: ProcId, tag: u32, payload: MpiPayload) {
        self.flush();
        let seq = {
            let mut s = self.seq_out.borrow_mut();
            let v = s[dst];
            s[dst] += 1;
            v
        };
        let data = MpiData { tag, seq, payload };
        let bytes = data.wire_bytes();
        // The ack is the rpc reply; retransmission handled by the transport.
        let t0 = self.sim.now();
        let _ = self.rpc.borrow_mut().call(&self.sim, dst, bytes, data);
        self.charge_wait(Phase::SendWait, t0);
    }

    /// Blocking receive of the next in-order message from `src` with `tag`.
    pub fn recv(&self, src: ProcId, tag: u32) -> MpiPayload {
        self.flush();
        let want = deliver_tag(src, tag);
        let t0 = self.sim.now();
        let pkt = self.sim.recv_filter(|p| p.tag == want);
        self.charge_wait(Phase::DataWait, t0);
        pkt.expect::<Delivered>().payload
    }

    /// Flat barrier through rank 0 (gather + release).
    pub fn barrier(&self) {
        let n = self.nprocs();
        if n == 1 {
            return;
        }
        self.wait_phase.set(Some(Phase::BarrierWait));
        if self.me() == 0 {
            for src in 1..n {
                let _ = self.recv(src, TAG_BARRIER);
            }
            for dst in 1..n {
                self.send(dst, TAG_BARRIER, MpiPayload::Unit);
            }
        } else {
            self.send(0, TAG_BARRIER, MpiPayload::Unit);
            let _ = self.recv(0, TAG_BARRIER);
        }
        self.wait_phase.set(None);
    }

    /// Binomial-tree broadcast from `root`. Non-root ranks pass `None`.
    pub fn bcast(&self, root: ProcId, mine: Option<MpiPayload>) -> MpiPayload {
        let n = self.nprocs();
        let rel = (self.me() + n - root) % n;
        let abs = |r: usize| (r + root) % n;
        let mut payload = mine;
        let mut mask = 1usize;
        while mask < n {
            if rel & mask != 0 {
                let parent = rel & !mask;
                payload = Some(self.recv(abs(parent), TAG_BCAST));
                break;
            }
            mask <<= 1;
        }
        let payload = payload.expect("bcast root must supply a payload");
        mask >>= 1;
        let mut m = mask;
        while m > 0 {
            if rel | m != rel && rel + m < n {
                self.send(abs(rel + m), TAG_BCAST, payload.clone());
            }
            m >>= 1;
        }
        payload
    }

    /// Binomial-tree sum-reduction of a double vector to rank `root`.
    /// Every rank must pass a vector of the same length; the result is
    /// meaningful only at the root (others get their partial sums back).
    pub fn reduce_sum_f64(&self, root: ProcId, mine: Vec<f64>) -> Vec<f64> {
        let n = self.nprocs();
        let rel = (self.me() + n - root) % n;
        let abs = |r: usize| (r + root) % n;
        let mut acc = mine;
        let mut mask = 1usize;
        while mask < n {
            if rel & mask == 0 {
                let src_rel = rel | mask;
                if src_rel < n {
                    let theirs = self.recv(abs(src_rel), TAG_REDUCE).into_f64s();
                    assert_eq!(theirs.len(), acc.len(), "reduce length mismatch");
                    self.flops(acc.len() as u64);
                    for (a, b) in acc.iter_mut().zip(theirs.iter()) {
                        *a += b;
                    }
                }
            } else {
                let dst_rel = rel & !mask;
                self.send(
                    abs(dst_rel),
                    TAG_REDUCE,
                    MpiPayload::F64s(Arc::new(acc.clone())),
                );
                break;
            }
            mask <<= 1;
        }
        acc
    }

    /// Allreduce (sum) of a double vector: binomial reduce + broadcast,
    /// MPICH's default for medium messages in this era.
    pub fn allreduce_sum_f64(&self, mine: Vec<f64>) -> Vec<f64> {
        let reduced = self.reduce_sum_f64(0, mine);
        let out = if self.me() == 0 {
            self.bcast(0, Some(MpiPayload::F64s(Arc::new(reduced))))
        } else {
            self.bcast(0, None)
        };
        out.into_f64s().as_ref().clone()
    }

    fn finish(&self) -> (u64, Breakdown, Histogram) {
        self.flush();
        let rpc = self.rpc.borrow();
        (rpc.rexmits, *self.breakdown.borrow(), rpc.rtt.clone())
    }
}

const TAG_BARRIER: u32 = 0xB000;
const TAG_BCAST: u32 = 0xB001;
const TAG_REDUCE: u32 = 0xB002;

/// Run an SPMD MPI program on the simulated cluster.
pub fn run_mpi<R, F>(cfg: &MpiConfig, body: F) -> MpiOutcome<R>
where
    R: Send,
    F: Fn(&MpiCtx<'_>) -> R + Send + Sync,
{
    let n = cfg.nprocs;
    let model = EthernetModel::new(n, cfg.net.clone());
    let net_stats = model.stats_handle();
    let mut sim = Sim::new(n, Box::new(model));
    let states: Vec<Arc<Mutex<MpiNode>>> = (0..n)
        .map(|_| {
            Arc::new(Mutex::new(MpiNode {
                expected_in: vec![0; n],
            }))
        })
        .collect();
    for (p, st) in states.iter().enumerate() {
        sim.set_handler(p, make_handler(st.clone()));
    }
    let cost = cfg.cost.clone();
    let rexmits = Mutex::new(0u64);
    let breakdowns = Mutex::new(vec![Breakdown::default(); n]);
    let rpc_rtt = Mutex::new(Histogram::default());
    let out = sim.run(|ctx| {
        let n = ctx.nprocs();
        let me = ctx.me();
        let mctx = MpiCtx {
            sim: ctx,
            rpc: RefCell::new(RpcClient::new()),
            seq_out: RefCell::new(vec![0; n]),
            debt: CpuDebt::new(),
            cost: cost.clone(),
            breakdown: RefCell::new(Breakdown::default()),
            wait_phase: Cell::new(None),
        };
        let r = body(&mctx);
        let (rex, bd, rtt) = mctx.finish();
        *rexmits.lock() += rex;
        breakdowns.lock()[me] = bd;
        rpc_rtt.lock().absorb(&rtt);
        r
    });
    let ns = *net_stats.lock();
    let rexmits = *rexmits.lock();
    let breakdowns = breakdowns.lock().clone();
    let rpc_rtt = rpc_rtt.lock().clone();
    for (p, bd) in breakdowns.iter().enumerate() {
        // Same cross-checks as the DSM runtime: the phase accounting must
        // classify every nanosecond and agree with the kernel's own split.
        debug_assert_eq!(
            bd.total_ns(),
            out.proc_end[p].nanos(),
            "rank {p}: phase breakdown does not sum to run time"
        );
        debug_assert_eq!(
            bd.cpu_ns(),
            out.proc_times[p].compute_ns,
            "rank {p}: compute disagrees with kernel compute time"
        );
        debug_assert_eq!(
            bd.blocked_ns(),
            out.proc_times[p].blocked_ns,
            "rank {p}: wait phases disagree with kernel blocked time"
        );
    }
    MpiOutcome {
        results: out.results,
        time: out.end_time,
        msgs: ns.msgs,
        bytes: ns.bytes,
        rexmits,
        breakdowns,
        proc_end: out.proc_end,
        rpc_rtt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let out = run_mpi(&MpiConfig::lossless(2), |c| {
            if c.me() == 0 {
                c.send(1, 7, MpiPayload::F64s(Arc::new(vec![1.0, 2.0])));
                0.0
            } else {
                let v = c.recv(0, 7).into_f64s();
                v.iter().sum::<f64>()
            }
        });
        assert_eq!(out.results[1], 3.0);
        assert!(out.msgs >= 2); // DATA + ACK
    }

    #[test]
    fn barrier_synchronizes() {
        let out = run_mpi(&MpiConfig::lossless(5), |c| {
            if c.me() == 2 {
                c.compute_ns(10_000_000.0); // straggler
            }
            c.barrier();
            c.now().nanos()
        });
        for t in &out.results {
            assert!(*t >= 10_000_000, "barrier must wait for the straggler");
        }
    }

    #[test]
    fn bcast_all_sizes() {
        for n in [1, 2, 3, 4, 7, 8] {
            let out = run_mpi(&MpiConfig::lossless(n), |c| {
                let data = if c.me() == 0 {
                    Some(MpiPayload::U32s(Arc::new(vec![42, 43])))
                } else {
                    None
                };
                let got = c.bcast(0, data).into_u32s();
                got[0] + got[1]
            });
            assert!(out.results.iter().all(|&r| r == 85), "n = {n}");
        }
    }

    #[test]
    fn bcast_nonzero_root() {
        let out = run_mpi(&MpiConfig::lossless(6), |c| {
            let data = if c.me() == 4 {
                Some(MpiPayload::U32s(Arc::new(vec![9])))
            } else {
                None
            };
            c.bcast(4, data).into_u32s()[0]
        });
        assert!(out.results.iter().all(|&r| r == 9));
    }

    #[test]
    fn allreduce_sums() {
        for n in [1, 2, 3, 4, 6, 8] {
            let out = run_mpi(&MpiConfig::lossless(n), move |c| {
                let mine = vec![c.me() as f64, 1.0];
                c.allreduce_sum_f64(mine)
            });
            let expect0: f64 = (0..n).map(|i| i as f64).sum();
            for r in &out.results {
                assert_eq!(r[0], expect0, "n = {n}");
                assert_eq!(r[1], n as f64);
            }
        }
    }

    #[test]
    fn reliable_under_loss() {
        let mut cfg = MpiConfig::new(4);
        cfg.net.base_drop_prob = 0.05;
        let out = run_mpi(&cfg, |c| {
            let mut acc = [0.0; 8];
            for round in 0..10 {
                let mine = vec![(c.me() + round) as f64; 8];
                let s = c.allreduce_sum_f64(mine);
                for (a, b) in acc.iter_mut().zip(&s) {
                    *a += b;
                }
                c.barrier();
            }
            acc[0]
        });
        // sum over rounds of sum over ranks of (rank + round)
        let expect: f64 = (0..10)
            .map(|r| (0..4).map(|k| (k + r) as f64).sum::<f64>())
            .sum();
        for r in &out.results {
            assert_eq!(*r, expect);
        }
        assert!(out.rexmits > 0);
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut cfg = MpiConfig::new(3);
            cfg.net.base_drop_prob = 0.02;
            run_mpi(&cfg, |c| {
                let s = c.allreduce_sum_f64(vec![c.me() as f64; 32]);
                c.barrier();
                s[0]
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.results, b.results);
        assert_eq!(a.time, b.time);
        assert_eq!(a.msgs, b.msgs);
    }
}
