#![warn(missing_docs)]

//! # vopp-mpi — message-passing baseline
//!
//! A small MPI-like library running over the same simulated switched
//! Ethernet as the DSM systems, standing in for the paper's MPICH runs
//! (Table 9 compares the VOPP neural-network application against MPI).
//!
//! Point-to-point transfers are reliable stop-and-wait exchanges: DATA goes
//! to the receiver's service handler, which acknowledges immediately and
//! hands the payload (in order) to the application mailbox. Retransmission
//! and duplicate suppression reuse the `vopp-simnet` transport. Collectives
//! (barrier, broadcast, reduce, allreduce) use binomial trees, like MPICH's
//! defaults of the era.

mod comm;
mod p2p;

pub use comm::{run_mpi, MpiConfig, MpiCtx, MpiOutcome};
pub use p2p::MpiPayload;
