//! Reliable point-to-point transfers.

use std::sync::Arc;

use vopp_sim::sync::Mutex;
use vopp_sim::{DeliveryClass, Handler, ProcId};
use vopp_simnet::{reply, HEADER_BYTES};

/// Data that can travel in an MPI message. `Arc`-wrapped so retransmission
/// clones are cheap.
#[derive(Debug, Clone)]
pub enum MpiPayload {
    /// No data (barrier tokens).
    Unit,
    /// A vector of doubles.
    F64s(Arc<Vec<f64>>),
    /// A vector of 32-bit words.
    U32s(Arc<Vec<u32>>),
    /// Raw bytes.
    Bytes(Arc<Vec<u8>>),
}

impl MpiPayload {
    /// Payload size on the wire.
    pub fn data_bytes(&self) -> usize {
        match self {
            MpiPayload::Unit => 0,
            MpiPayload::F64s(v) => v.len() * 8,
            MpiPayload::U32s(v) => v.len() * 4,
            MpiPayload::Bytes(v) => v.len(),
        }
    }

    /// Unwrap doubles.
    pub fn into_f64s(self) -> Arc<Vec<f64>> {
        match self {
            MpiPayload::F64s(v) => v,
            other => panic!("expected F64s, got {other:?}"),
        }
    }

    /// Unwrap words.
    pub fn into_u32s(self) -> Arc<Vec<u32>> {
        match self {
            MpiPayload::U32s(v) => v,
            other => panic!("expected U32s, got {other:?}"),
        }
    }
}

/// One DATA message (request half of the stop-and-wait exchange).
#[derive(Debug, Clone)]
pub(crate) struct MpiData {
    pub tag: u32,
    pub seq: u64,
    pub payload: MpiPayload,
}

impl MpiData {
    pub(crate) fn wire_bytes(&self) -> usize {
        HEADER_BYTES + 12 + self.payload.data_bytes()
    }
}

/// Delivered message as re-queued into the receiver's own mailbox.
#[derive(Debug, Clone)]
pub(crate) struct Delivered {
    pub payload: MpiPayload,
}

/// Mailbox tag encoding for delivered messages: src and user tag.
pub(crate) const DELIVER_BIT: u64 = 1 << 61;

pub(crate) fn deliver_tag(src: ProcId, tag: u32) -> u64 {
    DELIVER_BIT | ((src as u64) << 32) | tag as u64
}

/// Receiver-side state: next expected sequence number per sender.
pub(crate) struct MpiNode {
    pub expected_in: Vec<u64>,
}

/// Build the receive handler for one rank: acknowledges every DATA message
/// (idempotently) and forwards fresh in-order payloads to the local mailbox.
pub(crate) fn make_handler(state: Arc<Mutex<MpiNode>>) -> Handler {
    Box::new(move |svc, pkt| {
        let rpc_tag = pkt.tag;
        let src = pkt.src;
        // The sender retains the payload for retransmission; borrow it
        // shared instead of deep-copying the message.
        let data = pkt.expect_arc::<MpiData>();
        let mut st = state.lock();
        let exp = &mut st.expected_in[src];
        if data.seq == *exp {
            *exp += 1;
            let dt = deliver_tag(src, data.tag);
            let payload = data.payload.clone();
            drop(st);
            // Local hand-off to the application thread.
            svc.send(
                svc.me(),
                0,
                DeliveryClass::App,
                dt,
                Arc::new(Delivered { payload }),
            );
        } else {
            // Duplicate of an already-delivered message: just re-ack.
            debug_assert!(data.seq < *exp, "out-of-order MPI data");
            drop(st);
        }
        reply(svc, src, HEADER_BYTES, rpc_tag, Arc::new(()));
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes() {
        assert_eq!(MpiPayload::Unit.data_bytes(), 0);
        assert_eq!(MpiPayload::F64s(Arc::new(vec![0.0; 4])).data_bytes(), 32);
        assert_eq!(MpiPayload::U32s(Arc::new(vec![0; 4])).data_bytes(), 16);
        assert_eq!(MpiPayload::Bytes(Arc::new(vec![0; 5])).data_bytes(), 5);
    }

    #[test]
    fn deliver_tag_disjoint_by_src_and_tag() {
        assert_ne!(deliver_tag(1, 5), deliver_tag(2, 5));
        assert_ne!(deliver_tag(1, 5), deliver_tag(1, 6));
        assert!(deliver_tag(0, 0) & DELIVER_BIT != 0);
    }
}
