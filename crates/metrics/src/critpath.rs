//! Critical-path extraction, blame attribution, and what-if estimators.
//!
//! Input: the [`CausalLog`] a [`vopp_trace::CausalProfiler`] recorded
//! during one cluster run. The walk starts at the context that produced
//! the run's makespan (the latest per-node clock) and follows each
//! record's causal edge backward:
//!
//! * a compute wake charges its interval to CPU on its node and continues
//!   on the node's own history,
//! * a receive wake charges the tail of its blocked interval — from the
//!   instant the waking packet was *sent* — to the network, then continues
//!   on the sender's chain (or, if the send predates the block, charges
//!   the whole blocked interval to the network and continues locally:
//!   after that point delivery was the only remaining constraint),
//! * a service dispatch contributes the request's flight and chains to the
//!   requester — so a barrier release walks through the home node's
//!   handler to the *last-arriving* participant, and a deferred lock grant
//!   walks through the release that triggered it.
//!
//! Every step moves the time cursor to exactly where the next record ends,
//! so the segments telescope: their lengths sum to the makespan *exactly*
//! (debug-asserted). Blame refinement joins each segment against the DSM
//! layer's [`OpSpan`] annotations by interval containment, yielding the
//! `(node, category, protocol-op, object)` tuple per nanosecond.
//!
//! What-if estimators follow from the path by an exchange argument: if all
//! edges of kind X became free, the original path minus its X-time is
//! still a dependency chain in the new graph, so the new makespan is at
//! least `T - X_on_path` and the achievable speedup is at most
//! `T / (T - X_on_path)` — a true *ceiling*, not an estimate of the
//! realized gain (other paths can become critical first).

use vopp_trace::json::{self, Value};
use vopp_trace::{CausalLog, CtxKind, OpKind, NO_CTX};

/// How a critical-path segment spent its time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegCat {
    /// The node was burning (virtual) CPU.
    Cpu,
    /// The time was network flight/queueing or waiting on a remote chain.
    Net,
    /// The node sat out a retransmission timeout.
    Timeout,
}

impl SegCat {
    /// Stable artifact label.
    pub fn label(self) -> &'static str {
        match self {
            SegCat::Cpu => "cpu",
            SegCat::Net => "net",
            SegCat::Timeout => "timeout",
        }
    }
}

/// One segment of the virtual-time critical path.
#[derive(Debug, Clone, Copy)]
pub struct CritSeg {
    /// Node the segment is blamed on (the consumer for network segments).
    pub node: usize,
    /// Segment start (virtual ns).
    pub lo_ns: u64,
    /// Segment end (virtual ns).
    pub hi_ns: u64,
    /// Time category.
    pub cat: SegCat,
    /// Protocol operation ([`OpKind::Other`] when unannotated).
    pub op: OpKind,
    /// View/page/lock id of the operation (0 when not applicable).
    pub obj: u64,
    /// Application share of a CPU segment.
    pub app_ns: u64,
    /// Protocol-overhead share of a CPU segment.
    pub overhead_ns: u64,
    /// Diff create/apply share of `overhead_ns`.
    pub diff_ns: u64,
}

impl CritSeg {
    /// Segment length in nanoseconds.
    pub fn len_ns(&self) -> u64 {
        self.hi_ns - self.lo_ns
    }
}

/// The extracted critical path of one run.
#[derive(Debug, Clone, Default)]
pub struct CritPath {
    /// The run's makespan (latest per-node clock), in virtual ns.
    pub makespan_ns: u64,
    /// Node whose finish produced the makespan (lowest id on ties).
    pub end_node: usize,
    /// Path segments in forward time order; lengths sum to `makespan_ns`.
    pub segs: Vec<CritSeg>,
}

impl CritPath {
    fn sum(&self, f: impl Fn(&CritSeg) -> u64) -> u64 {
        self.segs.iter().map(f).sum()
    }

    /// CPU time on the path (app + overhead).
    pub fn cpu_ns(&self) -> u64 {
        self.sum(|s| if s.cat == SegCat::Cpu { s.len_ns() } else { 0 })
    }

    /// Application share of path CPU time.
    pub fn cpu_app_ns(&self) -> u64 {
        self.sum(|s| s.app_ns)
    }

    /// Protocol-overhead share of path CPU time.
    pub fn cpu_overhead_ns(&self) -> u64 {
        self.sum(|s| s.overhead_ns)
    }

    /// Diff create/apply share of path CPU time.
    pub fn diff_cpu_ns(&self) -> u64 {
        self.sum(|s| s.diff_ns)
    }

    /// Network (flight/queueing/remote-chain) time on the path.
    pub fn net_ns(&self) -> u64 {
        self.sum(|s| if s.cat == SegCat::Net { s.len_ns() } else { 0 })
    }

    /// Retransmission-timeout time on the path.
    pub fn timeout_ns(&self) -> u64 {
        self.sum(|s| {
            if s.cat == SegCat::Timeout {
                s.len_ns()
            } else {
                0
            }
        })
    }

    /// Non-CPU path time blamed on a protocol operation.
    pub fn wait_ns(&self, op: OpKind) -> u64 {
        self.sum(|s| {
            if s.cat != SegCat::Cpu && s.op == op {
                s.len_ns()
            } else {
                0
            }
        })
    }

    /// CPU path time whose annotation is `op` (e.g. [`OpKind::Idle`]).
    pub fn cpu_op_ns(&self, op: OpKind) -> u64 {
        self.sum(|s| {
            if s.cat == SegCat::Cpu && s.op == op {
                s.len_ns()
            } else {
                0
            }
        })
    }

    /// Percentage of the makespan, `0.0` on an empty run.
    pub fn pct(&self, ns: u64) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            100.0 * ns as f64 / self.makespan_ns as f64
        }
    }

    /// Speedup ceiling if `x_ns` of path time became free:
    /// `T / (T - x)`. Infinite when the whole path is `x`.
    pub fn ceiling(&self, x_ns: u64) -> f64 {
        let t = self.makespan_ns;
        debug_assert!(x_ns <= t, "what-if time exceeds the makespan");
        if t == 0 {
            1.0
        } else if x_ns >= t {
            f64::INFINITY
        } else {
            t as f64 / (t - x_ns) as f64
        }
    }

    /// Path time removed by a zero-latency, infinite-bandwidth network:
    /// every network segment.
    pub fn whatif_net_free_ns(&self) -> u64 {
        self.net_ns()
    }

    /// Path time removed by free diff create/apply: the diff share of
    /// path CPU time (fetch round-trips themselves stay).
    pub fn whatif_diff_free_ns(&self) -> u64 {
        self.diff_cpu_ns()
    }

    /// Path time removed by an infinite-fan-in (free) barrier: every
    /// non-CPU segment blamed on a barrier operation.
    pub fn whatif_barrier_free_ns(&self) -> u64 {
        self.wait_ns(OpKind::Barrier)
    }
}

/// Walk the causal log backward from the run's completion and return the
/// exact virtual-time critical path. `proc_end_ns` is each node's final
/// clock. Panics (debug) if the segments do not telescope to the makespan.
pub fn extract(log: &CausalLog, proc_end_ns: &[u64]) -> CritPath {
    let makespan_ns = proc_end_ns.iter().copied().max().unwrap_or(0);
    let end_node = proc_end_ns
        .iter()
        .position(|&t| t == makespan_ns)
        .unwrap_or(0);
    let mut segs: Vec<CritSeg> = Vec::new();
    // The op a network chain is being consumed by: set at the receive wake
    // that starts (in backward order) the chain, carried across service
    // hops so e.g. barrier fan-in flight is blamed on the barrier.
    let mut consumer: (usize, OpKind, u64) = (end_node, OpKind::Other, 0);
    let mut cur = log.last_wake.get(end_node).copied().unwrap_or(NO_CTX);
    while cur != NO_CTX {
        let r = log.records[cur as usize];
        match r.kind {
            CtxKind::Start => break,
            CtxKind::Compute => {
                // A compute annotation (flush/idle) always ends exactly at
                // the wake time; a span merely *starting* there belongs to
                // the wait that follows, not to this interval.
                let (op, obj, app, ovh, diff) = match log.span_at(r.node, r.t_ns) {
                    Some(s) if s.hi_ns == r.t_ns => {
                        (s.op, s.obj, s.app_ns, s.overhead_ns, s.diff_ns)
                    }
                    // Unannotated compute (raw kernel users): all app time.
                    _ => (OpKind::Other, 0, r.t_ns - r.prev_ns, 0, 0),
                };
                segs.push(CritSeg {
                    node: r.node,
                    lo_ns: r.prev_ns,
                    hi_ns: r.t_ns,
                    cat: SegCat::Cpu,
                    op,
                    obj,
                    app_ns: app,
                    overhead_ns: ovh,
                    diff_ns: diff,
                });
                cur = r.prev;
            }
            CtxKind::Timeout => {
                let (op, obj) = match log.span_at(r.node, r.t_ns) {
                    Some(s) => (s.op, s.obj),
                    None => (OpKind::Other, 0),
                };
                segs.push(CritSeg {
                    node: r.node,
                    lo_ns: r.prev_ns,
                    hi_ns: r.t_ns,
                    cat: SegCat::Timeout,
                    op,
                    obj,
                    app_ns: 0,
                    overhead_ns: 0,
                    diff_ns: 0,
                });
                cur = r.prev;
            }
            CtxKind::Wait => {
                let (op, obj) = match log.span_at(r.node, r.t_ns) {
                    Some(s) => (s.op, s.obj),
                    None => (OpKind::Other, 0),
                };
                consumer = (r.node, op, obj);
                // When the waking packet was sent after this node blocked,
                // the chain continues on the sender; otherwise the whole
                // blocked interval was flight/queueing and the chain
                // continues on this node's own history.
                let sender_chain = if r.cause == NO_CTX {
                    None
                } else {
                    let send_t = log.records[r.cause as usize].t_ns;
                    (send_t > r.prev_ns).then_some((r.cause, send_t))
                };
                let (next, lo_ns) = match sender_chain {
                    Some((cause, send_t)) => (cause, send_t),
                    None => (r.prev, r.prev_ns),
                };
                segs.push(CritSeg {
                    node: r.node,
                    lo_ns,
                    hi_ns: r.t_ns,
                    cat: SegCat::Net,
                    op,
                    obj,
                    app_ns: 0,
                    overhead_ns: 0,
                    diff_ns: 0,
                });
                cur = next;
            }
            CtxKind::Svc => {
                // Zero-width hop at the packet's arrival time: contribute
                // the request's flight, blamed on the downstream consumer.
                debug_assert_ne!(r.cause, NO_CTX, "svc dispatch without a stamped request");
                if r.cause == NO_CTX {
                    break;
                }
                let send_t = log.records[r.cause as usize].t_ns;
                let (node, op, obj) = consumer;
                segs.push(CritSeg {
                    node,
                    lo_ns: send_t.min(r.t_ns),
                    hi_ns: r.t_ns,
                    cat: SegCat::Net,
                    op,
                    obj,
                    app_ns: 0,
                    overhead_ns: 0,
                    diff_ns: 0,
                });
                cur = r.cause;
            }
        }
    }
    segs.reverse();
    let cp = CritPath {
        makespan_ns,
        end_node,
        segs,
    };
    debug_assert_eq!(
        cp.sum(CritSeg::len_ns),
        makespan_ns,
        "critical-path segments must telescope exactly to the makespan"
    );
    debug_assert!(
        cp.segs.windows(2).all(|w| w[0].hi_ns == w[1].lo_ns),
        "critical-path segments must be contiguous"
    );
    cp
}

/// Convert ns to the microsecond floats Chrome trace events use.
fn us(t_ns: u64) -> Value {
    Value::Num(t_ns as f64 / 1000.0)
}

/// Export the critical path as a Chrome-trace JSON document with one
/// dedicated *process* ("critical path") and one thread per node, so the
/// Perfetto timeline shows which node carries the path at every instant.
/// Deterministic: virtual time only, insertion order fixed by the path.
pub fn critpath_to_chrome_json(cp: &CritPath) -> String {
    let mut out: Vec<Value> = Vec::new();
    out.push(json::obj(vec![
        ("ph", json::str("M")),
        ("pid", json::num(0)),
        ("tid", json::num(0)),
        ("name", json::str("process_name")),
        (
            "args",
            json::obj(vec![("name", json::str("critical path"))]),
        ),
    ]));
    let mut named: Vec<usize> = cp.segs.iter().map(|s| s.node).collect();
    named.sort_unstable();
    named.dedup();
    for node in named {
        out.push(json::obj(vec![
            ("ph", json::str("M")),
            ("pid", json::num(0)),
            ("tid", json::num(node as u64)),
            ("name", json::str("thread_name")),
            (
                "args",
                json::obj(vec![("name", json::str(&format!("node {node}")))]),
            ),
        ]));
    }
    for s in &cp.segs {
        if s.len_ns() == 0 {
            continue;
        }
        let name = format!("{}:{}", s.cat.label(), s.op.label());
        let mut args = vec![("obj", json::num(s.obj))];
        if s.cat == SegCat::Cpu {
            args.push(("app_ns", json::num(s.app_ns)));
            args.push(("overhead_ns", json::num(s.overhead_ns)));
            args.push(("diff_ns", json::num(s.diff_ns)));
        }
        out.push(json::obj(vec![
            ("ph", json::str("X")),
            ("pid", json::num(0)),
            ("tid", json::num(s.node as u64)),
            ("cat", json::str(s.cat.label())),
            ("name", json::str(&name)),
            ("ts", us(s.lo_ns)),
            ("dur", us(s.len_ns())),
            ("args", json::obj(args)),
        ]));
    }
    json::obj(vec![
        ("displayTimeUnit", json::str("ns")),
        ("traceEvents", Value::Arr(out)),
    ])
    .to_json_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vopp_trace::{CausalProfiler, OpSpan};

    fn span(lo: u64, hi: u64, op: OpKind, obj: u64) -> OpSpan {
        OpSpan {
            lo_ns: lo,
            hi_ns: hi,
            op,
            obj,
            app_ns: 0,
            overhead_ns: 0,
            diff_ns: 0,
        }
    }

    /// Two nodes: node 1 computes 400, sends; node 0 computed 100, blocked
    /// at 100, wakes at 600 on node 1's packet. Path: 400 cpu on node 1,
    /// then 200 net (send at 400, delivery at 600) on node 0.
    #[test]
    fn wait_chains_to_the_sender() {
        let p = CausalProfiler::new(2);
        p.record_wake(0, 0, 0, CtxKind::Start, NO_CTX); // 0
        p.record_wake(1, 0, 0, CtxKind::Start, NO_CTX); // 1
        p.record_wake(0, 0, 100, CtxKind::Compute, NO_CTX); // 2
        p.record_wake(1, 0, 400, CtxKind::Compute, NO_CTX); // 3: sends at 400
        p.record_wake(0, 100, 600, CtxKind::Wait, 3); // 4
        let log = p.take();
        let cp = extract(&log, &[600, 400]);
        assert_eq!(cp.makespan_ns, 600);
        assert_eq!(cp.end_node, 0);
        let spans: Vec<_> = cp
            .segs
            .iter()
            .map(|s| (s.node, s.lo_ns, s.hi_ns, s.cat))
            .collect();
        assert_eq!(
            spans,
            vec![(1, 0, 400, SegCat::Cpu), (0, 400, 600, SegCat::Net)]
        );
        assert_eq!(cp.cpu_ns(), 400);
        assert_eq!(cp.net_ns(), 200);
    }

    /// The packet was sent before the receiver blocked: the whole blocked
    /// interval is network time and the chain stays on the receiver.
    #[test]
    fn early_send_charges_the_whole_wait_locally() {
        let p = CausalProfiler::new(2);
        p.record_wake(0, 0, 0, CtxKind::Start, NO_CTX); // 0
        p.record_wake(1, 0, 0, CtxKind::Start, NO_CTX); // 1: sends at 0
        p.record_wake(0, 0, 300, CtxKind::Compute, NO_CTX); // 2
        p.record_wake(0, 300, 350, CtxKind::Wait, 1); // 3: sent at 0 < 300
        let log = p.take();
        let cp = extract(&log, &[350, 0]);
        let spans: Vec<_> = cp
            .segs
            .iter()
            .map(|s| (s.node, s.lo_ns, s.hi_ns, s.cat))
            .collect();
        assert_eq!(
            spans,
            vec![(0, 0, 300, SegCat::Cpu), (0, 300, 350, SegCat::Net)]
        );
    }

    /// A request/reply through a service handler: the reply wake chains to
    /// the svc record, which contributes the request flight and chains to
    /// the requester's own compute — both flights blamed on the consumer's
    /// operation (here a Data fetch).
    #[test]
    fn svc_hop_splits_request_and_reply_flight() {
        let p = CausalProfiler::new(2);
        p.record_wake(0, 0, 0, CtxKind::Start, NO_CTX); // 0
        p.record_wake(0, 0, 100, CtxKind::Compute, NO_CTX); // 1: sends req at 100
        p.record_svc(1, 150, 1); // 2: home handler replies at 150
        p.record_wake(0, 100, 200, CtxKind::Wait, 2); // 3: reply delivered
        p.record_op(0, span(100, 200, OpKind::Data, 42));
        let log = p.take();
        let cp = extract(&log, &[200, 0]);
        let spans: Vec<_> = cp
            .segs
            .iter()
            .map(|s| (s.node, s.lo_ns, s.hi_ns, s.cat, s.op, s.obj))
            .collect();
        assert_eq!(
            spans,
            vec![
                (0, 0, 100, SegCat::Cpu, OpKind::Other, 0),
                (0, 100, 150, SegCat::Net, OpKind::Data, 42), // request flight
                (0, 150, 200, SegCat::Net, OpKind::Data, 42), // reply flight
            ]
        );
        assert_eq!(cp.wait_ns(OpKind::Data), 100);
        assert_eq!(cp.whatif_net_free_ns(), 100);
        assert!((cp.ceiling(cp.whatif_net_free_ns()) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn timeouts_chain_locally_and_empty_runs_are_empty() {
        let p = CausalProfiler::new(1);
        p.record_wake(0, 0, 0, CtxKind::Start, NO_CTX); // 0
        p.record_wake(0, 0, 1000, CtxKind::Timeout, NO_CTX); // 1
        let log = p.take();
        let cp = extract(&log, &[1000]);
        assert_eq!(cp.timeout_ns(), 1000);
        assert_eq!(cp.segs.len(), 1);

        let p = CausalProfiler::new(1);
        p.record_wake(0, 0, 0, CtxKind::Start, NO_CTX);
        let cp = extract(&p.take(), &[0]);
        assert_eq!(cp.makespan_ns, 0);
        assert!(cp.segs.is_empty());
        assert_eq!(cp.ceiling(0), 1.0);
    }

    #[test]
    fn chrome_export_names_nodes_and_segments() {
        let p = CausalProfiler::new(2);
        p.record_wake(0, 0, 0, CtxKind::Start, NO_CTX);
        p.record_wake(1, 0, 0, CtxKind::Start, NO_CTX);
        p.record_wake(1, 0, 400, CtxKind::Compute, NO_CTX);
        p.record_wake(0, 0, 600, CtxKind::Wait, 2);
        let cp = extract(&p.take(), &[600, 400]);
        let doc = critpath_to_chrome_json(&cp);
        let v = Value::parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();
        // 1 process meta + 2 thread metas + 2 slices.
        assert_eq!(events.len(), 5);
        assert!(doc.contains("critical path"));
        assert!(doc.contains("cpu:other"));
        assert!(doc.contains("net:other"));
    }
}
