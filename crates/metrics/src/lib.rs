//! Per-node metrics for the VOPP simulator.
//!
//! Four primitives, all deterministic and allocation-light so they can sit
//! on the simulated hot path:
//!
//! * [`Breakdown`] — a phase-accounting clock that classifies every
//!   nanosecond of a node's virtual time into one of six [`Phase`]s. The
//!   runtime maintains the invariant that the six buckets sum exactly to the
//!   node's final virtual clock, so "where did the time go" is an identity,
//!   not an estimate.
//! * [`Histogram`] — a fixed-bucket latency histogram (1-2-5 ladder from
//!   1µs to 1s) with exact count/sum/max and bucket-resolution p50/p95.
//! * [`Registry`] — a string-keyed export container for counters, gauges
//!   and histogram summaries, with insertion-independent (sorted) iteration
//!   and byte-stable JSON via `vopp_trace::json`.
//! * [`critpath`] — backward-walk extraction of the exact virtual-time
//!   critical path from a `vopp_trace::CausalLog`, with blame attribution
//!   and what-if speedup ceilings.
//!
//! The crate deliberately knows nothing about the simulator: `vopp-sim`
//! stays metrics-free, `vopp-dsm`/`vopp-mpi` charge phases at their blocking
//! points, and `vopp-bench` serialises the result into `BENCH_<app>.json`
//! artifacts for the regression gate.

pub mod critpath;
pub mod hist;
pub mod phase;
pub mod registry;

pub use critpath::{critpath_to_chrome_json, extract, CritPath, CritSeg, SegCat};
pub use hist::{Histogram, Summary};
pub use phase::{Breakdown, Phase};
pub use registry::Registry;
pub use vopp_trace::{CausalLog, CausalProfiler, OpKind, OpSpan};
