//! Fixed-bucket latency histogram.
//!
//! Bucket bounds follow a 1-2-5 ladder from 1µs to 1s (plus an overflow
//! bucket), which brackets every round-trip the simulator produces: the
//! fastest RPC is bounded below by the network latency (µs scale) and the
//! retransmission timeout caps single waits near 1s. Quantiles are resolved
//! to the bucket upper bound — exact enough for the 2% regression gate while
//! keeping `record()` a couple of integer compares.

use vopp_trace::json::{num, obj, Value};

/// Upper bounds (inclusive), in nanoseconds, of the value buckets. A final
/// implicit overflow bucket catches everything above 1s.
pub const BOUNDS: [u64; 19] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
];

/// Number of buckets, including the overflow bucket.
pub const NBUCKETS: usize = BOUNDS.len() + 1;

/// A fixed-bucket histogram of nanosecond durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; NBUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; NBUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one duration.
    pub fn record(&mut self, ns: u64) {
        let idx = BOUNDS.partition_point(|&b| b < ns);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += ns;
        self.max = self.max.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations (ns).
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Largest recorded duration (ns), exact.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Mean duration (ns); 0.0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile `q` in `[0, 1]`, resolved to the containing bucket's upper
    /// bound and clamped to the exact maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let bound = BOUNDS.get(i).copied().unwrap_or(u64::MAX);
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// 99th percentile, at bucket resolution (ns).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile, at bucket resolution (ns). The tail statistic for
    /// open-loop serving cells, where a handful of requests landing behind a
    /// crash or a hot shard dominate the user-visible latency.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Fold another histogram into this one.
    pub fn absorb(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Condensed summary (count, sum, p50, p95, p99, p99.9, max).
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            sum_ns: self.sum,
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.p99(),
            p999_ns: self.p999(),
            max_ns: self.max,
        }
    }

    /// JSON form of [`Histogram::summary`].
    pub fn to_value(&self) -> Value {
        self.summary().to_value()
    }

    /// Raw per-bucket counts (index `i` counts samples `<= BOUNDS[i]`; the
    /// last bucket is the overflow). For persistence; quantiles should use
    /// [`Histogram::quantile`].
    pub fn bucket_counts(&self) -> &[u64; NBUCKETS] {
        &self.counts
    }

    /// Rebuild a histogram from its raw parts, the inverse of
    /// [`Histogram::bucket_counts`] / [`Histogram::sum_ns`] /
    /// [`Histogram::max_ns`]. The sample count is derived from the buckets.
    pub fn from_raw(counts: [u64; NBUCKETS], sum_ns: u64, max_ns: u64) -> Histogram {
        Histogram {
            counts,
            count: counts.iter().sum(),
            sum: sum_ns,
            max: max_ns,
        }
    }
}

/// Condensed histogram statistics for table cells and JSON artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (ns).
    pub sum_ns: u64,
    /// Median, at bucket resolution (ns).
    pub p50_ns: u64,
    /// 95th percentile, at bucket resolution (ns).
    pub p95_ns: u64,
    /// 99th percentile, at bucket resolution (ns).
    pub p99_ns: u64,
    /// 99.9th percentile, at bucket resolution (ns).
    pub p999_ns: u64,
    /// Exact maximum (ns).
    pub max_ns: u64,
}

impl Summary {
    /// Stable JSON object.
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("count", num(self.count)),
            ("sum_ns", num(self.sum_ns)),
            ("p50_ns", num(self.p50_ns)),
            ("p95_ns", num(self.p95_ns)),
            ("p99_ns", num(self.p99_ns)),
            ("p999_ns", num(self.p999_ns)),
            ("max_ns", num(self.max_ns)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        let s = h.summary();
        assert_eq!(
            (s.count, s.p50_ns, s.p95_ns, s.p99_ns, s.p999_ns, s.max_ns),
            (0, 0, 0, 0, 0, 0)
        );
    }

    #[test]
    fn record_tracks_exact_count_sum_max() {
        let mut h = Histogram::default();
        for ns in [500, 1_500, 3_000, 70_000, 2_000_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 2_000_075_000);
        assert_eq!(h.max_ns(), 2_000_000_000);
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let mut h = Histogram::default();
        // 90 fast samples in the <=1µs bucket, 10 slow at ~40ms.
        for _ in 0..90 {
            h.record(800);
        }
        for _ in 0..10 {
            h.record(40_000_000);
        }
        assert_eq!(h.quantile(0.50), 1_000);
        // p95 lands in the 20-50ms bucket; clamped to the exact max.
        assert_eq!(h.quantile(0.95), 40_000_000);
        assert_eq!(h.max_ns(), 40_000_000);
    }

    #[test]
    fn single_sample_quantiles_clamp_to_max() {
        let mut h = Histogram::default();
        h.record(1_234);
        // Bucket bound is 2_000 but the exact max is smaller. Every
        // quantile of a one-sample histogram is that sample.
        assert_eq!(h.quantile(0.0), 1_234);
        assert_eq!(h.quantile(0.5), 1_234);
        assert_eq!(h.quantile(0.95), 1_234);
        assert_eq!(h.p99(), 1_234);
        assert_eq!(h.p999(), 1_234);
        assert_eq!(h.quantile(1.0), 1_234);
    }

    #[test]
    fn all_samples_in_one_bucket() {
        let mut h = Histogram::default();
        // 1000 samples, all in the (2µs, 5µs] bucket; max is 4.7µs.
        for i in 0..1000u64 {
            h.record(3_000 + i);
        }
        h.record(4_700);
        for q in [0.0, 0.5, 0.95, 0.99, 0.999] {
            assert_eq!(h.quantile(q), 4_700, "q={q}");
        }
        assert_eq!(h.quantile(1.0), 4_700);
    }

    #[test]
    fn extreme_quantiles_hit_first_and_last_sample() {
        let mut h = Histogram::default();
        for _ in 0..997 {
            h.record(800); // <=1µs bucket
        }
        for _ in 0..3 {
            h.record(300_000_000); // 200-500ms bucket
        }
        // q=0.0 clamps the rank to 1: the fastest bucket's bound.
        assert_eq!(h.quantile(0.0), 1_000);
        assert_eq!(h.quantile(0.5), 1_000);
        // The 3-in-1000 slow tail only surfaces at the 99.9th percentile.
        assert_eq!(h.p99(), 1_000);
        assert_eq!(h.p999(), 300_000_000);
        assert_eq!(h.quantile(1.0), 300_000_000);
    }

    #[test]
    fn p999_separates_from_p99_at_one_in_a_thousand() {
        let mut h = Histogram::default();
        for _ in 0..9_989 {
            h.record(900);
        }
        for _ in 0..11 {
            h.record(70_000_000); // 50-100ms bucket
        }
        assert_eq!(h.p99(), 1_000);
        assert_eq!(h.p999(), 70_000_000);
    }

    #[test]
    fn overflow_bucket_uses_exact_max() {
        let mut h = Histogram::default();
        h.record(5_000_000_000);
        assert_eq!(h.quantile(0.5), 5_000_000_000);
    }

    #[test]
    fn values_exactly_on_bucket_bounds_land_in_the_lower_bucket() {
        // Bounds are inclusive upper bounds: a sample equal to BOUNDS[i]
        // must count in bucket i, and BOUNDS[i] + 1 in bucket i + 1.
        for (i, &b) in BOUNDS.iter().enumerate() {
            let mut h = Histogram::default();
            h.record(b);
            assert_eq!(h.bucket_counts()[i], 1, "bound {b} in bucket {i}");
            let mut h = Histogram::default();
            h.record(b + 1);
            assert_eq!(h.bucket_counts()[i + 1], 1, "bound {b}+1 spills over");
        }
    }

    #[test]
    fn zero_lands_in_the_first_bucket() {
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.sum_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        // The bucket bound (1µs) exceeds the exact max; quantiles clamp.
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn u64_max_lands_in_overflow_and_keeps_exact_max() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.bucket_counts()[NBUCKETS - 1], 1);
        assert_eq!(h.max_ns(), u64::MAX);
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.p999(), u64::MAX);
    }

    #[test]
    fn one_below_the_first_bound_stays_in_the_first_bucket() {
        let mut h = Histogram::default();
        h.record(999);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.quantile(0.5), 999);
    }

    #[test]
    fn p999_with_fewer_than_1000_samples_is_the_max_sample() {
        // With n < 1000, rank = ceil(0.999 * n) = n: p99.9 must be the
        // slowest sample, never a phantom sub-maximum bucket.
        for n in [1u64, 2, 10, 999] {
            let mut h = Histogram::default();
            for _ in 0..n - 1 {
                h.record(800);
            }
            h.record(42_000_000); // 20-50ms bucket; exact max 42ms
            assert_eq!(h.p999(), 42_000_000, "n={n}");
        }
    }

    #[test]
    fn p999_rank_boundary_at_exactly_1000_samples() {
        // 999 fast + 1 slow: rank = ceil(0.999 * 1000) = 999 → the fast
        // bucket; the single slow sample is only visible at q = 1.0.
        let mut h = Histogram::default();
        for _ in 0..999 {
            h.record(800);
        }
        h.record(42_000_000);
        assert_eq!(h.p999(), 1_000);
        assert_eq!(h.quantile(1.0), 42_000_000);

        // 998 fast + 2 slow: rank 999 is the first slow sample.
        let mut h = Histogram::default();
        for _ in 0..998 {
            h.record(800);
        }
        h.record(42_000_000);
        h.record(42_000_000);
        assert_eq!(h.p999(), 42_000_000);
    }

    #[test]
    fn absorb_merges_counts_and_max() {
        let mut a = Histogram::default();
        a.record(100);
        let mut b = Histogram::default();
        b.record(10_000);
        b.record(99);
        a.absorb(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 10_000);
        assert_eq!(a.sum_ns(), 10_199);
    }

    #[test]
    fn raw_round_trip_is_lossless() {
        let mut h = Histogram::default();
        for ns in [500, 1_500, 3_000, 70_000, 2_000_000_000, 42] {
            h.record(ns);
        }
        let rebuilt = Histogram::from_raw(*h.bucket_counts(), h.sum_ns(), h.max_ns());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.count(), 6);
    }

    #[test]
    fn json_summary_shape() {
        let mut h = Histogram::default();
        h.record(1_000);
        let s = h.to_value().to_json();
        assert_eq!(
            s,
            "{\"count\":1,\"sum_ns\":1000,\"p50_ns\":1000,\"p95_ns\":1000,\
             \"p99_ns\":1000,\"p999_ns\":1000,\"max_ns\":1000}"
        );
    }
}
