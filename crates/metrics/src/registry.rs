//! String-keyed export registry: counters, gauges, histogram summaries.
//!
//! The registry is the flattening layer between typed runtime statistics
//! (`RunStats`, `NodeStats`) and the machine-readable `BENCH_<app>.json`
//! artifacts: producers register values under stable names, consumers (the
//! regression gate, dashboards) look them up without knowing the Rust types.
//! Keys iterate in sorted order so the JSON form is byte-stable regardless of
//! registration order.

use std::collections::BTreeMap;

use vopp_trace::json::{num, Value};

use crate::hist::Histogram;

/// A sorted collection of named counters (monotone `u64`), gauges (`f64`
/// point-in-time readings) and latency histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Add `v` to the counter `name` (creating it at zero).
    pub fn inc_counter(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Set the gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Record one duration into the histogram `name`.
    pub fn observe(&mut self, name: &str, ns: u64) {
        self.hists.entry(name.to_string()).or_default().record(ns);
    }

    /// Merge a whole histogram into the histogram `name`.
    pub fn absorb_hist(&mut self, name: &str, h: &Histogram) {
        self.hists.entry(name.to_string()).or_default().absorb(h);
    }

    /// Current counter value, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Current gauge value, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Registered histogram, if any.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Fold another registry into this one: counters add, gauges take the
    /// other's value, histograms merge.
    pub fn absorb(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            self.inc_counter(k, *v);
        }
        for (k, v) in &other.gauges {
            self.set_gauge(k, *v);
        }
        for (k, h) in &other.hists {
            self.absorb_hist(k, h);
        }
    }

    /// Stable JSON: `{"counters": {...}, "gauges": {...}, "histograms": {...}}`
    /// with keys in sorted order and histograms as p50/p95/max summaries.
    pub fn to_value(&self) -> Value {
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), num(*v)))
                .collect(),
        );
        let gauges = Value::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Value::Num(*v)))
                .collect(),
        );
        let hists = Value::Obj(
            self.hists
                .iter()
                .map(|(k, h)| (k.clone(), h.to_value()))
                .collect(),
        );
        Value::Obj(vec![
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), hists),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = Registry::default();
        r.inc_counter("msgs", 3);
        r.inc_counter("msgs", 4);
        r.set_gauge("time_secs", 1.0);
        r.set_gauge("time_secs", 2.5);
        assert_eq!(r.counter("msgs"), Some(7));
        assert_eq!(r.gauge("time_secs"), Some(2.5));
        assert_eq!(r.counter("missing"), None);
    }

    #[test]
    fn absorb_merges_all_kinds() {
        let mut a = Registry::default();
        a.inc_counter("msgs", 1);
        a.observe("rtt", 1_000);
        let mut b = Registry::default();
        b.inc_counter("msgs", 2);
        b.inc_counter("drops", 5);
        b.observe("rtt", 9_000);
        b.set_gauge("g", 7.0);
        a.absorb(&b);
        assert_eq!(a.counter("msgs"), Some(3));
        assert_eq!(a.counter("drops"), Some(5));
        assert_eq!(a.gauge("g"), Some(7.0));
        assert_eq!(a.hist("rtt").unwrap().count(), 2);
        assert_eq!(a.hist("rtt").unwrap().max_ns(), 9_000);
    }

    #[test]
    fn json_is_sorted_regardless_of_insertion_order() {
        let mut r = Registry::default();
        r.inc_counter("zebra", 1);
        r.inc_counter("alpha", 2);
        let mut r2 = Registry::default();
        r2.inc_counter("alpha", 2);
        r2.inc_counter("zebra", 1);
        assert_eq!(r.to_value().to_json(), r2.to_value().to_json());
        assert!(r
            .to_value()
            .to_json()
            .starts_with("{\"counters\":{\"alpha\":2,\"zebra\":1}"));
    }
}
