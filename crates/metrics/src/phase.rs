//! Phase accounting: classify every nanosecond of a node's virtual time.

use vopp_trace::json::{num, obj, Value};

/// The seven mutually exclusive states a simulated processor's virtual time
/// is attributed to.
///
/// The first two are CPU time (the kernel's compute advances), the middle
/// four are blocked time (the kernel's receive waits), and the last is idle
/// time (kernel compute advances with no application work — open-loop
/// arrival pacing, crash downtime):
///
/// * [`Phase::Compute`] — application work: flops, integer ops, memory copies.
/// * [`Phase::ProtoCpu`] — protocol CPU: page-fault handling, twin creation,
///   diff creation/application.
/// * [`Phase::BarrierWait`] — blocked in the barrier round-trip.
/// * [`Phase::AcquireWait`] — blocked acquiring a view or lock.
/// * [`Phase::DataWait`] — blocked fetching pages or diffs at a page fault.
/// * [`Phase::SendWait`] — blocked publishing state: release/flush round-trips
///   (DSM) or awaiting the delivery ack of an eager send (MPI).
/// * [`Phase::Idle`] — parked waiting for wall-clock to pass (the serving
///   workload's interarrival gaps and crash downtime), not for a message.
///
/// The paper-style five-way split {compute, barrier, acquire, page-fault/diff,
/// send overhead} folds `ProtoCpu + SendWait` into "send overhead"; see
/// [`Breakdown::send_overhead_ns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Application compute (flops, int ops, copies).
    Compute,
    /// Protocol CPU overhead (faults, twins, diff create/apply).
    ProtoCpu,
    /// Blocked in a barrier.
    BarrierWait,
    /// Blocked acquiring a view or lock.
    AcquireWait,
    /// Blocked fetching pages/diffs on a fault.
    DataWait,
    /// Blocked in release/flush/send-ack round-trips.
    SendWait,
    /// Parked until a point in virtual time (open-loop pacing, crash
    /// downtime) rather than blocked on a reply.
    Idle,
}

impl Phase {
    /// All phases, in canonical (JSON) order.
    pub const ALL: [Phase; 7] = [
        Phase::Compute,
        Phase::ProtoCpu,
        Phase::BarrierWait,
        Phase::AcquireWait,
        Phase::DataWait,
        Phase::SendWait,
        Phase::Idle,
    ];

    /// Stable snake_case key used in JSON artifacts.
    pub fn key(self) -> &'static str {
        match self {
            Phase::Compute => "compute_ns",
            Phase::ProtoCpu => "proto_cpu_ns",
            Phase::BarrierWait => "barrier_wait_ns",
            Phase::AcquireWait => "acquire_wait_ns",
            Phase::DataWait => "data_wait_ns",
            Phase::SendWait => "send_wait_ns",
            Phase::Idle => "idle_ns",
        }
    }

    /// Short human label for table rows.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::ProtoCpu => "proto cpu",
            Phase::BarrierWait => "barrier wait",
            Phase::AcquireWait => "acquire wait",
            Phase::DataWait => "data wait",
            Phase::SendWait => "send wait",
            Phase::Idle => "idle",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Compute => 0,
            Phase::ProtoCpu => 1,
            Phase::BarrierWait => 2,
            Phase::AcquireWait => 3,
            Phase::DataWait => 4,
            Phase::SendWait => 5,
            Phase::Idle => 6,
        }
    }
}

/// Per-node (or aggregated) virtual-time breakdown, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    ns: [u64; 7],
}

impl Breakdown {
    /// Attribute `ns` nanoseconds of virtual time to `phase`.
    pub fn charge(&mut self, phase: Phase, ns: u64) {
        self.ns[phase.index()] += ns;
    }

    /// Nanoseconds attributed to `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.ns[phase.index()]
    }

    /// Total attributed nanoseconds. Equals the node's final virtual clock
    /// when the accounting invariant holds.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// CPU time: `Compute + ProtoCpu + Idle` (must equal the kernel's
    /// compute time — the kernel advances an idle node's clock the same way
    /// it advances a computing one's; only receive waits count as blocked).
    pub fn cpu_ns(&self) -> u64 {
        self.get(Phase::Compute) + self.get(Phase::ProtoCpu) + self.get(Phase::Idle)
    }

    /// Blocked time: the four wait phases (must equal the kernel's blocked time).
    pub fn blocked_ns(&self) -> u64 {
        self.get(Phase::BarrierWait)
            + self.get(Phase::AcquireWait)
            + self.get(Phase::DataWait)
            + self.get(Phase::SendWait)
    }

    /// The paper's "send overhead" category: protocol CPU plus publish waits.
    pub fn send_overhead_ns(&self) -> u64 {
        self.get(Phase::ProtoCpu) + self.get(Phase::SendWait)
    }

    /// Percentage of total time spent in `phase` (0.0 when nothing recorded).
    pub fn pct(&self, phase: Phase) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.get(phase) as f64 * 100.0 / total as f64
        }
    }

    /// Fold another breakdown into this one.
    pub fn absorb(&mut self, other: &Breakdown) {
        for (a, b) in self.ns.iter_mut().zip(other.ns.iter()) {
            *a += *b;
        }
    }

    /// Stable JSON object: one key per phase (canonical order) plus `total_ns`.
    pub fn to_value(&self) -> Value {
        let mut o: Vec<(&str, Value)> = Vec::with_capacity(Phase::ALL.len() + 1);
        for p in Phase::ALL {
            o.push((p.key(), num(self.get(p))));
        }
        o.push(("total_ns", num(self.total_ns())));
        obj(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_total_and_groups() {
        let mut b = Breakdown::default();
        b.charge(Phase::Compute, 60);
        b.charge(Phase::ProtoCpu, 10);
        b.charge(Phase::BarrierWait, 15);
        b.charge(Phase::AcquireWait, 5);
        b.charge(Phase::DataWait, 7);
        b.charge(Phase::SendWait, 3);
        b.charge(Phase::Idle, 20);
        assert_eq!(b.total_ns(), 120);
        assert_eq!(b.cpu_ns(), 90);
        assert_eq!(b.blocked_ns(), 30);
        assert_eq!(b.send_overhead_ns(), 13);
        assert!((b.pct(Phase::Compute) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn pct_of_empty_is_zero() {
        let b = Breakdown::default();
        assert_eq!(b.pct(Phase::Compute), 0.0);
        assert_eq!(b.total_ns(), 0);
    }

    #[test]
    fn absorb_adds_per_phase() {
        let mut a = Breakdown::default();
        a.charge(Phase::Compute, 1);
        let mut b = Breakdown::default();
        b.charge(Phase::Compute, 2);
        b.charge(Phase::SendWait, 4);
        a.absorb(&b);
        assert_eq!(a.get(Phase::Compute), 3);
        assert_eq!(a.get(Phase::SendWait), 4);
        assert_eq!(a.total_ns(), 7);
    }

    #[test]
    fn json_has_canonical_keys_and_total() {
        let mut b = Breakdown::default();
        b.charge(Phase::DataWait, 42);
        let s = b.to_value().to_json();
        assert_eq!(
            s,
            "{\"compute_ns\":0,\"proto_cpu_ns\":0,\"barrier_wait_ns\":0,\
             \"acquire_wait_ns\":0,\"data_wait_ns\":42,\"send_wait_ns\":0,\
             \"idle_ns\":0,\"total_ns\":42}"
        );
    }
}
