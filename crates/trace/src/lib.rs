//! `vopp-trace`: structured event tracing for the VOPP cluster simulation.
//!
//! Every runtime layer — the simulation kernel, the Ethernet model, the
//! reliable transport, the DSM protocol engines, and the application-facing
//! view guards — records [`Event`]s into a shared ring-buffered [`Tracer`].
//! A finished run yields an immutable [`Trace`] that can be:
//!
//! * exported to Perfetto/Chrome-trace JSON ([`perfetto::to_chrome_json`]),
//! * replayed through the protocol conformance checker ([`check::check`]),
//! * summarized into a wait-time report ([`report::report`]),
//! * round-tripped through canonical JSON ([`Trace::to_json`] /
//!   [`Trace::from_json`]) for archival and diffing.
//!
//! The crate is dependency-free and knows nothing about the simulator's
//! types: timestamps are virtual nanoseconds as `u64`, nodes are `usize`.
//! `vopp-sim` and everything above it depend on this crate, not vice versa.
//!
//! Tracing is opt-in per run. When no tracer is installed the hot paths pay
//! a single `Option` test; a disabled tracer costs one relaxed atomic load
//! (both guarded by the overhead bench in `vopp-bench`).

pub mod causal;
pub mod check;
pub mod event;
pub mod json;
pub mod perfetto;
pub mod report;
pub mod tracer;

pub use causal::{
    set_thread_causal_sink, CausalLog, CausalProfiler, CausalSink, CtxKind, CtxRecord, OpKind,
    OpSpan, NO_CTX,
};
pub use check::{check, CheckConfig, Violation};
pub use event::{Event, EventKind, NodeId};
pub use perfetto::to_chrome_json;
pub use report::report;
pub use tracer::{set_thread_record_sink, RecordSink, Trace, Tracer, DEFAULT_CAPACITY};
