//! The structured event vocabulary recorded by every runtime layer.
//!
//! Events deliberately use raw `u64` nanosecond timestamps and plain `usize`
//! node ids rather than `vopp-sim`'s newtypes: the simulator depends on this
//! crate (not the other way around), so the trace vocabulary must stand
//! alone. Each variant maps 1:1 to a JSON object via [`Event::to_value`] /
//! [`Event::from_value`]; the conformance checker and the Perfetto exporter
//! both consume the in-memory form.

use crate::json::{self, Value};

/// A simulated process id (mirrors `vopp_sim::ProcId` without the dependency).
pub type NodeId = usize;

/// One recorded occurrence: virtual time, emitting node, and what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual time in nanoseconds since simulation start.
    pub t: u64,
    /// The simulated process this event belongs to.
    pub node: NodeId,
    /// What happened.
    pub kind: EventKind,
}

/// Everything the runtime layers know how to record.
///
/// The taxonomy covers four layers (see `docs/OBSERVABILITY.md`):
/// kernel scheduling, network, DSM protocol, and application spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    // ── kernel layer ────────────────────────────────────────────────────
    /// A simulated process began executing its body.
    ProcStart,
    /// A simulated process ran to completion.
    ProcExit,

    // ── network layer ───────────────────────────────────────────────────
    /// A datagram was handed to the network model by `node`.
    NetSend {
        /// Destination process.
        dst: NodeId,
        /// Bytes on the wire including headers.
        wire_bytes: u64,
        /// Demultiplexing tag.
        tag: u64,
        /// Service-class (handler-dispatched) rather than mailbox delivery.
        svc: bool,
    },
    /// A datagram arrived at `node` (the destination).
    NetRecv {
        /// Originating process.
        src: NodeId,
        /// Bytes on the wire including headers.
        wire_bytes: u64,
        /// Demultiplexing tag.
        tag: u64,
    },
    /// The network model dropped a datagram sent by `node`.
    NetDrop {
        /// Intended destination.
        dst: NodeId,
        /// Bytes that would have been on the wire.
        wire_bytes: u64,
        /// True when the receiver queue was past the overflow threshold —
        /// the congestion-loss regime, as opposed to background bit error.
        overflow: bool,
    },
    /// The reliable transport on `node` timed out and retransmitted a call.
    Rexmit {
        /// Callee the request is retried against.
        dst: NodeId,
        /// RPC tag of the retried call.
        tag: u64,
    },

    // ── DSM protocol layer ──────────────────────────────────────────────
    /// `node` faulted on a shared page.
    PageFault {
        /// Page index within the shared region.
        page: u64,
        /// Write fault (twin created) vs read fault.
        write: bool,
    },
    /// `node` asked `to` for diffs of a page (LRC/VC_d fault service).
    DiffRequest {
        /// Page index.
        page: u64,
        /// Node serving the diff.
        to: NodeId,
    },
    /// `node` applied a diff (or whole page) to its copy.
    DiffApply {
        /// Page index.
        page: u64,
        /// Encoded diff size in bytes.
        bytes: u64,
    },
    /// `node` applied an interval of write notices from `owner`.
    ///
    /// `scope` is 0 for the global LRC history and `view + 1` for per-view
    /// VC histories; within one `(node, scope, owner)` series the interval
    /// sequence numbers must advance monotonically — this is the
    /// vector-time-causality invariant the checker enforces.
    WriteNoticeApply {
        /// Node whose writes the notices describe.
        owner: NodeId,
        /// Interval sequence number in the owner's history.
        seq: u64,
        /// History scope: 0 = global (LRC), otherwise view id + 1.
        scope: u64,
        /// Number of pages invalidated or updated.
        pages: u64,
    },
    /// `node` started waiting for a view.
    AcquireStart {
        /// View id.
        view: u64,
        /// Write (exclusive) vs read acquisition.
        write: bool,
    },
    /// `node` was granted the view and left the acquire call.
    AcquireEnd {
        /// View id.
        view: u64,
        /// Write vs read acquisition.
        write: bool,
        /// Version of the view carried by the grant.
        version: u64,
        /// Consistency payload bytes carried by the grant.
        bytes: u64,
    },
    /// `node` released a view (release fully acknowledged).
    ReleaseDone {
        /// View id.
        view: u64,
        /// Write vs read release.
        write: bool,
    },
    /// The view home on `node` sent a grant to a waiting requester.
    ViewGrantSent {
        /// View id.
        view: u64,
        /// Requester being granted.
        to: NodeId,
        /// View version carried.
        version: u64,
        /// Consistency payload bytes carried.
        bytes: u64,
    },
    /// `node` entered a barrier and sent its arrival message.
    BarrierEnter {
        /// Barrier id.
        id: u64,
        /// Episode counter (how many times `node` has entered this barrier).
        epoch: u64,
    },
    /// `node` left the barrier after the release arrived.
    BarrierExit {
        /// Barrier id.
        id: u64,
        /// Episode counter.
        epoch: u64,
        /// Write notices carried by the release message (must be 0 for VC).
        notices: u64,
    },
    /// `node` started waiting for a lock.
    LockAcquireStart {
        /// Lock id.
        lock: u64,
    },
    /// `node` obtained the lock.
    LockAcquireEnd {
        /// Lock id.
        lock: u64,
    },
    /// `node` released the lock.
    LockRelease {
        /// Lock id.
        lock: u64,
    },
    /// `node` crashed and restarted its DSM engine: volatile state (page
    /// copies, pending invalidations, view versions) was lost; its durable
    /// write-ahead log survived. Recovery is lazy via version-0 acquires.
    NodeCrash {
        /// Materialized page buffers lost in the crash.
        pages: u64,
    },

    // ── correctness checking (vopp-racecheck) ───────────────────────────
    /// The happens-before checker confirmed a data race: `node`'s access is
    /// unordered with a conflicting access by `other`.
    RaceDetected {
        /// Page both accesses touch.
        page: u64,
        /// The other node of the unordered pair.
        other: NodeId,
        /// First byte of this node's access range (absolute address).
        start: u64,
        /// One past the last byte of the range.
        end: u64,
        /// Whether this node's access was a write.
        write: bool,
    },
    /// The view-discipline checker flagged a VOPP access by `node`.
    DisciplineViolation {
        /// Broken rule (stable snake_case label from vopp-racecheck).
        rule: String,
        /// Page touched.
        page: u64,
        /// First byte of the access range (absolute address).
        start: u64,
        /// One past the last byte of the range.
        end: u64,
        /// Whether the access was a write.
        write: bool,
    },

    // ── application layer ───────────────────────────────────────────────
    /// The serving workload on `node` completed one request.
    ServeRequest {
        /// Shard the request addressed.
        shard: u64,
        /// PUT (write) vs GET (read).
        write: bool,
        /// Open-loop latency: completion minus scheduled arrival.
        latency_ns: u64,
    },
    /// An application-level span opened (e.g. a `with_view` bracket).
    SpanBegin {
        /// Span label.
        name: String,
    },
    /// The matching span closed.
    SpanEnd {
        /// Span label.
        name: String,
    },
}

impl EventKind {
    /// Stable machine name of the variant, used as the JSON `"kind"` field.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ProcStart => "proc_start",
            EventKind::ProcExit => "proc_exit",
            EventKind::NetSend { .. } => "net_send",
            EventKind::NetRecv { .. } => "net_recv",
            EventKind::NetDrop { .. } => "net_drop",
            EventKind::Rexmit { .. } => "rexmit",
            EventKind::PageFault { .. } => "page_fault",
            EventKind::DiffRequest { .. } => "diff_request",
            EventKind::DiffApply { .. } => "diff_apply",
            EventKind::WriteNoticeApply { .. } => "write_notice_apply",
            EventKind::AcquireStart { .. } => "acquire_start",
            EventKind::AcquireEnd { .. } => "acquire_end",
            EventKind::ReleaseDone { .. } => "release_done",
            EventKind::ViewGrantSent { .. } => "view_grant_sent",
            EventKind::BarrierEnter { .. } => "barrier_enter",
            EventKind::BarrierExit { .. } => "barrier_exit",
            EventKind::LockAcquireStart { .. } => "lock_acquire_start",
            EventKind::LockAcquireEnd { .. } => "lock_acquire_end",
            EventKind::LockRelease { .. } => "lock_release",
            EventKind::NodeCrash { .. } => "node_crash",
            EventKind::RaceDetected { .. } => "race_detected",
            EventKind::DisciplineViolation { .. } => "discipline_violation",
            EventKind::ServeRequest { .. } => "serve_request",
            EventKind::SpanBegin { .. } => "span_begin",
            EventKind::SpanEnd { .. } => "span_end",
        }
    }
}

impl Event {
    /// Serialize to the canonical JSON object form.
    pub fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("t", json::num(self.t)),
            ("node", json::num(self.node as u64)),
            ("kind", json::str(self.kind.name())),
        ];
        match &self.kind {
            EventKind::ProcStart | EventKind::ProcExit => {}
            EventKind::NetSend {
                dst,
                wire_bytes,
                tag,
                svc,
            } => {
                pairs.push(("dst", json::num(*dst as u64)));
                pairs.push(("wire_bytes", json::num(*wire_bytes)));
                pairs.push(("tag", json::num(*tag)));
                pairs.push(("svc", Value::Bool(*svc)));
            }
            EventKind::NetRecv {
                src,
                wire_bytes,
                tag,
            } => {
                pairs.push(("src", json::num(*src as u64)));
                pairs.push(("wire_bytes", json::num(*wire_bytes)));
                pairs.push(("tag", json::num(*tag)));
            }
            EventKind::NetDrop {
                dst,
                wire_bytes,
                overflow,
            } => {
                pairs.push(("dst", json::num(*dst as u64)));
                pairs.push(("wire_bytes", json::num(*wire_bytes)));
                pairs.push(("overflow", Value::Bool(*overflow)));
            }
            EventKind::Rexmit { dst, tag } => {
                pairs.push(("dst", json::num(*dst as u64)));
                pairs.push(("tag", json::num(*tag)));
            }
            EventKind::PageFault { page, write } => {
                pairs.push(("page", json::num(*page)));
                pairs.push(("write", Value::Bool(*write)));
            }
            EventKind::DiffRequest { page, to } => {
                pairs.push(("page", json::num(*page)));
                pairs.push(("to", json::num(*to as u64)));
            }
            EventKind::DiffApply { page, bytes } => {
                pairs.push(("page", json::num(*page)));
                pairs.push(("bytes", json::num(*bytes)));
            }
            EventKind::WriteNoticeApply {
                owner,
                seq,
                scope,
                pages,
            } => {
                pairs.push(("owner", json::num(*owner as u64)));
                pairs.push(("seq", json::num(*seq)));
                pairs.push(("scope", json::num(*scope)));
                pairs.push(("pages", json::num(*pages)));
            }
            EventKind::AcquireStart { view, write } => {
                pairs.push(("view", json::num(*view)));
                pairs.push(("write", Value::Bool(*write)));
            }
            EventKind::AcquireEnd {
                view,
                write,
                version,
                bytes,
            } => {
                pairs.push(("view", json::num(*view)));
                pairs.push(("write", Value::Bool(*write)));
                pairs.push(("version", json::num(*version)));
                pairs.push(("bytes", json::num(*bytes)));
            }
            EventKind::ReleaseDone { view, write } => {
                pairs.push(("view", json::num(*view)));
                pairs.push(("write", Value::Bool(*write)));
            }
            EventKind::ViewGrantSent {
                view,
                to,
                version,
                bytes,
            } => {
                pairs.push(("view", json::num(*view)));
                pairs.push(("to", json::num(*to as u64)));
                pairs.push(("version", json::num(*version)));
                pairs.push(("bytes", json::num(*bytes)));
            }
            EventKind::BarrierEnter { id, epoch } => {
                pairs.push(("id", json::num(*id)));
                pairs.push(("epoch", json::num(*epoch)));
            }
            EventKind::BarrierExit { id, epoch, notices } => {
                pairs.push(("id", json::num(*id)));
                pairs.push(("epoch", json::num(*epoch)));
                pairs.push(("notices", json::num(*notices)));
            }
            EventKind::LockAcquireStart { lock }
            | EventKind::LockAcquireEnd { lock }
            | EventKind::LockRelease { lock } => {
                pairs.push(("lock", json::num(*lock)));
            }
            EventKind::NodeCrash { pages } => {
                pairs.push(("pages", json::num(*pages)));
            }
            EventKind::ServeRequest {
                shard,
                write,
                latency_ns,
            } => {
                pairs.push(("shard", json::num(*shard)));
                pairs.push(("write", Value::Bool(*write)));
                pairs.push(("latency_ns", json::num(*latency_ns)));
            }
            EventKind::RaceDetected {
                page,
                other,
                start,
                end,
                write,
            } => {
                pairs.push(("page", json::num(*page)));
                pairs.push(("other", json::num(*other as u64)));
                pairs.push(("start", json::num(*start)));
                pairs.push(("end", json::num(*end)));
                pairs.push(("write", Value::Bool(*write)));
            }
            EventKind::DisciplineViolation {
                rule,
                page,
                start,
                end,
                write,
            } => {
                pairs.push(("rule", json::str(rule)));
                pairs.push(("page", json::num(*page)));
                pairs.push(("start", json::num(*start)));
                pairs.push(("end", json::num(*end)));
                pairs.push(("write", Value::Bool(*write)));
            }
            EventKind::SpanBegin { name } | EventKind::SpanEnd { name } => {
                pairs.push(("name", json::str(name)));
            }
        }
        json::obj(pairs)
    }

    /// Deserialize from the canonical JSON object form.
    pub fn from_value(v: &Value) -> Result<Event, String> {
        let t = v.get("t").and_then(Value::as_u64).ok_or("missing 't'")?;
        let node = v
            .get("node")
            .and_then(Value::as_usize)
            .ok_or("missing 'node'")?;
        let kind_name = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("missing 'kind'")?;

        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{kind_name}: missing '{key}'"))
        };
        let id = |key: &str| -> Result<NodeId, String> { u(key).map(|n| n as NodeId) };
        let b = |key: &str| -> Result<bool, String> {
            v.get(key)
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("{kind_name}: missing '{key}'"))
        };
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{kind_name}: missing '{key}'"))
        };

        let kind = match kind_name {
            "proc_start" => EventKind::ProcStart,
            "proc_exit" => EventKind::ProcExit,
            "net_send" => EventKind::NetSend {
                dst: id("dst")?,
                wire_bytes: u("wire_bytes")?,
                tag: u("tag")?,
                svc: b("svc")?,
            },
            "net_recv" => EventKind::NetRecv {
                src: id("src")?,
                wire_bytes: u("wire_bytes")?,
                tag: u("tag")?,
            },
            "net_drop" => EventKind::NetDrop {
                dst: id("dst")?,
                wire_bytes: u("wire_bytes")?,
                overflow: b("overflow")?,
            },
            "rexmit" => EventKind::Rexmit {
                dst: id("dst")?,
                tag: u("tag")?,
            },
            "page_fault" => EventKind::PageFault {
                page: u("page")?,
                write: b("write")?,
            },
            "diff_request" => EventKind::DiffRequest {
                page: u("page")?,
                to: id("to")?,
            },
            "diff_apply" => EventKind::DiffApply {
                page: u("page")?,
                bytes: u("bytes")?,
            },
            "write_notice_apply" => EventKind::WriteNoticeApply {
                owner: id("owner")?,
                seq: u("seq")?,
                scope: u("scope")?,
                pages: u("pages")?,
            },
            "acquire_start" => EventKind::AcquireStart {
                view: u("view")?,
                write: b("write")?,
            },
            "acquire_end" => EventKind::AcquireEnd {
                view: u("view")?,
                write: b("write")?,
                version: u("version")?,
                bytes: u("bytes")?,
            },
            "release_done" => EventKind::ReleaseDone {
                view: u("view")?,
                write: b("write")?,
            },
            "view_grant_sent" => EventKind::ViewGrantSent {
                view: u("view")?,
                to: id("to")?,
                version: u("version")?,
                bytes: u("bytes")?,
            },
            "barrier_enter" => EventKind::BarrierEnter {
                id: u("id")?,
                epoch: u("epoch")?,
            },
            "barrier_exit" => EventKind::BarrierExit {
                id: u("id")?,
                epoch: u("epoch")?,
                notices: u("notices")?,
            },
            "lock_acquire_start" => EventKind::LockAcquireStart { lock: u("lock")? },
            "lock_acquire_end" => EventKind::LockAcquireEnd { lock: u("lock")? },
            "lock_release" => EventKind::LockRelease { lock: u("lock")? },
            "node_crash" => EventKind::NodeCrash { pages: u("pages")? },
            "serve_request" => EventKind::ServeRequest {
                shard: u("shard")?,
                write: b("write")?,
                latency_ns: u("latency_ns")?,
            },
            "race_detected" => EventKind::RaceDetected {
                page: u("page")?,
                other: id("other")?,
                start: u("start")?,
                end: u("end")?,
                write: b("write")?,
            },
            "discipline_violation" => EventKind::DisciplineViolation {
                rule: s("rule")?,
                page: u("page")?,
                start: u("start")?,
                end: u("end")?,
                write: b("write")?,
            },
            "span_begin" => EventKind::SpanBegin { name: s("name")? },
            "span_end" => EventKind::SpanEnd { name: s("name")? },
            other => return Err(format!("unknown event kind '{other}'")),
        };
        Ok(Event { t, node, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                t: 0,
                node: 0,
                kind: EventKind::ProcStart,
            },
            Event {
                t: 10,
                node: 1,
                kind: EventKind::NetSend {
                    dst: 2,
                    wire_bytes: 1458,
                    tag: 77,
                    svc: true,
                },
            },
            Event {
                t: 55_000,
                node: 2,
                kind: EventKind::NetRecv {
                    src: 1,
                    wire_bytes: 1458,
                    tag: 77,
                },
            },
            Event {
                t: 60_000,
                node: 3,
                kind: EventKind::NetDrop {
                    dst: 0,
                    wire_bytes: 58,
                    overflow: true,
                },
            },
            Event {
                t: 61_000,
                node: 3,
                kind: EventKind::Rexmit { dst: 0, tag: 9 },
            },
            Event {
                t: 70_000,
                node: 0,
                kind: EventKind::PageFault {
                    page: 12,
                    write: true,
                },
            },
            Event {
                t: 71_000,
                node: 0,
                kind: EventKind::DiffRequest { page: 12, to: 1 },
            },
            Event {
                t: 72_000,
                node: 0,
                kind: EventKind::DiffApply {
                    page: 12,
                    bytes: 256,
                },
            },
            Event {
                t: 73_000,
                node: 0,
                kind: EventKind::WriteNoticeApply {
                    owner: 1,
                    seq: 4,
                    scope: 3,
                    pages: 2,
                },
            },
            Event {
                t: 80_000,
                node: 2,
                kind: EventKind::AcquireStart {
                    view: 5,
                    write: true,
                },
            },
            Event {
                t: 90_000,
                node: 2,
                kind: EventKind::AcquireEnd {
                    view: 5,
                    write: true,
                    version: 17,
                    bytes: 4096,
                },
            },
            Event {
                t: 95_000,
                node: 2,
                kind: EventKind::ReleaseDone {
                    view: 5,
                    write: true,
                },
            },
            Event {
                t: 85_000,
                node: 1,
                kind: EventKind::ViewGrantSent {
                    view: 5,
                    to: 2,
                    version: 17,
                    bytes: 4096,
                },
            },
            Event {
                t: 100_000,
                node: 0,
                kind: EventKind::BarrierEnter { id: 0, epoch: 3 },
            },
            Event {
                t: 110_000,
                node: 0,
                kind: EventKind::BarrierExit {
                    id: 0,
                    epoch: 3,
                    notices: 0,
                },
            },
            Event {
                t: 111_000,
                node: 0,
                kind: EventKind::LockAcquireStart { lock: 2 },
            },
            Event {
                t: 112_000,
                node: 0,
                kind: EventKind::LockAcquireEnd { lock: 2 },
            },
            Event {
                t: 113_000,
                node: 0,
                kind: EventKind::LockRelease { lock: 2 },
            },
            Event {
                t: 113_200,
                node: 2,
                kind: EventKind::NodeCrash { pages: 18 },
            },
            Event {
                t: 113_300,
                node: 2,
                kind: EventKind::ServeRequest {
                    shard: 6,
                    write: true,
                    latency_ns: 480_000,
                },
            },
            Event {
                t: 113_500,
                node: 1,
                kind: EventKind::RaceDetected {
                    page: 7,
                    other: 2,
                    start: 0x7000,
                    end: 0x7008,
                    write: true,
                },
            },
            Event {
                t: 113_600,
                node: 2,
                kind: EventKind::DisciplineViolation {
                    rule: "unbracketed".to_string(),
                    page: 9,
                    start: 0x9010,
                    end: 0x9014,
                    write: false,
                },
            },
            Event {
                t: 114_000,
                node: 0,
                kind: EventKind::SpanBegin {
                    name: "view 5".to_string(),
                },
            },
            Event {
                t: 115_000,
                node: 0,
                kind: EventKind::SpanEnd {
                    name: "view 5".to_string(),
                },
            },
            Event {
                t: 120_000,
                node: 0,
                kind: EventKind::ProcExit,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for ev in sample_events() {
            let text = ev.to_value().to_json();
            let back = Event::from_value(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back, ev, "round-trip mismatch for {}", ev.kind.name());
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let v = Value::parse(r#"{"t":1,"node":0,"kind":"warp_drive"}"#).unwrap();
        assert!(Event::from_value(&v).is_err());
    }
}
