//! Trace-driven protocol conformance checking.
//!
//! The checker replays an event stream *offline* and asserts invariants the
//! live protocol engines are supposed to maintain. It never consults
//! protocol state — everything is derived from the trace alone, so a
//! violation always points at an observable sequence of events, and the
//! checker doubles as a regression net for future protocol changes.
//!
//! Invariants (see `docs/OBSERVABILITY.md` for rationale):
//! 1. **monotone-time** — global event time never decreases (the simulator
//!    runs one process at a time on one clock).
//! 2. **paired-intervals** — acquire/release, barrier enter/exit and lock
//!    start/end events pair up on each node.
//! 3. **non-nested-acquires** — a node never issues a view acquire while
//!    already holding a write view, and never re-acquires a view it holds.
//! 4. **zero-diff-requests** — under VC_sd the integrated-diff grant makes
//!    fault-time diff fetches impossible.
//! 5. **no-barrier-notices** — under VC, barrier releases carry no write
//!    notices (consistency rides on views, not barriers).
//! 6. **rexmit-covered** — on a LAN with sub-millisecond round trips and a
//!    one-second RPC timeout, a retransmission *outside a synchronization
//!    wait* only happens after loss: replies to data RPCs are immediate, so
//!    at each such retransmission the cumulative drop count must be at
//!    least the cumulative count of these rexmits. Retransmissions *during*
//!    a barrier/lock/view wait are exempt — there the manager legitimately
//!    defers the reply (until the barrier fills or the resource frees),
//!    which can exceed the timeout with nothing lost. In the paper's
//!    bursty-barrier regime the covering drops are overwhelmingly
//!    receiver-queue overflows; the checker reports the overflow share so
//!    spurious-timeout bugs cannot hide behind background bit errors.
//! 7. **vector-time-causality** — write-notice intervals from a given owner
//!    are applied in strictly increasing sequence order within a history
//!    scope (global for LRC, per-view for VC).

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::event::{EventKind, NodeId};
use crate::tracer::Trace;

/// Which optional invariants to enforce; structural invariants (1, 2, 7 and
/// re-acquire checking) always run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Invariant 4: fail on any `DiffRequest` (true for VC_sd).
    pub expect_zero_diff_requests: bool,
    /// Invariant 5: fail on a `BarrierExit` carrying notices (true for
    /// VC_d / VC_sd).
    pub expect_no_barrier_notices: bool,
    /// Invariant 6: fail on a retransmission not covered by a preceding
    /// drop. Valid for standard table-run network configs (sub-millisecond
    /// RTT, 1 s RPC timeout); disable for artificial high-latency setups
    /// where timeouts fire without loss.
    pub check_rexmit_overflow: bool,
    /// Invariant 3's cross-view half: fail when a write view is acquired
    /// while another write view is held. Disable for applications that
    /// intentionally bracket views (none of the paper's four do).
    pub check_non_nested: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            expect_zero_diff_requests: false,
            expect_no_barrier_notices: false,
            check_rexmit_overflow: true,
            check_non_nested: true,
        }
    }
}

/// One invariant breach, pointing at the offending event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant name (e.g. `"zero-diff-requests"`).
    pub invariant: &'static str,
    /// Index into `trace.events` of the event that tripped the check.
    pub index: usize,
    /// Human-readable explanation with the relevant state.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] event #{}: {}",
            self.invariant, self.index, self.message
        )
    }
}

/// Replay `trace` and collect every invariant violation.
pub fn check(trace: &Trace, cfg: &CheckConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut push = |invariant: &'static str, index: usize, message: String| {
        out.push(Violation {
            invariant,
            index,
            message,
        });
    };

    let mut last_t: u64 = 0;
    // Per-node held views: (view, write) pairs currently held.
    let mut held: HashMap<NodeId, HashSet<(u64, bool)>> = HashMap::new();
    // Per-node outstanding barrier enters: (id) → epoch stack.
    let mut in_barrier: HashMap<(NodeId, u64), Vec<u64>> = HashMap::new();
    // Per-node locks currently being waited for / held.
    let mut lock_waiting: HashMap<(NodeId, u64), u64> = HashMap::new();
    let mut lock_held: HashMap<(NodeId, u64), u64> = HashMap::new();
    // Cumulative counters for the rexmit-covered prefix check.
    let mut drops: u64 = 0;
    let mut overflow_drops: u64 = 0;
    let mut uncovered_rexmits: u64 = 0;
    // Per-node depth of open synchronization waits (view acquire, lock
    // acquire, barrier). Replies to these requests are legitimately
    // deferred by the serving manager, so their timeouts retransmit
    // without any datagram having been lost.
    let mut sync_wait: HashMap<NodeId, u64> = HashMap::new();
    // (node, scope, owner) → last applied interval seq.
    let mut applied_seq: HashMap<(NodeId, u64, NodeId), u64> = HashMap::new();

    for (i, ev) in trace.events.iter().enumerate() {
        if ev.t < last_t {
            push(
                "monotone-time",
                i,
                format!("time went backwards: {} ns after {} ns", ev.t, last_t),
            );
        }
        last_t = last_t.max(ev.t);

        let n = ev.node;
        match &ev.kind {
            EventKind::AcquireStart { view, write } => {
                *sync_wait.entry(n).or_default() += 1;
                let h = held.entry(n).or_default();
                if h.contains(&(*view, true)) || h.contains(&(*view, false)) {
                    push(
                        "non-nested-acquires",
                        i,
                        format!("node {n} re-acquires view {view} it already holds"),
                    );
                }
                if cfg.check_non_nested && *write {
                    if let Some((other, _)) = h.iter().find(|(_, w)| *w) {
                        push(
                            "non-nested-acquires",
                            i,
                            format!(
                                "node {n} acquires write view {view} while holding write view {other}"
                            ),
                        );
                    }
                }
            }
            EventKind::AcquireEnd { view, write, .. } => {
                let d = sync_wait.entry(n).or_default();
                *d = d.saturating_sub(1);
                held.entry(n).or_default().insert((*view, *write));
            }
            EventKind::ReleaseDone { view, write }
                if !held.entry(n).or_default().remove(&(*view, *write)) =>
            {
                push(
                    "paired-intervals",
                    i,
                    format!("node {n} releases view {view} it does not hold"),
                );
            }
            EventKind::BarrierEnter { id, epoch } => {
                *sync_wait.entry(n).or_default() += 1;
                in_barrier.entry((n, *id)).or_default().push(*epoch);
            }
            EventKind::BarrierExit { id, epoch, notices } => {
                let d = sync_wait.entry(n).or_default();
                *d = d.saturating_sub(1);
                match in_barrier.entry((n, *id)).or_default().pop() {
                    Some(entered) if entered == *epoch => {}
                    Some(entered) => push(
                        "paired-intervals",
                        i,
                        format!(
                            "node {n} exits barrier {id} epoch {epoch} but entered epoch {entered}"
                        ),
                    ),
                    None => push(
                        "paired-intervals",
                        i,
                        format!("node {n} exits barrier {id} without entering"),
                    ),
                }
                if cfg.expect_no_barrier_notices && *notices > 0 {
                    push(
                        "no-barrier-notices",
                        i,
                        format!(
                            "node {n} left barrier {id} with {notices} write notices under a view protocol"
                        ),
                    );
                }
            }
            EventKind::LockAcquireStart { lock } => {
                *sync_wait.entry(n).or_default() += 1;
                lock_waiting.insert((n, *lock), ev.t);
            }
            EventKind::LockAcquireEnd { lock } => {
                let d = sync_wait.entry(n).or_default();
                *d = d.saturating_sub(1);
                if lock_waiting.remove(&(n, *lock)).is_none() {
                    push(
                        "paired-intervals",
                        i,
                        format!("node {n} obtained lock {lock} without a start event"),
                    );
                }
                lock_held.insert((n, *lock), ev.t);
            }
            EventKind::LockRelease { lock } if lock_held.remove(&(n, *lock)).is_none() => {
                push(
                    "paired-intervals",
                    i,
                    format!("node {n} releases lock {lock} it does not hold"),
                );
            }
            EventKind::DiffRequest { page, to } if cfg.expect_zero_diff_requests => {
                push(
                    "zero-diff-requests",
                    i,
                    format!("node {n} requested diffs for page {page} from node {to} under VC_sd"),
                );
            }
            EventKind::NetDrop { overflow, .. } => {
                drops += 1;
                if *overflow {
                    overflow_drops += 1;
                }
            }
            EventKind::Rexmit { dst, tag } => {
                // A retransmission during a synchronization wait is the
                // deferred-reply regime: the manager holds the reply until
                // the barrier fills / the lock or view frees, which can
                // exceed the RPC timeout with nothing lost. Outside a
                // wait, replies are immediate, so the timeout can only
                // have fired because a datagram was dropped.
                if sync_wait.get(&n).copied().unwrap_or(0) > 0 {
                    continue;
                }
                uncovered_rexmits += 1;
                if cfg.check_rexmit_overflow && uncovered_rexmits > drops {
                    push(
                        "rexmit-covered",
                        i,
                        format!(
                            "node {n} retransmitted tag {tag} to {dst} outside any sync wait: \
                             {uncovered_rexmits} such rexmits but only {drops} drops \
                             ({overflow_drops} overflow) so far"
                        ),
                    );
                }
            }
            EventKind::WriteNoticeApply {
                owner, seq, scope, ..
            } => {
                let key = (n, *scope, *owner);
                if let Some(prev) = applied_seq.get(&key) {
                    if *seq <= *prev {
                        push(
                            "vector-time-causality",
                            i,
                            format!(
                                "node {n} applied interval {seq} from owner {owner} (scope {scope}) after already applying {prev}"
                            ),
                        );
                    }
                }
                applied_seq
                    .entry(key)
                    .and_modify(|p| *p = (*p).max(*seq))
                    .or_insert(*seq);
            }
            _ => {}
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn e(t: u64, node: NodeId, kind: EventKind) -> Event {
        Event { t, node, kind }
    }

    fn trace(events: Vec<Event>) -> Trace {
        Trace { events, evicted: 0 }
    }

    fn names(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.invariant).collect()
    }

    #[test]
    fn clean_stream_passes() {
        let t = trace(vec![
            e(
                0,
                0,
                EventKind::AcquireStart {
                    view: 1,
                    write: true,
                },
            ),
            e(
                10,
                0,
                EventKind::AcquireEnd {
                    view: 1,
                    write: true,
                    version: 1,
                    bytes: 0,
                },
            ),
            e(
                20,
                0,
                EventKind::ReleaseDone {
                    view: 1,
                    write: true,
                },
            ),
            e(30, 0, EventKind::BarrierEnter { id: 0, epoch: 0 }),
            e(
                40,
                0,
                EventKind::BarrierExit {
                    id: 0,
                    epoch: 0,
                    notices: 0,
                },
            ),
        ]);
        assert!(check(&t, &CheckConfig::default()).is_empty());
    }

    #[test]
    fn detects_time_regression() {
        let t = trace(vec![
            e(100, 0, EventKind::ProcStart),
            e(50, 1, EventKind::ProcStart),
        ]);
        assert_eq!(
            names(&check(&t, &CheckConfig::default())),
            ["monotone-time"]
        );
    }

    #[test]
    fn detects_nested_write_acquire() {
        let t = trace(vec![
            e(
                0,
                0,
                EventKind::AcquireStart {
                    view: 1,
                    write: true,
                },
            ),
            e(
                1,
                0,
                EventKind::AcquireEnd {
                    view: 1,
                    write: true,
                    version: 1,
                    bytes: 0,
                },
            ),
            e(
                2,
                0,
                EventKind::AcquireStart {
                    view: 2,
                    write: true,
                },
            ),
        ]);
        assert_eq!(
            names(&check(&t, &CheckConfig::default())),
            ["non-nested-acquires"]
        );
        let relaxed = CheckConfig {
            check_non_nested: false,
            ..CheckConfig::default()
        };
        assert!(check(&t, &relaxed).is_empty());
    }

    #[test]
    fn detects_diff_request_under_sd() {
        let t = trace(vec![e(0, 2, EventKind::DiffRequest { page: 7, to: 0 })]);
        let cfg = CheckConfig {
            expect_zero_diff_requests: true,
            ..CheckConfig::default()
        };
        assert_eq!(names(&check(&t, &cfg)), ["zero-diff-requests"]);
        assert!(check(&t, &CheckConfig::default()).is_empty());
    }

    #[test]
    fn detects_barrier_notices_under_vc() {
        let t = trace(vec![
            e(0, 0, EventKind::BarrierEnter { id: 0, epoch: 0 }),
            e(
                1,
                0,
                EventKind::BarrierExit {
                    id: 0,
                    epoch: 0,
                    notices: 3,
                },
            ),
        ]);
        let cfg = CheckConfig {
            expect_no_barrier_notices: true,
            ..CheckConfig::default()
        };
        assert_eq!(names(&check(&t, &cfg)), ["no-barrier-notices"]);
    }

    #[test]
    fn detects_uncovered_rexmit() {
        let naked = trace(vec![e(0, 0, EventKind::Rexmit { dst: 1, tag: 5 })]);
        assert_eq!(
            names(&check(&naked, &CheckConfig::default())),
            ["rexmit-covered"]
        );

        let covered = trace(vec![
            e(
                0,
                1,
                EventKind::NetDrop {
                    dst: 0,
                    wire_bytes: 100,
                    overflow: true,
                },
            ),
            e(1_000_000_000, 0, EventKind::Rexmit { dst: 1, tag: 5 }),
        ]);
        assert!(check(&covered, &CheckConfig::default()).is_empty());

        // A background bit-error drop also licenses a retransmission —
        // the overflow flag classifies the loss, it does not gate it.
        let random = trace(vec![
            e(
                0,
                1,
                EventKind::NetDrop {
                    dst: 0,
                    wire_bytes: 100,
                    overflow: false,
                },
            ),
            e(1_000_000_000, 0, EventKind::Rexmit { dst: 1, tag: 5 }),
        ]);
        assert!(check(&random, &CheckConfig::default()).is_empty());

        // One drop covers one retransmission, not two.
        let double = trace(vec![
            e(
                0,
                1,
                EventKind::NetDrop {
                    dst: 0,
                    wire_bytes: 100,
                    overflow: true,
                },
            ),
            e(1_000_000_000, 0, EventKind::Rexmit { dst: 1, tag: 5 }),
            e(2_000_000_000, 0, EventKind::Rexmit { dst: 1, tag: 5 }),
        ]);
        assert_eq!(
            names(&check(&double, &CheckConfig::default())),
            ["rexmit-covered"]
        );

        // During a synchronization wait the reply is legitimately deferred
        // (a barrier waiting for stragglers, a contended lock or view), so
        // a timeout retransmission there needs no covering drop.
        let deferred = trace(vec![
            e(0, 0, EventKind::BarrierEnter { id: 0, epoch: 1 }),
            e(1_000_000_000, 0, EventKind::Rexmit { dst: 1, tag: 5 }),
            e(
                2_000_000_000,
                0,
                EventKind::BarrierExit {
                    id: 0,
                    epoch: 1,
                    notices: 0,
                },
            ),
        ]);
        assert!(check(&deferred, &CheckConfig::default()).is_empty());

        // ...but once the wait is over the exemption ends.
        let after_wait = trace(vec![
            e(0, 0, EventKind::BarrierEnter { id: 0, epoch: 1 }),
            e(
                1_000_000_000,
                0,
                EventKind::BarrierExit {
                    id: 0,
                    epoch: 1,
                    notices: 0,
                },
            ),
            e(2_000_000_000, 0, EventKind::Rexmit { dst: 1, tag: 5 }),
        ]);
        assert_eq!(
            names(&check(&after_wait, &CheckConfig::default())),
            ["rexmit-covered"]
        );
    }

    #[test]
    fn detects_causality_regression() {
        let t = trace(vec![
            e(
                0,
                0,
                EventKind::WriteNoticeApply {
                    owner: 1,
                    seq: 5,
                    scope: 0,
                    pages: 1,
                },
            ),
            e(
                1,
                0,
                EventKind::WriteNoticeApply {
                    owner: 1,
                    seq: 4,
                    scope: 0,
                    pages: 1,
                },
            ),
            // Same seqs in a different scope are independent histories.
            e(
                2,
                0,
                EventKind::WriteNoticeApply {
                    owner: 1,
                    seq: 4,
                    scope: 9,
                    pages: 1,
                },
            ),
        ]);
        assert_eq!(
            names(&check(&t, &CheckConfig::default())),
            ["vector-time-causality"]
        );
    }

    #[test]
    fn detects_unpaired_release_and_barrier() {
        let t = trace(vec![
            e(
                0,
                0,
                EventKind::ReleaseDone {
                    view: 4,
                    write: true,
                },
            ),
            e(
                1,
                0,
                EventKind::BarrierExit {
                    id: 2,
                    epoch: 0,
                    notices: 0,
                },
            ),
        ]);
        assert_eq!(
            names(&check(&t, &CheckConfig::default())),
            ["paired-intervals", "paired-intervals"]
        );
    }
}
