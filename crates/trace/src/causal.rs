//! Causal-edge recorder for the critical-path profiler.
//!
//! The simulation kernel executes exactly one context at a time: either an
//! application thread that has just been woken ([`CtxKind::Start`],
//! [`CtxKind::Compute`], [`CtxKind::Wait`], [`CtxKind::Timeout`]) or a
//! service handler dispatched for a delivered packet ([`CtxKind::Svc`]).
//! A [`CausalProfiler`] assigns every such context a record id and keeps,
//! per record, the edge to its *immediate causal predecessor*:
//!
//! * a compute resume or a timer expiry was caused by the same node's
//!   previous context (the one that scheduled it),
//! * a wake out of a blocking receive was caused by the context that sent
//!   the delivered packet (the packet carries the sender's record id),
//! * a service dispatch was caused by the context that sent the request.
//!
//! Because execution is serialized, the "currently executing context" is a
//! single atomic cell ([`CausalProfiler::cur_ctx`]) that the transport
//! reads when stamping outgoing packets — no per-thread state, no races,
//! and identical ids at any `--jobs` value (each run owns its profiler).
//!
//! On top of the kernel-level edges, the DSM layer annotates the same
//! timeline with [`OpSpan`]s: which protocol operation (barrier, acquire,
//! data fetch, flush) a blocking interval belonged to and which
//! view/page/lock it touched, plus the app/overhead/diff split of compute
//! intervals. Spans are pure annotations — they join against path segments
//! by interval containment after the run; nothing here perturbs virtual
//! time or event ordering.
//!
//! Recording is pure observation: with no profiler installed the hot paths
//! pay one `Option` test, and an installed profiler never feeds anything
//! back into the simulation.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sentinel record id: "no causal predecessor known".
pub const NO_CTX: u64 = u64::MAX;

/// A thread-local interceptor for [`CausalProfiler`] recording, the causal
/// analogue of [`crate::tracer::RecordSink`].
///
/// The parallel kernel cannot let concurrently-executing node groups append
/// to the shared [`CausalLog`]: record ids are execution-order indices and
/// a deterministic artifact. A worker thread installs a sink; a consuming
/// sink hands out *provisional* ids (remapped to final ids when the window
/// is replayed in virtual-time order) and captures records into a
/// per-group log. Sinks that decline (return `None`/`false`) fall through
/// to the shared log — the exclusive-window fast path.
pub trait CausalSink: Send + Sync {
    /// Offer a wake record; `Some(provisional_id)` consumes it.
    fn record_wake(
        &self,
        node: usize,
        prev_ns: u64,
        t_ns: u64,
        kind: CtxKind,
        pkt_cause: u64,
    ) -> Option<u64>;
    /// Offer a service-dispatch record; `Some(provisional_id)` consumes it.
    fn record_svc(&self, node: usize, t_ns: u64, pkt_cause: u64) -> Option<u64>;
    /// Offer an op-span annotation; `true` consumes it.
    fn record_op(&self, node: usize, span: OpSpan) -> bool;
    /// The current context id as this sink tracks it, or `None` to read
    /// the shared profiler's atomic instead.
    fn cur_ctx(&self) -> Option<u64>;
}

thread_local! {
    static CAUSAL_SINK: RefCell<Option<Arc<dyn CausalSink>>> = const { RefCell::new(None) };
}

/// Install (or clear, with `None`) this thread's [`CausalSink`]. Only the
/// parallel kernel's worker threads use this.
pub fn set_thread_causal_sink(sink: Option<Arc<dyn CausalSink>>) {
    CAUSAL_SINK.with(|s| *s.borrow_mut() = sink);
}

fn with_sink<T>(f: impl FnOnce(&dyn CausalSink) -> Option<T>) -> Option<T> {
    CAUSAL_SINK.with(|s| s.borrow().as_deref().and_then(f))
}

/// What kind of context a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtxKind {
    /// The startup resume at virtual time zero.
    Start,
    /// A wake out of a `compute()` sleep (the node was burning CPU).
    Compute,
    /// A wake out of a blocking receive (a packet delivery).
    Wait,
    /// A wake out of a blocking receive via its timeout timer.
    Timeout,
    /// A service-handler dispatch (runs at its packet's arrival instant).
    Svc,
}

/// One executed context: a node-local interval of virtual time ending at
/// the instant the context began running, plus its causal edges.
#[derive(Debug, Clone, Copy)]
pub struct CtxRecord {
    /// Node the context ran on.
    pub node: usize,
    /// Node-local clock before the wake (interval start). Equals `t_ns`
    /// for zero-width [`CtxKind::Svc`] records.
    pub prev_ns: u64,
    /// Virtual time the context began running (interval end).
    pub t_ns: u64,
    /// Context kind.
    pub kind: CtxKind,
    /// Record id of the causal predecessor: the packet sender's context
    /// for [`CtxKind::Wait`]/[`CtxKind::Svc`], the same node's previous
    /// context otherwise. [`NO_CTX`] only on [`CtxKind::Start`] records
    /// (or a packet predating the profiler, which cannot happen when the
    /// profiler is installed before the run).
    pub cause: u64,
    /// The same node's previous app-thread record ([`NO_CTX`] at start).
    pub prev: u64,
}

/// The protocol operation a timeline annotation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Application compute (with the overhead/diff split carried on the
    /// span).
    App,
    /// Deliberate idling (open-loop pacing).
    Idle,
    /// Barrier arrive/release.
    Barrier,
    /// Lock or view acquisition.
    Acquire,
    /// Remote data fetch (page or diff).
    Data,
    /// Flush/release-side sends (write notices, home flushes, releases).
    Flush,
    /// No annotation matched.
    Other,
}

impl OpKind {
    /// Stable artifact label.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::App => "app",
            OpKind::Idle => "idle",
            OpKind::Barrier => "barrier",
            OpKind::Acquire => "acquire",
            OpKind::Data => "data",
            OpKind::Flush => "flush",
            OpKind::Other => "other",
        }
    }
}

/// A node-local annotation interval: what protocol operation the node was
/// performing over `[lo_ns, hi_ns]` of its virtual timeline. Spans on one
/// node are disjoint and recorded in increasing time order (the node's
/// clock is monotone), so lookups are a binary search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpan {
    /// Interval start (node-local virtual time).
    pub lo_ns: u64,
    /// Interval end.
    pub hi_ns: u64,
    /// Operation kind.
    pub op: OpKind,
    /// Object identity: view/page/lock/barrier id, 0 when not applicable.
    pub obj: u64,
    /// Application share of a compute span (0 on wait spans).
    pub app_ns: u64,
    /// Protocol-overhead share of a compute span.
    pub overhead_ns: u64,
    /// Diff create/apply share of `overhead_ns` (the free-diff what-if).
    pub diff_ns: u64,
}

/// The finished recording: every context plus per-node annotations.
#[derive(Debug, Default)]
pub struct CausalLog {
    /// All context records, in execution order (ids are indices).
    pub records: Vec<CtxRecord>,
    /// Per node: the id of its latest app-thread record.
    pub last_wake: Vec<u64>,
    /// Per node: annotation spans in increasing time order.
    pub spans: Vec<Vec<OpSpan>>,
}

impl CausalLog {
    fn new(nprocs: usize) -> CausalLog {
        CausalLog {
            records: Vec::new(),
            last_wake: vec![NO_CTX; nprocs],
            spans: vec![Vec::new(); nprocs],
        }
    }

    /// The annotation span on `node` containing time `t_ns`, if any.
    pub fn span_at(&self, node: usize, t_ns: u64) -> Option<&OpSpan> {
        let spans = self.spans.get(node)?;
        // First span with hi_ns >= t_ns; containment then needs lo <= t.
        let i = spans.partition_point(|s| s.hi_ns < t_ns);
        spans.get(i).filter(|s| s.lo_ns <= t_ns)
    }
}

/// Race-free causal recorder, one per cluster run.
///
/// Installed on the simulation kernel before the run starts; the kernel
/// records wakes and service dispatches, the transport stamps packets with
/// [`CausalProfiler::cur_ctx`], and the DSM layer adds [`OpSpan`]s. The
/// mutex is uncontended by construction (one context executes at a time).
#[derive(Debug)]
pub struct CausalProfiler {
    cur: AtomicU64,
    log: Mutex<CausalLog>,
}

impl CausalProfiler {
    /// Fresh profiler for a run with `nprocs` nodes.
    pub fn new(nprocs: usize) -> CausalProfiler {
        CausalProfiler {
            cur: AtomicU64::new(NO_CTX),
            log: Mutex::new(CausalLog::new(nprocs)),
        }
    }

    /// Record id of the context executing right now (stamped onto every
    /// packet sent from it).
    pub fn cur_ctx(&self) -> u64 {
        if let Some(id) = with_sink(|s| s.cur_ctx()) {
            return id;
        }
        self.cur.load(Ordering::Relaxed)
    }

    /// Record an app-thread wake on `node`: its clock advanced from
    /// `prev_ns` to `t_ns`. `pkt_cause` is the delivered packet's stamped
    /// sender context for [`CtxKind::Wait`] wakes and ignored otherwise
    /// (self-caused kinds chain to the node's previous record). Returns the
    /// record's id (provisional when a [`CausalSink`] captured it).
    pub fn record_wake(
        &self,
        node: usize,
        prev_ns: u64,
        t_ns: u64,
        kind: CtxKind,
        pkt_cause: u64,
    ) -> u64 {
        if let Some(id) = with_sink(|s| s.record_wake(node, prev_ns, t_ns, kind, pkt_cause)) {
            return id;
        }
        let mut log = self.log.lock().expect("causal log lock");
        let id = log.records.len() as u64;
        let prev = log.last_wake[node];
        let cause = match kind {
            CtxKind::Wait => pkt_cause,
            _ => prev,
        };
        log.records.push(CtxRecord {
            node,
            prev_ns,
            t_ns,
            kind,
            cause,
            prev,
        });
        log.last_wake[node] = id;
        self.cur.store(id, Ordering::Relaxed);
        id
    }

    /// Record a service-handler dispatch on `node` at `t_ns`, caused by
    /// the context that sent the request (`pkt_cause`). Returns the
    /// record's id (provisional when a [`CausalSink`] captured it).
    pub fn record_svc(&self, node: usize, t_ns: u64, pkt_cause: u64) -> u64 {
        if let Some(id) = with_sink(|s| s.record_svc(node, t_ns, pkt_cause)) {
            return id;
        }
        let mut log = self.log.lock().expect("causal log lock");
        let id = log.records.len() as u64;
        let prev = log.last_wake[node];
        log.records.push(CtxRecord {
            node,
            prev_ns: t_ns,
            t_ns,
            kind: CtxKind::Svc,
            cause: pkt_cause,
            prev,
        });
        self.cur.store(id, Ordering::Relaxed);
        id
    }

    /// Annotate `[lo_ns, hi_ns]` on `node` with a protocol operation.
    /// Zero-width spans are dropped (they can never contain a segment).
    pub fn record_op(&self, node: usize, span: OpSpan) {
        if span.hi_ns <= span.lo_ns {
            return;
        }
        if with_sink(|s| s.record_op(node, span).then_some(())).is_some() {
            return;
        }
        let mut log = self.log.lock().expect("causal log lock");
        debug_assert!(
            log.spans[node].last().map_or(0, |s| s.hi_ns) <= span.lo_ns,
            "op spans on one node must be disjoint and time-ordered"
        );
        log.spans[node].push(span);
    }

    /// The id the next appended context record will receive (ids are
    /// execution indices). The parallel kernel's commit uses this to
    /// pre-assign real ids to a whole window of captured records before
    /// bulk-appending them.
    pub fn next_id(&self) -> u64 {
        self.log.lock().expect("causal log lock").records.len() as u64
    }

    /// Consume the recording (the run is over).
    pub fn take(&self) -> CausalLog {
        std::mem::take(&mut *self.log.lock().expect("causal log lock"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_records_chain_per_node() {
        let p = CausalProfiler::new(2);
        p.record_wake(0, 0, 0, CtxKind::Start, NO_CTX);
        p.record_wake(1, 0, 0, CtxKind::Start, NO_CTX);
        assert_eq!(p.cur_ctx(), 1);
        p.record_wake(0, 0, 500, CtxKind::Compute, NO_CTX);
        // Node 0 sends at clock 500 from record 2; node 1 wakes on it.
        p.record_wake(1, 0, 700, CtxKind::Wait, 2);
        let log = p.take();
        assert_eq!(log.records.len(), 4);
        let w = log.records[3];
        assert_eq!((w.node, w.prev_ns, w.t_ns), (1, 0, 700));
        assert_eq!(w.kind, CtxKind::Wait);
        assert_eq!(w.cause, 2, "wait wakes chain to the packet sender");
        assert_eq!(w.prev, 1, "node-local chain is independent of cause");
        let c = log.records[2];
        assert_eq!(c.cause, 0, "computes chain to the node's own history");
        assert_eq!(log.last_wake, vec![2, 3]);
    }

    #[test]
    fn svc_records_are_zero_width_and_do_not_advance_the_node_chain() {
        let p = CausalProfiler::new(2);
        p.record_wake(0, 0, 0, CtxKind::Start, NO_CTX);
        p.record_svc(1, 300, 0);
        let log = p.take();
        let s = log.records[1];
        assert_eq!((s.prev_ns, s.t_ns, s.kind), (300, 300, CtxKind::Svc));
        assert_eq!(s.cause, 0);
        assert_eq!(log.last_wake[1], NO_CTX, "svc is not an app-thread wake");
    }

    #[test]
    fn span_lookup_by_containment() {
        let p = CausalProfiler::new(1);
        let span = |lo, hi, op| OpSpan {
            lo_ns: lo,
            hi_ns: hi,
            op,
            obj: 7,
            app_ns: 0,
            overhead_ns: 0,
            diff_ns: 0,
        };
        p.record_op(0, span(100, 200, OpKind::Barrier));
        p.record_op(0, span(200, 200, OpKind::Idle)); // dropped: zero-width
        p.record_op(0, span(250, 400, OpKind::Data));
        let log = p.take();
        assert_eq!(log.spans[0].len(), 2);
        assert_eq!(log.span_at(0, 150).unwrap().op, OpKind::Barrier);
        assert_eq!(log.span_at(0, 200).unwrap().op, OpKind::Barrier);
        assert_eq!(log.span_at(0, 240), None);
        assert_eq!(log.span_at(0, 400).unwrap().op, OpKind::Data);
        assert_eq!(log.span_at(0, 401), None);
    }
}
