//! Minimal JSON tree, writer, and parser.
//!
//! The workspace builds in a network-less environment, so it cannot pull in
//! `serde_json`; this module is the single JSON implementation shared by the
//! trace exporters, the conformance-checker round-trip tests, and the
//! `tables --json` output. Objects preserve insertion order so that exports
//! are byte-stable across runs — the determinism guard in `vopp-bench`
//! compares serialized traces verbatim.

use std::fmt;

/// A parsed or under-construction JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number. Values up to 2^53 round-trip exactly; simulated
    /// times (ns) and sequence numbers stay far below that.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered, duplicate keys are not merged.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize without whitespace.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize with two-space indentation (for human-facing output).
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| {
            for _ in 0..n {
                out.push_str("  ");
            }
        };
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Value::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
            _ => self.write(out),
        }
    }

    /// Compact serialization as a fresh `String`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    /// Pretty serialization as a fresh `String`.
    pub fn to_json_pretty(&self) -> String {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        s.push('\n');
        s
    }

    /// Parse a complete JSON document; trailing whitespace is permitted,
    /// trailing garbage is an error.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// Shorthand for an object literal from `(key, value)` pairs.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Shorthand for a number value.
pub fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

/// Shorthand for a string value.
pub fn str(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/Inf; the tracer never produces them.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`Value::parse`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: the writer never emits them,
                            // but accept them for external traces.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v = obj(vec![
            ("name", str("trace")),
            ("n", num(12345)),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            ("items", Value::Arr(vec![num(1), num(2), str("x")])),
        ]);
        let text = v.to_json();
        assert_eq!(Value::parse(&text).unwrap(), v);
        let pretty = v.to_json_pretty();
        assert_eq!(Value::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{0001}é".to_string());
        let text = v.to_json();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(
            Value::parse("\"\\u00e9\"").unwrap(),
            Value::Str("é".to_string())
        );
        assert_eq!(
            Value::parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("😀".to_string())
        );
    }

    #[test]
    fn numbers_round_trip() {
        for n in [0u64, 1, 42, 1_000_000_000_000, 9_007_199_254_740_992] {
            let text = num(n).to_json();
            assert_eq!(Value::parse(&text).unwrap().as_u64(), Some(n));
        }
        let v = Value::parse("-1.5e3").unwrap();
        assert_eq!(v.as_f64(), Some(-1500.0));
        assert_eq!(v.as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("true false").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }
}
