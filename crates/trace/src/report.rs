//! Plain-text summarization of a trace: where did the time go?
//!
//! Complements the Perfetto export for terminal workflows: the report lists
//! the top-N slowest view acquires, a per-view wait histogram, and barrier
//! wait statistics — the three quantities the paper's tables aggregate away.

use std::collections::HashMap;
use std::fmt::Write;

use crate::event::{EventKind, NodeId};
use crate::tracer::Trace;

/// One completed view-acquire wait reconstructed from the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcquireWait {
    /// Waiting node.
    pub node: NodeId,
    /// View id.
    pub view: u64,
    /// Write vs read acquisition.
    pub write: bool,
    /// Virtual time the wait began (ns).
    pub start: u64,
    /// Wait duration (ns).
    pub wait_ns: u64,
}

/// Pair every `AcquireStart` with its `AcquireEnd`.
pub fn acquire_waits(trace: &Trace) -> Vec<AcquireWait> {
    let mut open: HashMap<(NodeId, u64, bool), Vec<u64>> = HashMap::new();
    let mut out = Vec::new();
    for ev in &trace.events {
        match &ev.kind {
            EventKind::AcquireStart { view, write } => {
                open.entry((ev.node, *view, *write)).or_default().push(ev.t);
            }
            EventKind::AcquireEnd { view, write, .. } => {
                if let Some(start) = open.entry((ev.node, *view, *write)).or_default().pop() {
                    out.push(AcquireWait {
                        node: ev.node,
                        view: *view,
                        write: *write,
                        start,
                        wait_ns: ev.t.saturating_sub(start),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Decade histogram bucket index for a wait, and its label.
const BUCKETS: [(&str, u64); 6] = [
    ("     <10µs", 10_000),
    ("  10-100µs", 100_000),
    (" 100µs-1ms", 1_000_000),
    ("   1-10ms", 10_000_000),
    (" 10-100ms", 100_000_000),
    ("   >100ms", u64::MAX),
];

fn bucket(wait_ns: u64) -> usize {
    BUCKETS
        .iter()
        .position(|(_, lim)| wait_ns < *lim)
        .unwrap_or(BUCKETS.len() - 1)
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1}µs", ns as f64 / 1000.0)
}

/// Render the human-readable trace report.
pub fn report(trace: &Trace, top_n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace report: {} events across {} nodes ({} evicted)",
        trace.events.len(),
        trace.node_count(),
        trace.evicted
    );

    // Event census, sorted by count descending then name for stability.
    let mut census: HashMap<&'static str, usize> = HashMap::new();
    for ev in &trace.events {
        *census.entry(ev.kind.name()).or_default() += 1;
    }
    let mut census: Vec<(&str, usize)> = census.into_iter().collect();
    census.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let _ = writeln!(out, "\nevent census:");
    for (name, count) in &census {
        let _ = writeln!(out, "  {count:>8}  {name}");
    }

    // Slowest acquires.
    let mut waits = acquire_waits(trace);
    waits.sort_by(|a, b| b.wait_ns.cmp(&a.wait_ns).then(a.start.cmp(&b.start)));
    let _ = writeln!(
        out,
        "\ntop {} slowest view acquires:",
        top_n.min(waits.len())
    );
    for w in waits.iter().take(top_n) {
        let _ = writeln!(
            out,
            "  {:>12} wait  node {:<3} view {:<4} ({}) at t={}",
            fmt_us(w.wait_ns),
            w.node,
            w.view,
            if w.write { "W" } else { "R" },
            fmt_us(w.start),
        );
    }

    // Per-view wait histograms.
    let mut per_view: HashMap<u64, (u64, u64, [usize; BUCKETS.len()])> = HashMap::new();
    for w in &waits {
        let entry = per_view.entry(w.view).or_insert((0, 0, [0; BUCKETS.len()]));
        entry.0 += 1;
        entry.1 += w.wait_ns;
        entry.2[bucket(w.wait_ns)] += 1;
    }
    let mut views: Vec<u64> = per_view.keys().copied().collect();
    views.sort_unstable();
    let _ = writeln!(out, "\nper-view acquire-wait histogram:");
    for view in views {
        let (count, total, hist) = &per_view[&view];
        let _ = writeln!(
            out,
            "  view {view}: {count} acquires, mean wait {}",
            fmt_us(total / count)
        );
        for (i, (label, _)) in BUCKETS.iter().enumerate() {
            if hist[i] > 0 {
                let _ = writeln!(
                    out,
                    "    {label} {:>6}  {}",
                    hist[i],
                    "#".repeat(hist[i].min(60))
                );
            }
        }
    }

    // Barrier waits.
    let mut open: HashMap<(NodeId, u64), u64> = HashMap::new();
    let mut barrier_waits: Vec<u64> = Vec::new();
    for ev in &trace.events {
        match &ev.kind {
            EventKind::BarrierEnter { id, .. } => {
                open.insert((ev.node, *id), ev.t);
            }
            EventKind::BarrierExit { id, .. } => {
                if let Some(start) = open.remove(&(ev.node, *id)) {
                    barrier_waits.push(ev.t.saturating_sub(start));
                }
            }
            _ => {}
        }
    }
    if !barrier_waits.is_empty() {
        let total: u64 = barrier_waits.iter().sum();
        let max = *barrier_waits.iter().max().expect("non-empty");
        let _ = writeln!(
            out,
            "\nbarrier waits: {} episodes, mean {}, max {}",
            barrier_waits.len(),
            fmt_us(total / barrier_waits.len() as u64),
            fmt_us(max),
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn report_lists_slowest_acquires_and_histogram() {
        let mut events = Vec::new();
        for (i, wait) in [5_000u64, 50_000, 5_000_000].iter().enumerate() {
            let start = i as u64 * 10_000_000;
            events.push(Event {
                t: start,
                node: i,
                kind: EventKind::AcquireStart {
                    view: 2,
                    write: true,
                },
            });
            events.push(Event {
                t: start + wait,
                node: i,
                kind: EventKind::AcquireEnd {
                    view: 2,
                    write: true,
                    version: i as u64,
                    bytes: 0,
                },
            });
        }
        events.push(Event {
            t: 40_000_000,
            node: 0,
            kind: EventKind::BarrierEnter { id: 0, epoch: 0 },
        });
        events.push(Event {
            t: 41_000_000,
            node: 0,
            kind: EventKind::BarrierExit {
                id: 0,
                epoch: 0,
                notices: 0,
            },
        });
        let trace = Trace { events, evicted: 0 };

        let waits = acquire_waits(&trace);
        assert_eq!(waits.len(), 3);

        let text = report(&trace, 2);
        assert!(text.contains("top 2 slowest view acquires"));
        assert!(text.contains("5000.0µs"), "slowest first:\n{text}");
        assert!(text.contains("view 2: 3 acquires"));
        assert!(text.contains("barrier waits: 1 episodes"));
    }
}
