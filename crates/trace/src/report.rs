//! Plain-text summarization of a trace: where did the time go?
//!
//! Complements the Perfetto export for terminal workflows: the report lists
//! the top-N slowest view acquires, a per-view wait histogram, and barrier
//! wait statistics — the three quantities the paper's tables aggregate away.

use std::collections::HashMap;
use std::fmt::Write;

use crate::event::{EventKind, NodeId};
use crate::tracer::Trace;

/// One completed view-acquire wait reconstructed from the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcquireWait {
    /// Waiting node.
    pub node: NodeId,
    /// View id.
    pub view: u64,
    /// Write vs read acquisition.
    pub write: bool,
    /// Virtual time the wait began (ns).
    pub start: u64,
    /// Wait duration (ns).
    pub wait_ns: u64,
}

/// Pair every `AcquireStart` with its `AcquireEnd`.
pub fn acquire_waits(trace: &Trace) -> Vec<AcquireWait> {
    let mut open: HashMap<(NodeId, u64, bool), Vec<u64>> = HashMap::new();
    let mut out = Vec::new();
    for ev in &trace.events {
        match &ev.kind {
            EventKind::AcquireStart { view, write } => {
                open.entry((ev.node, *view, *write)).or_default().push(ev.t);
            }
            EventKind::AcquireEnd { view, write, .. } => {
                if let Some(start) = open.entry((ev.node, *view, *write)).or_default().pop() {
                    out.push(AcquireWait {
                        node: ev.node,
                        view: *view,
                        write: *write,
                        start,
                        wait_ns: ev.t.saturating_sub(start),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Aggregate acquire statistics of one view, for hot-view ranking (§3.6:
/// frequently-acquired views serialize the computation and dominate the
/// acquire-wait column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotView {
    /// View id.
    pub view: u64,
    /// Completed acquires (write and read).
    pub acquires: u64,
    /// Total time nodes spent waiting to acquire this view (ns).
    pub wait_ns: u64,
    /// Total bytes carried by the view grants (diffs/pages piggy-backed on
    /// the grant message).
    pub grant_bytes: u64,
}

/// Rank views by total acquire-wait time, hottest first (ties broken by
/// view id), truncated to `top_n`.
pub fn hot_views(trace: &Trace, top_n: usize) -> Vec<HotView> {
    let mut per: HashMap<u64, HotView> = HashMap::new();
    let blank = |view| HotView {
        view,
        acquires: 0,
        wait_ns: 0,
        grant_bytes: 0,
    };
    for w in acquire_waits(trace) {
        per.entry(w.view).or_insert_with(|| blank(w.view)).wait_ns += w.wait_ns;
    }
    for ev in &trace.events {
        if let EventKind::AcquireEnd { view, bytes, .. } = &ev.kind {
            let e = per.entry(*view).or_insert_with(|| blank(*view));
            e.acquires += 1;
            e.grant_bytes += bytes;
        }
    }
    let mut out: Vec<HotView> = per.into_values().collect();
    out.sort_by(|a, b| b.wait_ns.cmp(&a.wait_ns).then(a.view.cmp(&b.view)));
    out.truncate(top_n);
    out
}

/// Decade histogram bucket index for a wait, and its label.
const BUCKETS: [(&str, u64); 6] = [
    ("     <10µs", 10_000),
    ("  10-100µs", 100_000),
    (" 100µs-1ms", 1_000_000),
    ("   1-10ms", 10_000_000),
    (" 10-100ms", 100_000_000),
    ("   >100ms", u64::MAX),
];

fn bucket(wait_ns: u64) -> usize {
    BUCKETS
        .iter()
        .position(|(_, lim)| wait_ns < *lim)
        .unwrap_or(BUCKETS.len() - 1)
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1}µs", ns as f64 / 1000.0)
}

/// Render the human-readable trace report.
pub fn report(trace: &Trace, top_n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace report: {} events across {} nodes ({} evicted)",
        trace.events.len(),
        trace.node_count(),
        trace.evicted
    );

    // Event census, sorted by count descending then name for stability.
    let mut census: HashMap<&'static str, usize> = HashMap::new();
    for ev in &trace.events {
        *census.entry(ev.kind.name()).or_default() += 1;
    }
    let mut census: Vec<(&str, usize)> = census.into_iter().collect();
    census.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let _ = writeln!(out, "\nevent census:");
    for (name, count) in &census {
        let _ = writeln!(out, "  {count:>8}  {name}");
    }

    // Slowest acquires.
    let mut waits = acquire_waits(trace);
    waits.sort_by(|a, b| b.wait_ns.cmp(&a.wait_ns).then(a.start.cmp(&b.start)));
    let _ = writeln!(
        out,
        "\ntop {} slowest view acquires:",
        top_n.min(waits.len())
    );
    for w in waits.iter().take(top_n) {
        let _ = writeln!(
            out,
            "  {:>12} wait  node {:<3} view {:<4} ({}) at t={}",
            fmt_us(w.wait_ns),
            w.node,
            w.view,
            if w.write { "W" } else { "R" },
            fmt_us(w.start),
        );
    }

    // Hottest views by total acquire-wait time.
    let hot = hot_views(trace, top_n);
    if !hot.is_empty() {
        let _ = writeln!(out, "\nhottest views (by total acquire wait):");
        for h in &hot {
            let _ = writeln!(
                out,
                "  view {:<4} {:>12} total wait  {:>6} acquires  {:>10} grant bytes",
                h.view,
                fmt_us(h.wait_ns),
                h.acquires,
                h.grant_bytes,
            );
        }
    }

    // Per-view wait histograms.
    let mut per_view: HashMap<u64, (u64, u64, [usize; BUCKETS.len()])> = HashMap::new();
    for w in &waits {
        let entry = per_view.entry(w.view).or_insert((0, 0, [0; BUCKETS.len()]));
        entry.0 += 1;
        entry.1 += w.wait_ns;
        entry.2[bucket(w.wait_ns)] += 1;
    }
    let mut views: Vec<u64> = per_view.keys().copied().collect();
    views.sort_unstable();
    let _ = writeln!(out, "\nper-view acquire-wait histogram:");
    for view in views {
        let (count, total, hist) = &per_view[&view];
        let _ = writeln!(
            out,
            "  view {view}: {count} acquires, mean wait {}",
            fmt_us(total / count)
        );
        for (i, (label, _)) in BUCKETS.iter().enumerate() {
            if hist[i] > 0 {
                let _ = writeln!(
                    out,
                    "    {label} {:>6}  {}",
                    hist[i],
                    "#".repeat(hist[i].min(60))
                );
            }
        }
    }

    // Barrier waits.
    let mut open: HashMap<(NodeId, u64), u64> = HashMap::new();
    let mut barrier_waits: Vec<u64> = Vec::new();
    for ev in &trace.events {
        match &ev.kind {
            EventKind::BarrierEnter { id, .. } => {
                open.insert((ev.node, *id), ev.t);
            }
            EventKind::BarrierExit { id, .. } => {
                if let Some(start) = open.remove(&(ev.node, *id)) {
                    barrier_waits.push(ev.t.saturating_sub(start));
                }
            }
            _ => {}
        }
    }
    if !barrier_waits.is_empty() {
        let total: u64 = barrier_waits.iter().sum();
        let max = *barrier_waits.iter().max().expect("non-empty");
        let _ = writeln!(
            out,
            "\nbarrier waits: {} episodes, mean {}, max {}",
            barrier_waits.len(),
            fmt_us(total / barrier_waits.len() as u64),
            fmt_us(max),
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn report_lists_slowest_acquires_and_histogram() {
        let mut events = Vec::new();
        for (i, wait) in [5_000u64, 50_000, 5_000_000].iter().enumerate() {
            let start = i as u64 * 10_000_000;
            events.push(Event {
                t: start,
                node: i,
                kind: EventKind::AcquireStart {
                    view: 2,
                    write: true,
                },
            });
            events.push(Event {
                t: start + wait,
                node: i,
                kind: EventKind::AcquireEnd {
                    view: 2,
                    write: true,
                    version: i as u64,
                    bytes: 0,
                },
            });
        }
        events.push(Event {
            t: 40_000_000,
            node: 0,
            kind: EventKind::BarrierEnter { id: 0, epoch: 0 },
        });
        events.push(Event {
            t: 41_000_000,
            node: 0,
            kind: EventKind::BarrierExit {
                id: 0,
                epoch: 0,
                notices: 0,
            },
        });
        let trace = Trace { events, evicted: 0 };

        let waits = acquire_waits(&trace);
        assert_eq!(waits.len(), 3);

        let text = report(&trace, 2);
        assert!(text.contains("top 2 slowest view acquires"));
        assert!(text.contains("5000.0µs"), "slowest first:\n{text}");
        assert!(text.contains("view 2: 3 acquires"));
        assert!(text.contains("barrier waits: 1 episodes"));
        assert!(text.contains("hottest views"), "{text}");
    }

    #[test]
    fn hot_views_ranked_by_total_wait() {
        // View 7: one long wait, big grants. View 3: two short waits.
        let mut events = Vec::new();
        let mut acq = |node: usize, view: u64, start: u64, wait: u64, bytes: u64| {
            events.push(Event {
                t: start,
                node,
                kind: EventKind::AcquireStart { view, write: true },
            });
            events.push(Event {
                t: start + wait,
                node,
                kind: EventKind::AcquireEnd {
                    view,
                    write: true,
                    version: 0,
                    bytes,
                },
            });
        };
        acq(0, 7, 0, 900_000, 4096);
        acq(1, 3, 10_000, 100_000, 64);
        acq(2, 3, 20_000, 200_000, 64);
        let trace = Trace { events, evicted: 0 };

        let hot = hot_views(&trace, 10);
        assert_eq!(
            hot,
            vec![
                HotView {
                    view: 7,
                    acquires: 1,
                    wait_ns: 900_000,
                    grant_bytes: 4096,
                },
                HotView {
                    view: 3,
                    acquires: 2,
                    wait_ns: 300_000,
                    grant_bytes: 128,
                },
            ]
        );
        // Truncation respects the ranking.
        assert_eq!(hot_views(&trace, 1)[0].view, 7);
    }
}
