//! The ring-buffered recorder and the immutable [`Trace`] it produces.
//!
//! A [`Tracer`] is shared as `Option<Arc<Tracer>>` by every runtime layer.
//! `None` means tracing is compiled out of the hot path entirely (a single
//! pointer test per potential event); a present-but-disabled tracer costs one
//! relaxed atomic load, which the overhead bench in `vopp-bench` guards.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::event::{Event, EventKind, NodeId};
use crate::json::Value;

/// A thread-local interceptor for [`Tracer::record`].
///
/// A parallel simulation kernel executes several node groups concurrently
/// and must not interleave their records in the shared ring in wall-clock
/// order (the ring's recording order is a deterministic artifact). Worker
/// threads install a sink; while one is installed, `record` offers each
/// event to it *after* the enabled check. A sink that returns `true` has
/// captured the event (typically into a per-group log replayed into the
/// ring later, in virtual-time order); `false` falls through to the ring,
/// which is how an exclusive (sequential-equivalent) window records
/// directly with zero divergence from the sequential kernel.
pub trait RecordSink: Send + Sync {
    /// Offer one event. Return `true` to consume it, `false` to let it
    /// fall through to the shared ring.
    fn record(&self, t: u64, node: NodeId, kind: &EventKind) -> bool;
}

thread_local! {
    static RECORD_SINK: RefCell<Option<Arc<dyn RecordSink>>> = const { RefCell::new(None) };
}

/// Install (or clear, with `None`) this thread's [`RecordSink`]. Only the
/// parallel kernel's worker threads use this; everything else records
/// straight into the ring.
pub fn set_thread_record_sink(sink: Option<Arc<dyn RecordSink>>) {
    RECORD_SINK.with(|s| *s.borrow_mut() = sink);
}

/// Default ring capacity: enough for every quick-scale table run without
/// wrapping, while bounding memory for full-scale runs (~64 MB worst case).
pub const DEFAULT_CAPACITY: usize = 1 << 20;

struct Ring {
    buf: Vec<Event>,
    cap: usize,
    /// Index of the logical start once the ring has wrapped.
    head: usize,
    /// Events evicted because the ring was full.
    evicted: u64,
}

/// Thread-safe ring-buffered event recorder.
pub struct Tracer {
    enabled: AtomicBool,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer keeping at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(true),
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                cap: capacity.max(1),
                head: 0,
                evicted: 0,
            }),
        }
    }

    /// Flip recording on or off without dropping buffered events.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether [`Tracer::record`] currently stores events.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one event at virtual time `t` (ns) on `node`.
    #[inline]
    pub fn record(&self, t: u64, node: NodeId, kind: EventKind) {
        if !self.is_enabled() {
            return;
        }
        let consumed = RECORD_SINK.with(|s| match &*s.borrow() {
            Some(sink) => sink.record(t, node, &kind),
            None => false,
        });
        if consumed {
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        let ev = Event { t, node, kind };
        if ring.buf.len() < ring.cap {
            ring.buf.push(ev);
        } else {
            let head = ring.head;
            ring.buf[head] = ev;
            ring.head = (head + 1) % ring.cap;
            ring.evicted += 1;
        }
    }

    /// Drain everything recorded so far into an immutable [`Trace`],
    /// leaving the tracer empty (but still enabled).
    pub fn take(&self) -> Trace {
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        let head = ring.head;
        let mut events = std::mem::take(&mut ring.buf);
        events.rotate_left(head);
        ring.head = 0;
        let evicted = std::mem::take(&mut ring.evicted);
        Trace { events, evicted }
    }

    /// Copy everything recorded so far without draining.
    pub fn snapshot(&self) -> Trace {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        let mut events = ring.buf.clone();
        events.rotate_left(ring.head);
        Trace {
            events,
            evicted: ring.evicted,
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_CAPACITY)
    }
}

/// An immutable, time-ordered event stream taken from a [`Tracer`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events in recording order (which equals virtual-time order: the
    /// simulator runs exactly one process at any instant).
    pub events: Vec<Event>,
    /// Events lost to ring eviction before this trace was taken.
    pub evicted: u64,
}

impl Trace {
    /// Serialize to the canonical JSON document (compact, byte-stable).
    pub fn to_json(&self) -> String {
        let v = crate::json::obj(vec![
            ("evicted", crate::json::num(self.evicted)),
            (
                "events",
                Value::Arr(self.events.iter().map(Event::to_value).collect()),
            ),
        ]);
        v.to_json()
    }

    /// Parse a document produced by [`Trace::to_json`].
    pub fn from_json(text: &str) -> Result<Trace, String> {
        let v = Value::parse(text).map_err(|e| e.to_string())?;
        let evicted = v
            .get("evicted")
            .and_then(Value::as_u64)
            .ok_or("missing 'evicted'")?;
        let events = v
            .get("events")
            .and_then(Value::as_arr)
            .ok_or("missing 'events'")?
            .iter()
            .map(Event::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Trace { events, evicted })
    }

    /// Number of nodes referenced by any event (max node id + 1).
    pub fn node_count(&self) -> usize {
        self.events.iter().map(|e| e.node + 1).max().unwrap_or(0)
    }

    /// Count events matching a predicate on the kind.
    pub fn count_kind(&self, pred: impl Fn(&EventKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> EventKind {
        EventKind::PageFault {
            page: i,
            write: false,
        }
    }

    #[test]
    fn records_in_order_and_drains() {
        let tr = Tracer::new(16);
        for i in 0..5u64 {
            tr.record(i * 10, 0, ev(i));
        }
        let trace = tr.take();
        assert_eq!(trace.events.len(), 5);
        assert_eq!(trace.evicted, 0);
        assert!(trace.events.windows(2).all(|w| w[0].t <= w[1].t));
        assert!(tr.take().events.is_empty());
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let tr = Tracer::new(4);
        for i in 0..10u64 {
            tr.record(i, 0, ev(i));
        }
        let trace = tr.take();
        assert_eq!(trace.evicted, 6);
        let pages: Vec<u64> = trace
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::PageFault { page, .. } => page,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pages, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tr = Tracer::new(16);
        tr.set_enabled(false);
        tr.record(1, 0, ev(0));
        assert!(tr.snapshot().events.is_empty());
        tr.set_enabled(true);
        tr.record(2, 0, ev(1));
        assert_eq!(tr.snapshot().events.len(), 1);
    }

    #[test]
    fn trace_json_round_trip() {
        let tr = Tracer::new(16);
        tr.record(5, 1, ev(3));
        tr.record(
            9,
            0,
            EventKind::SpanBegin {
                name: "body".into(),
            },
        );
        let trace = tr.take();
        let text = trace.to_json();
        assert_eq!(Trace::from_json(&text).unwrap(), trace);
    }
}
