//! Chrome-trace JSON export, loadable in [Perfetto](https://ui.perfetto.dev)
//! (or `chrome://tracing`).
//!
//! Layout: one Perfetto *process* per simulated node, a single "protocol"
//! track each. Waits become complete slices (`ph:"X"`): view-acquire waits,
//! view holds, barrier waits, lock waits, and application `with_view`
//! bracket spans. Page faults, diff requests, drops and retransmissions
//! become instant events. Each view-grant → acquire-completion pair is tied
//! together with a flow arrow (`ph:"s"` / `ph:"f"`) from the home node's
//! grant slice to the requester's acquire slice. Timestamps are **virtual**
//! microseconds — wall time never appears, so exports are deterministic.

use std::collections::HashMap;

use crate::event::{EventKind, NodeId};
use crate::json::{self, Value};
use crate::tracer::Trace;

/// Convert nanoseconds of virtual time to the microsecond floats Chrome
/// trace events use. Sub-microsecond precision is preserved as fractions.
fn us(t_ns: u64) -> Value {
    Value::Num(t_ns as f64 / 1000.0)
}

fn mode(write: bool) -> &'static str {
    if write {
        "W"
    } else {
        "R"
    }
}

struct Emitter {
    out: Vec<Value>,
}

impl Emitter {
    fn meta(&mut self, pid: NodeId, name: &str, value: Value) {
        self.out.push(json::obj(vec![
            ("ph", json::str("M")),
            ("pid", json::num(pid as u64)),
            ("tid", json::num(0)),
            ("name", json::str(name)),
            ("args", json::obj(vec![("name", value)])),
        ]));
    }

    fn slice(
        &mut self,
        pid: NodeId,
        cat: &str,
        name: &str,
        start_ns: u64,
        end_ns: u64,
        args: Vec<(&str, Value)>,
    ) {
        self.out.push(json::obj(vec![
            ("ph", json::str("X")),
            ("pid", json::num(pid as u64)),
            ("tid", json::num(0)),
            ("cat", json::str(cat)),
            ("name", json::str(name)),
            ("ts", us(start_ns)),
            ("dur", us(end_ns.saturating_sub(start_ns))),
            ("args", json::obj(args)),
        ]));
    }

    fn instant(&mut self, pid: NodeId, cat: &str, name: &str, t_ns: u64, args: Vec<(&str, Value)>) {
        self.out.push(json::obj(vec![
            ("ph", json::str("i")),
            ("s", json::str("t")),
            ("pid", json::num(pid as u64)),
            ("tid", json::num(0)),
            ("cat", json::str(cat)),
            ("name", json::str(name)),
            ("ts", us(t_ns)),
            ("args", json::obj(args)),
        ]));
    }

    fn flow(&mut self, ph: &str, pid: NodeId, id: u64, t_ns: u64) {
        let mut pairs = vec![
            ("ph", json::str(ph)),
            ("pid", json::num(pid as u64)),
            ("tid", json::num(0)),
            ("cat", json::str("grant-flow")),
            ("name", json::str("view grant")),
            ("id", json::num(id)),
            ("ts", us(t_ns)),
        ];
        if ph == "f" {
            // Bind the arrow head to the enclosing (acquire) slice.
            pairs.push(("bp", json::str("e")));
        }
        self.out.push(json::obj(pairs));
    }
}

/// Render a trace as a Chrome-trace JSON document.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut em = Emitter { out: Vec::new() };

    for node in 0..trace.node_count() {
        em.meta(node, "process_name", json::str(&format!("node {node}")));
        em.meta(node, "process_sort_index", json::num(node as u64));
        em.meta(node, "thread_name", json::str("protocol"));
    }

    // Open-interval state, keyed so that pops always match the most recent
    // push for that key on that node. Maps are only written/popped, never
    // iterated, so emission order stays deterministic (scan order).
    // (start time, grant version, grant bytes) of an open view hold.
    type Hold = (u64, u64, u64);
    let mut acquires: HashMap<(NodeId, u64, bool), Vec<u64>> = HashMap::new();
    let mut holds: HashMap<(NodeId, u64, bool), Vec<Hold>> = HashMap::new();
    let mut barriers: HashMap<(NodeId, u64), Vec<(u64, u64)>> = HashMap::new();
    let mut locks: HashMap<(NodeId, u64), Vec<u64>> = HashMap::new();
    let mut spans: HashMap<(NodeId, String), Vec<u64>> = HashMap::new();
    // Grants not yet matched to the requester's acquire completion:
    // (view, version, requester) → flow ids, in grant order.
    let mut pending_grants: HashMap<(u64, u64, NodeId), Vec<u64>> = HashMap::new();
    let mut next_flow_id: u64 = 1;

    for ev in &trace.events {
        let n = ev.node;
        match &ev.kind {
            EventKind::AcquireStart { view, write } => {
                acquires.entry((n, *view, *write)).or_default().push(ev.t);
            }
            EventKind::AcquireEnd {
                view,
                write,
                version,
                bytes,
            } => {
                if let Some(start) = acquires.entry((n, *view, *write)).or_default().pop() {
                    em.slice(
                        n,
                        "acquire",
                        &format!("acquire v{view} ({})", mode(*write)),
                        start,
                        ev.t,
                        vec![
                            ("view", json::num(*view)),
                            ("version", json::num(*version)),
                            ("grant_bytes", json::num(*bytes)),
                        ],
                    );
                    if let Some(flow_id) = pending_grants
                        .get_mut(&(*view, *version, n))
                        .and_then(|ids| (!ids.is_empty()).then(|| ids.remove(0)))
                    {
                        em.flow("f", n, flow_id, ev.t);
                    }
                }
                holds
                    .entry((n, *view, *write))
                    .or_default()
                    .push((ev.t, *version, *bytes));
            }
            EventKind::ReleaseDone { view, write } => {
                if let Some((start, version, bytes)) =
                    holds.entry((n, *view, *write)).or_default().pop()
                {
                    em.slice(
                        n,
                        "view",
                        &format!("hold v{view} ({})", mode(*write)),
                        start,
                        ev.t,
                        vec![
                            ("view", json::num(*view)),
                            ("version", json::num(version)),
                            ("grant_bytes", json::num(bytes)),
                        ],
                    );
                }
            }
            EventKind::ViewGrantSent {
                view,
                to,
                version,
                bytes,
            } => {
                let flow_id = next_flow_id;
                next_flow_id += 1;
                pending_grants
                    .entry((*view, *version, *to))
                    .or_default()
                    .push(flow_id);
                // A short slice so the flow arrow has a visible anchor at
                // the home node; virtual grant processing is instantaneous.
                em.slice(
                    n,
                    "grant",
                    &format!("grant v{view}→{to}"),
                    ev.t,
                    ev.t + 1_000,
                    vec![
                        ("view", json::num(*view)),
                        ("version", json::num(*version)),
                        ("bytes", json::num(*bytes)),
                    ],
                );
                em.flow("s", n, flow_id, ev.t);
            }
            EventKind::BarrierEnter { id, epoch } => {
                barriers.entry((n, *id)).or_default().push((ev.t, *epoch));
            }
            EventKind::BarrierExit { id, epoch, notices } => {
                if let Some((start, _)) = barriers.entry((n, *id)).or_default().pop() {
                    em.slice(
                        n,
                        "barrier",
                        &format!("barrier {id}"),
                        start,
                        ev.t,
                        vec![
                            ("epoch", json::num(*epoch)),
                            ("notices", json::num(*notices)),
                        ],
                    );
                }
            }
            EventKind::LockAcquireStart { lock } => {
                locks.entry((n, *lock)).or_default().push(ev.t);
            }
            EventKind::LockAcquireEnd { lock } => {
                if let Some(start) = locks.entry((n, *lock)).or_default().pop() {
                    em.slice(
                        n,
                        "lock",
                        &format!("lock {lock}"),
                        start,
                        ev.t,
                        vec![("lock", json::num(*lock))],
                    );
                }
            }
            EventKind::SpanBegin { name } => {
                spans.entry((n, name.clone())).or_default().push(ev.t);
            }
            EventKind::SpanEnd { name } => {
                if let Some(start) = spans.entry((n, name.clone())).or_default().pop() {
                    em.slice(n, "app", name, start, ev.t, vec![]);
                }
            }
            EventKind::PageFault { page, write } => {
                em.instant(
                    n,
                    "fault",
                    &format!("fault p{page} ({})", mode(*write)),
                    ev.t,
                    vec![("page", json::num(*page))],
                );
            }
            EventKind::DiffRequest { page, to } => {
                em.instant(
                    n,
                    "diff",
                    &format!("diff req p{page}"),
                    ev.t,
                    vec![("page", json::num(*page)), ("to", json::num(*to as u64))],
                );
            }
            EventKind::NetDrop {
                dst,
                wire_bytes,
                overflow,
            } => {
                em.instant(
                    n,
                    "net",
                    if *overflow { "drop (overflow)" } else { "drop" },
                    ev.t,
                    vec![
                        ("dst", json::num(*dst as u64)),
                        ("wire_bytes", json::num(*wire_bytes)),
                    ],
                );
            }
            EventKind::Rexmit { dst, tag } => {
                em.instant(
                    n,
                    "net",
                    "rexmit",
                    ev.t,
                    vec![("dst", json::num(*dst as u64)), ("tag", json::num(*tag))],
                );
            }
            EventKind::RaceDetected {
                page,
                other,
                start,
                end,
                write,
            } => {
                em.instant(
                    n,
                    "racecheck",
                    &format!("race p{page} vs n{other} ({})", mode(*write)),
                    ev.t,
                    vec![
                        ("page", json::num(*page)),
                        ("other", json::num(*other as u64)),
                        ("start", json::num(*start)),
                        ("end", json::num(*end)),
                    ],
                );
            }
            EventKind::NodeCrash { pages } => {
                em.instant(
                    n,
                    "fault",
                    &format!("crash ({pages} pages lost)"),
                    ev.t,
                    vec![("pages", json::num(*pages))],
                );
            }
            EventKind::ServeRequest {
                shard,
                write,
                latency_ns,
            } => {
                em.instant(
                    n,
                    "serve",
                    &format!("{} s{shard}", if *write { "put" } else { "get" }),
                    ev.t,
                    vec![
                        ("shard", json::num(*shard)),
                        ("latency_ns", json::num(*latency_ns)),
                    ],
                );
            }
            EventKind::DisciplineViolation {
                rule,
                page,
                start,
                end,
                write,
            } => {
                em.instant(
                    n,
                    "racecheck",
                    &format!("{rule} p{page} ({})", mode(*write)),
                    ev.t,
                    vec![
                        ("rule", json::str(rule)),
                        ("page", json::num(*page)),
                        ("start", json::num(*start)),
                        ("end", json::num(*end)),
                    ],
                );
            }
            // High-volume or structural events are available in the raw
            // trace JSON; they would only clutter the timeline here.
            EventKind::ProcStart
            | EventKind::ProcExit
            | EventKind::NetSend { .. }
            | EventKind::NetRecv { .. }
            | EventKind::DiffApply { .. }
            | EventKind::WriteNoticeApply { .. }
            | EventKind::LockRelease { .. } => {}
        }
    }

    json::obj(vec![
        ("displayTimeUnit", json::str("ns")),
        ("traceEvents", Value::Arr(em.out)),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn e(t: u64, node: NodeId, kind: EventKind) -> Event {
        Event { t, node, kind }
    }

    #[test]
    fn exports_spans_flows_and_metadata() {
        let trace = Trace {
            events: vec![
                e(
                    1_000,
                    1,
                    EventKind::AcquireStart {
                        view: 3,
                        write: true,
                    },
                ),
                e(
                    2_000,
                    0,
                    EventKind::ViewGrantSent {
                        view: 3,
                        to: 1,
                        version: 7,
                        bytes: 128,
                    },
                ),
                e(
                    5_000,
                    1,
                    EventKind::AcquireEnd {
                        view: 3,
                        write: true,
                        version: 7,
                        bytes: 128,
                    },
                ),
                e(
                    9_000,
                    1,
                    EventKind::ReleaseDone {
                        view: 3,
                        write: true,
                    },
                ),
            ],
            evicted: 0,
        };
        let text = to_chrome_json(&trace);
        let doc = Value::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();

        let phs: Vec<&str> = events
            .iter()
            .map(|ev| ev.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(phs.contains(&"M"), "process metadata present");
        assert!(
            phs.contains(&"s") && phs.contains(&"f"),
            "flow pair present"
        );

        let slices: Vec<&Value> = events
            .iter()
            .filter(|ev| ev.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        let names: Vec<&str> = slices
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"acquire v3 (W)"));
        assert!(names.contains(&"hold v3 (W)"));
        assert!(names.contains(&"grant v3→1"));

        // Acquire wait: 1µs → 5µs on node 1.
        let acq = slices
            .iter()
            .find(|s| s.get("name").unwrap().as_str() == Some("acquire v3 (W)"))
            .unwrap();
        assert_eq!(acq.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(acq.get("dur").unwrap().as_f64(), Some(4.0));
        assert_eq!(acq.get("pid").unwrap().as_u64(), Some(1));

        // Flow start and finish share an id.
        let start = events
            .iter()
            .find(|ev| ev.get("ph").unwrap().as_str() == Some("s"))
            .unwrap();
        let finish = events
            .iter()
            .find(|ev| ev.get("ph").unwrap().as_str() == Some("f"))
            .unwrap();
        assert_eq!(
            start.get("id").unwrap().as_u64(),
            finish.get("id").unwrap().as_u64()
        );
        assert_eq!(finish.get("bp").unwrap().as_str(), Some("e"));
    }

    #[test]
    fn export_is_valid_json_for_empty_trace() {
        let doc = Value::parse(&to_chrome_json(&Trace::default())).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
