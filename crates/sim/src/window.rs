//! The conservative-lookahead parallel kernel.
//!
//! ## Why the sequential artifacts survive parallel execution
//!
//! The network model exports a lookahead bound `L` ([`crate::NetModel::lookahead`]):
//! every cross-node datagram sent at `t` arrives at or after `t + L`. The
//! coordinator therefore pops all pending events in `[T, T + L)` — one
//! *window* — and buckets them by node group: no event executed inside the
//! window can schedule a cross-group event that also falls inside it, so the
//! groups' slices are causally independent and can run on concurrent
//! threads (Chandy–Misra–Bryant).
//!
//! Independence of *scheduling* is not independence of *artifacts*: the
//! trace ring records in execution order, causal-record ids are execution
//! indices, and the network model's RNG and link-occupancy state must be
//! touched in exact global send order. Deferred windows therefore execute
//! against group-local state only and append every side effect to a
//! per-group [`Action`] log ([`GroupCell`], installed as the thread-local
//! trace/causal sink on the group's threads). After the window, the
//! coordinator *commits*: it replays the logs in exact global `(time, seq)`
//! order — the order the sequential kernel would have executed — routing
//! sends through the shared model, appending traces, and assigning real
//! causal ids (remapping the provisional ids groups handed out). A window
//! whose events all land in one group skips the machinery entirely: the
//! group borrows the shared [`GlobalState`] and runs the plain sequential
//! path *inline* (zero logging, zero divergence).
//!
//! Two facts make in-window execution exact rather than optimistic:
//!
//! * Only loopback (`src == dst`) sends can deliver inside the window, and
//!   [`crate::NetModel::loopback_latency`] guarantees they are exact,
//!   lossless, and touch no shared routing state — so a group predicts the
//!   delivery locally and the commit re-routes it (for statistics and seq
//!   assignment) and asserts the prediction.
//! * A packet's causal stamp is consumed exactly once, at its delivery
//!   instant. Loopback stamps are consumed in the same window (same group,
//!   remappable); stamps that cross windows are finalized by the commit
//!   before the packet reaches the future heap.

use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Instant;

use vopp_trace::{
    CausalProfiler, CausalSink, CtxKind, EventKind, NodeId, OpSpan, RecordSink, Tracer, NO_CTX,
};

use crate::kernel::{Event, GlobalState, Mode, Phase, QEntry, Shared, WindowStats};
use crate::net::{NetModel, RouteRequest};
use crate::packet::{DeliveryClass, Packet};
use crate::sync::{Mutex, MutexGuard};
use crate::time::{SimDuration, SimTime};
use crate::ProcId;

/// Smallest lookahead worth parallelizing over. Below this, windows hold so
/// few events that coordination dominates; the kernel falls back to
/// sequential execution (with a one-time notice). The zero-latency what-if
/// network (1 ns) lands here by design.
pub const MIN_PARALLEL_LOOKAHEAD: SimDuration = SimDuration::from_micros(1);

/// Marks a provisional causal-record id handed out by a group during a
/// deferred window; the low bits are the group-local ordinal. Real ids are
/// execution indices and never reach this bit.
const PROV_BIT: u64 = 1 << 63;

/// The resolved parallel configuration for one run.
pub(crate) struct ParPlan {
    pub(crate) groups: usize,
    pub(crate) lookahead: SimDuration,
    pub(crate) loopback: SimDuration,
}

fn notice(reason: &str) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "[vopp-sim] parallel kernel requested but running sequentially: {reason} \
             (printed once per process)"
        );
    });
}

/// Decide whether a run can use the parallel kernel, and with how many
/// groups. `None` means sequential.
pub(crate) fn decide_plan(workers: usize, nprocs: usize, net: &dyn NetModel) -> Option<ParPlan> {
    if workers <= 1 || nprocs < 2 {
        return None;
    }
    let Some(lookahead) = net.lookahead() else {
        notice("the network model exports no lookahead bound");
        return None;
    };
    let Some(loopback) = net.loopback_latency() else {
        notice("the network model exports no exact loopback latency");
        return None;
    };
    if lookahead < MIN_PARALLEL_LOOKAHEAD {
        notice("the lookahead bound is below the 1 us floor");
        return None;
    }
    Some(ParPlan {
        groups: workers.min(nprocs),
        lookahead,
        loopback,
    })
}

/// An event variant a group may schedule for later than its window; the
/// commit assigns the global seq and requeues it.
#[derive(Debug)]
pub(crate) enum PushedEv {
    Resume(ProcId),
    Timer { dst: ProcId, token: u64 },
}

/// One side effect captured during a deferred window, in group execution
/// order. Replayed by the commit in global order.
pub(crate) enum Action {
    /// Execution of one popped event starts (delimits log segments; `at` is
    /// cross-checked against the replay order).
    Begin { at: SimTime },
    /// A trace-ring record.
    Trace {
        t: u64,
        node: NodeId,
        kind: EventKind,
    },
    /// A causal wake record (provisional id = next ordinal).
    Wake {
        node: usize,
        prev_ns: u64,
        t_ns: u64,
        kind: CtxKind,
        cause: u64,
    },
    /// A causal service-dispatch record (provisional id = next ordinal).
    Svc { node: usize, t_ns: u64, cause: u64 },
    /// A causal op-span annotation.
    Op { node: usize, span: OpSpan },
    /// An event scheduled via `push_event` (resumes and timers; deliveries
    /// are reconstructed from `Send`).
    Push { at: SimTime, ev: PushedEv },
    /// A delivery event was executed: the destination backlog shrinks.
    DeliverPop { dst: ProcId, wire_bytes: usize },
    /// A datagram submitted to the network; routed for real at commit.
    Send {
        now: SimTime,
        dst: ProcId,
        pkt: Packet,
    },
}

impl Action {
    fn name(&self) -> &'static str {
        match self {
            Action::Begin { .. } => "Begin",
            Action::Trace { .. } => "Trace",
            Action::Wake { .. } => "Wake",
            Action::Svc { .. } => "Svc",
            Action::Op { .. } => "Op",
            Action::Push { .. } => "Push",
            Action::DeliverPop { .. } => "DeliverPop",
            Action::Send { .. } => "Send",
        }
    }
}

/// Per-group side-effect capture, shared between the group's scheduler and
/// the thread-local sinks installed on the group's threads. Outside deferred
/// windows the sinks decline every record, so inline windows and sequential
/// runs hit the shared tracer/profiler directly.
pub(crate) struct GroupCell {
    deferred: AtomicBool,
    log: Mutex<Vec<Action>>,
    /// Next provisional causal ordinal (== Wake/Svc actions logged so far).
    prof_ord: AtomicU64,
    /// Provisional id of the group's currently-executing context.
    prof_cur: AtomicU64,
}

impl GroupCell {
    pub(crate) fn new() -> GroupCell {
        GroupCell {
            deferred: AtomicBool::new(false),
            log: Mutex::new(Vec::new()),
            prof_ord: AtomicU64::new(0),
            prof_cur: AtomicU64::new(NO_CTX),
        }
    }

    pub(crate) fn push(&self, a: Action) {
        self.log.lock().push(a);
    }

    fn begin_deferred(&self) {
        debug_assert!(self.log.lock().is_empty(), "stale group log");
        self.prof_ord.store(0, Ordering::Relaxed);
        self.prof_cur.store(NO_CTX, Ordering::Relaxed);
        self.deferred.store(true, Ordering::Relaxed);
    }

    /// Leave deferred mode, returning the captured log and the number of
    /// provisional causal ids handed out.
    fn end_deferred(&self) -> (Vec<Action>, u64) {
        self.deferred.store(false, Ordering::Relaxed);
        (
            std::mem::take(&mut *self.log.lock()),
            self.prof_ord.load(Ordering::Relaxed),
        )
    }

    #[inline]
    fn capturing(&self) -> bool {
        self.deferred.load(Ordering::Relaxed)
    }
}

impl RecordSink for GroupCell {
    fn record(&self, t: u64, node: NodeId, kind: &EventKind) -> bool {
        if !self.capturing() {
            return false;
        }
        self.push(Action::Trace {
            t,
            node,
            kind: kind.clone(),
        });
        true
    }
}

impl CausalSink for GroupCell {
    fn record_wake(
        &self,
        node: usize,
        prev_ns: u64,
        t_ns: u64,
        kind: CtxKind,
        pkt_cause: u64,
    ) -> Option<u64> {
        if !self.capturing() {
            return None;
        }
        let ord = self.prof_ord.fetch_add(1, Ordering::Relaxed);
        let id = PROV_BIT | ord;
        self.prof_cur.store(id, Ordering::Relaxed);
        self.push(Action::Wake {
            node,
            prev_ns,
            t_ns,
            kind,
            cause: pkt_cause,
        });
        Some(id)
    }

    fn record_svc(&self, node: usize, t_ns: u64, pkt_cause: u64) -> Option<u64> {
        if !self.capturing() {
            return None;
        }
        let ord = self.prof_ord.fetch_add(1, Ordering::Relaxed);
        let id = PROV_BIT | ord;
        self.prof_cur.store(id, Ordering::Relaxed);
        self.push(Action::Svc {
            node,
            t_ns,
            cause: pkt_cause,
        });
        Some(id)
    }

    fn record_op(&self, node: usize, span: OpSpan) -> bool {
        if !self.capturing() {
            return false;
        }
        self.push(Action::Op { node, span });
        true
    }

    fn cur_ctx(&self) -> Option<u64> {
        if !self.capturing() {
            return None;
        }
        // Any context executing inside a deferred window was recorded inside
        // it (processes park between windows), so this never reads the
        // window-initial NO_CTX from a live context.
        Some(self.prof_cur.load(Ordering::Relaxed))
    }
}

/// Resolve a possibly-provisional causal id against the group's replay map.
#[inline]
fn map_cause(c: u64, map: &[u64]) -> u64 {
    if c == NO_CTX || c & PROV_BIT == 0 {
        c
    } else {
        map[(c ^ PROV_BIT) as usize]
    }
}

/// A replay-heap entry: one event execution in global order, owned by group
/// `gi` whose log supplies its side effects.
struct ReplaySeed {
    at: SimTime,
    seq: u64,
    gi: usize,
}

impl PartialEq for ReplaySeed {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ReplaySeed {}
impl PartialOrd for ReplaySeed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReplaySeed {
    // Reversed for min-heap behaviour, like `QEntry`.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The parallel run's main loop, on the thread that called `Sim::run`.
/// Spawns one runner per group, carves windows off the future heap,
/// dispatches them (inline when one group is active, deferred + commit when
/// several are), and detects termination, deadlock and panics exactly like
/// the sequential controller. Returns a service-handler panic payload, if
/// any, after all runners have been joined.
pub(crate) fn coordinate<'scope, 'env>(
    shared: &'scope Shared,
    scope: &'scope std::thread::Scope<'scope, 'env>,
    plan: &ParPlan,
    stats: &mut WindowStats,
) -> Option<Box<dyn std::any::Any + Send>> {
    let ng = shared.groups.len();
    let mut global = shared.groups[0]
        .sched
        .lock()
        .global
        .take()
        .expect("parked global state");
    let profiler = shared.groups[0].sched.lock().profiler.clone();
    let runners: Vec<_> = (0..ng)
        .map(|gi| scope.spawn(move || runner(shared, gi)))
        .collect();

    let mut buckets: Vec<Vec<QEntry>> = (0..ng).map(|_| Vec::new()).collect();
    let mut seeds: Vec<ReplaySeed> = Vec::new();
    let mut logs: Vec<Vec<Action>> = (0..ng).map(|_| Vec::new()).collect();
    let mut ords: Vec<u64> = vec![0; ng];
    let mut active: Vec<usize> = Vec::new();

    let mut payload = loop {
        // Between windows every process is parked and every group queue is
        // empty, so group state is quiescent and consistent to read.
        let mut live = 0usize;
        let mut panicked = false;
        for grp in &shared.groups {
            let s = grp.sched.lock();
            live += s.live;
            panicked |= s.panicked;
        }
        // Svc-panic first: a service-handler panic also marks the group
        // `panicked`, and the payload must win over the generic shutdown.
        if let Some(p) = shared.win.svc_panic.lock().take() {
            shared.shutdown_all();
            break Some(p);
        }
        if panicked {
            shared.shutdown_all();
            break None;
        }
        if live == 0 {
            break None;
        }
        let Some(head) = global.future.peek() else {
            // Deadlock: release the blocked process threads; `Sim::run`
            // turns the surviving shutdown flag into the panic.
            shared.shutdown_all();
            break None;
        };
        let t_end = head.at + plan.lookahead;
        active.clear();
        seeds.clear();
        while let Some(h) = global.future.peek() {
            if h.at >= t_end {
                break;
            }
            let e = global.future.pop().expect("peeked entry");
            let gi = shared.group_ix(e.ev.target());
            if buckets[gi].is_empty() {
                active.push(gi);
            }
            seeds.push(ReplaySeed {
                at: e.at,
                seq: e.seq,
                gi,
            });
            stats.window_events += 1;
            buckets[gi].push(e);
        }
        stats.windows += 1;

        if active.len() == 1 {
            // Single-group window: lend it the global state and let it run
            // the plain sequential path, bounded by `t_end`.
            stats.inline_windows += 1;
            let gi = active[0];
            *shared.win.pending.lock() = 1;
            {
                let mut s = shared.groups[gi].sched.lock();
                s.global = Some(global);
                s.open_window(Mode::Inline, t_end, &mut buckets[gi]);
                shared.groups[gi].ctl_cv.notify_all();
            }
            let t0 = Instant::now();
            wait_windows(shared);
            stats.exec_ns += t0.elapsed().as_nanos() as u64;
            let mut s = shared.groups[gi].sched.lock();
            global = s.global.take().expect("inline window returns global state");
            s.close_window();
        } else {
            stats.parallel_windows += 1;
            // Stale counts from a previous window would trip the commit's
            // bookkeeping asserts for groups inactive in this one.
            ords.fill(0);
            *shared.win.pending.lock() = active.len();
            for &gi in &active {
                let mut s = shared.groups[gi].sched.lock();
                shared.groups[gi].cell.begin_deferred();
                s.open_window(Mode::Deferred, t_end, &mut buckets[gi]);
                shared.groups[gi].ctl_cv.notify_all();
            }
            let t0 = Instant::now();
            wait_windows(shared);
            stats.exec_ns += t0.elapsed().as_nanos() as u64;
            let mut any_panic = false;
            for &gi in &active {
                let mut s = shared.groups[gi].sched.lock();
                any_panic |= s.panicked;
                s.close_window();
                drop(s);
                let (log, ord) = shared.groups[gi].cell.end_deferred();
                logs[gi] = log;
                ords[gi] = ord;
            }
            if any_panic {
                shared.shutdown_all();
                break None;
            }
            if let Some(p) = shared.win.svc_panic.lock().take() {
                shared.shutdown_all();
                break Some(p);
            }
            let t1 = Instant::now();
            let r = catch_unwind(AssertUnwindSafe(|| {
                commit_window(
                    &mut global,
                    t_end,
                    &mut seeds,
                    &mut logs,
                    &ords,
                    &shared.tracer,
                    &profiler,
                    plan.loopback,
                    &shared.group_of,
                )
            }));
            stats.merge_ns += t1.elapsed().as_nanos() as u64;
            if let Err(e) = r {
                // A commit bug must not strand parked process threads.
                shared.shutdown_all();
                break Some(e);
            }
        }
    };

    for grp in &shared.groups {
        let mut s = grp.sched.lock();
        s.halt = true;
        drop(s);
        grp.ctl_cv.notify_all();
    }
    for r in runners {
        if let Err(e) = r.join() {
            if payload.is_none() {
                payload = Some(e);
            }
        }
    }
    shared.groups[0].sched.lock().global = Some(global);
    payload
}

/// Park until every dispatched group finishes its window.
fn wait_windows(shared: &Shared) {
    let mut pending = shared.win.pending.lock();
    while *pending > 0 {
        shared.win.done_cv.wait(&mut pending);
    }
}

/// A group's event-loop thread in parallel mode: waits for a window, runs it
/// exactly like the sequential controller (restricted to the group and
/// bounded by `t_end`), and reports completion.
fn runner(shared: &Shared, gi: usize) {
    let grp = &shared.groups[gi];
    let cell = grp.cell.clone();
    vopp_trace::set_thread_record_sink(Some(cell.clone()));
    vopp_trace::set_thread_causal_sink(Some(cell));
    loop {
        let mut s = grp.sched.lock();
        while !s.window_open && !s.halt {
            grp.ctl_cv.wait(&mut s);
        }
        if s.halt {
            return;
        }
        run_window(shared, gi, &mut s);
        debug_assert!(
            s.window_drained() || s.panicked || s.shutdown,
            "window ended with events still queued"
        );
        s.window_open = false;
        drop(s);
        let mut pending = shared.win.pending.lock();
        *pending -= 1;
        if *pending == 0 {
            shared.win.done_cv.notify_all();
        }
    }
}

/// One window on one group: the sequential controller's event loop bounded
/// by the window (`pop_due`). Service-handler panics are stashed for the
/// coordinator instead of unwinding the runner, so the completion barrier
/// still settles.
fn run_window<'a>(shared: &'a Shared, gi: usize, s: &mut MutexGuard<'a, crate::kernel::Sched>) {
    loop {
        if s.panicked || s.shutdown {
            return;
        }
        let Some(entry) = s.pop_due() else {
            return;
        };
        debug_assert!(entry.at >= s.now, "event queue went backwards");
        s.now = entry.at;
        s.note_begin(&entry);
        match entry.ev {
            Event::Resume(p) => match s.pi(p).phase {
                Phase::Startup | Phase::BlockedResume => {
                    shared.wake_and_park(gi, s, p, entry.at, NO_CTX);
                }
                Phase::Finished => {}
                ref ph => unreachable!("resume for proc {p} in phase {ph:?}"),
            },
            Event::Deliver { dst, mut pkt } => {
                s.note_deliver_pop(dst, pkt.wire_bytes);
                pkt.arrived = entry.at;
                if let Some(tr) = &s.tracer {
                    tr.record(
                        entry.at.0,
                        dst,
                        EventKind::NetRecv {
                            src: pkt.src,
                            wire_bytes: pkt.wire_bytes as u64,
                            tag: pkt.tag,
                        },
                    );
                }
                match pkt.class {
                    DeliveryClass::Svc => {
                        if let Err(e) = shared.dispatch_svc(dst, s, dst, pkt, entry.at) {
                            // Grabbing every other group's lock to shut down
                            // from here could deadlock against a runner doing
                            // the same; park the payload and let the
                            // coordinator (which holds no locks) clean up.
                            let mut slot = shared.win.svc_panic.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            drop(slot);
                            s.panicked = true;
                            return;
                        }
                    }
                    DeliveryClass::App => {
                        let cause = pkt.cause;
                        s.pi_mut(dst).mailbox.push_back(pkt);
                        if matches!(s.pi(dst).phase, Phase::WaitRecv { .. }) {
                            shared.wake_and_park(gi, s, dst, entry.at, cause);
                        }
                    }
                }
            }
            Event::Timer { dst, token } => {
                if s.pi(dst).phase
                    == (Phase::WaitRecv {
                        deadline: Some(token),
                    })
                {
                    s.pi_mut(dst).timed_out = true;
                    shared.wake_and_park(gi, s, dst, entry.at, NO_CTX);
                }
                // Otherwise the timer is stale (the wait already ended).
            }
        }
    }
}

/// Replay the groups' action logs in exact global `(time, seq)` order,
/// applying every side effect to the shared state precisely as the
/// sequential kernel would have: traces append to the ring, causal records
/// get their real (execution-index) ids, sends route through the network
/// model (consuming its RNG in global send order), and out-of-window events
/// are assigned global seqs and pushed to the future heap.
#[allow(clippy::too_many_arguments)]
fn commit_window(
    global: &mut GlobalState,
    t_end: SimTime,
    seeds: &mut Vec<ReplaySeed>,
    logs: &mut [Vec<Action>],
    ords: &[u64],
    tracer: &Option<Arc<Tracer>>,
    profiler: &Option<Arc<CausalProfiler>>,
    loopback: SimDuration,
    group_of: &[usize],
) {
    let ng = logs.len();
    let mut heap: BinaryHeap<ReplaySeed> = seeds.drain(..).collect();
    let mut pos = vec![0usize; ng];
    // Per group: provisional ordinal -> real causal id, grown in replay
    // order (which is each group's execution order).
    let mut maps: Vec<Vec<u64>> = (0..ng).map(|_| Vec::new()).collect();

    while let Some(seed) = heap.pop() {
        let gi = seed.gi;
        match logs[gi].get(pos[gi]) {
            Some(Action::Begin { at }) => {
                debug_assert_eq!(
                    *at, seed.at,
                    "group {gi} executed an event out of replay order"
                );
                pos[gi] += 1;
            }
            other => panic!(
                "parallel commit misaligned for group {gi}: expected Begin, found {:?}",
                other.map(Action::name)
            ),
        }
        while pos[gi] < logs[gi].len() && !matches!(logs[gi][pos[gi]], Action::Begin { .. }) {
            // Tombstone the slot; each action is consumed exactly once.
            let a = std::mem::replace(&mut logs[gi][pos[gi]], Action::Begin { at: SimTime::ZERO });
            pos[gi] += 1;
            match a {
                Action::Begin { .. } => unreachable!(),
                Action::Trace { t, node, kind } => {
                    if let Some(tr) = tracer {
                        tr.record(t, node, kind);
                    }
                }
                Action::Wake {
                    node,
                    prev_ns,
                    t_ns,
                    kind,
                    cause,
                } => {
                    let prof = profiler.as_ref().expect("wake logged without a profiler");
                    let id =
                        prof.record_wake(node, prev_ns, t_ns, kind, map_cause(cause, &maps[gi]));
                    maps[gi].push(id);
                }
                Action::Svc { node, t_ns, cause } => {
                    let prof = profiler.as_ref().expect("svc logged without a profiler");
                    let id = prof.record_svc(node, t_ns, map_cause(cause, &maps[gi]));
                    maps[gi].push(id);
                }
                Action::Op { node, span } => {
                    profiler
                        .as_ref()
                        .expect("op span logged without a profiler")
                        .record_op(node, span);
                }
                Action::DeliverPop { dst, wire_bytes } => {
                    global.pending_deliver[dst] -= 1;
                    global.pending_bytes[dst] -= wire_bytes;
                }
                Action::Push { at, ev } => {
                    let ev = match ev {
                        PushedEv::Resume(p) => Event::Resume(p),
                        PushedEv::Timer { dst, token } => Event::Timer { dst, token },
                    };
                    let seq = global.seq;
                    global.seq += 1;
                    if at < t_end {
                        // The group already executed it locally; thread it
                        // through the replay so its log segment is consumed.
                        debug_assert_eq!(group_of[ev.target()], gi);
                        heap.push(ReplaySeed { at, seq, gi });
                    } else {
                        global.future.push(QEntry {
                            at,
                            tier: 0,
                            seq,
                            ev,
                        });
                    }
                }
                Action::Send { now, dst, mut pkt } => {
                    let req = RouteRequest {
                        now,
                        src: pkt.src,
                        dst,
                        wire_bytes: pkt.wire_bytes,
                        pending_at_dst: global.pending_deliver[dst],
                        pending_bytes_at_dst: global.pending_bytes[dst],
                    };
                    if let Some(at) = global.net.route(req) {
                        let at = at.max(now);
                        global.pending_deliver[dst] += 1;
                        global.pending_bytes[dst] += pkt.wire_bytes;
                        let seq = global.seq;
                        global.seq += 1;
                        if at < t_end {
                            // Only loopbacks can deliver inside a window (the
                            // lookahead bounds everything else); the group
                            // already delivered it locally.
                            debug_assert_eq!(pkt.src, dst, "cross-node delivery inside a window");
                            debug_assert_eq!(
                                at,
                                now + loopback,
                                "loopback delivery not exactly loopback_latency away"
                            );
                            debug_assert_eq!(group_of[dst], gi);
                            heap.push(ReplaySeed { at, seq, gi });
                        } else {
                            // Crossing a window boundary: finalize the causal
                            // stamp (provisional ids never leave their window).
                            pkt.cause = map_cause(pkt.cause, &maps[gi]);
                            global.future.push(QEntry {
                                at,
                                tier: 0,
                                seq,
                                ev: Event::Deliver { dst, pkt },
                            });
                        }
                    }
                }
            }
        }
    }

    for gi in 0..ng {
        assert_eq!(
            pos[gi],
            logs[gi].len(),
            "group {gi} logged actions the replay never consumed"
        );
        debug_assert_eq!(
            maps[gi].len() as u64,
            ords[gi],
            "group {gi} provisional-id count mismatch"
        );
        logs[gi].clear();
    }
}
