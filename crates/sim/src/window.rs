//! The conservative-lookahead parallel kernel.
//!
//! ## Why the sequential artifacts survive parallel execution
//!
//! The network model exports a lookahead bound `L` ([`crate::NetModel::lookahead`]):
//! every cross-node datagram sent at `t` arrives at or after `t + L`. The
//! coordinator therefore pops all pending events in `[T, T + L)` — one
//! *window* — and buckets them by node group: no event executed inside the
//! window can schedule a cross-group event that also falls inside it, so the
//! groups' slices are causally independent and can run on concurrent
//! threads (Chandy–Misra–Bryant).
//!
//! Independence of *scheduling* is not independence of *artifacts*: the
//! trace ring records in execution order, causal-record ids are execution
//! indices, and the network model's RNG and link-occupancy state must be
//! touched in exact global send order. Deferred windows therefore execute
//! against group-local state only and capture every side effect into two
//! per-group logs ([`GroupCell`], installed as the thread-local trace/causal
//! sink on the group's threads): an *fx* log of order-sensitive effects
//! (sends, event pushes, backlog pops, delimited by [`Action::Begin`]
//! markers) and a *record* log of pure observations (trace events, causal
//! wakes/spans). After the window, the coordinator *commits*: it replays the
//! fx logs in exact global `(time, seq)` order — the order the sequential
//! kernel would have executed — routing sends through the shared model, and
//! bulk-appends the captured records in runs between the order-sensitive
//! effects (flushed up to each send's record cursor before its route call,
//! because a routing model may emit trace records of its own — drops,
//! retransmits — that must interleave exactly as they did sequentially).
//! Only the fx actions are re-walked; records append without re-execution
//! or per-record ordering decisions. A window whose events
//! all land in one group skips the machinery entirely: the group borrows the
//! shared [`GlobalState`] and the *coordinator itself* runs the plain
//! sequential path inline (zero logging, zero dispatch, zero divergence).
//!
//! ## Dispatch: spin-then-park doorbells
//!
//! Runners never touch a condvar between windows. Each group owns a
//! [`Doorbell`] — one atomic dispatch word. The coordinator publishes the
//! window under the scheduler lock, stores `ARMED`, and unparks the runner's
//! thread; the runner spins a few thousand cycles before parking, so on a
//! busy simulation the hand-off is a single cache-line transfer instead of
//! an OS wake. Completion uses one shared atomic countdown
//! ([`crate::kernel::WinSync::pending`]): the last finishing runner unparks
//! the coordinator, which spins the same way. The spin-hit vs park-wake
//! split is surfaced in [`WindowStats`].
//!
//! ## Adaptive engagement (`--sim-workers auto`)
//!
//! Dispatch only pays above a measured events-per-window density (see the
//! `parkernel_exchange` density sweep in `vopp-bench`). In auto mode the
//! coordinator keeps a rolling (EWMA) density estimate; while it sits below
//! [`crate::auto_engage_threshold`], multi-group windows are executed
//! *serially on the coordinator thread* — still deferred + committed, since
//! group-major execution order is not global order and routing/RNG state
//! must be touched in global order — which preserves byte identity while
//! paying zero dispatch. Dense stretches engage the worker pool; the
//! estimate naturally re-disengages when the workload thins out.
//!
//! Two facts make in-window execution exact rather than optimistic:
//!
//! * Only loopback (`src == dst`) sends can deliver inside the window, and
//!   [`crate::NetModel::loopback_latency`] guarantees they are exact,
//!   lossless, and touch no shared routing state — so a group predicts the
//!   delivery locally and the commit re-routes it (for statistics and seq
//!   assignment) and asserts the prediction.
//! * A packet's causal stamp is consumed exactly once, at its delivery
//!   instant. Loopback stamps are consumed in the same window (same group,
//!   remappable); stamps that cross windows are finalized by the commit
//!   before the packet reaches the future heap.

use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::thread::Thread;
use std::time::Instant;

use vopp_trace::{
    CausalProfiler, CausalSink, CtxKind, EventKind, NodeId, OpSpan, RecordSink, Tracer, NO_CTX,
};

use crate::kernel::{
    auto_engage_threshold, Event, GlobalState, Mode, Phase, QEntry, Shared, WindowStats,
    SIM_WORKERS_AUTO,
};
use crate::net::{NetModel, RouteRequest};
use crate::packet::{DeliveryClass, Packet};
use crate::sync::MutexGuard;
use crate::time::{SimDuration, SimTime};
use crate::ProcId;

/// Smallest lookahead worth parallelizing over on networks with µs-scale
/// loopback (the paper's Ethernet testbed). Below the effective floor,
/// windows hold so few events that coordination dominates; the kernel falls
/// back to sequential execution (with a one-time notice).
///
/// The floor is *derived*, not absolute: a model whose loopback latency is
/// itself sub-µs (an RDMA-class interconnect) runs its whole event stream at
/// that scale, so windows of a few hundred ns still bundle as many events as
/// µs-windows do on Ethernet. The effective floor is therefore
/// `min(MIN_PARALLEL_LOOKAHEAD, max(loopback, HARD_MIN_PARALLEL_LOOKAHEAD))`
/// — Ethernet-class models (loopback ≥ 1 µs) keep the historical 1 µs floor
/// byte-for-byte, RDMA-class models open windows down to the hard minimum,
/// and the zero-latency what-if network (1 ns) still lands below it by
/// design.
pub const MIN_PARALLEL_LOOKAHEAD: SimDuration = SimDuration::from_micros(1);

/// Absolute lower bound on a usable lookahead window, whatever the model's
/// loopback latency claims: below a couple hundred ns a window cannot hold
/// even one service round trip and coordination always loses.
pub const HARD_MIN_PARALLEL_LOOKAHEAD: SimDuration = SimDuration::from_nanos(200);

/// Marks a provisional causal-record id handed out by a group during a
/// deferred window; the low bits are the group-local ordinal. Real ids are
/// execution indices and never reach this bit.
const PROV_BIT: u64 = 1 << 63;

/// Busy-poll iterations before a waiter (runner doorbell or coordinator
/// barrier) parks its thread. At ~1–3 ns per `spin_loop` round this is a few
/// µs of spinning — comfortably longer than a typical window, so steady-state
/// dispatch stays in userspace.
const SPIN_ROUNDS: u32 = 1 << 12;

/// The spin budget actually used: [`SPIN_ROUNDS`] on multi-core hosts, zero
/// when only one hardware thread exists — a lone core can never observe
/// another thread's progress while spinning, so every spin round there just
/// steals time from the thread being waited on.
fn spin_rounds() -> u32 {
    static ROUNDS: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *ROUNDS.get_or_init(|| {
        if std::thread::available_parallelism().map_or(1, usize::from) > 1 {
            SPIN_ROUNDS
        } else {
            0
        }
    })
}

/// Hard cap on auto-mode group counts: beyond this the serial commit is the
/// bottleneck and extra runners only inflate the barrier.
const AUTO_MAX_GROUPS: usize = 8;

/// The resolved parallel configuration for one run.
pub(crate) struct ParPlan {
    pub(crate) groups: usize,
    pub(crate) lookahead: SimDuration,
    pub(crate) loopback: SimDuration,
    /// Auto mode: gate worker dispatch on the rolling window density.
    pub(crate) adaptive: bool,
}

fn notice(reason: &str) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "[vopp-sim] parallel kernel requested but running sequentially: {reason} \
             (printed once per process)"
        );
    });
}

/// Decide whether a run can use the parallel kernel, and with how many
/// groups. `None` means sequential. [`SIM_WORKERS_AUTO`] resolves the group
/// count from the host's available parallelism and marks the plan adaptive.
/// The effective pool width a configured `workers` value stands for:
/// explicit widths pass through; the [`SIM_WORKERS_AUTO`] sentinel resolves
/// to the host's available parallelism (capped at [`AUTO_MAX_GROUPS`]).
pub(crate) fn resolve_workers(workers: usize) -> usize {
    if workers == SIM_WORKERS_AUTO {
        match crate::kernel::auto_workers_override() {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get().min(AUTO_MAX_GROUPS)),
            n => n.min(AUTO_MAX_GROUPS),
        }
    } else {
        workers
    }
}

pub(crate) fn decide_plan(workers: usize, nprocs: usize, net: &dyn NetModel) -> Option<ParPlan> {
    let adaptive = workers == SIM_WORKERS_AUTO;
    let workers = resolve_workers(workers);
    if workers <= 1 || nprocs < 2 {
        return None;
    }
    let Some(lookahead) = net.lookahead() else {
        notice("the network model exports no lookahead bound");
        return None;
    };
    let Some(loopback) = net.loopback_latency() else {
        notice("the network model exports no exact loopback latency");
        return None;
    };
    let floor = MIN_PARALLEL_LOOKAHEAD.min(loopback.max(HARD_MIN_PARALLEL_LOOKAHEAD));
    if lookahead < floor {
        notice("the lookahead bound is below the parallel floor");
        return None;
    }
    Some(ParPlan {
        groups: workers.min(nprocs),
        lookahead,
        loopback,
        adaptive,
    })
}

/// Doorbell dispatch states.
const IDLE: u32 = 0;
const ARMED: u32 = 1;
const HALT: u32 = 2;

/// A group runner's lock-free dispatch slot. The coordinator publishes the
/// window (scheduler state, under the group's mutex), arms the bell with a
/// release store, and unparks the runner's thread; the runner spins before
/// parking and consumes the dispatch by storing [`IDLE`] back. Unpark-token
/// semantics make the wake race-free: an unpark delivered before the park
/// makes the park return immediately, and a stale token merely costs one
/// spurious re-check. The coordinator only re-arms after the completion
/// barrier settles, so dispatches are never lost or coalesced.
pub(crate) struct Doorbell {
    state: AtomicU32,
    /// Dispatches observed while still spinning (no OS wake involved).
    spin_hits: AtomicU64,
    /// Dispatches observed only after parking (one OS wake each).
    park_wakes: AtomicU64,
}

impl Doorbell {
    pub(crate) fn new() -> Doorbell {
        Doorbell {
            state: AtomicU32::new(IDLE),
            spin_hits: AtomicU64::new(0),
            park_wakes: AtomicU64::new(0),
        }
    }

    /// Runner-side: wait for the next dispatch; returns [`ARMED`] (window
    /// published) or [`HALT`] (run over).
    fn wait_dispatch(&self) -> u32 {
        for _ in 0..spin_rounds() {
            let st = self.state.load(Ordering::Acquire);
            if st != IDLE {
                if st == ARMED {
                    self.state.store(IDLE, Ordering::Relaxed);
                    self.spin_hits.fetch_add(1, Ordering::Relaxed);
                }
                return st;
            }
            std::hint::spin_loop();
        }
        loop {
            let st = self.state.load(Ordering::Acquire);
            if st != IDLE {
                if st == ARMED {
                    self.state.store(IDLE, Ordering::Relaxed);
                    self.park_wakes.fetch_add(1, Ordering::Relaxed);
                }
                return st;
            }
            std::thread::park();
        }
    }

    /// Coordinator-side: publish a window to the runner. The unpark is
    /// unconditional — against a spinning runner it is a cheap atomic swap.
    fn ring(&self, runner: &Thread) {
        self.state.store(ARMED, Ordering::Release);
        runner.unpark();
    }

    /// Coordinator-side: tell the runner the run is over.
    fn halt(&self, runner: &Thread) {
        self.state.store(HALT, Ordering::Release);
        runner.unpark();
    }

    /// Drain the dispatch counters into run stats.
    fn harvest(&self, stats: &mut WindowStats) {
        stats.spin_hits += self.spin_hits.load(Ordering::Relaxed);
        stats.park_wakes += self.park_wakes.load(Ordering::Relaxed);
    }
}

/// An event variant a group may schedule for later than its window; the
/// commit assigns the global seq and requeues it.
#[derive(Debug)]
pub(crate) enum PushedEv {
    Resume(ProcId),
    Timer { dst: ProcId, token: u64 },
}

/// One *order-sensitive* side effect captured during a deferred window, in
/// group execution order. Replayed by the commit in global order. Pure
/// observations (traces, causal records) live in the separate [`Rec`] log
/// and are appended in bulk runs; the `rec_mark` cursors carried on `Begin`
/// and `Send` tie the two logs together, so the commit appends each run at
/// exactly the position the sequential kernel would have — a network model
/// that records its own trace events while routing (drops, retransmits)
/// still lands them in exact ring order.
pub(crate) enum Action {
    /// Execution of one popped event starts. `at` is cross-checked against
    /// the replay order; `rec_mark` is the record-log length at that point.
    Begin { at: SimTime, rec_mark: usize },
    /// An event scheduled via `push_event` (resumes and timers; deliveries
    /// are reconstructed from `Send`).
    Push { at: SimTime, ev: PushedEv },
    /// A delivery event was executed: the destination backlog shrinks.
    DeliverPop { dst: ProcId, wire_bytes: usize },
    /// A datagram submitted to the network; routed for real at commit.
    /// `rec_mark` delimits the records captured before the send, which must
    /// reach the shared sinks before the route call.
    Send {
        now: SimTime,
        dst: ProcId,
        pkt: Packet,
        rec_mark: usize,
    },
}

impl Action {
    fn name(&self) -> &'static str {
        match self {
            Action::Begin { .. } => "Begin",
            Action::Push { .. } => "Push",
            Action::DeliverPop { .. } => "DeliverPop",
            Action::Send { .. } => "Send",
        }
    }
}

/// One captured pure observation: bulk-appended to the shared
/// tracer/profiler by the commit in runs between order-sensitive effects,
/// without re-execution.
pub(crate) enum Rec {
    /// A trace-ring record.
    Trace {
        t: u64,
        node: NodeId,
        kind: EventKind,
    },
    /// A causal wake record (provisional id = next ordinal).
    Wake {
        node: usize,
        prev_ns: u64,
        t_ns: u64,
        kind: CtxKind,
        cause: u64,
    },
    /// A causal service-dispatch record (provisional id = next ordinal).
    Svc { node: usize, t_ns: u64, cause: u64 },
    /// A causal op-span annotation.
    Op { node: usize, span: OpSpan },
}

/// Per-group side-effect capture, shared between the group's scheduler and
/// the thread-local sinks installed on the group's threads. Outside deferred
/// windows the sinks decline every record, so inline windows and sequential
/// runs hit the shared tracer/profiler directly. The backing vectors are
/// bump arenas owned by the coordinator: [`GroupCell::begin_deferred`]
/// installs cleared-with-capacity buffers and [`GroupCell::end_deferred`]
/// hands them back, so steady-state windows allocate nothing.
pub(crate) struct GroupCell {
    deferred: AtomicBool,
    fx: crate::sync::Mutex<Vec<Action>>,
    recs: crate::sync::Mutex<Vec<Rec>>,
    /// Next provisional causal ordinal (== Wake/Svc records logged so far).
    prof_ord: AtomicU64,
    /// Provisional id of the group's currently-executing context.
    prof_cur: AtomicU64,
}

impl GroupCell {
    pub(crate) fn new() -> GroupCell {
        GroupCell {
            deferred: AtomicBool::new(false),
            fx: crate::sync::Mutex::new(Vec::new()),
            recs: crate::sync::Mutex::new(Vec::new()),
            prof_ord: AtomicU64::new(0),
            prof_cur: AtomicU64::new(NO_CTX),
        }
    }

    /// Append an order-sensitive action to the fx log.
    pub(crate) fn push(&self, a: Action) {
        self.fx.lock().push(a);
    }

    /// Delimit the start of one event's execution: a `Begin` marker carrying
    /// the record-log cursor so the commit can tie fx segments to their
    /// captured records.
    pub(crate) fn begin_event(&self, at: SimTime) {
        let rec_mark = self.recs.lock().len();
        self.fx.lock().push(Action::Begin { at, rec_mark });
    }

    /// Capture a deferred send, stamping it with the record-log cursor so
    /// the commit can flush pending records before routing it.
    pub(crate) fn log_send(&self, now: SimTime, dst: ProcId, pkt: Packet) {
        let rec_mark = self.recs.lock().len();
        self.fx.lock().push(Action::Send {
            now,
            dst,
            pkt,
            rec_mark,
        });
    }

    /// Enter deferred mode, installing the coordinator's (empty, capacity-
    /// bearing) arena buffers.
    fn begin_deferred(&self, fx: Vec<Action>, recs: Vec<Rec>) {
        debug_assert!(fx.is_empty() && recs.is_empty(), "dirty arena buffers");
        *self.fx.lock() = fx;
        *self.recs.lock() = recs;
        self.prof_ord.store(0, Ordering::Relaxed);
        self.prof_cur.store(NO_CTX, Ordering::Relaxed);
        self.deferred.store(true, Ordering::Relaxed);
    }

    /// Leave deferred mode, returning the captured logs and the number of
    /// provisional causal ids handed out.
    fn end_deferred(&self) -> (Vec<Action>, Vec<Rec>, u64) {
        self.deferred.store(false, Ordering::Relaxed);
        (
            std::mem::take(&mut *self.fx.lock()),
            std::mem::take(&mut *self.recs.lock()),
            self.prof_ord.load(Ordering::Relaxed),
        )
    }

    #[inline]
    fn capturing(&self) -> bool {
        self.deferred.load(Ordering::Relaxed)
    }
}

impl RecordSink for GroupCell {
    fn record(&self, t: u64, node: NodeId, kind: &EventKind) -> bool {
        if !self.capturing() {
            return false;
        }
        self.recs.lock().push(Rec::Trace {
            t,
            node,
            kind: kind.clone(),
        });
        true
    }
}

impl CausalSink for GroupCell {
    fn record_wake(
        &self,
        node: usize,
        prev_ns: u64,
        t_ns: u64,
        kind: CtxKind,
        pkt_cause: u64,
    ) -> Option<u64> {
        if !self.capturing() {
            return None;
        }
        let ord = self.prof_ord.fetch_add(1, Ordering::Relaxed);
        let id = PROV_BIT | ord;
        self.prof_cur.store(id, Ordering::Relaxed);
        self.recs.lock().push(Rec::Wake {
            node,
            prev_ns,
            t_ns,
            kind,
            cause: pkt_cause,
        });
        Some(id)
    }

    fn record_svc(&self, node: usize, t_ns: u64, pkt_cause: u64) -> Option<u64> {
        if !self.capturing() {
            return None;
        }
        let ord = self.prof_ord.fetch_add(1, Ordering::Relaxed);
        let id = PROV_BIT | ord;
        self.prof_cur.store(id, Ordering::Relaxed);
        self.recs.lock().push(Rec::Svc {
            node,
            t_ns,
            cause: pkt_cause,
        });
        Some(id)
    }

    fn record_op(&self, node: usize, span: OpSpan) -> bool {
        if !self.capturing() {
            return false;
        }
        self.recs.lock().push(Rec::Op { node, span });
        true
    }

    fn cur_ctx(&self) -> Option<u64> {
        if !self.capturing() {
            return None;
        }
        // Any context executing inside a deferred window was recorded inside
        // it (processes park between windows), so this never reads the
        // window-initial NO_CTX from a live context.
        Some(self.prof_cur.load(Ordering::Relaxed))
    }
}

/// Resolve a possibly-provisional causal id against the group's replay map.
#[inline]
fn map_cause(c: u64, map: &[u64]) -> u64 {
    if c == NO_CTX || c & PROV_BIT == 0 {
        c
    } else {
        map[(c ^ PROV_BIT) as usize]
    }
}

/// A replay-heap entry: one event execution in global order, owned by group
/// `gi` whose log supplies its side effects.
struct ReplaySeed {
    at: SimTime,
    seq: u64,
    gi: usize,
}

impl PartialEq for ReplaySeed {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ReplaySeed {}
impl PartialOrd for ReplaySeed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReplaySeed {
    // Reversed for min-heap behaviour, like `QEntry`.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Reusable commit workspace, cleared (capacity retained) between windows so
/// steady-state commits allocate nothing.
struct CommitScratch {
    heap: BinaryHeap<ReplaySeed>,
    /// Per group: fx-log read cursor.
    pos: Vec<usize>,
    /// Per group: record-log read cursor.
    rec_pos: Vec<usize>,
    /// Per group: provisional ordinal -> real causal id, grown in replay
    /// order (which is each group's execution order).
    maps: Vec<Vec<u64>>,
}

impl CommitScratch {
    fn new(ng: usize) -> CommitScratch {
        CommitScratch {
            heap: BinaryHeap::new(),
            pos: vec![0; ng],
            rec_pos: vec![0; ng],
            maps: (0..ng).map(|_| Vec::new()).collect(),
        }
    }

    fn reset(&mut self) {
        self.heap.clear();
        self.pos.fill(0);
        self.rec_pos.fill(0);
        for m in &mut self.maps {
            m.clear();
        }
    }
}

/// Append one group's captured records `[*rec_pos, upto)` to the shared
/// sinks, growing the provisional→real id map as the profiler hands out
/// execution-index ids. Non-empty runs are timed into `append_ns`; the
/// perf-measurement path (no tracer, no profiler) captures no records and
/// never pays the clock reads.
fn append_recs(
    recs: &mut [Rec],
    rec_pos: &mut usize,
    upto: usize,
    map: &mut Vec<u64>,
    tracer: &Option<Arc<Tracer>>,
    profiler: &Option<Arc<CausalProfiler>>,
    append_ns: &mut u64,
) {
    if *rec_pos >= upto {
        return;
    }
    let t0 = Instant::now();
    for slot in recs[*rec_pos..upto].iter_mut() {
        let r = std::mem::replace(
            slot,
            Rec::Trace {
                t: 0,
                node: 0,
                kind: EventKind::ProcExit,
            },
        );
        match r {
            Rec::Trace { t, node, kind } => {
                if let Some(tr) = tracer {
                    tr.record(t, node, kind);
                }
            }
            Rec::Wake {
                node,
                prev_ns,
                t_ns,
                kind,
                cause,
            } => {
                let prof = profiler.as_ref().expect("wake logged without a profiler");
                let id = prof.record_wake(node, prev_ns, t_ns, kind, map_cause(cause, map));
                map.push(id);
            }
            Rec::Svc { node, t_ns, cause } => {
                let prof = profiler.as_ref().expect("svc logged without a profiler");
                let id = prof.record_svc(node, t_ns, map_cause(cause, map));
                map.push(id);
            }
            Rec::Op { node, span } => {
                profiler
                    .as_ref()
                    .expect("op span logged without a profiler")
                    .record_op(node, span);
            }
        }
    }
    *rec_pos = upto;
    *append_ns += t0.elapsed().as_nanos() as u64;
}

/// The parallel run's main loop, on the thread that called `Sim::run`.
/// Spawns one runner per group, carves windows off the future heap, and
/// executes each by the cheapest sound means: single-active-group windows
/// run inline *on this thread* over the lent global state (no logging, no
/// dispatch); multi-group windows defer side effects and either fan out to
/// the runner pool through the doorbells or — in auto mode below the engage
/// density — run serially on this thread, then commit. Detects termination,
/// deadlock and panics exactly like the sequential controller. Returns a
/// service-handler panic payload, if any, after all runners have been
/// joined.
pub(crate) fn coordinate<'scope, 'env>(
    shared: &'scope Shared,
    scope: &'scope std::thread::Scope<'scope, 'env>,
    plan: &ParPlan,
    stats: &mut WindowStats,
) -> Option<Box<dyn std::any::Any + Send>> {
    let ng = shared.groups.len();
    let mut global = shared.groups[0]
        .sched
        .lock()
        .global
        .take()
        .expect("parked global state");
    let profiler = shared.groups[0].sched.lock().profiler.clone();
    let coord = std::thread::current();
    let runners: Vec<_> = (0..ng)
        .map(|gi| {
            let coord = coord.clone();
            scope.spawn(move || runner(shared, gi, coord))
        })
        .collect();
    let threads: Vec<Thread> = runners.iter().map(|r| r.thread().clone()).collect();

    let mut buckets: Vec<Vec<QEntry>> = (0..ng).map(|_| Vec::new()).collect();
    let mut seeds: Vec<ReplaySeed> = Vec::new();
    // Arena buffers cycled through the group cells; taken logs come back
    // here after each commit with their capacity intact.
    let mut arenas: Vec<(Vec<Action>, Vec<Rec>)> = (0..ng).map(|_| Default::default()).collect();
    let mut fx_logs: Vec<Vec<Action>> = (0..ng).map(|_| Vec::new()).collect();
    let mut rec_logs: Vec<Vec<Rec>> = (0..ng).map(|_| Vec::new()).collect();
    let mut ords: Vec<u64> = vec![0; ng];
    let mut active: Vec<usize> = Vec::new();
    let mut scratch = CommitScratch::new(ng);

    // Rolling events-per-window estimate, x16 fixed point:
    // ewma += (sample - ewma) / 8. Starts at zero so sparse paper-scale runs
    // never dispatch before the estimate earns it.
    let mut ewma16: u64 = 0;
    let threshold16 = auto_engage_threshold() << 4;

    let mut payload = loop {
        // Between windows every process is parked and every group queue is
        // empty, so group state is quiescent and consistent to read.
        let mut live = 0usize;
        let mut panicked = false;
        for grp in &shared.groups {
            let s = grp.sched.lock();
            live += s.live;
            panicked |= s.panicked;
        }
        // Svc-panic first: a service-handler panic also marks the group
        // `panicked`, and the payload must win over the generic shutdown.
        if let Some(p) = shared.win.svc_panic.lock().take() {
            shared.shutdown_all();
            break Some(p);
        }
        if panicked {
            shared.shutdown_all();
            break None;
        }
        if live == 0 {
            break None;
        }
        let Some(head) = global.future.peek() else {
            // Deadlock: release the blocked process threads; `Sim::run`
            // turns the surviving shutdown flag into the panic.
            shared.shutdown_all();
            break None;
        };
        let t_end = head.at + plan.lookahead;
        active.clear();
        seeds.clear();
        let mut n_ev: u64 = 0;
        while let Some(h) = global.future.peek() {
            if h.at >= t_end {
                break;
            }
            let e = global.future.pop().expect("peeked entry");
            let gi = shared.group_ix(e.ev.target());
            if buckets[gi].is_empty() {
                active.push(gi);
            }
            seeds.push(ReplaySeed {
                at: e.at,
                seq: e.seq,
                gi,
            });
            n_ev += 1;
            buckets[gi].push(e);
        }
        stats.windows += 1;
        stats.window_events += n_ev;
        stats.density[WindowStats::density_bucket(n_ev)] += 1;
        // Compare against the estimate *before* folding this window in, so
        // one dense window can't engage itself.
        let engage = !plan.adaptive || ewma16 >= threshold16;
        ewma16 = ewma16 - ewma16 / 8 + (n_ev << 4) / 8;

        if active.len() == 1 {
            // Single-group window: lend it the global state and run the
            // plain sequential path right here, bounded by `t_end`. No
            // logging, no dispatch, no barrier.
            stats.inline_windows += 1;
            let gi = active[0];
            let mut s = shared.groups[gi].sched.lock();
            s.global = Some(global);
            s.open_window(Mode::Inline, t_end, &mut buckets[gi]);
            let t0 = Instant::now();
            run_window(shared, gi, &mut s);
            stats.exec_ns += t0.elapsed().as_nanos() as u64;
            debug_assert!(
                s.window_drained() || s.panicked || s.shutdown,
                "window ended with events still queued"
            );
            global = s.global.take().expect("inline window returns global state");
            s.close_window();
        } else {
            // Stale counts from a previous window would trip the commit's
            // bookkeeping asserts for groups inactive in this one.
            ords.fill(0);
            let t0 = Instant::now();
            if engage {
                stats.parallel_windows += 1;
                // The full count must be published before the first bell
                // rings: a fast runner may finish and decrement while later
                // groups are still being dispatched.
                shared.win.pending.store(active.len(), Ordering::Release);
                for &gi in &active {
                    let (fx, recs) = std::mem::take(&mut arenas[gi]);
                    shared.groups[gi].cell.begin_deferred(fx, recs);
                    let mut s = shared.groups[gi].sched.lock();
                    s.open_window(Mode::Deferred, t_end, &mut buckets[gi]);
                    drop(s);
                    shared.groups[gi].bell.ring(&threads[gi]);
                }
                wait_windows(shared);
            } else {
                // Auto mode, sparse regime: execute the groups' slices
                // serially on this thread. Still deferred + committed —
                // group-major execution is not global order, and the
                // network model's RNG/backlog state must be touched in
                // global order — but dispatch and barrier cost vanish.
                stats.serial_windows += 1;
                for &gi in &active {
                    let (fx, recs) = std::mem::take(&mut arenas[gi]);
                    let cell = &shared.groups[gi].cell;
                    cell.begin_deferred(fx, recs);
                    vopp_trace::set_thread_record_sink(Some(cell.clone()));
                    vopp_trace::set_thread_causal_sink(Some(cell.clone()));
                    let mut s = shared.groups[gi].sched.lock();
                    s.open_window(Mode::Deferred, t_end, &mut buckets[gi]);
                    run_window(shared, gi, &mut s);
                }
                vopp_trace::set_thread_record_sink(None);
                vopp_trace::set_thread_causal_sink(None);
            }
            stats.exec_ns += t0.elapsed().as_nanos() as u64;
            let mut any_panic = false;
            for &gi in &active {
                let mut s = shared.groups[gi].sched.lock();
                any_panic |= s.panicked;
                s.close_window();
                drop(s);
                let (fx, recs, ord) = shared.groups[gi].cell.end_deferred();
                fx_logs[gi] = fx;
                rec_logs[gi] = recs;
                ords[gi] = ord;
            }
            if any_panic {
                shared.shutdown_all();
                break None;
            }
            if let Some(p) = shared.win.svc_panic.lock().take() {
                shared.shutdown_all();
                break Some(p);
            }
            let t1 = Instant::now();
            let r = catch_unwind(AssertUnwindSafe(|| {
                commit_window(
                    &mut global,
                    t_end,
                    &mut seeds,
                    &mut fx_logs,
                    &mut rec_logs,
                    &ords,
                    &shared.tracer,
                    &profiler,
                    plan.loopback,
                    &shared.group_of,
                    &mut scratch,
                    stats,
                )
            }));
            stats.merge_ns += t1.elapsed().as_nanos() as u64;
            if let Err(e) = r {
                // A commit bug must not strand parked process threads.
                shared.shutdown_all();
                break Some(e);
            }
            // Recycle the drained logs as next window's arenas.
            for &gi in &active {
                fx_logs[gi].clear();
                rec_logs[gi].clear();
                arenas[gi] = (
                    std::mem::take(&mut fx_logs[gi]),
                    std::mem::take(&mut rec_logs[gi]),
                );
            }
        }
    };

    for (grp, t) in shared.groups.iter().zip(&threads) {
        grp.bell.halt(t);
        // A runner can also be parked inside a window (on the group condvar,
        // waiting for its processes); shutdown paths have already notified
        // those. This covers runners idling between windows.
    }
    for r in runners {
        if let Err(e) = r.join() {
            if payload.is_none() {
                payload = Some(e);
            }
        }
    }
    for grp in &shared.groups {
        grp.bell.harvest(stats);
    }
    shared.groups[0].sched.lock().global = Some(global);
    payload
}

/// Spin, then park, until every dispatched group finishes its window. Stale
/// unpark tokens (from a previous window's last runner racing ahead) cause
/// at most one spurious loop iteration.
fn wait_windows(shared: &Shared) {
    for _ in 0..spin_rounds() {
        if shared.win.pending.load(Ordering::Acquire) == 0 {
            return;
        }
        std::hint::spin_loop();
    }
    while shared.win.pending.load(Ordering::Acquire) != 0 {
        std::thread::park();
    }
}

/// A group's event-loop thread in parallel mode: waits on its doorbell for a
/// window, runs it exactly like the sequential controller (restricted to the
/// group and bounded by `t_end`), and counts down the shared completion
/// barrier — the last finisher unparks the coordinator.
fn runner(shared: &Shared, gi: usize, coord: Thread) {
    let grp = &shared.groups[gi];
    let cell = grp.cell.clone();
    vopp_trace::set_thread_record_sink(Some(cell.clone()));
    vopp_trace::set_thread_causal_sink(Some(cell));
    loop {
        if grp.bell.wait_dispatch() == HALT {
            return;
        }
        let mut s = grp.sched.lock();
        run_window(shared, gi, &mut s);
        debug_assert!(
            s.window_drained() || s.panicked || s.shutdown,
            "window ended with events still queued"
        );
        drop(s);
        if shared.win.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            coord.unpark();
        }
    }
}

/// One window on one group: the sequential controller's event loop bounded
/// by the window (`pop_due`). Service-handler panics are stashed for the
/// coordinator instead of unwinding the caller, so the completion barrier
/// still settles.
fn run_window<'a>(shared: &'a Shared, gi: usize, s: &mut MutexGuard<'a, crate::kernel::Sched>) {
    loop {
        if s.panicked || s.shutdown {
            return;
        }
        let Some(entry) = s.pop_due() else {
            return;
        };
        debug_assert!(entry.at >= s.now, "event queue went backwards");
        s.now = entry.at;
        s.note_begin(&entry);
        match entry.ev {
            Event::Resume(p) => match s.pi(p).phase {
                Phase::Startup | Phase::BlockedResume => {
                    shared.wake_and_park(gi, s, p, entry.at, NO_CTX);
                }
                Phase::Finished => {}
                ref ph => unreachable!("resume for proc {p} in phase {ph:?}"),
            },
            Event::Deliver { dst, mut pkt } => {
                if pkt.class != DeliveryClass::OneSided {
                    s.note_deliver_pop(dst, pkt.wire_bytes);
                }
                pkt.arrived = entry.at;
                if let Some(tr) = &s.tracer {
                    tr.record(
                        entry.at.0,
                        dst,
                        EventKind::NetRecv {
                            src: pkt.src,
                            wire_bytes: pkt.wire_bytes as u64,
                            tag: pkt.tag,
                        },
                    );
                }
                match pkt.class {
                    DeliveryClass::Svc => {
                        if let Err(e) = shared.dispatch_svc(dst, s, dst, pkt, entry.at) {
                            // Grabbing every other group's lock to shut down
                            // from here could deadlock against a runner doing
                            // the same; park the payload and let the
                            // coordinator (which holds no locks) clean up.
                            let mut slot = shared.win.svc_panic.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            drop(slot);
                            s.panicked = true;
                            return;
                        }
                    }
                    DeliveryClass::App => {
                        let cause = pkt.cause;
                        s.pi_mut(dst).mailbox.push_back(pkt);
                        if matches!(s.pi(dst).phase, Phase::WaitRecv { .. }) {
                            shared.wake_and_park(gi, s, dst, entry.at, cause);
                        }
                    }
                    // One-sided write: no handler dispatch, no wake.
                    DeliveryClass::OneSided => {
                        s.pi_mut(dst).mailbox.push_back(pkt);
                    }
                }
            }
            Event::Timer { dst, token } => {
                if s.pi(dst).phase
                    == (Phase::WaitRecv {
                        deadline: Some(token),
                    })
                {
                    s.pi_mut(dst).timed_out = true;
                    shared.wake_and_park(gi, s, dst, entry.at, NO_CTX);
                }
                // Otherwise the timer is stale (the wait already ended).
            }
        }
    }
}

/// Commit one deferred window: replay the fx logs in exact global
/// `(time, seq)` order, applying every order-sensitive effect precisely as
/// the sequential kernel would have — sends route through the network model
/// (consuming its RNG in global send order), out-of-window events get global
/// seqs and move to the future heap, backlog counters pop. The captured
/// trace/causal records are *not* threaded through the replay heap: they are
/// appended in bulk runs from the per-group record logs, flushed up to each
/// send's `rec_mark` before its route call (a routing model may emit its own
/// trace records — drops, retransmits — which must interleave exactly as
/// they did sequentially) and up to the segment boundary otherwise.
#[allow(clippy::too_many_arguments)]
fn commit_window(
    global: &mut GlobalState,
    t_end: SimTime,
    seeds: &mut Vec<ReplaySeed>,
    fx_logs: &mut [Vec<Action>],
    rec_logs: &mut [Vec<Rec>],
    ords: &[u64],
    tracer: &Option<Arc<Tracer>>,
    profiler: &Option<Arc<CausalProfiler>>,
    loopback: SimDuration,
    group_of: &[usize],
    scratch: &mut CommitScratch,
    stats: &mut WindowStats,
) {
    let t0 = Instant::now();
    let mut append_ns = 0u64;
    scratch.reset();
    let CommitScratch {
        heap,
        pos,
        rec_pos,
        maps,
    } = scratch;
    heap.extend(seeds.drain(..));

    while let Some(seed) = heap.pop() {
        let gi = seed.gi;
        match fx_logs[gi].get(pos[gi]) {
            Some(&Action::Begin { at, rec_mark }) => {
                debug_assert_eq!(
                    at, seed.at,
                    "group {gi} executed an event out of replay order"
                );
                debug_assert_eq!(
                    rec_mark, rec_pos[gi],
                    "group {gi} record cursor out of sync"
                );
                pos[gi] += 1;
            }
            other => panic!(
                "parallel commit misaligned for group {gi}: expected Begin, found {:?}",
                other.map(Action::name)
            ),
        }
        // The segment's records end where the next segment's begin (or the
        // log tail). Segments hold only a handful of fx actions, so this
        // forward scan is cheap — and it never revisits consumed slots.
        let mut j = pos[gi];
        let rec_end = loop {
            match fx_logs[gi].get(j) {
                Some(&Action::Begin { rec_mark, .. }) => break rec_mark,
                Some(_) => j += 1,
                None => break rec_logs[gi].len(),
            }
        };
        while pos[gi] < j {
            // Tombstone the slot; each action is consumed exactly once, and
            // forward scans only ever look past the consumption cursor.
            let a = std::mem::replace(
                &mut fx_logs[gi][pos[gi]],
                Action::Begin {
                    at: SimTime::ZERO,
                    rec_mark: 0,
                },
            );
            pos[gi] += 1;
            match a {
                Action::Begin { .. } => unreachable!(),
                Action::Push { at, ev } => {
                    let ev = match ev {
                        PushedEv::Resume(p) => Event::Resume(p),
                        PushedEv::Timer { dst, token } => Event::Timer { dst, token },
                    };
                    let seq = global.seq;
                    global.seq += 1;
                    if at < t_end {
                        // The group already executed it locally; thread it
                        // through the replay so its log segment is consumed.
                        debug_assert_eq!(group_of[ev.target()], gi);
                        heap.push(ReplaySeed { at, seq, gi });
                    } else {
                        global.future.push(QEntry {
                            at,
                            tier: 0,
                            seq,
                            ev,
                        });
                    }
                }
                Action::DeliverPop { dst, wire_bytes } => {
                    global.pending_bytes[dst] -= wire_bytes;
                }
                Action::Send {
                    now,
                    dst,
                    mut pkt,
                    rec_mark,
                } => {
                    // Records captured before this send (its own NetSend
                    // trace included) must reach the sinks before the model
                    // can emit anything of its own.
                    append_recs(
                        &mut rec_logs[gi],
                        &mut rec_pos[gi],
                        rec_mark,
                        &mut maps[gi],
                        tracer,
                        profiler,
                        &mut append_ns,
                    );
                    let one_sided = pkt.class == DeliveryClass::OneSided;
                    let req = RouteRequest {
                        now,
                        src: pkt.src,
                        dst,
                        wire_bytes: pkt.wire_bytes,
                        pending_bytes_at_dst: global.pending_bytes[dst],
                        reliable: one_sided,
                    };
                    if let Some(at) = global.net.route(req) {
                        let at = at.max(now);
                        if !one_sided {
                            global.pending_bytes[dst] += pkt.wire_bytes;
                        }
                        let seq = global.seq;
                        global.seq += 1;
                        if at < t_end {
                            // Only loopbacks can deliver inside a window (the
                            // lookahead bounds everything else); the group
                            // already delivered it locally.
                            debug_assert_eq!(pkt.src, dst, "cross-node delivery inside a window");
                            debug_assert_eq!(
                                at,
                                now + loopback,
                                "loopback delivery not exactly loopback_latency away"
                            );
                            debug_assert_eq!(group_of[dst], gi);
                            heap.push(ReplaySeed { at, seq, gi });
                        } else {
                            // Crossing a window boundary: finalize the causal
                            // stamp (provisional ids never leave their window).
                            pkt.cause = map_cause(pkt.cause, &maps[gi]);
                            global.future.push(QEntry {
                                at,
                                tier: 0,
                                seq,
                                ev: Event::Deliver { dst, pkt },
                            });
                        }
                    }
                }
            }
        }
        // Flush the segment's remaining records.
        append_recs(
            &mut rec_logs[gi],
            &mut rec_pos[gi],
            rec_end,
            &mut maps[gi],
            tracer,
            profiler,
            &mut append_ns,
        );
    }

    for gi in 0..fx_logs.len() {
        assert_eq!(
            pos[gi],
            fx_logs[gi].len(),
            "group {gi} logged actions the replay never consumed"
        );
        assert_eq!(
            rec_pos[gi],
            rec_logs[gi].len(),
            "group {gi} captured records the replay never appended"
        );
        debug_assert_eq!(
            maps[gi].len() as u64,
            ords[gi],
            "group {gi} provisional-id count mismatch"
        );
    }
    stats.commit_append_ns += append_ns;
    stats.commit_route_ns += (t0.elapsed().as_nanos() as u64).saturating_sub(append_ns);
}
