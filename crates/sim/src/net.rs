//! The kernel-facing network abstraction.
//!
//! The kernel is network-agnostic: every send is routed through a [`NetModel`]
//! that decides *when* (and whether) the packet arrives. `vopp-simnet`
//! provides the switched-Ethernet model used by the DSM experiments; the
//! [`PerfectNet`] here is a fixed-latency, lossless model for unit tests.

use crate::time::{SimDuration, SimTime};
use crate::ProcId;

/// Inputs the kernel hands to the network model for one datagram.
#[derive(Debug, Clone, Copy)]
pub struct RouteRequest {
    /// Time the sender issued the send.
    pub now: SimTime,
    /// Sending process.
    pub src: ProcId,
    /// Destination process.
    pub dst: ProcId,
    /// Bytes on the wire, including headers.
    pub wire_bytes: usize,
    /// Total wire bytes of the packets already queued for delivery at `dst`
    /// (scheduled but not yet handed over) — the receive-buffer occupancy a
    /// bursting sender overflows.
    pub pending_bytes_at_dst: usize,
    /// The datagram is a one-sided verb carried by reliable transport
    /// (RDMA RC): the model must not apply its loss machinery (hardware
    /// retransmission is below the timescale modelled here), though the
    /// datagram still occupies link time and counts in traffic statistics.
    pub reliable: bool,
}

/// Decides delivery time and loss for each datagram.
///
/// Implementations must be deterministic given the same sequence of calls
/// (use an internally seeded RNG for loss decisions).
pub trait NetModel: Send {
    /// Return the arrival time of the packet, or `None` if it is dropped.
    fn route(&mut self, req: RouteRequest) -> Option<SimTime>;

    /// Conservative lookahead: a lower bound `L` such that every
    /// *cross-node* (`src != dst`) datagram sent at time `t` is delivered
    /// no earlier than `t + L`, regardless of congestion state. The
    /// parallel kernel uses it as the Chandy–Misra–Bryant window length:
    /// within a window of length `L`, no node group can receive a packet
    /// another group sends inside the same window.
    ///
    /// Return `None` (the default) when no such bound exists; the kernel
    /// then falls back to sequential execution.
    fn lookahead(&self) -> Option<SimDuration> {
        None
    }

    /// Exact self-delivery latency: a loopback (`src == dst`) send at `t`
    /// is delivered at exactly `t + loopback_latency()`, is never dropped,
    /// and routing it reads or mutates no state shared with cross-node
    /// routing (no RNG draw, no link occupancy). Models that cannot
    /// guarantee this return `None` (the default), which also forces the
    /// kernel back to sequential execution.
    fn loopback_latency(&self) -> Option<SimDuration> {
        None
    }

    /// Total number of datagrams accepted onto the wire so far.
    fn sent_count(&self) -> u64 {
        0
    }

    /// Total wire bytes accepted so far.
    fn sent_bytes(&self) -> u64 {
        0
    }

    /// Datagrams dropped so far.
    fn dropped_count(&self) -> u64 {
        0
    }
}

/// Lossless constant-latency network; useful for tests and as a null model.
#[derive(Debug, Clone)]
pub struct PerfectNet {
    latency: SimDuration,
    lookahead: SimDuration,
    sent: u64,
    bytes: u64,
}

impl PerfectNet {
    /// A perfect network with the given one-way latency. The advertised
    /// lookahead defaults to the latency — the tightest valid bound.
    pub fn new(latency: SimDuration) -> PerfectNet {
        PerfectNet {
            latency,
            lookahead: latency,
            sent: 0,
            bytes: 0,
        }
    }

    /// Advertise a smaller conservative lookahead than the latency. Any
    /// bound at or below the latency is still correct (every delivery is
    /// exactly `latency` away); a shorter one shrinks the parallel kernel's
    /// windows, which is useful for exercising window-boundary behavior.
    ///
    /// # Panics
    ///
    /// If `lookahead` exceeds the latency — that would *not* be a valid
    /// bound.
    pub fn with_lookahead(mut self, lookahead: SimDuration) -> PerfectNet {
        assert!(
            lookahead <= self.latency,
            "lookahead {lookahead} exceeds the delivery latency {latency}: not a conservative bound",
            latency = self.latency
        );
        self.lookahead = lookahead;
        self
    }
}

impl Default for PerfectNet {
    fn default() -> Self {
        PerfectNet::new(SimDuration::from_micros(10))
    }
}

impl NetModel for PerfectNet {
    fn route(&mut self, req: RouteRequest) -> Option<SimTime> {
        self.sent += 1;
        self.bytes += req.wire_bytes as u64;
        Some(req.now + self.latency)
    }

    fn lookahead(&self) -> Option<SimDuration> {
        // Every delivery (loopback included) is exactly `latency` away, so
        // any configured bound at or below it is conservative.
        Some(self.lookahead)
    }

    fn loopback_latency(&self) -> Option<SimDuration> {
        Some(self.latency)
    }

    fn sent_count(&self) -> u64 {
        self.sent
    }

    fn sent_bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_net_adds_latency_and_counts() {
        let mut n = PerfectNet::new(SimDuration::from_micros(50));
        let t = n
            .route(RouteRequest {
                now: SimTime(1_000),
                src: 0,
                dst: 1,
                wire_bytes: 123,
                pending_bytes_at_dst: 0,
                reliable: false,
            })
            .unwrap();
        assert_eq!(t, SimTime(51_000));
        assert_eq!(n.sent_count(), 1);
        assert_eq!(n.sent_bytes(), 123);
        assert_eq!(n.dropped_count(), 0);
    }

    #[test]
    fn perfect_net_lookahead_is_its_latency() {
        let n = PerfectNet::new(SimDuration::from_micros(50));
        assert_eq!(n.lookahead(), Some(SimDuration::from_micros(50)));
        assert_eq!(n.loopback_latency(), Some(SimDuration::from_micros(50)));
    }

    #[test]
    fn lookahead_is_configurable_below_the_latency() {
        let n = PerfectNet::new(SimDuration::from_micros(50))
            .with_lookahead(SimDuration::from_micros(5));
        assert_eq!(n.lookahead(), Some(SimDuration::from_micros(5)));
        // Delivery timing is unchanged — only the advertised bound shrinks.
        assert_eq!(n.loopback_latency(), Some(SimDuration::from_micros(50)));
    }

    #[test]
    #[should_panic(expected = "not a conservative bound")]
    fn lookahead_above_the_latency_is_rejected() {
        let _ = PerfectNet::new(SimDuration::from_micros(50))
            .with_lookahead(SimDuration::from_micros(51));
    }

    #[test]
    fn lookahead_defaults_to_none() {
        // A model that does not opt in exposes no bound, which the kernel
        // treats as "run sequentially".
        struct Opaque;
        impl NetModel for Opaque {
            fn route(&mut self, req: RouteRequest) -> Option<SimTime> {
                Some(req.now)
            }
        }
        assert_eq!(Opaque.lookahead(), None);
        assert_eq!(Opaque.loopback_latency(), None);
    }
}
