//! Process-side and handler-side views of the kernel.

use std::collections::VecDeque;

use crate::kernel::{Event, Phase, Shared};
use crate::packet::{DeliveryClass, Packet, Payload};
use crate::time::{SimDuration, SimTime};
use crate::ProcId;

/// Mailbox capacity retained after a drain. A barrier fan-in can spike a
/// manager's mailbox to `nprocs` packets; once drained, capacity beyond this
/// is released so the spike doesn't pin memory for the rest of the run.
const MAILBOX_IDLE_CAP: usize = 64;

/// Release excess mailbox capacity once the queue is empty.
fn shrink_if_drained(mb: &mut VecDeque<Packet>) {
    if mb.is_empty() && mb.capacity() > MAILBOX_IDLE_CAP {
        mb.shrink_to(MAILBOX_IDLE_CAP);
    }
}

/// The kernel interface available to a process body (application thread).
///
/// All methods are blocking in *virtual* time only; the underlying OS thread
/// parks while other processes are scheduled.
#[derive(Clone, Copy)]
pub struct AppCtx<'a> {
    shared: &'a Shared,
    me: ProcId,
    nprocs: usize,
}

impl<'a> AppCtx<'a> {
    pub(crate) fn new(shared: &'a Shared, me: ProcId, nprocs: usize) -> AppCtx<'a> {
        AppCtx { shared, me, nprocs }
    }

    /// This process's id.
    #[inline]
    pub fn me(&self) -> ProcId {
        self.me
    }

    /// Number of processes in the simulation.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Current virtual time on this process's clock.
    pub fn now(&self) -> SimTime {
        self.shared.lock_proc(self.me).pi(self.me).clock
    }

    /// Spend `d` of virtual CPU time. Service packets arriving during the
    /// span are handled at their arrival times (interrupt semantics).
    pub fn compute(&self, d: SimDuration) {
        if d == SimDuration::ZERO {
            return;
        }
        let mut s = self.shared.lock_proc(self.me);
        let at = s.pi(self.me).clock + d;
        s.push_event(at, Event::Resume(self.me));
        s.pi_mut(self.me).phase = Phase::BlockedResume;
        self.shared.yield_and_wait(self.me, &mut s);
    }

    /// Alias of [`AppCtx::compute`] for idle waits.
    pub fn sleep(&self, d: SimDuration) {
        self.compute(d);
    }

    /// Send a datagram. Non-blocking; delivery time and loss are decided by
    /// the network model. `wire_bytes` must include protocol headers. The
    /// payload is shared: sending the same `Arc` to many destinations (a
    /// broadcast, a retransmission) costs one allocation total.
    pub fn send(
        &self,
        dst: ProcId,
        wire_bytes: usize,
        class: DeliveryClass,
        tag: u64,
        payload: Payload,
    ) {
        let mut s = self.shared.lock_proc(self.me);
        let now = s.pi(self.me).clock;
        let mut pkt = Packet::new(self.me, wire_bytes, class, tag, payload);
        if let Some(p) = &s.profiler {
            pkt.cause = p.cur_ctx();
        }
        s.submit_send(now, dst, pkt);
    }

    /// Receive the next mailbox packet, blocking until one arrives.
    pub fn recv(&self) -> Packet {
        self.recv_filter(|_| true)
    }

    /// Receive the first mailbox packet satisfying `want`, blocking until one
    /// arrives. Non-matching packets stay queued in arrival order. One-sided
    /// writes ([`DeliveryClass::OneSided`]) are invisible here — they landed
    /// without CPU involvement and are only observed by an explicit
    /// [`AppCtx::poll_one_sided`].
    pub fn recv_filter(&self, want: impl Fn(&Packet) -> bool) -> Packet {
        let mut s = self.shared.lock_proc(self.me);
        loop {
            if let Some(pos) = s
                .pi(self.me)
                .mailbox
                .iter()
                .position(|p| p.class != DeliveryClass::OneSided && want(p))
            {
                let pkt = s.pi_mut(self.me).mailbox.remove(pos).unwrap();
                shrink_if_drained(&mut s.pi_mut(self.me).mailbox);
                return pkt;
            }
            s.pi_mut(self.me).phase = Phase::WaitRecv { deadline: None };
            self.shared.yield_and_wait(self.me, &mut s);
        }
    }

    /// Like [`AppCtx::recv_filter`] with a timeout. Returns `None` if the
    /// deadline passes first.
    pub fn recv_filter_timeout(
        &self,
        d: SimDuration,
        want: impl Fn(&Packet) -> bool,
    ) -> Option<Packet> {
        let mut s = self.shared.lock_proc(self.me);
        let deadline = s.pi(self.me).clock + d;
        let token = s.pi(self.me).next_token;
        s.pi_mut(self.me).next_token += 1;
        let mut timer_armed = false;
        loop {
            if let Some(pos) = s
                .pi(self.me)
                .mailbox
                .iter()
                .position(|p| p.class != DeliveryClass::OneSided && want(p))
            {
                let pkt = s.pi_mut(self.me).mailbox.remove(pos).unwrap();
                shrink_if_drained(&mut s.pi_mut(self.me).mailbox);
                return Some(pkt);
            }
            if !timer_armed {
                s.push_event(
                    deadline,
                    Event::Timer {
                        dst: self.me,
                        token,
                    },
                );
                timer_armed = true;
            }
            s.pi_mut(self.me).timed_out = false;
            s.pi_mut(self.me).phase = Phase::WaitRecv {
                deadline: Some(token),
            };
            self.shared.yield_and_wait(self.me, &mut s);
            if s.pi(self.me).timed_out {
                return None;
            }
        }
    }

    /// Receive any packet with a timeout.
    pub fn recv_timeout(&self, d: SimDuration) -> Option<Packet> {
        self.recv_filter_timeout(d, |_| true)
    }

    /// Number of packets currently queued in this process's mailbox.
    pub fn mailbox_len(&self) -> usize {
        self.shared.lock_proc(self.me).pi(self.me).mailbox.len()
    }

    /// Take the earliest one-sided write from `src` with tag `tag` out of
    /// this process's preposted buffer, if one has landed. Non-blocking: a
    /// one-sided write involves no remote CPU, so there is no wake to wait
    /// for — callers know data is present from protocol ordering (a
    /// same-link control message sent after the write arrives after it).
    pub fn poll_one_sided(&self, src: ProcId, tag: u64) -> Option<Packet> {
        let mut s = self.shared.lock_proc(self.me);
        let pos = s
            .pi(self.me)
            .mailbox
            .iter()
            .position(|p| p.class == DeliveryClass::OneSided && p.src == src && p.tag == tag)?;
        let pkt = s.pi_mut(self.me).mailbox.remove(pos).unwrap();
        shrink_if_drained(&mut s.pi_mut(self.me).mailbox);
        Some(pkt)
    }

    /// Remove every queued packet matching `unwanted`, returning how many
    /// were discarded. Used to drop stale duplicate replies after a
    /// retransmitted request was answered twice.
    pub fn purge_filter(&self, unwanted: impl Fn(&Packet) -> bool) -> usize {
        let mut s = self.shared.lock_proc(self.me);
        let mb = &mut s.pi_mut(self.me).mailbox;
        let before = mb.len();
        mb.retain(|p| !unwanted(p));
        let purged = before - mb.len();
        shrink_if_drained(mb);
        purged
    }

    /// The causal profiler installed on this run, if any. Upper layers
    /// (the DSM runtime) use it to annotate the timeline with protocol
    /// operations; `None` means critical-path recording is off.
    pub fn causal_profiler(&self) -> Option<std::sync::Arc<vopp_trace::CausalProfiler>> {
        self.shared.lock_proc(self.me).profiler.clone()
    }

    /// Whether an enabled tracer is installed. Layers that need to compute
    /// anything to build an event should gate on this first.
    #[inline]
    pub fn tracing(&self) -> bool {
        matches!(&self.shared.tracer, Some(t) if t.is_enabled())
    }

    /// Record a trace event at this process's current virtual time.
    /// A no-op (one pointer test) when no tracer is installed.
    pub fn trace(&self, kind: vopp_trace::EventKind) {
        if let Some(tr) = &self.shared.tracer {
            if tr.is_enabled() {
                let now = self.shared.lock_proc(self.me).pi(self.me).clock;
                tr.record(now.0, self.me, kind);
            }
        }
    }
}

/// The kernel interface available to a service handler.
///
/// Handlers run logically instantaneously at the packet arrival time; any
/// processing cost should be modelled in the network configuration's
/// service overhead.
pub struct SvcCtx<'a> {
    shared: &'a Shared,
    me: ProcId,
    now: SimTime,
}

impl<'a> SvcCtx<'a> {
    pub(crate) fn new(shared: &'a Shared, me: ProcId, now: SimTime) -> SvcCtx<'a> {
        SvcCtx { shared, me, now }
    }

    /// The process this handler serves.
    #[inline]
    pub fn me(&self) -> ProcId {
        self.me
    }

    /// Number of processes in the simulation.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.shared.nprocs
    }

    /// Arrival time of the packet being handled.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Send a datagram from this process at the current handler time.
    pub fn send(
        &mut self,
        dst: ProcId,
        wire_bytes: usize,
        class: DeliveryClass,
        tag: u64,
        payload: Payload,
    ) {
        let mut s = self.shared.lock_proc(self.me);
        let mut pkt = Packet::new(self.me, wire_bytes, class, tag, payload);
        if let Some(p) = &s.profiler {
            pkt.cause = p.cur_ctx();
        }
        s.submit_send(self.now, dst, pkt);
    }

    /// Take the earliest one-sided write from `src` with tag `tag` out of
    /// this process's preposted buffer, if one has landed. The handler-side
    /// twin of [`AppCtx::poll_one_sided`]: a service handler for a control
    /// message sent *after* a same-link one-sided write finds the write
    /// already present (FIFO link ordering).
    pub fn take_one_sided(&mut self, src: ProcId, tag: u64) -> Option<Packet> {
        let mut s = self.shared.lock_proc(self.me);
        let pos = s
            .pi(self.me)
            .mailbox
            .iter()
            .position(|p| p.class == DeliveryClass::OneSided && p.src == src && p.tag == tag)?;
        s.pi_mut(self.me).mailbox.remove(pos)
    }

    /// Record a trace event at the handled packet's arrival time.
    /// A no-op (one pointer test) when no tracer is installed.
    pub fn trace(&self, kind: vopp_trace::EventKind) {
        if let Some(tr) = &self.shared.tracer {
            tr.record(self.now.0, self.me, kind);
        }
    }
}
