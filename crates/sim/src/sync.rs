//! Poison-free `Mutex`/`Condvar` over `std::sync`.
//!
//! The kernel deliberately panics while holding the scheduler lock (e.g. to
//! unblock process threads during shutdown), which would poison a plain
//! `std::sync::Mutex` and turn every later `lock()` into an error. These
//! wrappers recover the guard from a poisoned lock — the scheduler state is
//! still consistent at those points, and the first panic is re-raised by the
//! kernel anyway — and expose the `lock()`/`wait(&mut guard)` shape the rest
//! of the workspace uses.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Mutual exclusion without lock poisoning.
#[derive(Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Temporarily release `guard` — which must have been returned by
    /// `self.lock()` — while `f` runs, then re-acquire the lock in place
    /// before returning. Passing a guard that belongs to a different mutex
    /// would silently re-lock the wrong one; callers must not do that.
    pub fn unlocked<'a, U>(&'a self, guard: &mut MutexGuard<'a, T>, f: impl FnOnce() -> U) -> U {
        let inner = guard.0.take().expect("guard moved during wait");
        drop(inner);
        let r = f();
        guard.0 = Some(self.0.lock().unwrap_or_else(PoisonError::into_inner));
        r
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// The inner `Option` is an implementation detail of [`Condvar::wait`],
/// which must temporarily move the underlying `std` guard out; it is `Some`
/// at every other moment.
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard moved during wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard moved during wait")
    }
}

/// Condition variable operating on [`MutexGuard`] in place.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-acquired (in place) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard moved during wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn survives_poisoning() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_handoff() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = shared.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*shared;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
