//! Packets exchanged between simulated processes.
//!
//! The payload is an in-process `Box<dyn Any>`: the simulation transfers Rust
//! values directly instead of serializing them, while the *wire size* used for
//! network timing and traffic statistics is declared explicitly by the sender.
//! This keeps the simulator fast and lets protocol layers account for the
//! exact number of bytes the real system would have put on the wire.

use std::any::Any;
use std::fmt;

use crate::time::SimTime;
use crate::ProcId;

/// How a packet is consumed at the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryClass {
    /// Delivered to the destination process's mailbox; consumed by a blocking
    /// `recv` on the application thread (replies, grants, app messages).
    App,
    /// Dispatched to the destination's registered service handler the moment
    /// it arrives, even while the application thread is computing — the
    /// simulation equivalent of a SIGIO/SIGSEGV-driven DSM request handler.
    Svc,
}

/// A message in flight (or in a mailbox) between two simulated processes.
pub struct Packet {
    /// Sending process.
    pub src: ProcId,
    /// Wire size in bytes this packet would occupy on a real network,
    /// including protocol headers. Used for link occupancy and statistics.
    pub wire_bytes: usize,
    /// Mailbox vs service-handler delivery.
    pub class: DeliveryClass,
    /// Free-form tag usable by protocols to demultiplex replies.
    pub tag: u64,
    /// Virtual time at which the packet arrived at the destination.
    /// Filled in by the kernel on delivery; zero while in flight.
    pub arrived: SimTime,
    /// The transferred value.
    pub payload: Box<dyn Any + Send>,
}

impl Packet {
    /// Build a packet. `arrived` is stamped by the kernel.
    pub fn new(
        src: ProcId,
        wire_bytes: usize,
        class: DeliveryClass,
        tag: u64,
        payload: Box<dyn Any + Send>,
    ) -> Packet {
        Packet {
            src,
            wire_bytes,
            class,
            tag,
            arrived: SimTime::ZERO,
            payload,
        }
    }

    /// Downcast the payload to a concrete message type, consuming the packet.
    ///
    /// Panics if the payload is of a different type: a type confusion here is
    /// always a protocol bug, never a recoverable condition.
    pub fn expect<T: 'static>(self) -> T {
        match self.payload.downcast::<T>() {
            Ok(b) => *b,
            Err(_) => panic!(
                "packet from proc {} (tag {}) had unexpected payload type; wanted {}",
                self.src,
                self.tag,
                std::any::type_name::<T>()
            ),
        }
    }

    /// Try to downcast the payload, returning the packet back on mismatch.
    pub fn try_expect<T: 'static>(self) -> Result<T, Packet> {
        let Packet {
            src,
            wire_bytes,
            class,
            tag,
            arrived,
            payload,
        } = self;
        match payload.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(payload) => Err(Packet {
                src,
                wire_bytes,
                class,
                tag,
                arrived,
                payload,
            }),
        }
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Packet")
            .field("src", &self.src)
            .field("wire_bytes", &self.wire_bytes)
            .field("class", &self.class)
            .field("tag", &self.tag)
            .field("arrived", &self.arrived)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expect_roundtrip() {
        let p = Packet::new(3, 100, DeliveryClass::App, 7, Box::new(42u32));
        assert_eq!(p.src, 3);
        assert_eq!(p.expect::<u32>(), 42);
    }

    #[test]
    #[should_panic(expected = "unexpected payload type")]
    fn expect_wrong_type_panics() {
        let p = Packet::new(0, 0, DeliveryClass::App, 0, Box::new("hi"));
        let _ = p.expect::<u64>();
    }

    #[test]
    fn try_expect_returns_packet_on_mismatch() {
        let p = Packet::new(1, 10, DeliveryClass::Svc, 9, Box::new(5i64));
        let p = p.try_expect::<String>().unwrap_err();
        assert_eq!(p.tag, 9);
        assert_eq!(p.try_expect::<i64>().unwrap(), 5);
    }
}
