//! Packets exchanged between simulated processes.
//!
//! The payload is an in-process `Arc<dyn Any>`: the simulation transfers Rust
//! values directly instead of serializing them, while the *wire size* used for
//! network timing and traffic statistics is declared explicitly by the sender.
//! Sharing the payload by `Arc` means a broadcast (a barrier release fan-out,
//! an RPC retransmission) allocates the message once and every destination's
//! packet points at the same value. This keeps the simulator fast and lets
//! protocol layers account for the exact number of bytes the real system
//! would have put on the wire.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use crate::time::SimTime;
use crate::ProcId;

/// The shared, immutable payload of a [`Packet`]. One allocation per message,
/// no matter how many destinations (or retransmissions) it is sent to.
pub type Payload = Arc<dyn Any + Send + Sync>;

/// How a packet is consumed at the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryClass {
    /// Delivered to the destination process's mailbox; consumed by a blocking
    /// `recv` on the application thread (replies, grants, app messages).
    App,
    /// Dispatched to the destination's registered service handler the moment
    /// it arrives, even while the application thread is computing — the
    /// simulation equivalent of a SIGIO/SIGSEGV-driven DSM request handler.
    Svc,
    /// A one-sided RDMA-style write: the payload lands in the destination's
    /// preposted buffer (its mailbox) with **no remote CPU involvement** —
    /// no service dispatch, and a blocked receiver is not woken. Invisible
    /// to `recv`/`recv_filter`; retrieved explicitly with
    /// [`crate::AppCtx::poll_one_sided`] / [`crate::SvcCtx::take_one_sided`].
    /// Routed reliably by network models (hardware retransmission, no loss
    /// draw) and never counted toward receive-queue overflow occupancy.
    OneSided,
}

/// A message in flight (or in a mailbox) between two simulated processes.
pub struct Packet {
    /// Sending process.
    pub src: ProcId,
    /// Wire size in bytes this packet would occupy on a real network,
    /// including protocol headers. Used for link occupancy and statistics.
    pub wire_bytes: usize,
    /// Mailbox vs service-handler delivery.
    pub class: DeliveryClass,
    /// Free-form tag usable by protocols to demultiplex replies.
    pub tag: u64,
    /// Virtual time at which the packet arrived at the destination.
    /// Filled in by the kernel on delivery; zero while in flight.
    pub arrived: SimTime,
    /// Causal-profiler record id of the context this packet was sent from
    /// ([`vopp_trace::NO_CTX`] when no profiler is installed). Stamped by
    /// the sending context; pure observation, never read by protocols.
    pub cause: u64,
    /// The transferred value, shared with every other copy of this message.
    pub payload: Payload,
}

impl Packet {
    /// Build a packet. `arrived` is stamped by the kernel.
    pub fn new(
        src: ProcId,
        wire_bytes: usize,
        class: DeliveryClass,
        tag: u64,
        payload: Payload,
    ) -> Packet {
        Packet {
            src,
            wire_bytes,
            class,
            tag,
            arrived: SimTime::ZERO,
            cause: vopp_trace::NO_CTX,
            payload,
        }
    }

    /// Downcast the payload to a concrete message type, consuming the packet.
    ///
    /// If this packet holds the payload's last reference the value moves out
    /// without a copy; a payload still shared (e.g. retained by an RPC layer
    /// for retransmission) is cloned — its `Arc`-shared internals stay shared.
    ///
    /// Panics if the payload is of a different type: a type confusion here is
    /// always a protocol bug, never a recoverable condition.
    pub fn expect<T: Any + Send + Sync + Clone>(self) -> T {
        match self.payload.downcast::<T>() {
            Ok(arc) => Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()),
            Err(_) => panic!(
                "packet from proc {} (tag {}) had unexpected payload type; wanted {}",
                self.src,
                self.tag,
                std::any::type_name::<T>()
            ),
        }
    }

    /// Downcast the payload and keep it shared, consuming the packet.
    /// Never copies the value, whatever its reference count.
    pub fn expect_arc<T: Any + Send + Sync>(self) -> Arc<T> {
        match self.payload.downcast::<T>() {
            Ok(arc) => arc,
            Err(_) => panic!(
                "packet from proc {} (tag {}) had unexpected payload type; wanted Arc<{}>",
                self.src,
                self.tag,
                std::any::type_name::<T>()
            ),
        }
    }

    /// Borrow the payload as `T` without consuming the packet.
    /// Returns `None` on type mismatch.
    pub fn peek<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }

    /// Try to downcast the payload, returning the packet back on mismatch.
    pub fn try_expect<T: Any + Send + Sync + Clone>(self) -> Result<T, Packet> {
        let Packet {
            src,
            wire_bytes,
            class,
            tag,
            arrived,
            cause,
            payload,
        } = self;
        match payload.downcast::<T>() {
            Ok(arc) => Ok(Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone())),
            Err(payload) => Err(Packet {
                src,
                wire_bytes,
                class,
                tag,
                arrived,
                cause,
                payload,
            }),
        }
    }
}

impl Clone for Packet {
    /// Cheap: the payload is `Arc`-shared, not copied. Used by the parallel
    /// kernel to log deferred sends for the commit replay.
    fn clone(&self) -> Packet {
        Packet {
            src: self.src,
            wire_bytes: self.wire_bytes,
            class: self.class,
            tag: self.tag,
            arrived: self.arrived,
            cause: self.cause,
            payload: self.payload.clone(),
        }
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Packet")
            .field("src", &self.src)
            .field("wire_bytes", &self.wire_bytes)
            .field("class", &self.class)
            .field("tag", &self.tag)
            .field("arrived", &self.arrived)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expect_roundtrip() {
        let p = Packet::new(3, 100, DeliveryClass::App, 7, Arc::new(42u32));
        assert_eq!(p.src, 3);
        assert_eq!(p.expect::<u32>(), 42);
    }

    #[test]
    #[should_panic(expected = "unexpected payload type")]
    fn expect_wrong_type_panics() {
        let p = Packet::new(0, 0, DeliveryClass::App, 0, Arc::new("hi"));
        let _ = p.expect::<u64>();
    }

    #[test]
    fn try_expect_returns_packet_on_mismatch() {
        let p = Packet::new(1, 10, DeliveryClass::Svc, 9, Arc::new(5i64));
        let p = p.try_expect::<String>().unwrap_err();
        assert_eq!(p.tag, 9);
        assert_eq!(p.try_expect::<i64>().unwrap(), 5);
    }

    #[test]
    fn expect_moves_out_sole_reference_and_clones_shared() {
        // Sole reference: the value moves out (same Vec buffer, not a copy).
        let v: Arc<dyn Any + Send + Sync> = Arc::new(vec![1u8, 2, 3]);
        let buf_ptr = {
            let r = v.downcast_ref::<Vec<u8>>().unwrap();
            r.as_ptr()
        };
        let p = Packet::new(0, 8, DeliveryClass::App, 0, v);
        let out = p.expect::<Vec<u8>>();
        assert_eq!(out.as_ptr(), buf_ptr);

        // Shared reference: the packet clones, the retained copy is intact.
        let retained: Arc<dyn Any + Send + Sync> = Arc::new(vec![9u8; 4]);
        let p = Packet::new(0, 8, DeliveryClass::App, 0, retained.clone());
        let out = p.expect::<Vec<u8>>();
        assert_eq!(out, vec![9u8; 4]);
        assert_eq!(retained.downcast_ref::<Vec<u8>>().unwrap(), &vec![9u8; 4]);
    }

    #[test]
    fn peek_borrows_without_consuming() {
        let p = Packet::new(2, 4, DeliveryClass::App, 1, Arc::new(7u16));
        assert_eq!(p.peek::<u16>(), Some(&7));
        assert_eq!(p.peek::<u32>(), None);
        assert_eq!(p.expect::<u16>(), 7);
    }

    #[test]
    fn expect_arc_preserves_sharing() {
        let payload: Arc<dyn Any + Send + Sync> = Arc::new(String::from("shared"));
        let p = Packet::new(0, 8, DeliveryClass::App, 0, payload.clone());
        let arc = p.expect_arc::<String>();
        assert_eq!(*arc, "shared");
        // Both handles point at the same allocation.
        assert_eq!(Arc::strong_count(&arc), 2);
    }
}
