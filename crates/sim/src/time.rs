//! Virtual time for the simulation kernel.
//!
//! All simulated time is kept in integer nanoseconds so that event ordering is
//! exact and runs are bit-for-bit reproducible. [`SimTime`] is a point on the
//! virtual time line; [`SimDuration`] is a distance between two points.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, in nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of the virtual time line.
    pub const ZERO: SimTime = SimTime(0);

    /// Raw nanosecond count.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Time expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Distance from an earlier point. Panics in debug builds if `earlier`
    /// is in fact later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "since() with a later time");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating distance from another point (zero if `other` is later).
    #[inline]
    pub fn saturating_since(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to nanoseconds).
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        debug_assert!(s >= 0.0, "negative duration");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Span in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Span in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        debug_assert!(other.0 <= self.0, "duration underflow");
        SimDuration(self.0 - other.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(SimDuration::from_micros(3).nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).nanos(), 500_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        assert_eq!(t.nanos(), 10_000);
        let t2 = t + SimDuration::from_nanos(1);
        assert_eq!((t2 - t).nanos(), 1);
        assert_eq!((SimDuration::from_nanos(6) / 2).nanos(), 3);
        assert_eq!((SimDuration::from_nanos(6) * 2).nanos(), 12);
    }

    #[test]
    fn saturating_since_is_zero_for_future() {
        let a = SimTime(5);
        let b = SimTime(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration(4));
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration(1) < SimDuration(2));
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn conversions() {
        let d = SimDuration::from_millis(1500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_micros_f64() - 1_500_000.0).abs() < 1e-9);
        let t = SimTime(2_000_000_000);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-12);
    }
}
