#![warn(missing_docs)]

//! # vopp-sim — deterministic discrete-event simulation kernel
//!
//! The substrate under the VOPP/DSM reproduction: a sequential discrete-event
//! simulator whose processes are ordinary Rust closures running on their own
//! threads, cooperatively scheduled in virtual-time order (exactly one thread
//! executes at any instant). Processes communicate only through the kernel
//! (`send`/`recv`), so runs are bit-for-bit deterministic.
//!
//! * [`Sim`] — build and run a simulation.
//! * [`AppCtx`] — process-side API: `compute`, `send`, `recv`, timeouts.
//! * [`SvcCtx`] + [`Handler`] — interrupt-style service handlers, the
//!   simulation analogue of a DSM's SIGIO request handler.
//! * [`NetModel`] — pluggable timing/loss model ([`PerfectNet`] here; the
//!   switched-Ethernet model lives in `vopp-simnet`).

mod ctx;
mod kernel;
mod net;
mod packet;
pub mod sync;
mod time;
mod window;

/// Identifier of a simulated process (0-based, dense).
pub type ProcId = usize;

pub use ctx::{AppCtx, SvcCtx};
pub use kernel::{
    auto_engage_threshold, auto_workers_override, direct_handoff_default, handoff_totals,
    run_simple, set_auto_engage_threshold, set_auto_workers_override, set_direct_handoff_default,
    set_sim_workers_default, sim_workers_default, window_totals, Handler, HandoffStats, ProcTimes,
    RunOutcome, Sim, WindowStats, AUTO_ENGAGE_DEFAULT, DENSITY_BUCKETS, SIM_WORKERS_AUTO,
};
pub use net::{NetModel, PerfectNet, RouteRequest};
pub use packet::{DeliveryClass, Packet, Payload};
pub use time::{SimDuration, SimTime};
pub use vopp_trace::{
    CausalLog, CausalProfiler, CtxKind, CtxRecord, EventKind, OpKind, OpSpan, Tracer, NO_CTX,
};
pub use window::{HARD_MIN_PARALLEL_LOOKAHEAD, MIN_PARALLEL_LOOKAHEAD};
