//! The discrete-event scheduler: a sequential core plus an optional
//! conservative-lookahead parallel kernel.
//!
//! Every simulated process is backed by an OS thread, but **within one node
//! group exactly one thread runs at any instant**: an event-loop thread pops
//! events in `(time, seq)` order and hands control to the corresponding
//! process thread, then waits for it to block again. This gives
//! straight-line imperative process code (no hand-written state machines)
//! while keeping execution fully deterministic.
//!
//! Service-class packets are dispatched to a per-process handler *at their
//! arrival time*, even while the destination's application thread is in the
//! middle of a `compute` span — modelling the interrupt-driven request
//! handlers (SIGIO) of real page-based DSM systems such as TreadMarks.
//!
//! ## Direct handoff
//!
//! The naive schedule costs two OS-thread handoffs per event: blocking
//! process → controller → next process. Instead, the blocking thread drains
//! the event queue itself — advancing virtual time, delivering packets, and
//! running service handlers in exactly the order the controller would — and
//! hands control straight to the next runnable process while the controller
//! stays parked. The controller pops events itself only at startup, when
//! handoff is disabled, and when the queue empties (termination / deadlock
//! detection). Event pop order, trace order and every clock advance are
//! identical either way; only the OS-thread ping-pong is elided. Savings
//! (wake-ups that skipped the controller) are counted in
//! [`HandoffStats`] (per run) and in process-wide totals ([`handoff_totals`])
//! for wall-clock reporting.
//!
//! ## The parallel kernel
//!
//! With [`Sim::set_workers`]` > 1` and a network model that exports a
//! [`NetModel::lookahead`] bound, the run is partitioned into node groups
//! executed window-by-window in the Chandy–Misra–Bryant style: all events in
//! `[T, T + lookahead)` are causally independent across groups (any packet
//! sent inside the window arrives at or after its end), so each group can
//! execute its slice of the window concurrently. Groups record side effects
//! into per-group logs which a serial *commit* replays in exact global
//! `(time, seq)` order — routing every send through the shared network
//! model, appending to the trace ring, and growing the causal log precisely
//! as the sequential kernel would have. Every artifact (traces, causal
//! records, network statistics, RNG-driven drops) is therefore byte-identical
//! at any worker count; see `window.rs` for the mechanism.

use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use vopp_trace::{CausalProfiler, CtxKind, EventKind, Tracer, NO_CTX};

use crate::ctx::{AppCtx, SvcCtx};
use crate::net::{NetModel, RouteRequest};
use crate::packet::{DeliveryClass, Packet};
use crate::sync::{Condvar, Mutex, MutexGuard};
use crate::time::{SimDuration, SimTime};
use crate::window::{self, Action, Doorbell, GroupCell, PushedEv};
use crate::ProcId;

/// A service-request handler: invoked by the kernel when a [`DeliveryClass::Svc`]
/// packet arrives at the process it is registered for.
pub type Handler = Box<dyn FnMut(&mut SvcCtx<'_>, Packet) + Send + 'static>;

/// How process wake-ups were scheduled during a run. Wall-clock bookkeeping
/// only — never part of the virtual-time results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandoffStats {
    /// Wake-ups transferred process→process without running the controller.
    pub direct: u64,
    /// Wake-ups that went through the controller thread.
    pub via_controller: u64,
}

impl HandoffStats {
    /// Total wake-ups.
    pub fn total(&self) -> u64 {
        self.direct + self.via_controller
    }
}

/// Process-wide handoff totals, accumulated across every finished run.
static TOTAL_DIRECT: AtomicU64 = AtomicU64::new(0);
static TOTAL_VIA_CTL: AtomicU64 = AtomicU64::new(0);
/// Process-wide default for [`Sim::set_direct_handoff`].
static DIRECT_HANDOFF_DEFAULT: AtomicBool = AtomicBool::new(true);
/// Process-wide default for [`Sim::set_workers`].
static SIM_WORKERS_DEFAULT: AtomicUsize = AtomicUsize::new(1);

/// Sentinel worker count selecting the event-density-adaptive kernel
/// (`--sim-workers auto`): the group count is resolved from the host's
/// available parallelism and the coordinator engages the worker pool only
/// for windows dense enough to amortize dispatch, tracked by a rolling
/// events-per-window estimate against [`auto_engage_threshold`]. Sparse
/// stretches run on the coordinator thread alone, so auto never pays
/// worker wake-ups where parallelism cannot win.
pub const SIM_WORKERS_AUTO: usize = usize::MAX;

/// Default events-per-window engage threshold for `auto` mode. Deliberately
/// conservative: the `parkernel_density` sweep in
/// `crates/bench/benches/substrate.rs` measures the host's actual crossover
/// (the lowest density where a 4-worker pool beats sequential) and prints it
/// next to this default — on hosts where no crossover exists (a single
/// hardware thread resolves `auto` to sequential before the threshold is
/// ever consulted) the sweep says so instead. Misjudging high only costs the
/// parallel win on moderately dense windows; misjudging low pays dispatch
/// overhead on every sparse window, so the default errs high.
pub const AUTO_ENGAGE_DEFAULT: u64 = 96;

/// Process-wide engage threshold for `auto` mode, in events per window.
static AUTO_ENGAGE_THRESHOLD: AtomicU64 = AtomicU64::new(AUTO_ENGAGE_DEFAULT);

/// Set the events-per-window threshold above which `auto` mode dispatches
/// windows to the worker pool (clamped to at least 1). Exposed for tests
/// and calibration; the default is [`AUTO_ENGAGE_DEFAULT`].
pub fn set_auto_engage_threshold(events_per_window: u64) {
    AUTO_ENGAGE_THRESHOLD.store(events_per_window.max(1), Ordering::Relaxed);
}

/// The current `auto`-mode engage threshold (events per window).
pub fn auto_engage_threshold() -> u64 {
    AUTO_ENGAGE_THRESHOLD.load(Ordering::Relaxed).max(1)
}

/// Process-wide override for the group count `auto` resolves to
/// (0 = derive from the host's available parallelism).
static AUTO_WORKERS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pin the group count [`SIM_WORKERS_AUTO`] resolves to instead of deriving
/// it from the host's available parallelism (0 restores host-derived sizing;
/// larger values are clamped to the same cap as host-derived widths). Any
/// value yields byte-identical results — this only exists so tests and
/// calibration runs can exercise the adaptive kernel's engage/disengage
/// machinery on hosts whose parallelism would resolve `auto` to sequential.
pub fn set_auto_workers_override(workers: usize) {
    AUTO_WORKERS_OVERRIDE.store(workers, Ordering::Relaxed);
}

/// The current `auto`-width override (0 = host-derived).
pub fn auto_workers_override() -> usize {
    AUTO_WORKERS_OVERRIDE.load(Ordering::Relaxed)
}

/// Handoff totals accumulated by every run finished in this process so far.
pub fn handoff_totals() -> HandoffStats {
    HandoffStats {
        direct: TOTAL_DIRECT.load(Ordering::Relaxed),
        via_controller: TOTAL_VIA_CTL.load(Ordering::Relaxed),
    }
}

/// Set the process-wide default for direct handoff scheduling (normally on;
/// turning it off forces every wake-up through the controller thread, which
/// is only useful for comparative benchmarks and scheduling tests).
pub fn set_direct_handoff_default(on: bool) {
    DIRECT_HANDOFF_DEFAULT.store(on, Ordering::Relaxed);
}

/// The current process-wide direct-handoff default.
pub fn direct_handoff_default() -> bool {
    DIRECT_HANDOFF_DEFAULT.load(Ordering::Relaxed)
}

/// Set the process-wide default worker count for new [`Sim`]s (clamped to at
/// least 1; [`SIM_WORKERS_AUTO`] selects the adaptive kernel). Runs built
/// afterwards use it unless overridden per run with [`Sim::set_workers`].
/// Wired to `--sim-workers` / `VOPP_SIM_WORKERS` by the bench CLI.
pub fn set_sim_workers_default(workers: usize) {
    let w = if workers == SIM_WORKERS_AUTO {
        workers
    } else {
        workers.max(1)
    };
    SIM_WORKERS_DEFAULT.store(w, Ordering::Relaxed);
}

/// The current process-wide simulation worker-count default
/// ([`SIM_WORKERS_AUTO`] when the adaptive kernel is selected).
pub fn sim_workers_default() -> usize {
    SIM_WORKERS_DEFAULT.load(Ordering::Relaxed).max(1)
}

/// Number of events-per-window histogram buckets in [`WindowStats::density`]:
/// bucket `i < 7` counts windows holding `2^i ..= 2^(i+1)-1` events, the
/// last bucket counts windows of 128 events or more.
pub const DENSITY_BUCKETS: usize = 8;

/// Intra-run parallel-kernel counters for one run. Wall-clock bookkeeping
/// only — never part of the virtual-time results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Conservative-lookahead windows executed (0 on sequential runs).
    pub windows: u64,
    /// Windows whose events all targeted one group, executed inline on the
    /// coordinator without logging (the sequential fast path).
    pub inline_windows: u64,
    /// Windows executed by two or more groups concurrently.
    pub parallel_windows: u64,
    /// Multi-group windows the adaptive kernel ran serially on the
    /// coordinator thread because the rolling density estimate sat below
    /// the engage threshold (still deferred + committed; no dispatch).
    pub serial_windows: u64,
    /// Events drained into windows.
    pub window_events: u64,
    /// Wall time spent executing windows, including coordinator idle while
    /// the slowest group finishes (the barrier cost).
    pub exec_ns: u64,
    /// Wall time spent in the serial commit replay that merges group logs.
    pub merge_ns: u64,
    /// Share of `merge_ns` replaying order-sensitive effects (network
    /// routing, seq assignment, backlog bookkeeping).
    pub commit_route_ns: u64,
    /// Share of `merge_ns` bulk-appending trace/causal records from the
    /// per-group record logs.
    pub commit_append_ns: u64,
    /// Window dispatches a worker observed while still spinning (cheap).
    pub spin_hits: u64,
    /// Window dispatches a worker observed only after parking (an OS wake).
    pub park_wakes: u64,
    /// Events-per-window histogram; see [`DENSITY_BUCKETS`].
    pub density: [u64; DENSITY_BUCKETS],
    /// Runs that requested workers but fell back to sequential (no lookahead
    /// bound, or one below the floor).
    pub fallback_runs: u64,
}

impl WindowStats {
    /// The histogram bucket a window with `events` events lands in.
    pub fn density_bucket(events: u64) -> usize {
        (63 - (events.max(1).leading_zeros() as usize).min(63)).min(DENSITY_BUCKETS - 1)
    }
}

static TOTAL_WINDOWS: AtomicU64 = AtomicU64::new(0);
static TOTAL_INLINE_WINDOWS: AtomicU64 = AtomicU64::new(0);
static TOTAL_PAR_WINDOWS: AtomicU64 = AtomicU64::new(0);
static TOTAL_SERIAL_WINDOWS: AtomicU64 = AtomicU64::new(0);
static TOTAL_WINDOW_EVENTS: AtomicU64 = AtomicU64::new(0);
static TOTAL_EXEC_NS: AtomicU64 = AtomicU64::new(0);
static TOTAL_MERGE_NS: AtomicU64 = AtomicU64::new(0);
static TOTAL_ROUTE_NS: AtomicU64 = AtomicU64::new(0);
static TOTAL_APPEND_NS: AtomicU64 = AtomicU64::new(0);
static TOTAL_SPIN_HITS: AtomicU64 = AtomicU64::new(0);
static TOTAL_PARK_WAKES: AtomicU64 = AtomicU64::new(0);
static TOTAL_DENSITY: [AtomicU64; DENSITY_BUCKETS] = [const { AtomicU64::new(0) }; DENSITY_BUCKETS];
static TOTAL_FALLBACK_RUNS: AtomicU64 = AtomicU64::new(0);

/// Parallel-kernel totals accumulated by every run finished in this process.
pub fn window_totals() -> WindowStats {
    WindowStats {
        windows: TOTAL_WINDOWS.load(Ordering::Relaxed),
        inline_windows: TOTAL_INLINE_WINDOWS.load(Ordering::Relaxed),
        parallel_windows: TOTAL_PAR_WINDOWS.load(Ordering::Relaxed),
        serial_windows: TOTAL_SERIAL_WINDOWS.load(Ordering::Relaxed),
        window_events: TOTAL_WINDOW_EVENTS.load(Ordering::Relaxed),
        exec_ns: TOTAL_EXEC_NS.load(Ordering::Relaxed),
        merge_ns: TOTAL_MERGE_NS.load(Ordering::Relaxed),
        commit_route_ns: TOTAL_ROUTE_NS.load(Ordering::Relaxed),
        commit_append_ns: TOTAL_APPEND_NS.load(Ordering::Relaxed),
        spin_hits: TOTAL_SPIN_HITS.load(Ordering::Relaxed),
        park_wakes: TOTAL_PARK_WAKES.load(Ordering::Relaxed),
        density: std::array::from_fn(|i| TOTAL_DENSITY[i].load(Ordering::Relaxed)),
        fallback_runs: TOTAL_FALLBACK_RUNS.load(Ordering::Relaxed),
    }
}

fn add_window_totals(w: &WindowStats) {
    TOTAL_WINDOWS.fetch_add(w.windows, Ordering::Relaxed);
    TOTAL_INLINE_WINDOWS.fetch_add(w.inline_windows, Ordering::Relaxed);
    TOTAL_PAR_WINDOWS.fetch_add(w.parallel_windows, Ordering::Relaxed);
    TOTAL_SERIAL_WINDOWS.fetch_add(w.serial_windows, Ordering::Relaxed);
    TOTAL_WINDOW_EVENTS.fetch_add(w.window_events, Ordering::Relaxed);
    TOTAL_EXEC_NS.fetch_add(w.exec_ns, Ordering::Relaxed);
    TOTAL_MERGE_NS.fetch_add(w.merge_ns, Ordering::Relaxed);
    TOTAL_ROUTE_NS.fetch_add(w.commit_route_ns, Ordering::Relaxed);
    TOTAL_APPEND_NS.fetch_add(w.commit_append_ns, Ordering::Relaxed);
    TOTAL_SPIN_HITS.fetch_add(w.spin_hits, Ordering::Relaxed);
    TOTAL_PARK_WAKES.fetch_add(w.park_wakes, Ordering::Relaxed);
    for (total, n) in TOTAL_DENSITY.iter().zip(w.density) {
        total.fetch_add(n, Ordering::Relaxed);
    }
    TOTAL_FALLBACK_RUNS.fetch_add(w.fallback_runs, Ordering::Relaxed);
}

pub(crate) enum Event {
    Resume(ProcId),
    Deliver { dst: ProcId, pkt: Packet },
    Timer { dst: ProcId, token: u64 },
}

impl Event {
    /// The process an event is executed on behalf of (used to bucket events
    /// into node groups).
    pub(crate) fn target(&self) -> ProcId {
        match self {
            Event::Resume(p) => *p,
            Event::Deliver { dst, .. } => *dst,
            Event::Timer { dst, .. } => *dst,
        }
    }
}

pub(crate) struct QEntry {
    pub(crate) at: SimTime,
    /// Orders global-seq entries (tier 0) before window-local provisional
    /// entries (tier 1) at equal times. Always 0 on the sequential path, so
    /// ordering degenerates to the classic `(time, seq)`.
    pub(crate) tier: u8,
    pub(crate) seq: u64,
    pub(crate) ev: Event,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.tier == other.tier && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    // Reversed: BinaryHeap is a max-heap and we want the earliest event first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.tier, other.seq).cmp(&(self.at, self.tier, self.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Thread spawned, waiting for its first resume.
    Startup,
    /// This process's thread is the one running.
    Running,
    /// Blocked until its scheduled `Resume` event fires (compute/sleep).
    BlockedResume,
    /// Blocked in `recv`; `deadline` is the live timeout token, if any.
    WaitRecv { deadline: Option<u64> },
    /// Process body returned.
    Finished,
}

pub(crate) struct ProcInfo {
    pub(crate) phase: Phase,
    pub(crate) clock: SimTime,
    pub(crate) mailbox: VecDeque<Packet>,
    pub(crate) next_token: u64,
    pub(crate) timed_out: bool,
    pub(crate) times: ProcTimes,
}

impl ProcInfo {
    fn new() -> ProcInfo {
        ProcInfo {
            phase: Phase::Startup,
            clock: SimTime::ZERO,
            mailbox: VecDeque::new(),
            next_token: 0,
            timed_out: false,
            times: ProcTimes::default(),
        }
    }
}

/// Kernel-level classification of one process's virtual time: every clock
/// advance happens in `Shared::wake_now`, and the phase the process was
/// blocked in says which kind of time just elapsed. `compute_ns + blocked_ns`
/// equals the process's final clock, by construction — higher layers (DSM,
/// MPI) check their finer-grained phase breakdowns against these two totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcTimes {
    /// Time spent advancing through `compute`/`sleep` spans (CPU time).
    pub compute_ns: u64,
    /// Time spent blocked in `recv` waiting for a packet or timeout.
    pub blocked_ns: u64,
}

/// How a group's scheduler treats side effects right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// The group owns the shared [`GlobalState`]: sends route immediately,
    /// traces and causal records go to the shared sinks, event seqs are
    /// global. The sequential run and single-active-group windows.
    Inline,
    /// Two or more groups execute concurrently: side effects append to the
    /// group's [`Action`] log for the serial commit; in-window events get
    /// window-local provisional seqs (tier 1).
    Deferred,
}

/// State that must be touched in exact global event order: the event-seq
/// counter, the cross-window future event heap, the network model (RNG and
/// link occupancy), and the per-destination delivery backlog the model reads
/// for overflow decisions. On sequential runs it lives inside the single
/// group's scheduler; on parallel runs the coordinator holds it between
/// windows and lends it to the group of a single-active-group window.
pub(crate) struct GlobalState {
    pub(crate) seq: u64,
    pub(crate) future: BinaryHeap<QEntry>,
    pub(crate) pending_bytes: Vec<usize>,
    pub(crate) net: Box<dyn NetModel>,
}

impl GlobalState {
    /// Push with the next global seq (tier 0).
    pub(crate) fn push_future(&mut self, at: SimTime, ev: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.future.push(QEntry {
            at,
            tier: 0,
            seq,
            ev,
        });
    }
}

/// One node group's scheduler. A sequential run is exactly one group with no
/// window bound and the [`GlobalState`] permanently resident.
pub(crate) struct Sched {
    pub(crate) now: SimTime,
    queue: BinaryHeap<QEntry>,
    /// This group's processes, indexed by `proc - lo`.
    pub(crate) procs: Vec<ProcInfo>,
    pub(crate) lo: ProcId,
    pub(crate) running: Option<ProcId>,
    pub(crate) live: usize,
    pub(crate) shutdown: bool,
    pub(crate) panicked: bool,
    direct_handoff: bool,
    /// A process thread is inside `try_handoff` — possibly with the lock
    /// released while it runs a service handler. The event-loop thread must
    /// stay parked until the drain finishes, even on a spurious condvar wake.
    draining: bool,
    pub(crate) handoff: HandoffStats,
    pub(crate) mode: Mode,
    /// Exclusive upper bound of the current window; `None` = unbounded
    /// (sequential run).
    pub(crate) t_end: Option<SimTime>,
    /// Window-local seq counter for tier-1 entries (deferred mode).
    local_seq: u64,
    /// The model's exact self-delivery latency (deferred-mode loopbacks are
    /// predicted locally and re-verified at commit). Unused sequentially.
    loopback: SimDuration,
    pub(crate) global: Option<GlobalState>,
    /// The group's side-effect log + provisional causal-id state; the same
    /// `Arc` is installed as the thread-local sink on the group's threads.
    pub(crate) cell: Arc<GroupCell>,
    pub(crate) tracer: Option<Arc<Tracer>>,
    /// Causal-edge recorder for the critical-path profiler; pure
    /// observation — `None` costs one pointer test per wake/send.
    pub(crate) profiler: Option<Arc<CausalProfiler>>,
}

impl Sched {
    #[inline]
    pub(crate) fn pi(&self, p: ProcId) -> &ProcInfo {
        &self.procs[p - self.lo]
    }

    #[inline]
    pub(crate) fn pi_mut(&mut self, p: ProcId) -> &mut ProcInfo {
        &mut self.procs[p - self.lo]
    }

    #[inline]
    fn owns(&self, p: ProcId) -> bool {
        p >= self.lo && p < self.lo + self.procs.len()
    }

    #[inline]
    fn in_window(&self, at: SimTime) -> bool {
        self.t_end.is_none_or(|te| at < te)
    }

    /// Coordinator-side: arm a window on this group, seeding its queue with
    /// the bucketed events (already carrying their global seqs).
    pub(crate) fn open_window(&mut self, mode: Mode, t_end: SimTime, bucket: &mut Vec<QEntry>) {
        debug_assert!(self.queue.is_empty(), "window opened over a live queue");
        self.mode = mode;
        self.t_end = Some(t_end);
        self.local_seq = 0;
        for e in bucket.drain(..) {
            self.queue.push(e);
        }
    }

    /// Coordinator-side: drop the window bounds once the group has parked.
    pub(crate) fn close_window(&mut self) {
        self.mode = Mode::Inline;
        self.t_end = None;
    }

    /// Whether the group's queue is exhausted (window complete).
    pub(crate) fn window_drained(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pop the earliest event if it falls inside the current window.
    pub(crate) fn pop_due(&mut self) -> Option<QEntry> {
        if let (Some(te), Some(head)) = (self.t_end, self.queue.peek()) {
            if head.at >= te {
                return None;
            }
        }
        self.queue.pop()
    }

    /// Log the start of an event execution so the commit replay can align
    /// the group's action log with the global event order.
    pub(crate) fn note_begin(&self, entry: &QEntry) {
        if self.mode == Mode::Deferred {
            self.cell.begin_event(entry.at);
        }
    }

    /// Deliver-event bookkeeping: the destination's backlog shrinks.
    /// One-sided deliveries never enter the backlog (preposted buffers, not
    /// the receive queue), so callers skip this for them.
    pub(crate) fn note_deliver_pop(&mut self, dst: ProcId, wire_bytes: usize) {
        match self.mode {
            Mode::Inline => {
                let g = self
                    .global
                    .as_mut()
                    .expect("inline group owns global state");
                g.pending_bytes[dst] -= wire_bytes;
            }
            Mode::Deferred => self.cell.push(Action::DeliverPop { dst, wire_bytes }),
        }
    }

    pub(crate) fn push_event(&mut self, at: SimTime, ev: Event) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        match self.mode {
            Mode::Inline => {
                let in_win = self.in_window(at);
                debug_assert!(
                    !in_win || self.owns(ev.target()),
                    "in-window event targets a foreign group"
                );
                let g = self
                    .global
                    .as_mut()
                    .expect("inline group owns global state");
                let seq = g.seq;
                g.seq += 1;
                let e = QEntry {
                    at,
                    tier: 0,
                    seq,
                    ev,
                };
                if in_win {
                    self.queue.push(e);
                } else {
                    g.future.push(e);
                }
            }
            Mode::Deferred => {
                match &ev {
                    Event::Resume(p) => self.cell.push(Action::Push {
                        at,
                        ev: PushedEv::Resume(*p),
                    }),
                    Event::Timer { dst, token } => self.cell.push(Action::Push {
                        at,
                        ev: PushedEv::Timer {
                            dst: *dst,
                            token: *token,
                        },
                    }),
                    // In-window loopback deliveries: `submit_send` already
                    // logged the send; the commit re-routes it.
                    Event::Deliver { .. } => {}
                }
                if self.in_window(at) {
                    debug_assert!(self.owns(ev.target()));
                    let seq = self.local_seq;
                    self.local_seq += 1;
                    self.queue.push(QEntry {
                        at,
                        tier: 1,
                        seq,
                        ev,
                    });
                }
                // Out-of-window events exist only in the log; the commit
                // assigns their global seq and pushes them to the future.
            }
        }
    }

    /// Route a packet through the network model and schedule its delivery.
    pub(crate) fn submit_send(&mut self, now: SimTime, dst: ProcId, pkt: Packet) {
        if let Some(tr) = &self.tracer {
            tr.record(
                now.0,
                pkt.src,
                EventKind::NetSend {
                    dst,
                    wire_bytes: pkt.wire_bytes as u64,
                    tag: pkt.tag,
                    svc: pkt.class == DeliveryClass::Svc,
                },
            );
        }
        match self.mode {
            Mode::Inline => {
                let g = self
                    .global
                    .as_mut()
                    .expect("inline group owns global state");
                let one_sided = pkt.class == DeliveryClass::OneSided;
                let req = RouteRequest {
                    now,
                    src: pkt.src,
                    dst,
                    wire_bytes: pkt.wire_bytes,
                    pending_bytes_at_dst: g.pending_bytes[dst],
                    reliable: one_sided,
                };
                if let Some(at) = g.net.route(req) {
                    // One-sided writes land in preposted buffers, not the
                    // receive queue, so they add no overflow occupancy.
                    if !one_sided {
                        g.pending_bytes[dst] += pkt.wire_bytes;
                    }
                    self.push_event(at.max(now), Event::Deliver { dst, pkt });
                }
            }
            Mode::Deferred => {
                // Routing reads global state (RNG, link occupancy, backlog)
                // and must run in exact global send order: defer it to the
                // commit. Only a loopback is predictable locally — it is
                // exact, lossless, and touches no shared routing state
                // (the `loopback_latency` contract) — and only a loopback
                // can land inside the window (cross-node deliveries are
                // bounded below by the lookahead, the window length).
                let loopback = pkt.src == dst;
                self.cell.log_send(now, dst, pkt.clone());
                if loopback {
                    let at = now + self.loopback;
                    if self.in_window(at) {
                        self.push_event(at, Event::Deliver { dst, pkt });
                    }
                }
            }
        }
    }
}

/// One node group: its scheduler, the condvar its event-loop thread (the
/// controller sequentially, the group runner in parallel mode) parks on
/// *during* a window, the lock-free dispatch slot its runner watches
/// *between* windows, and the side-effect cell shared with the thread-local
/// sinks.
pub(crate) struct Group {
    pub(crate) sched: Mutex<Sched>,
    pub(crate) ctl_cv: Condvar,
    pub(crate) cell: Arc<GroupCell>,
    pub(crate) bell: Doorbell,
}

/// Parallel-window completion barrier: dispatched-but-unfinished group
/// count, decremented lock-free by finishing runners; the last one unparks
/// the coordinator.
pub(crate) struct WinSync {
    pub(crate) pending: AtomicUsize,
    /// First service-handler panic raised on a runner thread; rethrown by
    /// the coordinator once every window participant has parked.
    pub(crate) svc_panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Shared kernel state: the per-group schedulers plus the condition
/// variables used for the event-loop/process handoffs.
pub(crate) struct Shared {
    pub(crate) groups: Vec<Group>,
    /// Group index of each process.
    pub(crate) group_of: Vec<usize>,
    pub(crate) proc_cv: Vec<Condvar>,
    pub(crate) nprocs: usize,
    pub(crate) win: WinSync,
    /// Service handlers, shared so whichever thread pops a `Svc` delivery —
    /// the event loop or a draining process thread — can run it. A handler is
    /// taken out of its slot for the duration of the call; event execution is
    /// serialized per group (`running`/`draining`) and a process belongs to
    /// exactly one group, so the slot is never contended.
    handlers: Mutex<Vec<Option<Handler>>>,
    /// Same tracer as `Sched::tracer`, duplicated outside the mutex so the
    /// disabled path is a pointer test without taking a scheduler lock.
    pub(crate) tracer: Option<Arc<Tracer>>,
}

impl Shared {
    #[inline]
    pub(crate) fn group_ix(&self, p: ProcId) -> usize {
        self.group_of[p]
    }

    #[inline]
    pub(crate) fn group(&self, p: ProcId) -> &Group {
        &self.groups[self.group_of[p]]
    }

    /// Lock the scheduler of the group owning process `p`.
    #[inline]
    pub(crate) fn lock_proc(&self, p: ProcId) -> MutexGuard<'_, Sched> {
        self.group(p).sched.lock()
    }

    /// Called from a process thread: yield control and wait until it is
    /// handed back. The caller must already have set its own phase to the
    /// blocked state it wants. If a queued event wakes a process, control
    /// transfers directly; the group's event loop is only notified when the
    /// drain cannot continue (empty window, shutdown, or handoff disabled).
    pub(crate) fn yield_and_wait<'a>(&'a self, me: ProcId, s: &mut MutexGuard<'a, Sched>) {
        debug_assert_eq!(s.running, Some(me));
        s.running = None;
        if !self.try_handoff(me, s) {
            self.group(me).ctl_cv.notify_one();
        }
        while s.running != Some(me) {
            if s.shutdown {
                // Unblock so the run can report the real error.
                panic!("simulation shut down while proc {me} was blocked");
            }
            self.proc_cv[me].wait(s);
        }
        debug_assert_eq!(s.pi(me).phase, Phase::Running);
    }

    /// Drain the group's event queue — in exactly the order the event loop
    /// would, advancing virtual time and running service handlers the same
    /// way — until an event wakes a process. Returns `true` if a process was
    /// woken (the event loop stays parked), `false` if it must take over:
    /// the window is exhausted, handoff is disabled, or the run is shutting
    /// down.
    ///
    /// Advancing `now` and running handlers from a process thread is safe:
    /// event execution is serialized per group by `Sched::draining` (set
    /// here, checked by the event loop's parking loop), and the event loop
    /// only reads scheduler state after reacquiring the lock.
    fn try_handoff<'a>(&'a self, me: ProcId, s: &mut MutexGuard<'a, Sched>) -> bool {
        if !s.direct_handoff || s.panicked || s.shutdown {
            return false;
        }
        s.draining = true;
        let woke = self.drain(me, s);
        s.draining = false;
        woke
    }

    /// The loop body of [`Shared::try_handoff`]; `Sched::draining` is set.
    fn drain<'a>(&'a self, me: ProcId, s: &mut MutexGuard<'a, Sched>) -> bool {
        loop {
            let Some(entry) = s.pop_due() else {
                return false;
            };
            debug_assert!(entry.at >= s.now, "event queue went backwards");
            s.now = entry.at;
            s.note_begin(&entry);
            match entry.ev {
                Event::Resume(p) => match s.pi(p).phase {
                    Phase::Startup | Phase::BlockedResume => {
                        self.wake_now(s, p, entry.at, NO_CTX);
                        s.handoff.direct += 1;
                        return true;
                    }
                    Phase::Finished => {}
                    ref ph => unreachable!("resume for proc {p} in phase {ph:?}"),
                },
                Event::Deliver { dst, mut pkt } => {
                    if pkt.class != DeliveryClass::OneSided {
                        s.note_deliver_pop(dst, pkt.wire_bytes);
                    }
                    pkt.arrived = entry.at;
                    if let Some(tr) = &s.tracer {
                        tr.record(
                            entry.at.0,
                            dst,
                            EventKind::NetRecv {
                                src: pkt.src,
                                wire_bytes: pkt.wire_bytes as u64,
                                tag: pkt.tag,
                            },
                        );
                    }
                    match pkt.class {
                        DeliveryClass::Svc => {
                            if let Err(e) = self.dispatch_svc(me, s, dst, pkt, entry.at) {
                                // Propagate on this thread: the process-exit
                                // path records it as the first panic and the
                                // run shuts down.
                                std::panic::resume_unwind(e);
                            }
                            if s.panicked || s.shutdown {
                                return false;
                            }
                        }
                        DeliveryClass::App => {
                            let cause = pkt.cause;
                            s.pi_mut(dst).mailbox.push_back(pkt);
                            if matches!(s.pi(dst).phase, Phase::WaitRecv { .. }) {
                                self.wake_now(s, dst, entry.at, cause);
                                s.handoff.direct += 1;
                                return true;
                            }
                        }
                        // One-sided write: lands in the preposted buffer with
                        // no remote CPU involvement — no handler dispatch, no
                        // wake of a blocked receiver.
                        DeliveryClass::OneSided => {
                            s.pi_mut(dst).mailbox.push_back(pkt);
                        }
                    }
                }
                Event::Timer { dst, token } => {
                    if s.pi(dst).phase
                        == (Phase::WaitRecv {
                            deadline: Some(token),
                        })
                    {
                        s.pi_mut(dst).timed_out = true;
                        self.wake_now(s, dst, entry.at, NO_CTX);
                        s.handoff.direct += 1;
                        return true;
                    }
                    // Otherwise the timer is stale (the wait already ended).
                }
            }
        }
    }

    /// Run the `Svc` handler for `dst`, releasing the scheduler lock for the
    /// duration of the call (handlers re-enter the scheduler through
    /// [`SvcCtx`]) and re-acquiring it before returning. Returns the
    /// handler's panic payload, if any. `locked` is any process of the group
    /// whose scheduler `s` guards (the handler's own group).
    pub(crate) fn dispatch_svc<'a>(
        &'a self,
        locked: ProcId,
        s: &mut MutexGuard<'a, Sched>,
        dst: ProcId,
        pkt: Packet,
        at: SimTime,
    ) -> Result<(), Box<dyn std::any::Any + Send>> {
        debug_assert_eq!(self.group_ix(locked), self.group_ix(dst));
        if let Some(prof) = &s.profiler {
            prof.record_svc(dst, at.0, pkt.cause);
        }
        let mut h = self.handlers.lock()[dst]
            .take()
            .unwrap_or_else(|| panic!("no Svc handler on proc {dst}"));
        let r = self.group(dst).sched.unlocked(s, || {
            let mut ctx = SvcCtx::new(self, dst, at);
            catch_unwind(AssertUnwindSafe(|| h(&mut ctx, pkt)))
        });
        if r.is_ok() {
            // On panic the slot stays empty; the run is shutting down.
            self.handlers.lock()[dst] = Some(h);
        }
        r
    }

    /// Mark process `p` runnable at virtual time `t` and notify its thread.
    /// Shared by the event loops and the direct-handoff path; every clock
    /// advance and its compute/blocked classification happens here.
    /// `pkt_cause` is the delivered packet's causal stamp on receive wakes
    /// ([`NO_CTX`] for self-caused resumes and timer expiries).
    pub(crate) fn wake_now(
        &self,
        s: &mut MutexGuard<'_, Sched>,
        p: ProcId,
        t: SimTime,
        pkt_cause: u64,
    ) {
        debug_assert!(s.running.is_none());
        if s.pi(p).phase == Phase::Startup {
            if let Some(tr) = &s.tracer {
                tr.record(t.0, p, EventKind::ProcStart);
            }
        }
        if let Some(prof) = &s.profiler {
            let pi = s.pi(p);
            let kind = match pi.phase {
                Phase::Startup => Some(CtxKind::Start),
                Phase::BlockedResume => Some(CtxKind::Compute),
                Phase::WaitRecv { .. } => Some(if pi.timed_out {
                    CtxKind::Timeout
                } else {
                    CtxKind::Wait
                }),
                Phase::Running | Phase::Finished => None,
            };
            if let Some(kind) = kind {
                prof.record_wake(p, pi.clock.0, pi.clock.max(t).0, kind, pkt_cause);
            }
        }
        let pi = s.pi_mut(p);
        let adv = t.0.saturating_sub(pi.clock.0);
        match pi.phase {
            Phase::BlockedResume => pi.times.compute_ns += adv,
            Phase::WaitRecv { .. } => pi.times.blocked_ns += adv,
            Phase::Startup | Phase::Running | Phase::Finished => {}
        }
        pi.clock = pi.clock.max(t);
        pi.phase = Phase::Running;
        s.running = Some(p);
        self.proc_cv[p].notify_one();
    }

    /// Hand control to process `p` at virtual time `t` and park this
    /// event-loop thread until it is needed again. Must be called with the
    /// group's scheduler locked. While parked, blocking processes drain the
    /// event queue and chain wake-ups among themselves (direct handoff); the
    /// `draining` check keeps this loop parked even if the condvar wakes
    /// spuriously while a drain has the lock released for a service handler.
    pub(crate) fn wake_and_park<'a>(
        &'a self,
        gi: usize,
        s: &mut MutexGuard<'a, Sched>,
        p: ProcId,
        t: SimTime,
        pkt_cause: u64,
    ) {
        self.wake_now(s, p, t, pkt_cause);
        s.handoff.via_controller += 1;
        while (s.running.is_some() || s.draining) && !s.panicked {
            self.groups[gi].ctl_cv.wait(s);
        }
    }

    /// Release every blocked process thread in every group so the scope can
    /// join them. (Parallel-mode group runners are halted separately through
    /// their dispatch slots; see [`Doorbell::halt`].)
    pub(crate) fn shutdown_all(&self) {
        for grp in &self.groups {
            let mut s = grp.sched.lock();
            s.shutdown = true;
            drop(s);
            grp.ctl_cv.notify_all();
        }
        for cv in &self.proc_cv {
            cv.notify_all();
        }
    }
}

/// One complete simulated run.
pub struct RunOutcome<R> {
    /// Per-process return values of the body closure, indexed by `ProcId`.
    pub results: Vec<R>,
    /// Virtual time at which the last process finished.
    pub end_time: SimTime,
    /// Virtual finish time of each process.
    pub proc_end: Vec<SimTime>,
    /// Kernel compute/blocked time classification of each process.
    pub proc_times: Vec<ProcTimes>,
    /// Direct vs controller-mediated wake-up counts (wall-clock bookkeeping;
    /// not part of the virtual-time results).
    pub handoff: HandoffStats,
    /// Parallel-kernel window counters (zero on sequential runs).
    pub windows: WindowStats,
    /// Node groups the run actually executed with (1 = sequential).
    pub sim_workers: usize,
    /// The network model, returned so callers can read its statistics.
    pub net: Box<dyn NetModel>,
}

/// A configured simulation, ready to run.
///
/// ```
/// use std::sync::Arc;
/// use vopp_sim::{Sim, PerfectNet, SimDuration, DeliveryClass};
///
/// let sim = Sim::new(2, Box::new(PerfectNet::default()));
/// let out = sim.run(|ctx| {
///     if ctx.me() == 0 {
///         ctx.send(1, 100, DeliveryClass::App, 0, Arc::new(123u32));
///         0
///     } else {
///         ctx.recv().expect::<u32>()
///     }
/// });
/// assert_eq!(out.results, vec![0, 123]);
/// ```
pub struct Sim {
    nprocs: usize,
    net: Box<dyn NetModel>,
    handlers: Vec<Option<Handler>>,
    tracer: Option<Arc<Tracer>>,
    profiler: Option<Arc<CausalProfiler>>,
    direct_handoff: bool,
    workers: usize,
}

impl Sim {
    /// A simulation with `nprocs` processes over the given network model.
    pub fn new(nprocs: usize, net: Box<dyn NetModel>) -> Sim {
        assert!(nprocs > 0, "need at least one process");
        Sim {
            nprocs,
            net,
            handlers: (0..nprocs).map(|_| None).collect(),
            tracer: None,
            profiler: None,
            direct_handoff: direct_handoff_default(),
            workers: sim_workers_default(),
        }
    }

    /// Enable or disable direct process→process handoff for this run
    /// (defaults to the process-wide setting, normally on). Virtual-time
    /// results are identical either way; only wall-clock differs.
    pub fn set_direct_handoff(&mut self, on: bool) {
        self.direct_handoff = on;
    }

    /// Set the number of node groups executed concurrently by the
    /// conservative-lookahead parallel kernel (defaults to the process-wide
    /// setting, normally 1 = sequential; [`SIM_WORKERS_AUTO`] selects the
    /// event-density-adaptive kernel). Requires a network model with a
    /// [`NetModel::lookahead`] bound at or above
    /// [`crate::MIN_PARALLEL_LOOKAHEAD`] and an exact
    /// [`NetModel::loopback_latency`]; otherwise the run falls back to
    /// sequential execution with a one-time notice. Every artifact — traces,
    /// causal logs, network statistics, results — is byte-identical at any
    /// worker count, in auto mode included.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = if workers == SIM_WORKERS_AUTO {
            workers
        } else {
            workers.max(1)
        };
    }

    /// Install an event tracer. Kernel-level send/receive and process
    /// lifecycle events are recorded into it; the same tracer is exposed to
    /// process bodies and service handlers via [`AppCtx::trace`] /
    /// [`SvcCtx::trace`] so higher layers share one event stream.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Install a causal-edge recorder for the critical-path profiler.
    /// Wakes, service dispatches and packet sends are tagged with their
    /// immediate causal predecessor; recording is pure observation and
    /// never influences scheduling, clocks, or any virtual-time result.
    pub fn set_profiler(&mut self, profiler: Arc<CausalProfiler>) {
        self.profiler = Some(profiler);
    }

    /// Register the service handler for process `p` (at most one each).
    pub fn set_handler(&mut self, p: ProcId, h: Handler) {
        assert!(self.handlers[p].is_none(), "handler already set for {p}");
        self.handlers[p] = Some(h);
    }

    /// Execute the simulation to completion. `body` is invoked once per
    /// process on its own thread; the return values are collected in
    /// [`RunOutcome::results`].
    ///
    /// Panics if the simulation deadlocks (all processes blocked with no
    /// pending events) or if any process panics.
    pub fn run<R, F>(self, body: F) -> RunOutcome<R>
    where
        R: Send,
        F: Fn(AppCtx<'_>) -> R + Send + Sync,
    {
        let nprocs = self.nprocs;
        let plan = window::decide_plan(self.workers, nprocs, self.net.as_ref());
        let mut win_stats = WindowStats::default();
        // A run counts as a fallback only when parallelism was genuinely
        // requested and denied (no lookahead bound, floor, ...). Auto mode
        // resolving to one worker on a single-core host is a choice, not a
        // fallback.
        if plan.is_none() && window::resolve_workers(self.workers) > 1 {
            win_stats.fallback_runs = 1;
        }
        let ngroups = plan.as_ref().map_or(1, |p| p.groups);
        let loopback = plan.as_ref().map_or(SimDuration::ZERO, |p| p.loopback);

        // Contiguous, near-even node ranges per group.
        let mut group_of = vec![0usize; nprocs];
        let mut bounds = Vec::with_capacity(ngroups + 1);
        bounds.push(0usize);
        for gi in 0..ngroups {
            let hi = (nprocs * (gi + 1)).div_ceil(ngroups);
            group_of[bounds[gi]..hi].fill(gi);
            bounds.push(hi);
        }

        let mut global = GlobalState {
            seq: 0,
            future: BinaryHeap::new(),
            pending_bytes: vec![0; nprocs],
            net: self.net,
        };

        let groups: Vec<Group> = (0..ngroups)
            .map(|gi| {
                let cell = Arc::new(GroupCell::new());
                Group {
                    sched: Mutex::new(Sched {
                        now: SimTime::ZERO,
                        queue: BinaryHeap::new(),
                        procs: (bounds[gi]..bounds[gi + 1])
                            .map(|_| ProcInfo::new())
                            .collect(),
                        lo: bounds[gi],
                        running: None,
                        live: bounds[gi + 1] - bounds[gi],
                        shutdown: false,
                        panicked: false,
                        direct_handoff: self.direct_handoff,
                        draining: false,
                        handoff: HandoffStats::default(),
                        mode: Mode::Inline,
                        t_end: None,
                        local_seq: 0,
                        loopback,
                        global: None,
                        cell: cell.clone(),
                        tracer: self.tracer.clone(),
                        profiler: self.profiler.clone(),
                    }),
                    ctl_cv: Condvar::new(),
                    cell,
                    bell: Doorbell::new(),
                }
            })
            .collect();

        let shared = Shared {
            groups,
            group_of,
            proc_cv: (0..nprocs).map(|_| Condvar::new()).collect(),
            nprocs,
            win: WinSync {
                pending: AtomicUsize::new(0),
                svc_panic: Mutex::new(None),
            },
            handlers: Mutex::new(self.handlers),
            tracer: self.tracer,
        };

        if plan.is_none() {
            // Sequential: the single group owns the global state for the
            // whole run and its queue is unbounded — exactly the classic
            // one-heap scheduler.
            let mut s = shared.groups[0].sched.lock();
            s.global = Some(global);
            for p in 0..nprocs {
                s.push_event(SimTime::ZERO, Event::Resume(p));
            }
        } else {
            for p in 0..nprocs {
                global.push_future(SimTime::ZERO, Event::Resume(p));
            }
            // Parked in group 0 until the coordinator takes over; keeps the
            // borrow checker happy about the conditional move above.
            shared.groups[0].sched.lock().global = Some(global);
        }

        let par = plan.is_some();
        let shared = &shared;
        let body = &body;
        let mut results: Vec<Option<R>> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..nprocs)
                .map(|p| {
                    scope.spawn(move || {
                        if par {
                            // Side effects produced while this thread runs a
                            // deferred window are captured into the group log.
                            let cell = shared.group(p).cell.clone();
                            vopp_trace::set_thread_record_sink(Some(cell.clone()));
                            vopp_trace::set_thread_causal_sink(Some(cell));
                        }
                        // Wait for the first resume.
                        {
                            let mut s = shared.lock_proc(p);
                            while s.running != Some(p) {
                                if s.shutdown {
                                    return None;
                                }
                                shared.proc_cv[p].wait(&mut s);
                            }
                        }
                        let r =
                            catch_unwind(AssertUnwindSafe(|| body(AppCtx::new(shared, p, nprocs))));
                        let mut s = shared.lock_proc(p);
                        // Only the *first* panic is the real error; panics
                        // raised to unblock threads during shutdown are noise.
                        let first_panic = r.is_err() && !s.shutdown && !s.panicked;
                        if first_panic {
                            s.panicked = true;
                        }
                        if let Some(tr) = &s.tracer {
                            tr.record(s.pi(p).clock.0, p, EventKind::ProcExit);
                        }
                        s.pi_mut(p).phase = Phase::Finished;
                        s.live -= 1;
                        if s.running == Some(p) {
                            s.running = None;
                        }
                        shared.group(p).ctl_cv.notify_all();
                        drop(s);
                        match r {
                            Ok(v) => Some(v),
                            Err(e) if first_panic => std::panic::resume_unwind(e),
                            Err(_) => None,
                        }
                    })
                })
                .collect();

            let handler_panic = match &plan {
                None => Self::controller(shared),
                Some(plan) => window::coordinate(shared, scope, plan, &mut win_stats),
            };

            let results: Vec<Option<R>> = joins
                .into_iter()
                .map(|j| match j.join() {
                    Ok(v) => v,
                    // Re-panic on the main thread with the process's payload.
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect();
            if let Some(e) = handler_panic {
                std::panic::resume_unwind(e);
            }
            results
        });

        let mut proc_end: Vec<SimTime> = Vec::with_capacity(nprocs);
        let mut proc_times: Vec<ProcTimes> = Vec::with_capacity(nprocs);
        let mut handoff = HandoffStats::default();
        let mut was_shutdown = false;
        let mut net = None;
        for grp in &shared.groups {
            let mut s = grp.sched.lock();
            was_shutdown |= s.shutdown;
            proc_end.extend(s.procs.iter().map(|pi| pi.clock));
            proc_times.extend(s.procs.iter().map(|pi| pi.times));
            handoff.direct += s.handoff.direct;
            handoff.via_controller += s.handoff.via_controller;
            if let Some(g) = s.global.take() {
                net = Some(g.net);
            }
        }
        if was_shutdown {
            panic!("simulation deadlocked: all processes blocked with no pending events");
        }
        let end_time = proc_end.iter().copied().max().unwrap_or(SimTime::ZERO);
        TOTAL_DIRECT.fetch_add(handoff.direct, Ordering::Relaxed);
        TOTAL_VIA_CTL.fetch_add(handoff.via_controller, Ordering::Relaxed);
        add_window_totals(&win_stats);
        RunOutcome {
            results: results
                .iter_mut()
                .map(|r| r.take().expect("result"))
                .collect(),
            end_time,
            proc_end,
            proc_times,
            handoff,
            windows: win_stats,
            sim_workers: ngroups,
            net: net.expect("global state survives the run"),
        }
    }

    /// Sequential event loop: runs on the caller's thread over the single
    /// unbounded group until every process finished, a process panicked, or
    /// a deadlock is detected. Returns a panic payload if a service handler
    /// panicked on this thread. With direct handoff on, process threads
    /// drain the queue themselves and this loop mostly stays parked in
    /// `wake_and_park` — it only pops events itself at startup, when handoff
    /// is disabled, and to detect termination or deadlock.
    fn controller(shared: &Shared) -> Option<Box<dyn std::any::Any + Send>> {
        let grp = &shared.groups[0];
        loop {
            let mut s = grp.sched.lock();
            if s.panicked {
                drop(s);
                shared.shutdown_all();
                return None;
            }
            if s.live == 0 {
                return None;
            }
            let Some(entry) = s.pop_due() else {
                drop(s);
                shared.shutdown_all();
                return None;
            };
            debug_assert!(entry.at >= s.now, "event queue went backwards");
            s.now = entry.at;
            match entry.ev {
                Event::Resume(p) => match s.pi(p).phase {
                    Phase::Startup | Phase::BlockedResume => {
                        shared.wake_and_park(0, &mut s, p, entry.at, NO_CTX);
                    }
                    Phase::Finished => {}
                    ref ph => unreachable!("resume for proc {p} in phase {ph:?}"),
                },
                Event::Deliver { dst, mut pkt } => {
                    if pkt.class != DeliveryClass::OneSided {
                        s.note_deliver_pop(dst, pkt.wire_bytes);
                    }
                    pkt.arrived = entry.at;
                    if let Some(tr) = &s.tracer {
                        tr.record(
                            entry.at.0,
                            dst,
                            EventKind::NetRecv {
                                src: pkt.src,
                                wire_bytes: pkt.wire_bytes as u64,
                                tag: pkt.tag,
                            },
                        );
                    }
                    match pkt.class {
                        DeliveryClass::Svc => {
                            // A handler panic must not strand the blocked
                            // process threads: release them, then re-panic.
                            if let Err(e) = shared.dispatch_svc(dst, &mut s, dst, pkt, entry.at) {
                                drop(s);
                                shared.shutdown_all();
                                return Some(e);
                            }
                        }
                        DeliveryClass::App => {
                            let cause = pkt.cause;
                            s.pi_mut(dst).mailbox.push_back(pkt);
                            if matches!(s.pi(dst).phase, Phase::WaitRecv { .. }) {
                                shared.wake_and_park(0, &mut s, dst, entry.at, cause);
                            }
                        }
                        // One-sided write: no handler dispatch, no wake.
                        DeliveryClass::OneSided => {
                            s.pi_mut(dst).mailbox.push_back(pkt);
                        }
                    }
                }
                Event::Timer { dst, token } => {
                    if s.pi(dst).phase
                        == (Phase::WaitRecv {
                            deadline: Some(token),
                        })
                    {
                        s.pi_mut(dst).timed_out = true;
                        shared.wake_and_park(0, &mut s, dst, entry.at, NO_CTX);
                    }
                    // Otherwise the timer is stale (the wait already ended).
                }
            }
        }
    }
}

/// Convenience wrapper: run `nprocs` copies of `body` on a perfect network
/// with the given latency. Used heavily by unit tests.
pub fn run_simple<R, F>(nprocs: usize, latency: SimDuration, body: F) -> RunOutcome<R>
where
    R: Send,
    F: Fn(AppCtx<'_>) -> R + Send + Sync,
{
    Sim::new(nprocs, Box::new(crate::net::PerfectNet::new(latency))).run(body)
}
