//! The sequential discrete-event scheduler.
//!
//! Every simulated process is backed by an OS thread, but **exactly one
//! thread runs at any instant**: the controller (the thread that called
//! [`Sim::run`]) pops events in `(time, seq)` order and hands control to the
//! corresponding process thread, then waits for it to block again. This gives
//! straight-line imperative process code (no hand-written state machines)
//! while keeping execution fully deterministic.
//!
//! Service-class packets are dispatched to a per-process handler *at their
//! arrival time*, even while the destination's application thread is in the
//! middle of a `compute` span — modelling the interrupt-driven request
//! handlers (SIGIO) of real page-based DSM systems such as TreadMarks.

use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use vopp_trace::{EventKind, Tracer};

use crate::ctx::{AppCtx, SvcCtx};
use crate::net::{NetModel, RouteRequest};
use crate::packet::{DeliveryClass, Packet};
use crate::sync::{Condvar, Mutex, MutexGuard};
use crate::time::{SimDuration, SimTime};
use crate::ProcId;

/// A service-request handler: invoked by the kernel when a [`DeliveryClass::Svc`]
/// packet arrives at the process it is registered for.
pub type Handler = Box<dyn FnMut(&mut SvcCtx<'_>, Packet) + Send + 'static>;

pub(crate) enum Event {
    Resume(ProcId),
    Deliver { dst: ProcId, pkt: Packet },
    Timer { dst: ProcId, token: u64 },
}

struct QEntry {
    at: SimTime,
    seq: u64,
    ev: Event,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    // Reversed: BinaryHeap is a max-heap and we want the earliest event first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Thread spawned, waiting for its first resume.
    Startup,
    /// This process's thread is the one running.
    Running,
    /// Blocked until its scheduled `Resume` event fires (compute/sleep).
    BlockedResume,
    /// Blocked in `recv`; `deadline` is the live timeout token, if any.
    WaitRecv { deadline: Option<u64> },
    /// Process body returned.
    Finished,
}

pub(crate) struct ProcInfo {
    pub(crate) phase: Phase,
    pub(crate) clock: SimTime,
    pub(crate) mailbox: VecDeque<Packet>,
    pub(crate) next_token: u64,
    pub(crate) timed_out: bool,
    pub(crate) pending_deliver: usize,
    pub(crate) pending_bytes: usize,
    pub(crate) times: ProcTimes,
}

impl ProcInfo {
    fn new() -> ProcInfo {
        ProcInfo {
            phase: Phase::Startup,
            clock: SimTime::ZERO,
            mailbox: VecDeque::new(),
            next_token: 0,
            timed_out: false,
            pending_deliver: 0,
            pending_bytes: 0,
            times: ProcTimes::default(),
        }
    }
}

/// Kernel-level classification of one process's virtual time: every clock
/// advance happens in `Sim::wake`, and the phase the process was blocked in
/// says which kind of time just elapsed. `compute_ns + blocked_ns` equals the
/// process's final clock, by construction — higher layers (DSM, MPI) check
/// their finer-grained phase breakdowns against these two totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcTimes {
    /// Time spent advancing through `compute`/`sleep` spans (CPU time).
    pub compute_ns: u64,
    /// Time spent blocked in `recv` waiting for a packet or timeout.
    pub blocked_ns: u64,
}

pub(crate) struct Sched {
    pub(crate) now: SimTime,
    seq: u64,
    queue: BinaryHeap<QEntry>,
    pub(crate) procs: Vec<ProcInfo>,
    pub(crate) running: Option<ProcId>,
    live: usize,
    pub(crate) shutdown: bool,
    panicked: bool,
    pub(crate) net: Box<dyn NetModel>,
    pub(crate) tracer: Option<Arc<Tracer>>,
}

impl Sched {
    pub(crate) fn push_event(&mut self, at: SimTime, ev: Event) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QEntry { at, seq, ev });
    }

    /// Route a packet through the network model and schedule its delivery.
    pub(crate) fn submit_send(&mut self, now: SimTime, dst: ProcId, pkt: Packet) {
        if let Some(tr) = &self.tracer {
            tr.record(
                now.0,
                pkt.src,
                EventKind::NetSend {
                    dst,
                    wire_bytes: pkt.wire_bytes as u64,
                    tag: pkt.tag,
                    svc: pkt.class == DeliveryClass::Svc,
                },
            );
        }
        let req = RouteRequest {
            now,
            src: pkt.src,
            dst,
            wire_bytes: pkt.wire_bytes,
            pending_at_dst: self.procs[dst].pending_deliver,
            pending_bytes_at_dst: self.procs[dst].pending_bytes,
        };
        if let Some(at) = self.net.route(req) {
            self.procs[dst].pending_deliver += 1;
            self.procs[dst].pending_bytes += pkt.wire_bytes;
            self.push_event(at.max(now), Event::Deliver { dst, pkt });
        }
    }
}

/// Shared kernel state: the scheduler under one mutex plus the condition
/// variables used for the controller/process handoff.
pub(crate) struct Shared {
    pub(crate) sched: Mutex<Sched>,
    pub(crate) proc_cv: Vec<Condvar>,
    pub(crate) ctl_cv: Condvar,
    pub(crate) nprocs: usize,
    /// Same tracer as `Sched::tracer`, duplicated outside the mutex so the
    /// disabled path is a pointer test without taking the scheduler lock.
    pub(crate) tracer: Option<Arc<Tracer>>,
}

impl Shared {
    /// Called from a process thread: give control back to the controller and
    /// wait until the controller hands it back. The caller must already have
    /// set its own phase to the blocked state it wants.
    pub(crate) fn yield_and_wait(&self, me: ProcId, s: &mut MutexGuard<'_, Sched>) {
        debug_assert_eq!(s.running, Some(me));
        s.running = None;
        self.ctl_cv.notify_one();
        while s.running != Some(me) {
            if s.shutdown {
                // Unblock so the controller can report the real error.
                panic!("simulation shut down while proc {me} was blocked");
            }
            self.proc_cv[me].wait(s);
        }
        debug_assert_eq!(s.procs[me].phase, Phase::Running);
    }
}

/// One complete simulated run.
pub struct RunOutcome<R> {
    /// Per-process return values of the body closure, indexed by `ProcId`.
    pub results: Vec<R>,
    /// Virtual time at which the last process finished.
    pub end_time: SimTime,
    /// Virtual finish time of each process.
    pub proc_end: Vec<SimTime>,
    /// Kernel compute/blocked time classification of each process.
    pub proc_times: Vec<ProcTimes>,
    /// The network model, returned so callers can read its statistics.
    pub net: Box<dyn NetModel>,
}

/// A configured simulation, ready to run.
///
/// ```
/// use vopp_sim::{Sim, PerfectNet, SimDuration, DeliveryClass};
///
/// let sim = Sim::new(2, Box::new(PerfectNet::default()));
/// let out = sim.run(|ctx| {
///     if ctx.me() == 0 {
///         ctx.send(1, 100, DeliveryClass::App, 0, Box::new(123u32));
///         0
///     } else {
///         ctx.recv().expect::<u32>()
///     }
/// });
/// assert_eq!(out.results, vec![0, 123]);
/// ```
pub struct Sim {
    nprocs: usize,
    net: Box<dyn NetModel>,
    handlers: Vec<Option<Handler>>,
    tracer: Option<Arc<Tracer>>,
}

impl Sim {
    /// A simulation with `nprocs` processes over the given network model.
    pub fn new(nprocs: usize, net: Box<dyn NetModel>) -> Sim {
        assert!(nprocs > 0, "need at least one process");
        Sim {
            nprocs,
            net,
            handlers: (0..nprocs).map(|_| None).collect(),
            tracer: None,
        }
    }

    /// Install an event tracer. Kernel-level send/receive and process
    /// lifecycle events are recorded into it; the same tracer is exposed to
    /// process bodies and service handlers via [`AppCtx::trace`] /
    /// [`SvcCtx::trace`] so higher layers share one event stream.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Register the service handler for process `p` (at most one each).
    pub fn set_handler(&mut self, p: ProcId, h: Handler) {
        assert!(self.handlers[p].is_none(), "handler already set for {p}");
        self.handlers[p] = Some(h);
    }

    /// Execute the simulation to completion. `body` is invoked once per
    /// process on its own thread; the return values are collected in
    /// [`RunOutcome::results`].
    ///
    /// Panics if the simulation deadlocks (all processes blocked with no
    /// pending events) or if any process panics.
    pub fn run<R, F>(self, body: F) -> RunOutcome<R>
    where
        R: Send,
        F: Fn(AppCtx<'_>) -> R + Send + Sync,
    {
        let nprocs = self.nprocs;
        let mut handlers = self.handlers;
        let shared = Shared {
            sched: Mutex::new(Sched {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                procs: (0..nprocs).map(|_| ProcInfo::new()).collect(),
                running: None,
                live: nprocs,
                shutdown: false,
                panicked: false,
                net: self.net,
                tracer: self.tracer.clone(),
            }),
            proc_cv: (0..nprocs).map(|_| Condvar::new()).collect(),
            ctl_cv: Condvar::new(),
            nprocs,
            tracer: self.tracer,
        };
        {
            let mut s = shared.sched.lock();
            for p in 0..nprocs {
                s.push_event(SimTime::ZERO, Event::Resume(p));
            }
        }

        let shared = &shared;
        let body = &body;
        let mut results: Vec<Option<R>> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..nprocs)
                .map(|p| {
                    scope.spawn(move || {
                        // Wait for the first resume.
                        {
                            let mut s = shared.sched.lock();
                            while s.running != Some(p) {
                                if s.shutdown {
                                    return None;
                                }
                                shared.proc_cv[p].wait(&mut s);
                            }
                        }
                        let r =
                            catch_unwind(AssertUnwindSafe(|| body(AppCtx::new(shared, p, nprocs))));
                        let mut s = shared.sched.lock();
                        // Only the *first* panic is the real error; panics
                        // raised to unblock threads during shutdown are noise.
                        let first_panic = r.is_err() && !s.shutdown && !s.panicked;
                        if first_panic {
                            s.panicked = true;
                        }
                        if let Some(tr) = &s.tracer {
                            tr.record(s.procs[p].clock.0, p, EventKind::ProcExit);
                        }
                        s.procs[p].phase = Phase::Finished;
                        s.live -= 1;
                        if s.running == Some(p) {
                            s.running = None;
                        }
                        shared.ctl_cv.notify_one();
                        drop(s);
                        match r {
                            Ok(v) => Some(v),
                            Err(e) if first_panic => std::panic::resume_unwind(e),
                            Err(_) => None,
                        }
                    })
                })
                .collect();

            let handler_panic = Self::controller(shared, &mut handlers);

            let results: Vec<Option<R>> = joins
                .into_iter()
                .enumerate()
                .map(|(p, j)| match j.join() {
                    Ok(v) => v,
                    Err(e) => {
                        // Re-panic on the controller thread with the
                        // process's payload.
                        let _ = p;
                        std::panic::resume_unwind(e)
                    }
                })
                .collect();
            if let Some(e) = handler_panic {
                std::panic::resume_unwind(e);
            }
            results
        });

        let mut s = shared.sched.lock();
        if s.shutdown {
            panic!("simulation deadlocked: all processes blocked with no pending events");
        }
        let proc_end: Vec<SimTime> = s.procs.iter().map(|pi| pi.clock).collect();
        let proc_times: Vec<ProcTimes> = s.procs.iter().map(|pi| pi.times).collect();
        let end_time = proc_end.iter().copied().max().unwrap_or(SimTime::ZERO);
        let net = std::mem::replace(&mut s.net, Box::new(crate::net::PerfectNet::default()));
        drop(s);
        RunOutcome {
            results: results
                .iter_mut()
                .map(|r| r.take().expect("result"))
                .collect(),
            end_time,
            proc_end,
            proc_times,
            net,
        }
    }

    /// Event loop: runs on the caller's thread until every process finished,
    /// a process panicked, or a deadlock is detected. Returns a panic
    /// payload if a service handler panicked.
    fn controller(
        shared: &Shared,
        handlers: &mut [Option<Handler>],
    ) -> Option<Box<dyn std::any::Any + Send>> {
        loop {
            let mut s = shared.sched.lock();
            if s.panicked {
                Self::shutdown_all(shared, &mut s);
                return None;
            }
            if s.live == 0 {
                return None;
            }
            let Some(entry) = s.queue.pop() else {
                s.shutdown = true;
                Self::shutdown_all(shared, &mut s);
                return None;
            };
            debug_assert!(entry.at >= s.now, "event queue went backwards");
            s.now = entry.at;
            match entry.ev {
                Event::Resume(p) => match s.procs[p].phase {
                    Phase::Startup | Phase::BlockedResume => {
                        Self::wake(shared, &mut s, p, entry.at);
                    }
                    Phase::Finished => {}
                    ref ph => unreachable!("resume for proc {p} in phase {ph:?}"),
                },
                Event::Deliver { dst, mut pkt } => {
                    s.procs[dst].pending_deliver -= 1;
                    s.procs[dst].pending_bytes -= pkt.wire_bytes;
                    pkt.arrived = entry.at;
                    if let Some(tr) = &s.tracer {
                        tr.record(
                            entry.at.0,
                            dst,
                            EventKind::NetRecv {
                                src: pkt.src,
                                wire_bytes: pkt.wire_bytes as u64,
                                tag: pkt.tag,
                            },
                        );
                    }
                    match pkt.class {
                        DeliveryClass::Svc => {
                            drop(s);
                            let h = handlers[dst]
                                .as_mut()
                                .unwrap_or_else(|| panic!("no Svc handler on proc {dst}"));
                            let mut ctx = SvcCtx::new(shared, dst, entry.at);
                            // A handler panic must not strand the blocked
                            // process threads: release them, then re-panic.
                            if let Err(e) = catch_unwind(AssertUnwindSafe(|| h(&mut ctx, pkt))) {
                                let mut s = shared.sched.lock();
                                Self::shutdown_all(shared, &mut s);
                                drop(s);
                                return Some(e);
                            }
                        }
                        DeliveryClass::App => {
                            s.procs[dst].mailbox.push_back(pkt);
                            if matches!(s.procs[dst].phase, Phase::WaitRecv { .. }) {
                                Self::wake(shared, &mut s, dst, entry.at);
                            }
                        }
                    }
                }
                Event::Timer { dst, token } => {
                    if s.procs[dst].phase
                        == (Phase::WaitRecv {
                            deadline: Some(token),
                        })
                    {
                        s.procs[dst].timed_out = true;
                        Self::wake(shared, &mut s, dst, entry.at);
                    }
                    // Otherwise the timer is stale (the wait already ended).
                }
            }
        }
    }

    /// Hand control to process `p` at virtual time `t` and block until it
    /// yields again. Must be called with the scheduler locked.
    fn wake(shared: &Shared, s: &mut MutexGuard<'_, Sched>, p: ProcId, t: SimTime) {
        debug_assert!(s.running.is_none());
        if s.procs[p].phase == Phase::Startup {
            if let Some(tr) = &s.tracer {
                tr.record(t.0, p, EventKind::ProcStart);
            }
        }
        let pi = &mut s.procs[p];
        let adv = t.0.saturating_sub(pi.clock.0);
        match pi.phase {
            Phase::BlockedResume => pi.times.compute_ns += adv,
            Phase::WaitRecv { .. } => pi.times.blocked_ns += adv,
            Phase::Startup | Phase::Running | Phase::Finished => {}
        }
        pi.clock = pi.clock.max(t);
        pi.phase = Phase::Running;
        s.running = Some(p);
        shared.proc_cv[p].notify_one();
        while s.running.is_some() && !s.panicked {
            shared.ctl_cv.wait(s);
        }
    }

    /// Release every blocked process thread so the scope can join them.
    fn shutdown_all(shared: &Shared, s: &mut MutexGuard<'_, Sched>) {
        s.shutdown = true;
        for cv in &shared.proc_cv {
            cv.notify_all();
        }
    }
}

/// Convenience wrapper: run `nprocs` copies of `body` on a perfect network
/// with the given latency. Used heavily by unit tests.
pub fn run_simple<R, F>(nprocs: usize, latency: SimDuration, body: F) -> RunOutcome<R>
where
    R: Send,
    F: Fn(AppCtx<'_>) -> R + Send + Sync,
{
    Sim::new(nprocs, Box::new(crate::net::PerfectNet::new(latency))).run(body)
}
