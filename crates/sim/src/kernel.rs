//! The sequential discrete-event scheduler.
//!
//! Every simulated process is backed by an OS thread, but **exactly one
//! thread runs at any instant**: the controller (the thread that called
//! [`Sim::run`]) pops events in `(time, seq)` order and hands control to the
//! corresponding process thread, then waits for it to block again. This gives
//! straight-line imperative process code (no hand-written state machines)
//! while keeping execution fully deterministic.
//!
//! Service-class packets are dispatched to a per-process handler *at their
//! arrival time*, even while the destination's application thread is in the
//! middle of a `compute` span — modelling the interrupt-driven request
//! handlers (SIGIO) of real page-based DSM systems such as TreadMarks.
//!
//! ## Direct handoff
//!
//! The naive schedule costs two OS-thread handoffs per event: blocking
//! process → controller → next process. Instead, the blocking thread drains
//! the event queue itself — advancing virtual time, delivering packets, and
//! running service handlers in exactly the order the controller would — and
//! hands control straight to the next runnable process while the controller
//! stays parked. The controller pops events itself only at startup, when
//! handoff is disabled, and when the queue empties (termination / deadlock
//! detection). Event pop order, trace order and every clock advance are
//! identical either way; only the OS-thread ping-pong is elided. Savings
//! (wake-ups that skipped the controller) are counted in
//! [`HandoffStats`] (per run) and in process-wide totals ([`handoff_totals`])
//! for wall-clock reporting.

use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use vopp_trace::{CausalProfiler, CtxKind, EventKind, Tracer, NO_CTX};

use crate::ctx::{AppCtx, SvcCtx};
use crate::net::{NetModel, RouteRequest};
use crate::packet::{DeliveryClass, Packet};
use crate::sync::{Condvar, Mutex, MutexGuard};
use crate::time::{SimDuration, SimTime};
use crate::ProcId;

/// A service-request handler: invoked by the kernel when a [`DeliveryClass::Svc`]
/// packet arrives at the process it is registered for.
pub type Handler = Box<dyn FnMut(&mut SvcCtx<'_>, Packet) + Send + 'static>;

/// How process wake-ups were scheduled during a run. Wall-clock bookkeeping
/// only — never part of the virtual-time results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandoffStats {
    /// Wake-ups transferred process→process without running the controller.
    pub direct: u64,
    /// Wake-ups that went through the controller thread.
    pub via_controller: u64,
}

impl HandoffStats {
    /// Total wake-ups.
    pub fn total(&self) -> u64 {
        self.direct + self.via_controller
    }
}

/// Process-wide handoff totals, accumulated across every finished run.
static TOTAL_DIRECT: AtomicU64 = AtomicU64::new(0);
static TOTAL_VIA_CTL: AtomicU64 = AtomicU64::new(0);
/// Process-wide default for [`Sim::set_direct_handoff`].
static DIRECT_HANDOFF_DEFAULT: AtomicBool = AtomicBool::new(true);

/// Handoff totals accumulated by every run finished in this process so far.
pub fn handoff_totals() -> HandoffStats {
    HandoffStats {
        direct: TOTAL_DIRECT.load(Ordering::Relaxed),
        via_controller: TOTAL_VIA_CTL.load(Ordering::Relaxed),
    }
}

/// Set the process-wide default for direct handoff scheduling (normally on;
/// turning it off forces every wake-up through the controller thread, which
/// is only useful for comparative benchmarks and scheduling tests).
pub fn set_direct_handoff_default(on: bool) {
    DIRECT_HANDOFF_DEFAULT.store(on, Ordering::Relaxed);
}

/// The current process-wide direct-handoff default.
pub fn direct_handoff_default() -> bool {
    DIRECT_HANDOFF_DEFAULT.load(Ordering::Relaxed)
}

pub(crate) enum Event {
    Resume(ProcId),
    Deliver { dst: ProcId, pkt: Packet },
    Timer { dst: ProcId, token: u64 },
}

struct QEntry {
    at: SimTime,
    seq: u64,
    ev: Event,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    // Reversed: BinaryHeap is a max-heap and we want the earliest event first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Thread spawned, waiting for its first resume.
    Startup,
    /// This process's thread is the one running.
    Running,
    /// Blocked until its scheduled `Resume` event fires (compute/sleep).
    BlockedResume,
    /// Blocked in `recv`; `deadline` is the live timeout token, if any.
    WaitRecv { deadline: Option<u64> },
    /// Process body returned.
    Finished,
}

pub(crate) struct ProcInfo {
    pub(crate) phase: Phase,
    pub(crate) clock: SimTime,
    pub(crate) mailbox: VecDeque<Packet>,
    pub(crate) next_token: u64,
    pub(crate) timed_out: bool,
    pub(crate) pending_deliver: usize,
    pub(crate) pending_bytes: usize,
    pub(crate) times: ProcTimes,
}

impl ProcInfo {
    fn new() -> ProcInfo {
        ProcInfo {
            phase: Phase::Startup,
            clock: SimTime::ZERO,
            mailbox: VecDeque::new(),
            next_token: 0,
            timed_out: false,
            pending_deliver: 0,
            pending_bytes: 0,
            times: ProcTimes::default(),
        }
    }
}

/// Kernel-level classification of one process's virtual time: every clock
/// advance happens in `Sim::wake`, and the phase the process was blocked in
/// says which kind of time just elapsed. `compute_ns + blocked_ns` equals the
/// process's final clock, by construction — higher layers (DSM, MPI) check
/// their finer-grained phase breakdowns against these two totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcTimes {
    /// Time spent advancing through `compute`/`sleep` spans (CPU time).
    pub compute_ns: u64,
    /// Time spent blocked in `recv` waiting for a packet or timeout.
    pub blocked_ns: u64,
}

pub(crate) struct Sched {
    pub(crate) now: SimTime,
    seq: u64,
    queue: BinaryHeap<QEntry>,
    pub(crate) procs: Vec<ProcInfo>,
    pub(crate) running: Option<ProcId>,
    live: usize,
    pub(crate) shutdown: bool,
    panicked: bool,
    direct_handoff: bool,
    /// A process thread is inside `try_handoff` — possibly with the lock
    /// released while it runs a service handler. The controller must stay
    /// parked until the drain finishes, even if its condvar wakes spuriously.
    draining: bool,
    handoff: HandoffStats,
    pub(crate) net: Box<dyn NetModel>,
    pub(crate) tracer: Option<Arc<Tracer>>,
    /// Causal-edge recorder for the critical-path profiler; pure
    /// observation — `None` costs one pointer test per wake/send.
    pub(crate) profiler: Option<Arc<CausalProfiler>>,
}

impl Sched {
    pub(crate) fn push_event(&mut self, at: SimTime, ev: Event) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QEntry { at, seq, ev });
    }

    /// Route a packet through the network model and schedule its delivery.
    pub(crate) fn submit_send(&mut self, now: SimTime, dst: ProcId, pkt: Packet) {
        if let Some(tr) = &self.tracer {
            tr.record(
                now.0,
                pkt.src,
                EventKind::NetSend {
                    dst,
                    wire_bytes: pkt.wire_bytes as u64,
                    tag: pkt.tag,
                    svc: pkt.class == DeliveryClass::Svc,
                },
            );
        }
        let req = RouteRequest {
            now,
            src: pkt.src,
            dst,
            wire_bytes: pkt.wire_bytes,
            pending_at_dst: self.procs[dst].pending_deliver,
            pending_bytes_at_dst: self.procs[dst].pending_bytes,
        };
        if let Some(at) = self.net.route(req) {
            self.procs[dst].pending_deliver += 1;
            self.procs[dst].pending_bytes += pkt.wire_bytes;
            self.push_event(at.max(now), Event::Deliver { dst, pkt });
        }
    }
}

/// Shared kernel state: the scheduler under one mutex plus the condition
/// variables used for the controller/process handoff.
pub(crate) struct Shared {
    pub(crate) sched: Mutex<Sched>,
    pub(crate) proc_cv: Vec<Condvar>,
    pub(crate) ctl_cv: Condvar,
    pub(crate) nprocs: usize,
    /// Service handlers, shared so whichever thread pops a `Svc` delivery —
    /// the controller or a draining process thread — can run it. A handler is
    /// taken out of its slot for the duration of the call; event execution is
    /// serialized by the scheduler (`running`/`draining`), so the slot is
    /// never contended.
    handlers: Mutex<Vec<Option<Handler>>>,
    /// Same tracer as `Sched::tracer`, duplicated outside the mutex so the
    /// disabled path is a pointer test without taking the scheduler lock.
    pub(crate) tracer: Option<Arc<Tracer>>,
}

impl Shared {
    /// Called from a process thread: yield control and wait until it is
    /// handed back. The caller must already have set its own phase to the
    /// blocked state it wants. If a queued event wakes a process, control
    /// transfers directly; the controller is only notified when the drain
    /// cannot continue (empty queue, shutdown, or handoff disabled).
    pub(crate) fn yield_and_wait<'a>(&'a self, me: ProcId, s: &mut MutexGuard<'a, Sched>) {
        debug_assert_eq!(s.running, Some(me));
        s.running = None;
        if !self.try_handoff(s) {
            self.ctl_cv.notify_one();
        }
        while s.running != Some(me) {
            if s.shutdown {
                // Unblock so the controller can report the real error.
                panic!("simulation shut down while proc {me} was blocked");
            }
            self.proc_cv[me].wait(s);
        }
        debug_assert_eq!(s.procs[me].phase, Phase::Running);
    }

    /// Drain the event queue — in exactly the order the controller would,
    /// advancing virtual time and running service handlers the same way —
    /// until an event wakes a process. Returns `true` if a process was woken
    /// (the controller stays parked), `false` if the controller must take
    /// over: the queue is empty (termination or deadlock), handoff is
    /// disabled, or the run is shutting down.
    ///
    /// Advancing `now` and running handlers from a process thread is safe:
    /// event execution is serialized by `Sched::draining` (set here, checked
    /// by the controller's parking loop), and the controller only reads
    /// scheduler state after reacquiring the lock.
    fn try_handoff<'a>(&'a self, s: &mut MutexGuard<'a, Sched>) -> bool {
        if !s.direct_handoff || s.panicked || s.shutdown {
            return false;
        }
        s.draining = true;
        let woke = self.drain(s);
        s.draining = false;
        woke
    }

    /// The loop body of [`Shared::try_handoff`]; `Sched::draining` is set.
    fn drain<'a>(&'a self, s: &mut MutexGuard<'a, Sched>) -> bool {
        loop {
            let Some(entry) = s.queue.pop() else {
                return false;
            };
            debug_assert!(entry.at >= s.now, "event queue went backwards");
            s.now = entry.at;
            match entry.ev {
                Event::Resume(p) => match s.procs[p].phase {
                    Phase::Startup | Phase::BlockedResume => {
                        self.wake_now(s, p, entry.at, NO_CTX);
                        s.handoff.direct += 1;
                        return true;
                    }
                    Phase::Finished => {}
                    ref ph => unreachable!("resume for proc {p} in phase {ph:?}"),
                },
                Event::Deliver { dst, mut pkt } => {
                    s.procs[dst].pending_deliver -= 1;
                    s.procs[dst].pending_bytes -= pkt.wire_bytes;
                    pkt.arrived = entry.at;
                    if let Some(tr) = &s.tracer {
                        tr.record(
                            entry.at.0,
                            dst,
                            EventKind::NetRecv {
                                src: pkt.src,
                                wire_bytes: pkt.wire_bytes as u64,
                                tag: pkt.tag,
                            },
                        );
                    }
                    match pkt.class {
                        DeliveryClass::Svc => {
                            if let Err(e) = self.dispatch_svc(s, dst, pkt, entry.at) {
                                // Propagate on this thread: the process-exit
                                // path records it as the first panic and the
                                // controller shuts the run down.
                                std::panic::resume_unwind(e);
                            }
                            if s.panicked || s.shutdown {
                                return false;
                            }
                        }
                        DeliveryClass::App => {
                            let cause = pkt.cause;
                            s.procs[dst].mailbox.push_back(pkt);
                            if matches!(s.procs[dst].phase, Phase::WaitRecv { .. }) {
                                self.wake_now(s, dst, entry.at, cause);
                                s.handoff.direct += 1;
                                return true;
                            }
                        }
                    }
                }
                Event::Timer { dst, token } => {
                    if s.procs[dst].phase
                        == (Phase::WaitRecv {
                            deadline: Some(token),
                        })
                    {
                        s.procs[dst].timed_out = true;
                        self.wake_now(s, dst, entry.at, NO_CTX);
                        s.handoff.direct += 1;
                        return true;
                    }
                    // Otherwise the timer is stale (the wait already ended).
                }
            }
        }
    }

    /// Run the `Svc` handler for `dst`, releasing the scheduler lock for the
    /// duration of the call (handlers re-enter the scheduler through
    /// [`SvcCtx`]) and re-acquiring it before returning. Returns the
    /// handler's panic payload, if any.
    fn dispatch_svc<'a>(
        &'a self,
        s: &mut MutexGuard<'a, Sched>,
        dst: ProcId,
        pkt: Packet,
        at: SimTime,
    ) -> Result<(), Box<dyn std::any::Any + Send>> {
        if let Some(prof) = &s.profiler {
            prof.record_svc(dst, at.0, pkt.cause);
        }
        let mut h = self.handlers.lock()[dst]
            .take()
            .unwrap_or_else(|| panic!("no Svc handler on proc {dst}"));
        let r = self.sched.unlocked(s, || {
            let mut ctx = SvcCtx::new(self, dst, at);
            catch_unwind(AssertUnwindSafe(|| h(&mut ctx, pkt)))
        });
        if r.is_ok() {
            // On panic the slot stays empty; the run is shutting down.
            self.handlers.lock()[dst] = Some(h);
        }
        r
    }

    /// Mark process `p` runnable at virtual time `t` and notify its thread.
    /// Shared by the controller's `wake` and the direct-handoff path; every
    /// clock advance and its compute/blocked classification happens here.
    /// `pkt_cause` is the delivered packet's causal stamp on receive wakes
    /// ([`NO_CTX`] for self-caused resumes and timer expiries).
    pub(crate) fn wake_now(
        &self,
        s: &mut MutexGuard<'_, Sched>,
        p: ProcId,
        t: SimTime,
        pkt_cause: u64,
    ) {
        debug_assert!(s.running.is_none());
        if s.procs[p].phase == Phase::Startup {
            if let Some(tr) = &s.tracer {
                tr.record(t.0, p, EventKind::ProcStart);
            }
        }
        if let Some(prof) = &s.profiler {
            let pi = &s.procs[p];
            let kind = match pi.phase {
                Phase::Startup => Some(CtxKind::Start),
                Phase::BlockedResume => Some(CtxKind::Compute),
                Phase::WaitRecv { .. } => Some(if pi.timed_out {
                    CtxKind::Timeout
                } else {
                    CtxKind::Wait
                }),
                Phase::Running | Phase::Finished => None,
            };
            if let Some(kind) = kind {
                prof.record_wake(p, pi.clock.0, pi.clock.max(t).0, kind, pkt_cause);
            }
        }
        let pi = &mut s.procs[p];
        let adv = t.0.saturating_sub(pi.clock.0);
        match pi.phase {
            Phase::BlockedResume => pi.times.compute_ns += adv,
            Phase::WaitRecv { .. } => pi.times.blocked_ns += adv,
            Phase::Startup | Phase::Running | Phase::Finished => {}
        }
        pi.clock = pi.clock.max(t);
        pi.phase = Phase::Running;
        s.running = Some(p);
        self.proc_cv[p].notify_one();
    }
}

/// One complete simulated run.
pub struct RunOutcome<R> {
    /// Per-process return values of the body closure, indexed by `ProcId`.
    pub results: Vec<R>,
    /// Virtual time at which the last process finished.
    pub end_time: SimTime,
    /// Virtual finish time of each process.
    pub proc_end: Vec<SimTime>,
    /// Kernel compute/blocked time classification of each process.
    pub proc_times: Vec<ProcTimes>,
    /// Direct vs controller-mediated wake-up counts (wall-clock bookkeeping;
    /// not part of the virtual-time results).
    pub handoff: HandoffStats,
    /// The network model, returned so callers can read its statistics.
    pub net: Box<dyn NetModel>,
}

/// A configured simulation, ready to run.
///
/// ```
/// use std::sync::Arc;
/// use vopp_sim::{Sim, PerfectNet, SimDuration, DeliveryClass};
///
/// let sim = Sim::new(2, Box::new(PerfectNet::default()));
/// let out = sim.run(|ctx| {
///     if ctx.me() == 0 {
///         ctx.send(1, 100, DeliveryClass::App, 0, Arc::new(123u32));
///         0
///     } else {
///         ctx.recv().expect::<u32>()
///     }
/// });
/// assert_eq!(out.results, vec![0, 123]);
/// ```
pub struct Sim {
    nprocs: usize,
    net: Box<dyn NetModel>,
    handlers: Vec<Option<Handler>>,
    tracer: Option<Arc<Tracer>>,
    profiler: Option<Arc<CausalProfiler>>,
    direct_handoff: bool,
}

impl Sim {
    /// A simulation with `nprocs` processes over the given network model.
    pub fn new(nprocs: usize, net: Box<dyn NetModel>) -> Sim {
        assert!(nprocs > 0, "need at least one process");
        Sim {
            nprocs,
            net,
            handlers: (0..nprocs).map(|_| None).collect(),
            tracer: None,
            profiler: None,
            direct_handoff: direct_handoff_default(),
        }
    }

    /// Enable or disable direct process→process handoff for this run
    /// (defaults to the process-wide setting, normally on). Virtual-time
    /// results are identical either way; only wall-clock differs.
    pub fn set_direct_handoff(&mut self, on: bool) {
        self.direct_handoff = on;
    }

    /// Install an event tracer. Kernel-level send/receive and process
    /// lifecycle events are recorded into it; the same tracer is exposed to
    /// process bodies and service handlers via [`AppCtx::trace`] /
    /// [`SvcCtx::trace`] so higher layers share one event stream.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Install a causal-edge recorder for the critical-path profiler.
    /// Wakes, service dispatches and packet sends are tagged with their
    /// immediate causal predecessor; recording is pure observation and
    /// never influences scheduling, clocks, or any virtual-time result.
    pub fn set_profiler(&mut self, profiler: Arc<CausalProfiler>) {
        self.profiler = Some(profiler);
    }

    /// Register the service handler for process `p` (at most one each).
    pub fn set_handler(&mut self, p: ProcId, h: Handler) {
        assert!(self.handlers[p].is_none(), "handler already set for {p}");
        self.handlers[p] = Some(h);
    }

    /// Execute the simulation to completion. `body` is invoked once per
    /// process on its own thread; the return values are collected in
    /// [`RunOutcome::results`].
    ///
    /// Panics if the simulation deadlocks (all processes blocked with no
    /// pending events) or if any process panics.
    pub fn run<R, F>(self, body: F) -> RunOutcome<R>
    where
        R: Send,
        F: Fn(AppCtx<'_>) -> R + Send + Sync,
    {
        let nprocs = self.nprocs;
        let shared = Shared {
            sched: Mutex::new(Sched {
                now: SimTime::ZERO,
                seq: 0,
                queue: BinaryHeap::new(),
                procs: (0..nprocs).map(|_| ProcInfo::new()).collect(),
                running: None,
                live: nprocs,
                shutdown: false,
                panicked: false,
                direct_handoff: self.direct_handoff,
                draining: false,
                handoff: HandoffStats::default(),
                net: self.net,
                tracer: self.tracer.clone(),
                profiler: self.profiler,
            }),
            proc_cv: (0..nprocs).map(|_| Condvar::new()).collect(),
            ctl_cv: Condvar::new(),
            nprocs,
            handlers: Mutex::new(self.handlers),
            tracer: self.tracer,
        };
        {
            let mut s = shared.sched.lock();
            for p in 0..nprocs {
                s.push_event(SimTime::ZERO, Event::Resume(p));
            }
        }

        let shared = &shared;
        let body = &body;
        let mut results: Vec<Option<R>> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..nprocs)
                .map(|p| {
                    scope.spawn(move || {
                        // Wait for the first resume.
                        {
                            let mut s = shared.sched.lock();
                            while s.running != Some(p) {
                                if s.shutdown {
                                    return None;
                                }
                                shared.proc_cv[p].wait(&mut s);
                            }
                        }
                        let r =
                            catch_unwind(AssertUnwindSafe(|| body(AppCtx::new(shared, p, nprocs))));
                        let mut s = shared.sched.lock();
                        // Only the *first* panic is the real error; panics
                        // raised to unblock threads during shutdown are noise.
                        let first_panic = r.is_err() && !s.shutdown && !s.panicked;
                        if first_panic {
                            s.panicked = true;
                        }
                        if let Some(tr) = &s.tracer {
                            tr.record(s.procs[p].clock.0, p, EventKind::ProcExit);
                        }
                        s.procs[p].phase = Phase::Finished;
                        s.live -= 1;
                        if s.running == Some(p) {
                            s.running = None;
                        }
                        shared.ctl_cv.notify_one();
                        drop(s);
                        match r {
                            Ok(v) => Some(v),
                            Err(e) if first_panic => std::panic::resume_unwind(e),
                            Err(_) => None,
                        }
                    })
                })
                .collect();

            let handler_panic = Self::controller(shared);

            let results: Vec<Option<R>> = joins
                .into_iter()
                .enumerate()
                .map(|(p, j)| match j.join() {
                    Ok(v) => v,
                    Err(e) => {
                        // Re-panic on the controller thread with the
                        // process's payload.
                        let _ = p;
                        std::panic::resume_unwind(e)
                    }
                })
                .collect();
            if let Some(e) = handler_panic {
                std::panic::resume_unwind(e);
            }
            results
        });

        let mut s = shared.sched.lock();
        if s.shutdown {
            panic!("simulation deadlocked: all processes blocked with no pending events");
        }
        let proc_end: Vec<SimTime> = s.procs.iter().map(|pi| pi.clock).collect();
        let proc_times: Vec<ProcTimes> = s.procs.iter().map(|pi| pi.times).collect();
        let end_time = proc_end.iter().copied().max().unwrap_or(SimTime::ZERO);
        let handoff = s.handoff;
        TOTAL_DIRECT.fetch_add(handoff.direct, Ordering::Relaxed);
        TOTAL_VIA_CTL.fetch_add(handoff.via_controller, Ordering::Relaxed);
        let net = std::mem::replace(&mut s.net, Box::new(crate::net::PerfectNet::default()));
        drop(s);
        RunOutcome {
            results: results
                .iter_mut()
                .map(|r| r.take().expect("result"))
                .collect(),
            end_time,
            proc_end,
            proc_times,
            handoff,
            net,
        }
    }

    /// Event loop: runs on the caller's thread until every process finished,
    /// a process panicked, or a deadlock is detected. Returns a panic
    /// payload if a service handler panicked on this thread. With direct
    /// handoff on, process threads drain the queue themselves and this loop
    /// mostly stays parked in `wake` — it only pops events itself at startup,
    /// when handoff is disabled, and to detect termination or deadlock.
    fn controller(shared: &Shared) -> Option<Box<dyn std::any::Any + Send>> {
        loop {
            let mut s = shared.sched.lock();
            if s.panicked {
                Self::shutdown_all(shared, &mut s);
                return None;
            }
            if s.live == 0 {
                return None;
            }
            let Some(entry) = s.queue.pop() else {
                s.shutdown = true;
                Self::shutdown_all(shared, &mut s);
                return None;
            };
            debug_assert!(entry.at >= s.now, "event queue went backwards");
            s.now = entry.at;
            match entry.ev {
                Event::Resume(p) => match s.procs[p].phase {
                    Phase::Startup | Phase::BlockedResume => {
                        Self::wake(shared, &mut s, p, entry.at, NO_CTX);
                    }
                    Phase::Finished => {}
                    ref ph => unreachable!("resume for proc {p} in phase {ph:?}"),
                },
                Event::Deliver { dst, mut pkt } => {
                    s.procs[dst].pending_deliver -= 1;
                    s.procs[dst].pending_bytes -= pkt.wire_bytes;
                    pkt.arrived = entry.at;
                    if let Some(tr) = &s.tracer {
                        tr.record(
                            entry.at.0,
                            dst,
                            EventKind::NetRecv {
                                src: pkt.src,
                                wire_bytes: pkt.wire_bytes as u64,
                                tag: pkt.tag,
                            },
                        );
                    }
                    match pkt.class {
                        DeliveryClass::Svc => {
                            // A handler panic must not strand the blocked
                            // process threads: release them, then re-panic.
                            if let Err(e) = shared.dispatch_svc(&mut s, dst, pkt, entry.at) {
                                Self::shutdown_all(shared, &mut s);
                                drop(s);
                                return Some(e);
                            }
                        }
                        DeliveryClass::App => {
                            let cause = pkt.cause;
                            s.procs[dst].mailbox.push_back(pkt);
                            if matches!(s.procs[dst].phase, Phase::WaitRecv { .. }) {
                                Self::wake(shared, &mut s, dst, entry.at, cause);
                            }
                        }
                    }
                }
                Event::Timer { dst, token } => {
                    if s.procs[dst].phase
                        == (Phase::WaitRecv {
                            deadline: Some(token),
                        })
                    {
                        s.procs[dst].timed_out = true;
                        Self::wake(shared, &mut s, dst, entry.at, NO_CTX);
                    }
                    // Otherwise the timer is stale (the wait already ended).
                }
            }
        }
    }

    /// Hand control to process `p` at virtual time `t` and block until the
    /// controller is needed again. Must be called with the scheduler locked.
    /// While parked here, blocking processes drain the event queue and chain
    /// wake-ups among themselves (direct handoff) without waking this
    /// thread; the `draining` check keeps this loop parked even if the
    /// condvar wakes spuriously while a drain has the lock released to run a
    /// service handler.
    fn wake(shared: &Shared, s: &mut MutexGuard<'_, Sched>, p: ProcId, t: SimTime, pkt_cause: u64) {
        shared.wake_now(s, p, t, pkt_cause);
        s.handoff.via_controller += 1;
        while (s.running.is_some() || s.draining) && !s.panicked {
            shared.ctl_cv.wait(s);
        }
    }

    /// Release every blocked process thread so the scope can join them.
    fn shutdown_all(shared: &Shared, s: &mut MutexGuard<'_, Sched>) {
        s.shutdown = true;
        for cv in &shared.proc_cv {
            cv.notify_all();
        }
    }
}

/// Convenience wrapper: run `nprocs` copies of `body` on a perfect network
/// with the given latency. Used heavily by unit tests.
pub fn run_simple<R, F>(nprocs: usize, latency: SimDuration, body: F) -> RunOutcome<R>
where
    R: Send,
    F: Fn(AppCtx<'_>) -> R + Send + Sync,
{
    Sim::new(nprocs, Box::new(crate::net::PerfectNet::new(latency))).run(body)
}
