//! Stress tests of the kernel: many processes, heavy traffic, handler
//! pressure, and a randomized-program determinism check.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vopp_sim::{run_simple, DeliveryClass, PerfectNet, Sim, SimDuration};

#[test]
fn heavy_all_to_all_traffic() {
    let n = 16;
    let rounds = 50;
    let out = run_simple(n, SimDuration::from_micros(20), move |ctx| {
        let me = ctx.me();
        let mut received = 0u64;
        for r in 0..rounds {
            for d in 0..n {
                if d != me {
                    ctx.send(d, 64, DeliveryClass::App, r, Arc::new((me, r)));
                }
            }
            for _ in 0..n - 1 {
                let (src, round) = ctx.recv_filter(|p| p.tag == r).expect::<(usize, u64)>();
                assert_ne!(src, me);
                assert_eq!(round, r);
                received += 1;
            }
            ctx.compute(SimDuration::from_micros(me as u64 + 1));
        }
        received
    });
    assert!(out.results.iter().all(|&r| r == (rounds * (n as u64 - 1))));
    assert_eq!(out.net.sent_count(), rounds * (n as u64) * (n as u64 - 1));
}

#[test]
fn handlers_under_pressure() {
    // A counting service on every node; all other nodes hammer it.
    let n = 8;
    let counters: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let mut sim = Sim::new(n, Box::new(PerfectNet::new(SimDuration::from_micros(5))));
    for (p, ctr) in counters.iter().enumerate() {
        let ctr = ctr.clone();
        sim.set_handler(
            p,
            Box::new(move |svc, pkt| {
                let v = ctr.fetch_add(1, Ordering::SeqCst);
                let src = pkt.src;
                let tag = pkt.tag;
                svc.send(src, 16, DeliveryClass::App, tag, Arc::new(v));
            }),
        );
    }
    let out = sim.run(|ctx| {
        let me = ctx.me();
        let mut acks = 0;
        for i in 0..100u64 {
            let dst = (me + 1 + (i as usize % (ctx.nprocs() - 1))) % ctx.nprocs();
            ctx.send(dst, 32, DeliveryClass::Svc, i, Arc::new(()));
            ctx.recv_filter(|p| p.tag == i);
            acks += 1;
        }
        acks
    });
    assert!(out.results.iter().all(|&r| r == 100));
    let total: u64 = counters.iter().map(|c| c.load(Ordering::SeqCst)).sum();
    assert_eq!(total, 8 * 100);
}

#[test]
fn deterministic_pseudo_random_program() {
    // A program whose send pattern depends on its own received data:
    // two runs must still be identical.
    let run = || {
        run_simple(6, SimDuration::from_micros(15), |ctx| {
            let me = ctx.me();
            let mut state = me as u64 + 1;
            let mut log = Vec::new();
            for round in 0..30u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(round);
                let dst = (state % 6) as usize;
                if dst != me {
                    ctx.send(
                        dst,
                        (state % 512) as usize + 16,
                        DeliveryClass::App,
                        round,
                        Arc::new(state),
                    );
                }
                // Opportunistically drain anything that has arrived.
                while let Some(pkt) = ctx.recv_timeout(SimDuration::from_micros(1)) {
                    log.push((pkt.src, pkt.expect::<u64>()));
                }
                ctx.compute(SimDuration::from_micros(state % 40 + 1));
            }
            // Drain stragglers.
            while let Some(pkt) = ctx.recv_timeout(SimDuration::from_millis(1)) {
                log.push((pkt.src, pkt.expect::<u64>()));
            }
            (log, ctx.now())
        })
    };
    let a = run();
    let b = run();
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x, y);
    }
    assert_eq!(a.end_time, b.end_time);
}

#[test]
fn mailbox_purge_under_load() {
    let out = run_simple(2, SimDuration::from_micros(10), |ctx| {
        if ctx.me() == 0 {
            for i in 0..200u64 {
                ctx.send(1, 8, DeliveryClass::App, i, Arc::new(i));
            }
            0
        } else {
            // Wait until everything arrived, then purge the odd tags.
            ctx.compute(SimDuration::from_millis(10));
            let purged = ctx.purge_filter(|p| p.tag % 2 == 1);
            assert_eq!(purged, 100);
            let mut sum = 0;
            while let Some(pkt) = ctx.recv_timeout(SimDuration::from_micros(1)) {
                sum += pkt.expect::<u64>() % 2;
            }
            assert_eq!(ctx.mailbox_len(), 0);
            sum // all even tags: sum of remainders is 0
        }
    });
    assert_eq!(out.results[1], 0);
}

#[test]
fn thirty_two_procs_compute_heavy() {
    // 32 nodes, lots of compute events: exercises scheduler churn.
    let out = run_simple(32, SimDuration::from_micros(10), |ctx| {
        for i in 0..200 {
            ctx.compute(SimDuration::from_micros((ctx.me() as u64 + i) % 17 + 1));
        }
        ctx.now().nanos()
    });
    assert!(out.results.iter().all(|&t| t > 0));
}
