//! End-to-end tests of the simulation kernel: scheduling order, virtual
//! time accounting, message delivery, timeouts, handlers, determinism.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vopp_sim::{run_simple, DeliveryClass, PerfectNet, Sim, SimDuration, SimTime};

const LAT: SimDuration = SimDuration(50_000); // 50us

#[test]
fn compute_advances_virtual_clock() {
    let out = run_simple(1, LAT, |ctx| {
        assert_eq!(ctx.now(), SimTime::ZERO);
        ctx.compute(SimDuration::from_micros(100));
        assert_eq!(ctx.now(), SimTime(100_000));
        ctx.compute(SimDuration::from_micros(1));
        ctx.now()
    });
    assert_eq!(out.results[0], SimTime(101_000));
    assert_eq!(out.end_time, SimTime(101_000));
}

#[test]
fn zero_compute_is_noop() {
    let out = run_simple(1, LAT, |ctx| {
        ctx.compute(SimDuration::ZERO);
        ctx.now()
    });
    assert_eq!(out.results[0], SimTime::ZERO);
}

#[test]
fn message_roundtrip_with_latency() {
    let out = run_simple(2, LAT, |ctx| {
        if ctx.me() == 0 {
            ctx.send(1, 64, DeliveryClass::App, 1, Arc::new(7u64));
            let pkt = ctx.recv();
            assert_eq!(pkt.src, 1);
            pkt.expect::<u64>()
        } else {
            let pkt = ctx.recv();
            // One-way latency.
            assert_eq!(pkt.arrived, SimTime(50_000));
            let v = pkt.expect::<u64>();
            ctx.send(0, 64, DeliveryClass::App, 2, Arc::new(v * 2));
            v
        }
    });
    assert_eq!(out.results, vec![14, 7]);
    // Round trip = 2x latency.
    assert_eq!(out.proc_end[0], SimTime(100_000));
}

#[test]
fn recv_while_sender_computes() {
    // Receiver blocks first; sender computes, then sends.
    let out = run_simple(2, LAT, |ctx| {
        if ctx.me() == 0 {
            ctx.compute(SimDuration::from_millis(3));
            ctx.send(1, 10, DeliveryClass::App, 0, Arc::new(()));
            ctx.now()
        } else {
            let pkt = ctx.recv();
            assert_eq!(pkt.arrived, SimTime(3_050_000));
            ctx.now()
        }
    });
    assert_eq!(out.results[1], SimTime(3_050_000));
}

#[test]
fn messages_delivered_in_order_per_link() {
    let out = run_simple(2, LAT, |ctx| {
        if ctx.me() == 0 {
            for i in 0..10u32 {
                ctx.send(1, 16, DeliveryClass::App, i as u64, Arc::new(i));
            }
            0
        } else {
            let mut got = Vec::new();
            for _ in 0..10 {
                got.push(ctx.recv().expect::<u32>());
            }
            assert_eq!(got, (0..10).collect::<Vec<_>>());
            1
        }
    });
    assert_eq!(out.results, vec![0, 1]);
}

#[test]
fn recv_filter_skips_non_matching() {
    let out = run_simple(2, LAT, |ctx| {
        if ctx.me() == 0 {
            ctx.send(1, 8, DeliveryClass::App, 5, Arc::new(5u32));
            ctx.send(1, 8, DeliveryClass::App, 9, Arc::new(9u32));
            0
        } else {
            // Ask for tag 9 first even though tag 5 arrives first.
            let nine = ctx.recv_filter(|p| p.tag == 9).expect::<u32>();
            let five = ctx.recv().expect::<u32>();
            assert_eq!((nine, five), (9, 5));
            1
        }
    });
    assert_eq!(out.results, vec![0, 1]);
}

#[test]
fn recv_timeout_expires() {
    let out = run_simple(1, LAT, |ctx| {
        let r = ctx.recv_timeout(SimDuration::from_millis(2));
        assert!(r.is_none());
        ctx.now()
    });
    assert_eq!(out.results[0], SimTime(2_000_000));
}

#[test]
fn recv_timeout_beaten_by_message() {
    let out = run_simple(2, LAT, |ctx| {
        if ctx.me() == 0 {
            ctx.send(1, 8, DeliveryClass::App, 0, Arc::new(1u8));
            true
        } else {
            let r = ctx.recv_timeout(SimDuration::from_secs(100));
            assert_eq!(ctx.now(), SimTime(50_000));
            r.is_some()
        }
    });
    assert_eq!(out.results, vec![true, true]);
}

#[test]
fn stale_timer_does_not_fire_later_wait() {
    // First wait is satisfied by a message well before its long timeout;
    // the stale timer must not break a later recv.
    let out = run_simple(2, LAT, |ctx| {
        if ctx.me() == 0 {
            ctx.send(1, 8, DeliveryClass::App, 0, Arc::new(1u8));
            ctx.compute(SimDuration::from_secs(2));
            ctx.send(1, 8, DeliveryClass::App, 0, Arc::new(2u8));
            0u8
        } else {
            let a = ctx
                .recv_timeout(SimDuration::from_secs(1))
                .expect("first message")
                .expect::<u8>();
            let b = ctx.recv().expect::<u8>();
            a + b
        }
    });
    assert_eq!(out.results[1], 3);
}

#[test]
fn self_send_works() {
    let out = run_simple(1, LAT, |ctx| {
        ctx.send(0, 8, DeliveryClass::App, 0, Arc::new(99u32));
        ctx.recv().expect::<u32>()
    });
    assert_eq!(out.results[0], 99);
}

#[test]
fn svc_handler_runs_during_compute() {
    // Proc 1 computes for 10ms. Proc 0 sends a Svc request at ~0; the handler
    // must run at arrival (50us), not when proc 1 finishes computing.
    let handled_at = Arc::new(AtomicU64::new(0));
    let ha = handled_at.clone();
    let mut sim = Sim::new(2, Box::new(PerfectNet::new(LAT)));
    sim.set_handler(
        1,
        Box::new(move |svc, pkt| {
            ha.store(svc.now().nanos(), Ordering::SeqCst);
            let v = pkt.expect::<u32>();
            svc.send(pkt_src(), 8, DeliveryClass::App, 0, Arc::new(v + 1));
            fn pkt_src() -> usize {
                0
            }
        }),
    );
    let out = sim.run(|ctx| {
        if ctx.me() == 0 {
            ctx.send(1, 8, DeliveryClass::Svc, 0, Arc::new(41u32));
            ctx.recv().expect::<u32>()
        } else {
            ctx.compute(SimDuration::from_millis(10));
            0
        }
    });
    assert_eq!(out.results[0], 42);
    assert_eq!(handled_at.load(Ordering::SeqCst), 50_000);
    // Proc 0 got the reply at 100us, long before proc 1 finished at 10ms.
    assert_eq!(out.proc_end[0], SimTime(100_000));
    assert_eq!(out.proc_end[1], SimTime(10_000_000));
}

#[test]
fn handler_state_shared_with_app_thread() {
    // A counter service: Svc requests increment shared state; the app thread
    // on the same node reads it after a sync message.
    let state = Arc::new(Mutex::new(0u32));
    let st = state.clone();
    let mut sim = Sim::new(2, Box::new(PerfectNet::new(LAT)));
    sim.set_handler(
        0,
        Box::new(move |svc, pkt| {
            let mut g = st.lock().unwrap();
            *g += pkt.expect::<u32>();
            let v = *g;
            drop(g);
            svc.send(1, 8, DeliveryClass::App, 0, Arc::new(v));
        }),
    );
    let state2 = state.clone();
    let out = sim.run(move |ctx| {
        if ctx.me() == 1 {
            let mut last = 0;
            for _ in 0..5 {
                ctx.send(0, 8, DeliveryClass::Svc, 0, Arc::new(10u32));
                last = ctx.recv().expect::<u32>();
            }
            last
        } else {
            // Node 0's app thread just idles past the handler activity.
            ctx.compute(SimDuration::from_secs(1));
            *state2.lock().unwrap()
        }
    });
    assert_eq!(out.results, vec![50, 50]);
}

#[test]
fn deterministic_timestamps_across_runs() {
    let run = || {
        run_simple(4, LAT, |ctx| {
            let me = ctx.me();
            let n = ctx.nprocs();
            // All-to-all chatter with staggered compute.
            ctx.compute(SimDuration::from_micros(me as u64 * 13 + 1));
            for d in 0..n {
                if d != me {
                    ctx.send(d, 100 + me, DeliveryClass::App, me as u64, Arc::new(me));
                }
            }
            let mut sum = 0usize;
            for _ in 0..n - 1 {
                sum += ctx.recv().expect::<usize>();
            }
            (sum, ctx.now())
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.proc_end, b.proc_end);
}

#[test]
fn net_stats_exposed_after_run() {
    let out = run_simple(2, LAT, |ctx| {
        if ctx.me() == 0 {
            ctx.send(1, 1000, DeliveryClass::App, 0, Arc::new(()));
        } else {
            ctx.recv();
        }
    });
    assert_eq!(out.net.sent_count(), 1);
    assert_eq!(out.net.sent_bytes(), 1000);
}

#[test]
#[should_panic(expected = "deadlocked")]
fn deadlock_detected() {
    run_simple(2, LAT, |ctx| {
        // Both procs wait forever.
        ctx.recv();
    });
}

#[test]
#[should_panic(expected = "handler boom")]
fn handler_panic_propagates_without_hanging() {
    let mut sim = Sim::new(2, Box::new(PerfectNet::new(LAT)));
    sim.set_handler(1, Box::new(|_, _| panic!("handler boom")));
    sim.run(|ctx| {
        if ctx.me() == 0 {
            ctx.send(1, 8, DeliveryClass::Svc, 0, Arc::new(()));
            ctx.recv(); // would wait forever; the panic must end the run
        } else {
            ctx.recv();
        }
    });
}

#[test]
#[should_panic(expected = "boom")]
fn process_panic_propagates() {
    run_simple(2, LAT, |ctx| {
        if ctx.me() == 1 {
            panic!("boom");
        }
        ctx.recv();
    });
}

#[test]
fn many_procs_ring() {
    // Token ring across 32 procs, 3 laps.
    let n = 32usize;
    let last_hop = (3 * n) as u32;
    let out = run_simple(n, LAT, move |ctx| {
        let me = ctx.me();
        let next = (me + 1) % ctx.nprocs();
        let mut seen = 0u32;
        if me == 0 {
            // Seed hop 1 towards proc 1.
            ctx.send(next, 8, DeliveryClass::App, 0, Arc::new(1u32));
        }
        for _ in 0..3 {
            let h = ctx.recv().expect::<u32>();
            seen = h;
            if h < last_hop {
                ctx.send(next, 8, DeliveryClass::App, 0, Arc::new(h + 1));
            }
        }
        seen
    });
    // Proc 0's final receive is hop 3n, completing the third lap.
    assert_eq!(out.results[0], last_hop);
    // 3 laps * 32 hops * 50us each.
    assert_eq!(out.end_time, SimTime(3 * 32 * 50_000));
}

#[test]
fn proc_times_classify_every_nanosecond() {
    // Proc 0 computes then waits for a late message; proc 1 only computes
    // before sending. For both, compute + blocked must equal the final clock.
    let out = run_simple(2, LAT, |ctx| {
        if ctx.me() == 0 {
            ctx.compute(SimDuration::from_micros(100));
            ctx.recv().expect::<u8>()
        } else {
            ctx.compute(SimDuration::from_millis(2));
            ctx.send(0, 16, DeliveryClass::App, 0, Arc::new(9u8));
            0
        }
    });
    for (p, (end, pt)) in out.proc_end.iter().zip(out.proc_times.iter()).enumerate() {
        assert_eq!(
            pt.compute_ns + pt.blocked_ns,
            end.0,
            "proc {p}: kernel time classification must cover the clock"
        );
    }
    // Proc 0: 100us compute, then blocked from 100us until arrival at 2ms+50us.
    assert_eq!(out.proc_times[0].compute_ns, 100_000);
    assert_eq!(out.proc_times[0].blocked_ns, 2_050_000 - 100_000);
    // Proc 1 never blocks.
    assert_eq!(out.proc_times[1].compute_ns, 2_000_000);
    assert_eq!(out.proc_times[1].blocked_ns, 0);
}
