//! The conservative-lookahead parallel kernel must be *invisible*: every
//! artifact — results, clocks, time classification, network statistics,
//! trace stream, causal log — byte-identical at any worker count, including
//! with direct handoff disabled. Plus fallback and failure-path parity.

use std::sync::Arc;

use vopp_sim::{
    CausalProfiler, DeliveryClass, NetModel, PerfectNet, RouteRequest, Sim, SimDuration, SimTime,
    Tracer, MIN_PARALLEL_LOOKAHEAD,
};

/// A deterministic model whose delivery times depend on *route call order*
/// (`sent` feeds a jitter term) and on the destination's delivery backlog —
/// so the identity assertions below also prove the commit replays sends in
/// exactly the sequential order with exactly the sequential backlog counts.
/// Loopback (5 us) is far below the lookahead (50 us), exercising in-window
/// self-deliveries.
struct JitterNet {
    sent: u64,
    bytes: u64,
}

impl NetModel for JitterNet {
    fn route(&mut self, req: RouteRequest) -> Option<SimTime> {
        if req.src == req.dst {
            return Some(req.now + SimDuration::from_micros(5));
        }
        self.sent += 1;
        self.bytes += req.wire_bytes as u64;
        let jitter = (self.sent * 1_771 + req.pending_bytes_at_dst as u64 * 13) % 7_000;
        Some(req.now + SimDuration::from_micros(50) + SimDuration::from_nanos(jitter))
    }

    fn lookahead(&self) -> Option<SimDuration> {
        Some(SimDuration::from_micros(50))
    }

    fn loopback_latency(&self) -> Option<SimDuration> {
        Some(SimDuration::from_micros(5))
    }

    fn sent_count(&self) -> u64 {
        self.sent
    }

    fn sent_bytes(&self) -> u64 {
        self.bytes
    }
}

const N: usize = 8;
const ITERS: u64 = 40;

/// Request/reply over service handlers with loopback self-sends, futile
/// timeouts (live + stale timers), and order-sensitive network timing.
fn build(workers: usize, direct_handoff: bool) -> Sim {
    let mut sim = Sim::new(N, Box::new(JitterNet { sent: 0, bytes: 0 }));
    sim.set_workers(workers);
    sim.set_direct_handoff(direct_handoff);
    for p in 0..N {
        sim.set_handler(
            p,
            Box::new(|ctx, pkt| {
                let (_, i): (usize, u64) = pkt.peek::<(usize, u64)>().copied().unwrap();
                ctx.send(
                    pkt.src,
                    128,
                    DeliveryClass::App,
                    500_000 + i,
                    Arc::new(i * 2),
                );
            }),
        );
    }
    sim
}

fn workload(ctx: vopp_sim::AppCtx<'_>) -> u64 {
    let p = ctx.me();
    let mut sum = 0u64;
    for i in 0..ITERS {
        ctx.compute(SimDuration::from_nanos(
            (p as u64 * 7_919 + i * 104_729) % 50_000,
        ));
        if i % 4 == 0 {
            // Loopback: delivered 5 us out, usually inside the same window.
            ctx.send(p, 64, DeliveryClass::App, 1_000_000 + i, Arc::new(i));
        }
        let dst = (p + 1 + (i as usize % 5)) % N;
        ctx.send(
            dst,
            256 + i as usize * 3,
            DeliveryClass::Svc,
            i,
            Arc::new((p, i)),
        );
        if i % 7 == 0 {
            // Futile wait: the timer always wins (and earlier armed timers
            // go stale), covering timer events in both kernels.
            assert!(ctx
                .recv_filter_timeout(SimDuration::from_micros(5), |pk| pk.tag == u64::MAX)
                .is_none());
        }
        let reply = ctx
            .recv_filter_timeout(SimDuration::from_secs(1), |pk| {
                pk.tag == 500_000 + i && pk.src == dst
            })
            .expect("svc reply");
        sum = sum
            .wrapping_mul(31)
            .wrapping_add(reply.arrived.nanos() ^ reply.expect::<u64>());
        if i % 4 == 0 {
            let lb = ctx.recv_filter(|pk| pk.tag == 1_000_000 + i);
            sum = sum.wrapping_mul(31).wrapping_add(lb.arrived.nanos());
        }
    }
    sum
}

/// Everything the parallel kernel must reproduce bit-for-bit.
struct Artifacts {
    results: Vec<u64>,
    end_time: SimTime,
    proc_end: Vec<SimTime>,
    proc_times: String,
    net_sent: u64,
    net_bytes: u64,
    trace_json: String,
    causal: String,
    wakeups: u64,
}

fn run(workers: usize, direct_handoff: bool) -> (Artifacts, vopp_sim::WindowStats, usize) {
    let mut sim = build(workers, direct_handoff);
    let tracer = Arc::new(Tracer::new(1 << 20));
    let profiler = Arc::new(CausalProfiler::new(N));
    sim.set_tracer(tracer.clone());
    sim.set_profiler(profiler.clone());
    let out = sim.run(workload);
    let log = profiler.take();
    (
        Artifacts {
            results: out.results,
            end_time: out.end_time,
            proc_end: out.proc_end,
            proc_times: format!("{:?}", out.proc_times),
            net_sent: out.net.sent_count(),
            net_bytes: out.net.sent_bytes(),
            trace_json: tracer.take().to_json(),
            causal: format!("{:?}|{:?}|{:?}", log.records, log.last_wake, log.spans),
            wakeups: out.handoff.total(),
        },
        out.windows,
        out.sim_workers,
    )
}

#[test]
fn artifacts_identical_at_any_worker_count() {
    let (base, base_win, base_groups) = run(1, true);
    assert_eq!(base_win.windows, 0, "sequential runs carve no windows");
    assert_eq!(base_groups, 1);
    assert!(!base.trace_json.is_empty());
    for (workers, handoff) in [(2, true), (4, true), (8, true), (4, false)] {
        let (par, win, groups) = run(workers, handoff);
        assert_eq!(groups, workers);
        assert!(
            win.parallel_windows > 0,
            "expected deferred windows at {workers} workers"
        );
        assert_eq!(par.results, base.results, "results @ {workers}w");
        assert_eq!(par.end_time, base.end_time, "end_time @ {workers}w");
        assert_eq!(par.proc_end, base.proc_end, "proc_end @ {workers}w");
        assert_eq!(par.proc_times, base.proc_times, "proc_times @ {workers}w");
        assert_eq!(par.net_sent, base.net_sent, "net msgs @ {workers}w");
        assert_eq!(par.net_bytes, base.net_bytes, "net bytes @ {workers}w");
        assert_eq!(par.trace_json, base.trace_json, "trace @ {workers}w");
        assert_eq!(par.causal, base.causal, "causal log @ {workers}w");
        // Same schedule => same number of wake-ups, however they were routed.
        assert_eq!(par.wakeups, base.wakeups, "wakeups @ {workers}w");
    }
}

/// Spin/park boundary stress: each round, every process joins a dense
/// all-to-all burst, then process 0 ping-pongs loopback messages alone while
/// the rest sleep through many windows. The dispatch doorbells swing from
/// steady-state re-arming (burst) to parked runners (lone-group stretch) and
/// back every round, and windows cover all three shapes — fully parallel,
/// partially idle groups, and single-active-group inline. Artifacts must
/// stay byte-identical through every transition.
#[test]
fn spin_park_boundary_stress_is_byte_identical() {
    fn run_bursty(workers: usize) -> (Vec<u64>, String, vopp_sim::WindowStats) {
        let mut sim = Sim::new(N, Box::new(JitterNet { sent: 0, bytes: 0 }));
        sim.set_workers(workers);
        for p in 0..N {
            sim.set_handler(
                p,
                Box::new(|ctx, pkt| {
                    let k: u64 = *pkt.peek().unwrap();
                    ctx.send(pkt.src, 64, DeliveryClass::App, 900_000 + k, Arc::new(k));
                }),
            );
        }
        let tracer = Arc::new(Tracer::new(1 << 20));
        sim.set_tracer(tracer.clone());
        let out = sim.run(|ctx| {
            let p = ctx.me();
            let mut sum = 0u64;
            for round in 0..12u64 {
                // Dense phase: all processes exchange request/replies at
                // once, so every group is active in the same windows.
                for i in 0..6u64 {
                    let k = round * 100 + i;
                    let dst = (p + 1 + (round as usize % (N - 1))) % N;
                    ctx.send(dst, 96, DeliveryClass::Svc, k, Arc::new(k));
                    let reply = ctx
                        .recv_filter_timeout(SimDuration::from_secs(1), |pk| {
                            pk.tag == 900_000 + k && pk.src == dst
                        })
                        .expect("burst reply");
                    sum = sum.wrapping_mul(31).wrapping_add(reply.arrived.nanos());
                }
                // Lone-group phase: process 0 ping-pongs loopback messages
                // (5 us each, well under the 50 us lookahead) while everyone
                // else sleeps through the stretch — its group's windows run
                // inline and the parked runners must re-wake cleanly for the
                // next burst.
                if p == 0 {
                    for i in 0..8u64 {
                        let k = round * 100 + 50 + i;
                        ctx.send(p, 32, DeliveryClass::App, 2_000_000 + k, Arc::new(k));
                        let lb = ctx.recv_filter(|pk| pk.tag == 2_000_000 + k);
                        sum = sum.wrapping_mul(31).wrapping_add(lb.arrived.nanos());
                    }
                } else {
                    ctx.compute(SimDuration::from_millis(1));
                }
            }
            sum
        });
        (out.results, tracer.take().to_json(), out.windows)
    }

    let (seq, seq_trace, seq_win) = run_bursty(1);
    assert_eq!(seq_win.windows, 0, "sequential runs carve no windows");
    let (par, par_trace, par_win) = run_bursty(4);
    assert!(
        par_win.parallel_windows > 0,
        "stress never ran a multi-group window"
    );
    assert!(
        par_win.inline_windows > 0,
        "stress never took the single-active-group inline path"
    );
    assert!(
        par_win.spin_hits + par_win.park_wakes > 0,
        "multi-group windows dispatched without touching a doorbell"
    );
    assert_eq!(seq, par, "results differ under bursty dispatch");
    assert_eq!(seq_trace, par_trace, "traces differ under bursty dispatch");
}

#[test]
fn falls_back_without_a_lookahead_bound() {
    struct Opaque;
    impl NetModel for Opaque {
        fn route(&mut self, req: RouteRequest) -> Option<SimTime> {
            Some(req.now + SimDuration::from_micros(10))
        }
    }
    let mut sim = Sim::new(4, Box::new(Opaque));
    sim.set_workers(4);
    let out = sim.run(|ctx| {
        ctx.compute(SimDuration::from_micros(3));
        ctx.me()
    });
    assert_eq!(out.sim_workers, 1, "no lookahead => sequential");
    assert_eq!(out.windows.windows, 0);
    assert_eq!(out.windows.fallback_runs, 1);
    assert_eq!(out.results, vec![0, 1, 2, 3]);
}

#[test]
fn falls_back_below_the_lookahead_floor() {
    // The 1 ns zero-latency what-if: a legal model, but windows would be
    // empty; the kernel must run it sequentially.
    assert!(SimDuration::from_nanos(1) < MIN_PARALLEL_LOOKAHEAD);
    let mut sim = Sim::new(4, Box::new(PerfectNet::new(SimDuration::from_nanos(1))));
    sim.set_workers(4);
    let out = sim.run(|ctx| {
        if ctx.me() == 0 {
            ctx.send(1, 10, DeliveryClass::App, 0, Arc::new(7u32));
            0
        } else if ctx.me() == 1 {
            ctx.recv().expect::<u32>()
        } else {
            9
        }
    });
    assert_eq!(out.sim_workers, 1);
    assert_eq!(out.windows.fallback_runs, 1);
    assert_eq!(out.results, vec![0, 7, 9, 9]);
}

#[test]
#[should_panic(expected = "simulation deadlocked")]
fn deadlock_detected_under_parallel_kernel() {
    let mut sim = Sim::new(4, Box::new(PerfectNet::new(SimDuration::from_micros(20))));
    sim.set_workers(4);
    let _ = sim.run(|ctx| {
        let _ = ctx.recv();
    });
}

#[test]
#[should_panic(expected = "proc body boom")]
fn process_panic_propagates_from_a_window() {
    let mut sim = Sim::new(8, Box::new(PerfectNet::new(SimDuration::from_micros(20))));
    sim.set_workers(4);
    let _ = sim.run(|ctx| {
        ctx.compute(SimDuration::from_micros(5));
        if ctx.me() == 3 {
            panic!("proc body boom");
        }
        // Everyone else blocks; the shutdown must release them.
        let _ = ctx.recv();
    });
}

#[test]
#[should_panic(expected = "svc handler boom")]
fn svc_handler_panic_propagates_from_a_window() {
    let mut sim = Sim::new(8, Box::new(PerfectNet::new(SimDuration::from_micros(20))));
    sim.set_workers(4);
    for p in 0..8 {
        sim.set_handler(p, Box::new(|_, _| panic!("svc handler boom")));
    }
    let _ = sim.run(|ctx| {
        if ctx.me() == 0 {
            ctx.send(5, 100, DeliveryClass::Svc, 0, Arc::new(()));
        }
        let _ = ctx.recv_timeout(SimDuration::from_millis(1));
    });
}
