//! Dynamic cluster membership: epochs, live sets, request placement.
//!
//! The fault plan's crash windows partition virtual time into **epochs**
//! whose live set is constant. Placement maps `(shard, epoch)` to a serving
//! node: the shard's home node while it is live, otherwise a deterministic
//! hash pick over the survivors. Every node computes the same map from the
//! same plan, so failover and fail-back need no coordination messages —
//! exactly like the deterministic re-sharding of a config-driven cluster.

use vopp_apps::workload::mix64;
use vopp_core::FaultPlan;

/// The epoch table for one run: boundaries, per-epoch live sets, placement.
#[derive(Debug, Clone)]
pub struct Membership {
    nprocs: usize,
    /// Epoch start times; `boundaries[0] == 0`.
    boundaries: Vec<u64>,
    /// Live nodes per epoch, each sorted ascending.
    live: Vec<Vec<usize>>,
}

impl Membership {
    /// Build the epoch table for `nprocs` nodes under `plan`.
    pub fn new(nprocs: usize, plan: &FaultPlan) -> Membership {
        assert!(nprocs > 0);
        let mut boundaries = vec![0u64];
        for c in &plan.crashes {
            assert!(c.node < nprocs, "crash names node {} of {nprocs}", c.node);
            boundaries.push(c.at.nanos());
            boundaries.push(c.up_at().nanos());
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        let live: Vec<Vec<usize>> = boundaries
            .iter()
            .map(|&start| {
                let l: Vec<usize> = (0..nprocs)
                    .filter(|&n| {
                        !plan.crashes.iter().any(|c| {
                            c.node == n && c.at.nanos() <= start && start < c.up_at().nanos()
                        })
                    })
                    .collect();
                assert!(!l.is_empty(), "every node is down at t={start}ns");
                l
            })
            .collect();
        Membership {
            nprocs,
            boundaries,
            live,
        }
    }

    /// Number of epochs (1 for a fault-free plan).
    pub fn epochs(&self) -> usize {
        self.boundaries.len()
    }

    /// The epoch containing virtual time `t_ns`.
    pub fn epoch_at(&self, t_ns: u64) -> usize {
        self.boundaries.partition_point(|&b| b <= t_ns) - 1
    }

    /// Live nodes in `epoch`, sorted ascending.
    pub fn live(&self, epoch: usize) -> &[usize] {
        &self.live[epoch]
    }

    /// A shard's home node: fixed for the whole run, round-robin over the
    /// full cluster. View homes in the store layout use the same map.
    pub fn home_of(&self, shard: usize) -> usize {
        shard % self.nprocs
    }

    /// The node serving `shard` during `epoch`: its home while live,
    /// otherwise a seeded hash pick over the epoch's survivors.
    pub fn server_for(&self, shard: usize, epoch: usize) -> usize {
        let home = self.home_of(shard);
        let live = &self.live[epoch];
        if live.binary_search(&home).is_ok() {
            return home;
        }
        live[(mix64(shard as u64, epoch as u64) % live.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use vopp_sim::{SimDuration, SimTime};

    use super::*;

    #[test]
    fn fault_free_plan_is_one_epoch() {
        let m = Membership::new(4, &FaultPlan::none());
        assert_eq!(m.epochs(), 1);
        assert_eq!(m.epoch_at(0), 0);
        assert_eq!(m.epoch_at(u64::MAX / 2), 0);
        assert_eq!(m.live(0), &[0, 1, 2, 3]);
        for s in 0..16 {
            assert_eq!(m.server_for(s, 0), s % 4, "home-node placement");
        }
    }

    #[test]
    fn crash_window_fails_over_and_back() {
        let plan =
            FaultPlan::none().with_crash(1, SimTime(1_000_000), SimDuration::from_micros(500));
        let m = Membership::new(3, &plan);
        assert_eq!(m.epochs(), 3);
        // Before, during, after.
        assert_eq!(m.epoch_at(999_999), 0);
        assert_eq!(m.epoch_at(1_000_000), 1);
        assert_eq!(m.epoch_at(1_499_999), 1);
        assert_eq!(m.epoch_at(1_500_000), 2);
        assert_eq!(m.live(0), &[0, 1, 2]);
        assert_eq!(m.live(1), &[0, 2]);
        assert_eq!(m.live(2), &[0, 1, 2]);
        // Shard 1 lives on node 1: served elsewhere only during the window.
        assert_eq!(m.server_for(1, 0), 1);
        let failover = m.server_for(1, 1);
        assert_ne!(failover, 1);
        assert!(m.live(1).contains(&failover));
        assert_eq!(m.server_for(1, 2), 1, "fail-back to the home node");
        // Shards of live homes never move.
        assert_eq!(m.server_for(0, 1), 0);
        assert_eq!(m.server_for(2, 1), 2);
    }

    #[test]
    fn placement_is_deterministic() {
        let plan = FaultPlan::none()
            .with_crash(0, SimTime(10_000), SimDuration::from_micros(20))
            .with_crash(2, SimTime(15_000), SimDuration::from_micros(20));
        let a = Membership::new(4, &plan);
        let b = Membership::new(4, &plan);
        for e in 0..a.epochs() {
            for s in 0..32 {
                assert_eq!(a.server_for(s, e), b.server_for(s, e));
            }
        }
    }

    #[test]
    #[should_panic(expected = "every node is down")]
    fn all_nodes_down_is_rejected() {
        let plan = FaultPlan::none()
            .with_crash(0, SimTime(1_000), SimDuration::from_micros(10))
            .with_crash(1, SimTime(1_000), SimDuration::from_micros(10));
        Membership::new(2, &plan);
    }
}
