//! Running the serving workload on a simulated cluster.

use vopp_core::{prelude::*, ClusterOutcome, RacecheckMode};
use vopp_metrics::Histogram;
use vopp_sim::SimTime;
use vopp_trace::EventKind;

use vopp_apps::workload::mix64;

use crate::membership::Membership;
use crate::params::ServeParams;
use crate::schedule::{build_schedule, Request};

/// Which store implementation serves the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeVariant {
    /// Each shard is one view with a fixed home node (runs on VC_d/VC_sd).
    Vopp,
    /// The shards live in one packed allocation behind one lock per shard
    /// (runs on the LRC family).
    Traditional,
}

/// Everything a serve run produces.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The usual run statistics (time, messages, phase breakdowns).
    pub stats: RunStats,
    /// Per-request service latency, merged across all serving nodes.
    pub latency: Histogram,
    /// Final-store checksum, identical on every node and equal to
    /// [`serve_reference`] for a correct run.
    pub checksum: u64,
    /// Order-independent digest of every GET's observed value.
    pub get_digest: u64,
    /// Requests served (always the full schedule).
    pub served: u64,
    /// Pages shed by crash windows across the run (0 without crash faults).
    pub recovered_pages: u64,
}

/// Position-tagged fold for store contents: commutative across shards, so
/// every node and the sequential reference compute it the same way.
fn fold_slot(acc: u64, index: usize, value: u32) -> u64 {
    acc.wrapping_add(mix64(index as u64, value as u64))
}

/// The final store contents, computed sequentially: each slot accumulates
/// the deltas of every PUT that targets it (addition commutes, so placement
/// and timing cannot change the answer). Returns the checksum the cluster
/// must converge to.
pub fn serve_reference(p: &ServeParams) -> u64 {
    let mut store = vec![0u32; p.shards * p.slots_per_shard];
    for rq in build_schedule(p) {
        if rq.write {
            let slot = &mut store[rq.shard * p.slots_per_shard + rq.slot];
            *slot = slot.wrapping_add(rq.delta);
        }
    }
    store
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &v)| fold_slot(acc, i, v))
}

/// Run the open-loop serving workload on a simulated cluster.
///
/// Every node walks the same global schedule and serves the requests the
/// membership map places on it: wait (idle) until the arrival instant,
/// bracket the target shard, apply the PUT delta or fold the GET value,
/// and record `completion − arrival` as the request's latency. Crash
/// windows from `cfg.faults` are choreographed in schedule order: the
/// victim sheds its volatile pages at the crash instant, idles through the
/// downtime, and reconstructs lazily from the home nodes afterwards.
///
/// After a final barrier every node checksums the whole store under read
/// views; the checksums must agree with each other (asserted here) and
/// with [`serve_reference`] (asserted by callers/tests) — which is what
/// "recovery reconstructed the shards" means concretely.
pub fn run_serve(cfg: &ClusterConfig, p: &ServeParams, variant: ServeVariant) -> ServeOutcome {
    match variant {
        ServeVariant::Vopp => {
            assert!(cfg.protocol.is_vc(), "VOPP serving runs on VC_d / VC_sd");
            run_serve_vopp(cfg, p, false)
        }
        ServeVariant::Traditional => {
            assert!(
                cfg.protocol.is_lrc_family(),
                "traditional serving runs on the LRC family"
            );
            assert!(
                cfg.faults.crashes.is_empty(),
                "crash/recovery is only modelled for the view-backed store"
            );
            run_serve_traditional(cfg, p)
        }
    }
}

/// Per-node serving state threaded through the request loop.
#[derive(Default)]
struct NodeTally {
    hist: Histogram,
    served: u64,
    get_digest: u64,
    recovered: u64,
}

fn run_serve_vopp(cfg: &ClusterConfig, p: &ServeParams, undisciplined: bool) -> ServeOutcome {
    let np = cfg.nprocs;
    let schedule = build_schedule(p);
    let membership = Membership::new(np, &cfg.faults);
    let slots = p.slots_per_shard;
    let mut world = WorldBuilder::new();
    // Scratch outside every view: only touched by the undisciplined
    // variant's seeded violation.
    let scratch = world.alloc_u32(4);
    let shard_views: Vec<_> = (0..p.shards)
        .map(|s| world.view_u32_at(slots, membership.home_of(s)))
        .collect();
    let layout = world.build();
    let faults = cfg.faults.clone();
    let out = run_cluster(cfg, layout, move |ctx| {
        let me = ctx.me();
        if undisciplined && me == 0 {
            // SEEDED VIOLATIONS — one per view-discipline rule, one-shot,
            // before disciplined serving starts (see `run_serve_undisciplined`).
            let _ = scratch.get(ctx, 0); // 1. outside_views
            let _ = shard_views[0].region.get(ctx, 0); // 2. unbracketed
            {
                let _g = ctx.rview(shard_views[0].view);
                let _ = shard_views[1].region.get(ctx, 0); // 3. foreign_view
                shard_views[0].region.set(ctx, 0, 0); // 4. read_only_write
            }
        }
        let mut tally = NodeTally::default();
        let my_crashes = faults.crashes_for(me);
        let mut next_crash = 0;
        for (i, rq) in schedule.iter().enumerate() {
            // Crash choreography happens between requests, in arrival order.
            while next_crash < my_crashes.len() && my_crashes[next_crash].at.nanos() <= rq.arrival {
                let c = my_crashes[next_crash];
                ctx.idle_until(c.at);
                tally.recovered += ctx.crash_recover();
                ctx.idle_until(c.up_at());
                next_crash += 1;
            }
            let epoch = membership.epoch_at(rq.arrival);
            if membership.server_for(rq.shard, epoch) != me {
                continue;
            }
            serve_one(ctx, &mut tally, rq, i, |ctx, tally| {
                let sv = &shard_views[rq.shard];
                if rq.write {
                    ctx.with_view(sv, |r| {
                        r.update(ctx, rq.slot, |x| x.wrapping_add(rq.delta));
                    });
                } else {
                    let v = ctx.with_rview(sv, |r| r.get(ctx, rq.slot));
                    tally.get_digest = tally.get_digest.wrapping_add(mix64(i as u64, v as u64));
                }
            });
        }
        // Late crash windows (after the last arrival) still happen, so the
        // final verification exercises recovery even then.
        for c in &my_crashes[next_crash..] {
            ctx.idle_until(c.at);
            tally.recovered += ctx.crash_recover();
            ctx.idle_until(c.up_at());
        }
        ctx.barrier();
        // Full-store verification read: every node — crashed ones included —
        // must see the converged contents.
        let mut checksum = 0u64;
        for (s, sv) in shard_views.iter().enumerate() {
            ctx.with_rview(sv, |r| {
                for i in 0..slots {
                    checksum = fold_slot(checksum, s * slots + i, r.get(ctx, i));
                }
            });
        }
        ctx.int_ops((p.shards * slots) as u64);
        (
            tally.hist,
            tally.served,
            tally.get_digest,
            checksum,
            tally.recovered,
        )
    });
    assemble(out, p)
}

fn run_serve_traditional(cfg: &ClusterConfig, p: &ServeParams) -> ServeOutcome {
    let np = cfg.nprocs;
    let schedule = build_schedule(p);
    let membership = Membership::new(np, &cfg.faults);
    let slots = p.slots_per_shard;
    let mut world = WorldBuilder::new();
    // One packed store; shard `s` owns slots `[s*slots, (s+1)*slots)` and
    // lock `s`.
    let store = world.alloc_u32(p.shards * slots);
    let layout = world.build();
    let out = run_cluster(cfg, layout, move |ctx| {
        let me = ctx.me();
        let mut tally = NodeTally::default();
        for (i, rq) in schedule.iter().enumerate() {
            let epoch = membership.epoch_at(rq.arrival);
            if membership.server_for(rq.shard, epoch) != me {
                continue;
            }
            serve_one(ctx, &mut tally, rq, i, |ctx, tally| {
                let lock = rq.shard as u32;
                let slot = rq.shard * slots + rq.slot;
                ctx.lock_acquire(lock);
                if rq.write {
                    store.update(ctx, slot, |x| x.wrapping_add(rq.delta));
                } else {
                    let v = store.get(ctx, slot);
                    tally.get_digest = tally.get_digest.wrapping_add(mix64(i as u64, v as u64));
                }
                ctx.lock_release(lock);
            });
        }
        ctx.barrier();
        // Locks order the updates; after the barrier everyone reads the
        // converged store directly.
        let mut checksum = 0u64;
        for i in 0..p.shards * slots {
            checksum = fold_slot(checksum, i, store.get(ctx, i));
        }
        ctx.int_ops((p.shards * slots) as u64);
        (
            tally.hist,
            tally.served,
            tally.get_digest,
            checksum,
            tally.recovered,
        )
    });
    assemble(out, p)
}

/// Shared per-request choreography: idle to the arrival instant, run the
/// store operation, charge handler CPU, record latency, trace.
fn serve_one(
    ctx: &DsmCtx<'_>,
    tally: &mut NodeTally,
    rq: &Request,
    index: usize,
    op: impl FnOnce(&DsmCtx<'_>, &mut NodeTally),
) {
    let _ = index;
    let arrival = SimTime(rq.arrival);
    ctx.idle_until(arrival);
    op(ctx, tally);
    // Fixed request-handler overhead (parse, route, respond).
    ctx.int_ops(64);
    let latency = (ctx.now() - arrival).nanos();
    tally.hist.record(latency);
    tally.served += 1;
    if ctx.tracing() {
        ctx.trace(EventKind::ServeRequest {
            shard: rq.shard as u64,
            write: rq.write,
            latency_ns: latency,
        });
    }
}

/// Merge per-node tallies, cross-check the checksums, and package the run.
fn assemble(out: ClusterOutcome<(Histogram, u64, u64, u64, u64)>, p: &ServeParams) -> ServeOutcome {
    let mut latency = Histogram::default();
    let mut served = 0u64;
    let mut get_digest = 0u64;
    let mut recovered = 0u64;
    let checksum = out.results[0].3;
    for (hist, n, digest, cks, rec) in &out.results {
        latency.absorb(hist);
        served += n;
        get_digest = get_digest.wrapping_add(*digest);
        recovered += rec;
        assert_eq!(
            *cks, checksum,
            "store checksums diverge across nodes — recovery failed"
        );
    }
    assert_eq!(
        served, p.requests as u64,
        "placement must cover the whole schedule exactly once"
    );
    ServeOutcome {
        stats: out.stats,
        latency,
        checksum,
        get_digest,
        served,
        recovered_pages: recovered,
    }
}

/// Distinct view-discipline violations seeded by
/// [`run_serve_undisciplined`]: node 0 breaks each rule (`outside_views`,
/// `unbracketed`, `foreign_view`, `read_only_write`) exactly once.
pub fn undisciplined_expected() -> usize {
    4
}

/// The VOPP serving store with node 0 breaking every view-discipline rule
/// exactly once before serving starts — the known-answer workload for
/// racecheck coverage of the shard-view discipline.
///
/// Requires a view-discipline [`vopp_core::RaceChecker`] attached to `cfg`
/// (without one the runtime enforces the discipline by panicking) and at
/// least two shards.
pub fn run_serve_undisciplined(cfg: &ClusterConfig, p: &ServeParams) -> ServeOutcome {
    assert!(cfg.protocol.is_vc(), "VOPP serving runs on VC_d / VC_sd");
    assert!(p.shards >= 2, "the foreign-view violation needs two shards");
    assert!(
        cfg.racecheck
            .as_ref()
            .is_some_and(|rc| rc.mode() == RacecheckMode::ViewDiscipline),
        "run_serve_undisciplined needs a view-discipline checker attached \
         (the seeded violations would otherwise panic)"
    );
    run_serve_vopp(cfg, p, true)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use vopp_core::{Protocol, RaceChecker};
    use vopp_sim::SimDuration;

    use super::*;

    fn quick() -> ServeParams {
        ServeParams::quick()
    }

    #[test]
    fn every_protocol_converges_to_the_reference() {
        let p = quick();
        let expect = serve_reference(&p);
        for proto in [Protocol::VcD, Protocol::VcSd] {
            let cfg = ClusterConfig::lossless(4, proto);
            let out = run_serve(&cfg, &p, ServeVariant::Vopp);
            assert_eq!(out.checksum, expect, "{proto}");
            assert_eq!(out.served, p.requests as u64);
            assert_eq!(out.latency.count(), p.requests as u64);
        }
        for proto in [Protocol::LrcD, Protocol::Hlrc, Protocol::ScC] {
            let cfg = ClusterConfig::lossless(4, proto);
            let out = run_serve(&cfg, &p, ServeVariant::Traditional);
            assert_eq!(out.checksum, expect, "{proto}");
            assert_eq!(out.served, p.requests as u64);
        }
    }

    #[test]
    fn runs_are_byte_identical() {
        let p = quick();
        let cfg = ClusterConfig::lossless(4, Protocol::VcSd);
        let a = run_serve(&cfg, &p, ServeVariant::Vopp);
        let b = run_serve(&cfg, &p, ServeVariant::Vopp);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.get_digest, b.get_digest);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.stats.time, b.stats.time);
    }

    #[test]
    fn crash_recovery_converges_and_degrades_the_tail() {
        let p = quick();
        let expect = serve_reference(&p);
        let cfg = ClusterConfig::lossless(4, Protocol::VcSd);
        let clean = run_serve(&cfg, &p, ServeVariant::Vopp);
        // Crash node 1 mid-stream for a quarter of the horizon.
        let horizon = build_schedule(&p).last().unwrap().arrival;
        let mut faulty = cfg.clone();
        faulty.faults = FaultPlan::none().with_crash(
            1,
            SimTime(horizon / 4),
            SimDuration::from_nanos(horizon / 4),
        );
        let crashed = run_serve(&faulty, &p, ServeVariant::Vopp);
        // Both converge to the sequential store...
        assert_eq!(clean.checksum, expect);
        assert_eq!(crashed.checksum, expect);
        assert_eq!(crashed.served, p.requests as u64);
        // ...the crash actually shed pages...
        assert_eq!(clean.recovered_pages, 0);
        assert!(crashed.recovered_pages > 0);
        // ...and the fault window shows up in the tail.
        assert!(
            crashed.latency.p999() >= clean.latency.p999(),
            "crash must not improve the p99.9 ({} < {})",
            crashed.latency.p999(),
            clean.latency.p999()
        );
    }

    #[test]
    fn slowdown_fault_inflates_latency_without_changing_contents() {
        let p = quick();
        let cfg = ClusterConfig::lossless(4, Protocol::VcSd);
        let clean = run_serve(&cfg, &p, ServeVariant::Vopp);
        let mut slow = cfg.clone();
        slow.faults = FaultPlan::none().with_slowdown(0, 4.0);
        let slowed = run_serve(&slow, &p, ServeVariant::Vopp);
        assert_eq!(clean.checksum, slowed.checksum);
        assert!(slowed.latency.mean_ns() >= clean.latency.mean_ns());
    }

    #[test]
    fn undisciplined_variant_reports_exact_count() {
        let p = quick();
        for proto in [Protocol::VcD, Protocol::VcSd] {
            let rc = Arc::new(RaceChecker::new(RacecheckMode::ViewDiscipline, 4));
            let mut cfg = ClusterConfig::lossless(4, proto);
            cfg.racecheck = Some(rc.clone());
            let out = run_serve_undisciplined(&cfg, &p);
            assert_eq!(rc.count(), undisciplined_expected(), "{proto}");
            assert_eq!(out.checksum, serve_reference(&p), "{proto}");
        }
    }

    #[test]
    fn clean_store_is_silent_under_the_checker() {
        let p = quick();
        for proto in [Protocol::VcD, Protocol::VcSd] {
            let rc = Arc::new(RaceChecker::new(RacecheckMode::ViewDiscipline, 4));
            let mut cfg = ClusterConfig::lossless(4, proto);
            cfg.racecheck = Some(rc.clone());
            run_serve(&cfg, &p, ServeVariant::Vopp);
            assert_eq!(rc.count(), 0, "{proto}");
        }
        for proto in [Protocol::LrcD, Protocol::Hlrc, Protocol::ScC] {
            let rc = Arc::new(RaceChecker::new(RacecheckMode::HappensBefore, 4));
            let mut cfg = ClusterConfig::lossless(4, proto);
            cfg.racecheck = Some(rc.clone());
            run_serve(&cfg, &p, ServeVariant::Traditional);
            assert_eq!(rc.count(), 0, "{proto}");
        }
    }

    #[test]
    fn single_node_cluster_serves_everything() {
        let p = quick();
        let cfg = ClusterConfig::lossless(1, Protocol::VcSd);
        let out = run_serve(&cfg, &p, ServeVariant::Vopp);
        assert_eq!(out.checksum, serve_reference(&p));
        assert_eq!(out.served, p.requests as u64);
    }
}
