#![warn(missing_docs)]

//! # vopp-serve — open-loop serving on a view-backed KV store
//!
//! The paper's applications are batch kernels: every processor computes as
//! fast as it can and the figure of merit is wall-clock time. This crate
//! adds the complementary workload shape — an **open-loop service**: requests
//! arrive on their own clock (exponential interarrivals under a diurnal
//! envelope, Zipfian key popularity), each request acquires the view backing
//! one shard of a KV store, and the figure of merit is the **latency
//! distribution** (p50/p99/p99.9), not throughput.
//!
//! The store is servable by every protocol in the suite through the same
//! `Protocol` seam the batch apps use:
//!
//! * **VOPP** (`VC_d` / `VC_sd`): each shard is one view with a fixed home
//!   node; a PUT brackets the shard with `acquire_view`, a GET with
//!   `acquire_Rview`.
//! * **Traditional** (`LRC_d` / `HLRC_d` / `ScC_d`): the same shards live in
//!   one packed allocation guarded by one lock per shard.
//!
//! On top sits a **dynamic-cluster layer** driven by
//! [`FaultPlan`](vopp_core::FaultPlan): node slowdowns, crash windows after
//! which a node loses every cached shard page and lazily reconstructs from
//! the home nodes, and the membership churn they imply. Request placement is
//! recomputed per membership epoch, so shards served by a crashed node fail
//! over deterministically and fail back when it recovers.
//!
//! Everything is deterministic: the schedule is a pure function of
//! [`ServeParams`], placement is a pure function of the schedule and the
//! fault plan, and the simulator orders the rest. Two runs with the same
//! inputs produce byte-identical latency histograms and store contents.

mod membership;
mod params;
mod run;
mod schedule;

pub use membership::Membership;
pub use params::ServeParams;
pub use run::{
    run_serve, run_serve_undisciplined, serve_reference, undisciplined_expected, ServeOutcome,
    ServeVariant,
};
pub use schedule::{build_schedule, Request};
