//! Serving-workload parameters.

/// Everything that shapes the open-loop serving workload. The request
/// schedule is a pure function of these fields (see
/// [`build_schedule`](crate::build_schedule)), so two runs with equal
/// parameters serve byte-identical request streams.
#[derive(Debug, Clone)]
pub struct ServeParams {
    /// Number of store shards; each shard is one view (VOPP) or one lock
    /// (traditional).
    pub shards: usize,
    /// `u32` slots per shard.
    pub slots_per_shard: usize,
    /// Total requests in the run.
    pub requests: usize,
    /// Mean request interarrival gap in nanoseconds (the open-loop clock).
    pub mean_gap_ns: f64,
    /// Zipfian skew of shard popularity (`0.0` = uniform; the classic
    /// YCSB-style default is `0.99`).
    pub zipf_s: f64,
    /// Fraction of requests that are GETs (the rest are PUTs).
    pub read_frac: f64,
    /// Diurnal envelope amplitude in `[0, 1)`: instantaneous arrival rate
    /// swings between `1 - amp` and `1 + amp` times the mean.
    pub diurnal_amp: f64,
    /// Diurnal period in nanoseconds of virtual time.
    pub period_ns: u64,
    /// Workload seed.
    pub seed: u64,
}

impl ServeParams {
    /// Small instance for tests: a few hundred requests, sub-millisecond
    /// horizon.
    pub fn quick() -> ServeParams {
        ServeParams {
            shards: 8,
            slots_per_shard: 16,
            requests: 400,
            mean_gap_ns: 20_000.0,
            zipf_s: 0.99,
            read_frac: 0.7,
            diurnal_amp: 0.4,
            period_ns: 2_000_000,
            seed: 0x5e,
        }
    }

    /// The benchmark instance behind the `serve` table (see
    /// EXPERIMENTS.md).
    pub fn bench() -> ServeParams {
        ServeParams {
            shards: 32,
            slots_per_shard: 64,
            requests: 12_000,
            mean_gap_ns: 8_000.0,
            zipf_s: 0.99,
            read_frac: 0.7,
            diurnal_amp: 0.4,
            period_ns: 20_000_000,
            seed: 0x5e,
        }
    }

    /// Sanity-check the parameter ranges the generators assume.
    pub fn validate(&self) {
        assert!(self.shards > 0, "need at least one shard");
        assert!(self.slots_per_shard > 0, "need at least one slot");
        assert!(self.mean_gap_ns > 0.0, "mean gap must be positive");
        assert!(self.zipf_s >= 0.0, "negative Zipf skew is meaningless");
        assert!(
            (0.0..=1.0).contains(&self.read_frac),
            "read fraction is a probability"
        );
        assert!(
            (0.0..1.0).contains(&self.diurnal_amp),
            "diurnal amplitude must stay in [0, 1)"
        );
        assert!(self.period_ns > 0, "diurnal period must be positive");
    }
}
