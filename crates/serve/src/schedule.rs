//! The deterministic request schedule.
//!
//! One global stream of timestamped requests, identical on every node: each
//! node walks the whole stream and serves the requests placed on it by the
//! [`Membership`](crate::Membership) map. Building the stream up front (it
//! is a pure function of [`ServeParams`]) keeps the open-loop clock
//! independent of service times — the defining property of an open-loop
//! workload, and the reason tail latency degrades visibly when a node
//! crashes instead of the arrival process politely slowing down.

use vopp_apps::workload::{bounded, diurnal_factor, exp_gap_ns, mix64, unit_f64, Zipfian};

use crate::params::ServeParams;

/// Stream salts: each random decision draws from its own lane of the seed
/// space so changing one knob (e.g. the read fraction) never reshuffles the
/// others.
const GAP_LANE: u64 = 0x6761_7000;
const SHARD_LANE: u64 = 0x7368_6172;
const SLOT_LANE: u64 = 0x736c_6f74;
const RW_LANE: u64 = 0x7277_5f5f;
const DELTA_LANE: u64 = 0x6465_6c74;

/// One timestamped store request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival time in nanoseconds of virtual time.
    pub arrival: u64,
    /// Target shard.
    pub shard: usize,
    /// Target slot within the shard.
    pub slot: usize,
    /// `true` for PUT, `false` for GET.
    pub write: bool,
    /// PUT payload: the slot accumulates deltas with `wrapping_add`, so the
    /// final store contents are placement- and timing-independent.
    pub delta: u32,
}

/// Build the global request schedule for `p`.
///
/// Arrivals are a non-homogeneous Poisson process: exponential gaps at the
/// mean rate, compressed or stretched by the diurnal envelope at the
/// current virtual time. Shard popularity is Zipfian, slots are uniform,
/// and the PUT/GET coin is biased by `read_frac`.
pub fn build_schedule(p: &ServeParams) -> Vec<Request> {
    p.validate();
    let zipf = Zipfian::new(p.shards, p.zipf_s);
    let mut t = 0u64;
    let mut out = Vec::with_capacity(p.requests);
    for i in 0..p.requests as u64 {
        let gap = exp_gap_ns(p.seed ^ GAP_LANE, i, p.mean_gap_ns);
        // The envelope scales the instantaneous arrival *rate*, so gaps
        // divide by it: factor > 1 is rush hour, factor < 1 is night.
        let factor = diurnal_factor(t, p.period_ns, p.diurnal_amp);
        t += ((gap as f64 / factor) as u64).max(1);
        out.push(Request {
            arrival: t,
            shard: zipf.rank(p.seed ^ SHARD_LANE, i),
            slot: bounded(p.seed ^ SLOT_LANE, i, p.slots_per_shard),
            write: unit_f64(p.seed ^ RW_LANE, i) >= p.read_frac,
            delta: (mix64(p.seed ^ DELTA_LANE, i) >> 32) as u32,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let p = ServeParams::quick();
        let a = build_schedule(&p);
        let b = build_schedule(&p);
        assert_eq!(a, b);
        assert_eq!(a.len(), p.requests);
        assert!(a.windows(2).all(|w| w[0].arrival < w[1].arrival));
        assert!(a.iter().all(|r| r.shard < p.shards));
        assert!(a.iter().all(|r| r.slot < p.slots_per_shard));
    }

    #[test]
    fn mix_matches_the_read_fraction() {
        let mut p = ServeParams::quick();
        p.requests = 20_000;
        let sched = build_schedule(&p);
        let writes = sched.iter().filter(|r| r.write).count() as f64;
        let frac = writes / p.requests as f64;
        assert!(
            (frac - (1.0 - p.read_frac)).abs() < 0.02,
            "write fraction {frac} far from {}",
            1.0 - p.read_frac
        );
    }

    #[test]
    fn shard_popularity_is_zipf_skewed() {
        let mut p = ServeParams::quick();
        p.requests = 20_000;
        let sched = build_schedule(&p);
        let mut counts = vec![0usize; p.shards];
        for r in &sched {
            counts[r.shard] += 1;
        }
        let hottest = *counts.iter().max().unwrap();
        let coldest = *counts.iter().min().unwrap();
        assert!(
            hottest > 4 * coldest.max(1),
            "Zipf 0.99 should skew hard: {counts:?}"
        );
    }

    #[test]
    fn diurnal_envelope_modulates_arrival_density() {
        let mut p = ServeParams::quick();
        p.requests = 30_000;
        p.diurnal_amp = 0.8;
        // The envelope's first half-period runs above the mean rate, the
        // second below it; folding arrivals by phase across the run's many
        // periods, the rush half must hold clearly more than half of them.
        let sched = build_schedule(&p);
        let rush = sched
            .iter()
            .filter(|r| r.arrival % p.period_ns < p.period_ns / 2)
            .count();
        assert!(
            rush > sched.len() * 60 / 100,
            "rush-hour phase holds {rush} of {}",
            sched.len()
        );
    }

    #[test]
    fn lanes_are_independent() {
        // Changing the read fraction must not move arrivals or shards.
        let p = ServeParams::quick();
        let mut p2 = p.clone();
        p2.read_frac = 0.1;
        let a = build_schedule(&p);
        let b = build_schedule(&p2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.shard, y.shard);
            assert_eq!(x.slot, y.slot);
            assert_eq!(x.delta, y.delta);
        }
    }
}
