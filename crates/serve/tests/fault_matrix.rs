//! The serve table's cell matrix, exercised end-to-end: every protocol at
//! both offered loads and under every fault scenario must converge to the
//! sequential reference. The high-load traditional cells are the
//! regression guard for the LRC whole-page fetch escape hatch, which once
//! regressed concurrent writers' words on false-shared pages.

use vopp_core::{ClusterConfig, FaultPlan, Protocol};
use vopp_serve::{build_schedule, run_serve, serve_reference, ServeParams, ServeVariant};
use vopp_sim::{SimDuration, SimTime};

const TRAD: [Protocol; 3] = [Protocol::LrcD, Protocol::Hlrc, Protocol::ScC];
const VOPP: [Protocol; 2] = [Protocol::VcD, Protocol::VcSd];

fn high_load() -> ServeParams {
    let mut p = ServeParams::quick();
    p.mean_gap_ns /= 2.0;
    p
}

fn check(proto: Protocol, variant: ServeVariant, p: &ServeParams, faults: FaultPlan) {
    let mut cfg = ClusterConfig::new(4, proto);
    cfg.faults = faults;
    let out = run_serve(&cfg, p, variant);
    assert_eq!(out.checksum, serve_reference(p), "{proto} {variant:?}");
    assert_eq!(out.served, p.requests as u64, "{proto} {variant:?}");
}

#[test]
fn every_protocol_converges_at_high_load() {
    // Halving the interarrival gap piles up concurrent unsynchronized
    // writers on the store's false-shared pages — the hostile case for the
    // lazy-diff protocols.
    let p = high_load();
    for proto in TRAD {
        check(proto, ServeVariant::Traditional, &p, FaultPlan::none());
    }
    for proto in VOPP {
        check(proto, ServeVariant::Vopp, &p, FaultPlan::none());
    }
}

#[test]
fn loss_and_slowdown_cells_converge() {
    let p = ServeParams::quick();
    for plan in [
        FaultPlan::none().with_loss(0.02, 7),
        FaultPlan::none().with_slowdown(0, 2.0),
    ] {
        check(Protocol::LrcD, ServeVariant::Traditional, &p, plan.clone());
        check(Protocol::VcSd, ServeVariant::Vopp, &p, plan);
    }
}

#[test]
fn crash_cells_converge_on_both_vc_protocols() {
    let p = ServeParams::quick();
    let horizon = build_schedule(&p).last().unwrap().arrival;
    for proto in VOPP {
        let plan = FaultPlan::none().with_crash(
            1,
            SimTime(horizon / 4),
            SimDuration::from_nanos(horizon / 4),
        );
        check(proto, ServeVariant::Vopp, &p, plan);
    }
}
