//! Typed windows onto shared memory.
//!
//! A [`Region<T>`] is a typed array living in the DSM address space; a
//! [`ViewRegion<T>`] is a region registered as a VOPP view. Both are plain
//! descriptors (address + length), identical on every node.

use std::marker::PhantomData;

use vopp_dsm::{DsmCtx, ViewId};
use vopp_page::Addr;

/// A typed array in shared memory.
#[derive(Debug, Clone, Copy)]
pub struct Region<T> {
    /// First byte address.
    pub addr: Addr,
    /// Element count.
    pub len: usize,
    _elem: PhantomData<T>,
}

impl<T> Region<T> {
    pub(crate) fn new(addr: Addr, len: usize) -> Region<T> {
        Region {
            addr,
            len,
            _elem: PhantomData,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Region<f64> {
    /// Address of element `i`.
    pub fn at(&self, i: usize) -> Addr {
        debug_assert!(i < self.len);
        self.addr + i * 8
    }

    /// Read element `i`.
    pub fn get(&self, ctx: &DsmCtx<'_>, i: usize) -> f64 {
        ctx.read_f64(self.at(i))
    }

    /// Write element `i`.
    pub fn set(&self, ctx: &DsmCtx<'_>, i: usize, v: f64) {
        ctx.write_f64(self.at(i), v)
    }

    /// Read the whole region.
    pub fn read_vec(&self, ctx: &DsmCtx<'_>) -> Vec<f64> {
        let mut out = vec![0.0; self.len];
        ctx.read_f64s(self.addr, &mut out);
        out
    }

    /// Read a sub-range `[off, off+out.len())`.
    pub fn read_into(&self, ctx: &DsmCtx<'_>, off: usize, out: &mut [f64]) {
        debug_assert!(off + out.len() <= self.len);
        ctx.read_f64s(self.at(off), out);
    }

    /// Write the whole region (length must match).
    pub fn write_all(&self, ctx: &DsmCtx<'_>, data: &[f64]) {
        debug_assert_eq!(data.len(), self.len);
        ctx.write_f64s(self.addr, data);
    }

    /// Write a sub-range starting at `off`.
    pub fn write_at(&self, ctx: &DsmCtx<'_>, off: usize, data: &[f64]) {
        debug_assert!(off + data.len() <= self.len);
        ctx.write_f64s(self.at(off), data);
    }
}

impl Region<u32> {
    /// Address of element `i`.
    pub fn at(&self, i: usize) -> Addr {
        debug_assert!(i < self.len);
        self.addr + i * 4
    }

    /// Read element `i`.
    pub fn get(&self, ctx: &DsmCtx<'_>, i: usize) -> u32 {
        ctx.read_u32(self.at(i))
    }

    /// Write element `i`.
    pub fn set(&self, ctx: &DsmCtx<'_>, i: usize, v: u32) {
        ctx.write_u32(self.at(i), v)
    }

    /// Read-modify-write element `i`.
    pub fn update(&self, ctx: &DsmCtx<'_>, i: usize, f: impl FnOnce(u32) -> u32) {
        ctx.update_u32(self.at(i), f)
    }

    /// Read the whole region.
    pub fn read_vec(&self, ctx: &DsmCtx<'_>) -> Vec<u32> {
        let mut out = vec![0; self.len];
        ctx.read_u32s(self.addr, &mut out);
        out
    }

    /// Read a sub-range.
    pub fn read_into(&self, ctx: &DsmCtx<'_>, off: usize, out: &mut [u32]) {
        debug_assert!(off + out.len() <= self.len);
        ctx.read_u32s(self.at(off), out);
    }

    /// Write the whole region.
    pub fn write_all(&self, ctx: &DsmCtx<'_>, data: &[u32]) {
        debug_assert_eq!(data.len(), self.len);
        ctx.write_u32s(self.addr, data);
    }

    /// Write a sub-range starting at `off`.
    pub fn write_at(&self, ctx: &DsmCtx<'_>, off: usize, data: &[u32]) {
        debug_assert!(off + data.len() <= self.len);
        ctx.write_u32s(self.at(off), data);
    }
}

/// A region registered as a VOPP view.
#[derive(Debug, Clone, Copy)]
pub struct ViewRegion<T> {
    /// The view to acquire before touching the region.
    pub view: ViewId,
    /// The data window.
    pub region: Region<T>,
}

impl<T> ViewRegion<T> {
    /// Element count.
    pub fn len(&self) -> usize {
        self.region.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.region.is_empty()
    }
}
