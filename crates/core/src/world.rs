//! Building the shared world of a VOPP (or traditional) program.

use std::sync::Arc;

use vopp_dsm::Layout;

use crate::region::{Region, ViewRegion};

/// Builder for a program's shared address space. Traditional programs use
/// the `alloc_*` methods (objects may share pages — false sharing included);
/// VOPP programs use the `view_*` methods.
#[derive(Debug, Default)]
pub struct WorldBuilder {
    layout: Layout,
}

impl WorldBuilder {
    /// An empty world.
    pub fn new() -> WorldBuilder {
        WorldBuilder::default()
    }

    /// Plain shared `f64` array (8-byte aligned, packed after previous
    /// allocations).
    pub fn alloc_f64(&mut self, len: usize) -> Region<f64> {
        let addr = self.layout.alloc(len * 8, 8);
        Region::new(addr, len)
    }

    /// Plain shared `u32` array.
    pub fn alloc_u32(&mut self, len: usize) -> Region<u32> {
        let addr = self.layout.alloc(len * 4, 4);
        Region::new(addr, len)
    }

    /// A view of `len` doubles.
    pub fn view_f64(&mut self, len: usize) -> ViewRegion<f64> {
        let (view, addr) = self.layout.add_view(len * 8);
        ViewRegion {
            view,
            region: Region::new(addr, len),
        }
    }

    /// A view of `len` doubles managed by `home` (usually its primary
    /// writer).
    pub fn view_f64_at(&mut self, len: usize, home: usize) -> ViewRegion<f64> {
        let (view, addr) = self.layout.add_view_homed(len * 8, Some(home));
        ViewRegion {
            view,
            region: Region::new(addr, len),
        }
    }

    /// A view of `len` words managed by `home`.
    pub fn view_u32_at(&mut self, len: usize, home: usize) -> ViewRegion<u32> {
        let (view, addr) = self.layout.add_view_homed(len * 4, Some(home));
        ViewRegion {
            view,
            region: Region::new(addr, len),
        }
    }

    /// A view of `len` 32-bit words.
    pub fn view_u32(&mut self, len: usize) -> ViewRegion<u32> {
        let (view, addr) = self.layout.add_view(len * 4);
        ViewRegion {
            view,
            region: Region::new(addr, len),
        }
    }

    /// `count` equally-sized double views (e.g. one per processor).
    pub fn views_f64(&mut self, count: usize, len: usize) -> Vec<ViewRegion<f64>> {
        (0..count).map(|_| self.view_f64(len)).collect()
    }

    /// `count` equally-sized word views.
    pub fn views_u32(&mut self, count: usize, len: usize) -> Vec<ViewRegion<u32>> {
        (0..count).map(|_| self.view_u32(len)).collect()
    }

    /// Direct access to the underlying layout (advanced uses).
    pub fn layout_mut(&mut self) -> &mut Layout {
        &mut self.layout
    }

    /// Freeze the world for a cluster run.
    pub fn build(self) -> Arc<Layout> {
        self.layout.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vopp_page::PAGE_SIZE;

    #[test]
    fn traditional_allocs_pack() {
        let mut w = WorldBuilder::new();
        let a = w.alloc_u32(3);
        let b = w.alloc_f64(2);
        assert_eq!(a.addr, 0);
        assert_eq!(b.addr, 16); // aligned up from 12
        let l = w.build();
        assert_eq!(l.nviews(), 0);
    }

    #[test]
    fn views_page_aligned() {
        let mut w = WorldBuilder::new();
        let _ = w.alloc_u32(1);
        let v = w.view_f64(3);
        assert_eq!(v.region.addr % PAGE_SIZE, 0);
        assert_eq!(v.len(), 3);
        let vs = w.views_u32(4, 1024);
        assert_eq!(vs.len(), 4);
        let l = w.build();
        assert_eq!(l.nviews(), 5);
    }
}
