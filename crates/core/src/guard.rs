//! RAII view guards: scope-based `acquire_view` / `release_view`.
//!
//! The paper's primitives are explicit acquire/release pairs; these guards
//! give them an idiomatic Rust shape while keeping the underlying protocol
//! calls identical.

use vopp_dsm::{DsmCtx, ViewId};
use vopp_trace::EventKind;

use crate::region::{Region, ViewRegion};

/// Exclusive access to a view for the guard's lifetime.
pub struct ViewGuard<'c, 'a> {
    ctx: &'c DsmCtx<'a>,
    view: ViewId,
}

impl Drop for ViewGuard<'_, '_> {
    fn drop(&mut self) {
        self.ctx.release_view(self.view);
    }
}

/// Shared read access to a view for the guard's lifetime.
pub struct RViewGuard<'c, 'a> {
    ctx: &'c DsmCtx<'a>,
    view: ViewId,
}

impl Drop for RViewGuard<'_, '_> {
    fn drop(&mut self) {
        self.ctx.release_rview(self.view);
    }
}

/// Scoped VOPP operations on a [`DsmCtx`].
pub trait VoppExt<'a> {
    /// `acquire_view` returning a guard that releases on drop.
    fn view<'c>(&'c self, v: ViewId) -> ViewGuard<'c, 'a>;
    /// `acquire_Rview` returning a guard that releases on drop.
    fn rview<'c>(&'c self, v: ViewId) -> RViewGuard<'c, 'a>;
    /// Acquire `vr` for writing, run `f`, release.
    fn with_view<T, R>(&self, vr: &ViewRegion<T>, f: impl FnOnce(&Region<T>) -> R) -> R;
    /// Acquire `vr` for reading, run `f`, release.
    fn with_rview<T, R>(&self, vr: &ViewRegion<T>, f: impl FnOnce(&Region<T>) -> R) -> R;
}

impl<'a> VoppExt<'a> for DsmCtx<'a> {
    fn view<'c>(&'c self, v: ViewId) -> ViewGuard<'c, 'a> {
        self.acquire_view(v);
        ViewGuard { ctx: self, view: v }
    }

    fn rview<'c>(&'c self, v: ViewId) -> RViewGuard<'c, 'a> {
        self.acquire_rview(v);
        RViewGuard { ctx: self, view: v }
    }

    fn with_view<T, R>(&self, vr: &ViewRegion<T>, f: impl FnOnce(&Region<T>) -> R) -> R {
        let span = Span::open(self, "with_view", vr.view);
        let g = self.view(vr.view);
        let r = f(&vr.region);
        drop(g);
        span.close(self);
        r
    }

    fn with_rview<T, R>(&self, vr: &ViewRegion<T>, f: impl FnOnce(&Region<T>) -> R) -> R {
        let span = Span::open(self, "with_rview", vr.view);
        let g = self.rview(vr.view);
        let r = f(&vr.region);
        drop(g);
        span.close(self);
        r
    }
}

/// An application-level trace span bracketing a whole view bracket
/// (acquire, body, release). Nothing is allocated or recorded unless the
/// run has an enabled tracer installed.
struct Span(Option<String>);

impl Span {
    fn open(ctx: &DsmCtx<'_>, what: &str, view: ViewId) -> Span {
        if !ctx.tracing() {
            return Span(None);
        }
        let name = format!("{what} v{view}");
        ctx.trace(EventKind::SpanBegin { name: name.clone() });
        Span(Some(name))
    }

    fn close(self, ctx: &DsmCtx<'_>) {
        if let Some(name) = self.0 {
            ctx.trace(EventKind::SpanEnd { name });
        }
    }
}
