#![warn(missing_docs)]

//! # vopp-core — View-Oriented Parallel Programming
//!
//! The public API of this reproduction of *Performance Evaluation of
//! View-Oriented Parallel Programming* (Huang, Purvis, Werstein — ICPP
//! 2005).
//!
//! VOPP is a programming style for page-based software DSM: the programmer
//! partitions shared data into non-overlapping **views** and brackets every
//! access with `acquire_view`/`release_view` (exclusive) or
//! `acquire_Rview`/`release_Rview` (shared read). Consistency is then
//! maintained per view — which both removes consistency work from barriers
//! and enables the optimal "integrated diff" implementation (`VC_sd`).
//!
//! ```
//! use vopp_core::prelude::*;
//!
//! // The paper's "sum" pattern: everyone adds into a shared accumulator.
//! let mut world = WorldBuilder::new();
//! let acc = world.view_u32(1);
//! let cfg = ClusterConfig::lossless(4, Protocol::VcSd);
//! let out = run_cluster(&cfg, world.build(), |ctx| {
//!     ctx.with_view(&acc, |a| a.update(ctx, 0, |x| x + ctx.me() as u32 + 1));
//!     ctx.barrier();
//!     ctx.with_rview(&acc, |a| a.get(ctx, 0))
//! });
//! assert_eq!(out.results, vec![10, 10, 10, 10]);
//! ```
//!
//! The crate re-exports the protocol engines (`vopp-dsm`), the cluster
//! simulator (`vopp-sim`/`vopp-simnet`) and the memory substrate
//! (`vopp-page`), and adds the typed-region/world/guard layer that
//! applications use.

mod guard;
mod region;
mod world;

pub use guard::{RViewGuard, ViewGuard, VoppExt};
pub use region::{Region, ViewRegion};
pub use world::WorldBuilder;

pub use vopp_dsm::{
    check_views, run_cluster, Breakdown, ClusterConfig, ClusterOutcome, CostModel, Crash,
    DisciplineRule, DsmCtx, FaultPlan, Layout, Loss, NodeMetrics, NodeStats, Phase, Protocol,
    RaceChecker, RacecheckMode, Registry, RunStats, Slowdown, Summary, ViewId, ViewStats,
    Violation,
};
pub use vopp_page::{Addr, PAGE_SIZE};
pub use vopp_simnet::NetConfig;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::{
        run_cluster, ClusterConfig, CostModel, DsmCtx, FaultPlan, NetConfig, Protocol, Region,
        RunStats, ViewRegion, VoppExt, WorldBuilder,
    };
}
