//! Tests of the vopp-core public API layer: regions, guards, world builder.

use vopp_core::prelude::*;
use vopp_core::{check_views, PAGE_SIZE};

#[test]
fn guards_release_on_drop() {
    let mut world = WorldBuilder::new();
    let v = world.view_u32(4);
    let out = run_cluster(
        &ClusterConfig::lossless(2, Protocol::VcSd),
        world.build(),
        move |ctx| {
            {
                let _g = ctx.view(v.view);
                v.region.set(ctx, 0, ctx.me() as u32 + 1);
                // _g drops here: release_view.
            }
            ctx.barrier();
            let _r = ctx.rview(v.view);
            v.region.get(ctx, 0)
        },
    );
    // One of the two writers was last.
    assert!(out.results.iter().all(|&r| r == 1 || r == 2));
    // Acquires: 2 writes + 2 reads.
    assert_eq!(out.stats.acquires(), 4);
}

#[test]
fn region_slice_io_roundtrip() {
    let mut world = WorldBuilder::new();
    let vf = world.view_f64(100);
    let vu = world.view_u32(100);
    let out = run_cluster(
        &ClusterConfig::lossless(2, Protocol::VcSd),
        world.build(),
        move |ctx| {
            if ctx.me() == 0 {
                let fs: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
                let us: Vec<u32> = (0..100).map(|i| i * 3).collect();
                ctx.with_view(&vf, |r| r.write_all(ctx, &fs));
                ctx.with_view(&vu, |r| r.write_all(ctx, &us));
            }
            ctx.barrier();
            let f = ctx.with_rview(&vf, |r| r.read_vec(ctx));
            let u = ctx.with_rview(&vu, |r| r.read_vec(ctx));
            (f[99], u[99])
        },
    );
    for (f, u) in &out.results {
        assert_eq!(*f, 49.5);
        assert_eq!(*u, 297);
    }
}

#[test]
fn region_partial_io() {
    let mut world = WorldBuilder::new();
    let v = world.view_f64(64);
    let out = run_cluster(
        &ClusterConfig::lossless(1, Protocol::VcSd),
        world.build(),
        move |ctx| {
            ctx.with_view(&v, |r| {
                r.write_at(ctx, 10, &[1.0, 2.0, 3.0]);
                let mut buf = [0.0; 2];
                r.read_into(ctx, 11, &mut buf);
                buf
            })
        },
    );
    assert_eq!(out.results[0], [2.0, 3.0]);
}

#[test]
fn world_builder_layout_sanity() {
    let mut world = WorldBuilder::new();
    let plain = world.alloc_u32(3);
    let a = world.view_f64(1);
    let b = world.view_u32_at(2, 1);
    let layout = world.build();
    assert_eq!(plain.addr, 0);
    assert_eq!(a.region.addr % PAGE_SIZE, 0);
    assert_ne!(
        a.region.addr / PAGE_SIZE,
        b.region.addr / PAGE_SIZE,
        "views never share a page"
    );
    assert_eq!(layout.nviews(), 2);
    assert_eq!(layout.view(b.view).home, Some(1));
    check_views(&layout).unwrap();
}

#[test]
fn mixed_protocol_families_reuse_program_shape() {
    // The same computation expressed twice (traditional vs VOPP) agrees.
    let traditional = {
        let mut world = WorldBuilder::new();
        let arr = world.alloc_u32(8);
        run_cluster(
            &ClusterConfig::lossless(4, Protocol::LrcD),
            world.build(),
            move |ctx| {
                arr.set(ctx, ctx.me(), (ctx.me() as u32 + 1) * 10);
                ctx.barrier();
                (0..4).map(|i| arr.get(ctx, i)).sum::<u32>()
            },
        )
    };
    let vopp = {
        let mut world = WorldBuilder::new();
        let views: Vec<_> = (0..4).map(|q| world.view_u32_at(1, q)).collect();
        run_cluster(
            &ClusterConfig::lossless(4, Protocol::VcSd),
            world.build(),
            move |ctx| {
                ctx.with_view(&views[ctx.me()], |r| {
                    r.set(ctx, 0, (ctx.me() as u32 + 1) * 10)
                });
                ctx.barrier();
                views
                    .iter()
                    .map(|v| ctx.with_rview(v, |r| r.get(ctx, 0)))
                    .sum::<u32>()
            },
        )
    };
    assert_eq!(traditional.results, vopp.results);
    assert_eq!(traditional.results[0], 100);
}

#[test]
fn per_view_stats_surface_in_outcome() {
    let mut world = WorldBuilder::new();
    let hot = world.view_u32(1);
    let cold = world.view_u32(1);
    let out = run_cluster(
        &ClusterConfig::lossless(3, Protocol::VcSd),
        world.build(),
        move |ctx| {
            for _ in 0..5 {
                ctx.with_view(&hot, |r| r.update(ctx, 0, |x| x + 1));
            }
            if ctx.me() == 0 {
                ctx.with_view(&cold, |r| r.set(ctx, 0, 1));
            }
            ctx.barrier();
        },
    );
    let vs = &out.stats.nodes.views;
    assert_eq!(vs[&hot.view].acquires, 15);
    assert_eq!(vs[&hot.view].versions, 15);
    assert_eq!(vs[&cold.view].acquires, 1);
    assert!(vs[&hot.view].wait_ns > 0);
}
