//! The shared address-space allocator.
//!
//! All nodes run the same program and perform the same allocation sequence
//! at startup, so a deterministic bump allocator yields identical addresses
//! everywhere — the scheme real SPMD DSM programs rely on.

use crate::page::{page_of, Addr, PAGE_SIZE};

/// A deterministic bump allocator over the shared address space.
#[derive(Debug, Clone, Default)]
pub struct SharedHeap {
    next: Addr,
    allocs: Vec<(Addr, usize)>,
}

impl SharedHeap {
    /// An empty heap starting at address 0.
    pub fn new() -> SharedHeap {
        SharedHeap::default()
    }

    /// Allocate `len` bytes with the given alignment (power of two).
    pub fn alloc(&mut self, len: usize, align: usize) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(len > 0, "zero-length allocation");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + len;
        self.allocs.push((base, len));
        base
    }

    /// Allocate `len` bytes starting on a fresh page and padded to a whole
    /// number of pages. Views use this so that distinct views never share a
    /// page (the paper requires views not to overlap; page-aligning them also
    /// prevents DSM-level false sharing *between* views).
    pub fn alloc_page_aligned(&mut self, len: usize) -> Addr {
        let padded = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        self.alloc(padded, PAGE_SIZE)
    }

    /// Total pages needed to back every allocation so far.
    pub fn pages_needed(&self) -> usize {
        if self.next == 0 {
            0
        } else {
            page_of(self.next - 1) + 1
        }
    }

    /// Bytes allocated (including alignment padding).
    pub fn bytes_used(&self) -> usize {
        self.next
    }

    /// All allocations, in order, as `(base, len)`.
    pub fn allocations(&self) -> &[(Addr, usize)] {
        &self.allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_align() {
        let mut h = SharedHeap::new();
        let a = h.alloc(3, 1);
        let b = h.alloc(8, 8);
        assert_eq!(a, 0);
        assert_eq!(b, 8); // aligned up from 3
        assert_eq!(h.bytes_used(), 16);
    }

    #[test]
    fn page_aligned_views_never_share_pages() {
        let mut h = SharedHeap::new();
        let _ = h.alloc(10, 1);
        let v1 = h.alloc_page_aligned(100);
        let v2 = h.alloc_page_aligned(5000);
        let v3 = h.alloc_page_aligned(1);
        assert_eq!(v1 % PAGE_SIZE, 0);
        assert_eq!(v2, v1 + PAGE_SIZE);
        assert_eq!(v3, v2 + 2 * PAGE_SIZE);
        // Page 0 (the 10-byte alloc) + 1 (v1) + 2 (v2) + 1 (v3).
        assert_eq!(h.pages_needed(), 5);
    }

    #[test]
    fn pages_needed_empty() {
        assert_eq!(SharedHeap::new().pages_needed(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_rejected() {
        SharedHeap::new().alloc(1, 3);
    }
}
