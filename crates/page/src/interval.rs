//! Intervals and write notices (TreadMarks terminology).
//!
//! A node's execution is divided into *intervals* by its synchronization
//! operations (lock release / view release / barrier). Each interval carries
//! a *write notice* per page dirtied during it; the diffs themselves stay at
//! the writer until another node faults on the page (invalidate protocols)
//! or are shipped eagerly (the `VC_sd` update protocol).

use crate::page::PageId;
use crate::vtime::VTime;

/// Globally-unique id of an interval: the `seq`-th interval of `owner`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntervalId {
    /// Creating process.
    pub owner: usize,
    /// 1-based per-owner sequence number (equals the owner's vector-time
    /// component after the interval ended).
    pub seq: u32,
}

/// A write notice: "page `page` was modified in interval `id`".
/// `lamport` gives a total order consistent with happens-before, used to
/// apply diffs from different owners in a correct order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteNotice {
    /// The interval the write belongs to.
    pub id: IntervalId,
    /// The modified page.
    pub page: PageId,
    /// Happens-before scalar of the interval.
    pub lamport: u64,
}

/// Wire size of one encoded write notice (owner + seq + page + lamport).
pub const NOTICE_WIRE_BYTES: usize = 16;

/// An interval record as exchanged between nodes: its id, the vector time
/// at its end, its happens-before scalar, and the pages it dirtied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalRecord {
    /// The interval's id.
    pub id: IntervalId,
    /// Vector time at the interval's end.
    pub vt: VTime,
    /// Happens-before scalar at the interval's end.
    pub lamport: u64,
    /// Pages dirtied during the interval.
    pub pages: Vec<PageId>,
}

impl IntervalRecord {
    /// Expand into per-page write notices.
    pub fn notices(&self) -> impl Iterator<Item = WriteNotice> + '_ {
        self.pages.iter().map(move |&page| WriteNotice {
            id: self.id,
            page,
            lamport: self.lamport,
        })
    }

    /// Wire size in bytes when shipped in a sync message.
    pub fn wire_bytes(&self) -> usize {
        12 + self.vt.wire_bytes() + 4 * self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_id_orders_by_owner_then_seq() {
        let a = IntervalId { owner: 0, seq: 2 };
        let b = IntervalId { owner: 1, seq: 1 };
        let c = IntervalId { owner: 0, seq: 3 };
        assert!(a < b);
        assert!(a < c);
    }

    #[test]
    fn notices_expand_pages() {
        let rec = IntervalRecord {
            id: IntervalId { owner: 2, seq: 7 },
            vt: VTime::zero(4),
            lamport: 99,
            pages: vec![3, 8],
        };
        let ns: Vec<_> = rec.notices().collect();
        assert_eq!(ns.len(), 2);
        assert_eq!(ns[0].page, 3);
        assert_eq!(ns[1].page, 8);
        assert!(ns.iter().all(|n| n.id.owner == 2 && n.lamport == 99));
    }

    #[test]
    fn wire_bytes_scales_with_pages() {
        let rec = IntervalRecord {
            id: IntervalId { owner: 0, seq: 1 },
            vt: VTime::zero(8),
            lamport: 1,
            pages: vec![1, 2, 3],
        };
        assert_eq!(rec.wire_bytes(), 12 + 32 + 12);
    }
}
