//! Per-node view of the shared paged memory.
//!
//! Every node keeps its own copy of each page it has touched, together with
//! an access-state machine per page. The DSM protocol layer drives the state
//! transitions; this module only provides the mechanics that a real system
//! would get from `mprotect`/SIGSEGV: valid/invalid pages, twin creation on
//! first write, and diff extraction at interval boundaries.
//!
//! All pages are logically zero-initialized on every node, so a node that
//! applies every missing diff to its (possibly never-written) local copy
//! reconstructs the current content exactly.

use std::collections::BTreeMap;

use crate::diff::Diff;
use crate::page::{PageBuf, PageId};

/// Access state of one page on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Stale: must be updated (diffs applied) before any access.
    Invalid,
    /// Up to date for reading; first write must create a twin.
    Valid,
    /// Up to date and already twinned: freely writable this interval.
    Dirty,
}

/// Free-list of `Box<PageBuf>` buffers so hot paths — twin creation,
/// whole-page replies, barrier-time page rebuilds — recycle allocations
/// instead of hitting the allocator per page.
///
/// The list is bounded: releases beyond the pool's capacity (default
/// [`PagePool::CAP`], configurable per pool) simply drop the page.
pub struct PagePool {
    free: Vec<Box<PageBuf>>,
    cap: usize,
    hits: u64,
    misses: u64,
}

impl Default for PagePool {
    fn default() -> Self {
        PagePool::with_capacity(PagePool::CAP)
    }
}

impl PagePool {
    /// Default maximum number of buffers retained on the free list.
    pub const CAP: usize = 128;

    /// An empty pool with the default capacity.
    pub fn new() -> PagePool {
        PagePool::default()
    }

    /// An empty pool retaining at most `cap` free buffers. Small address
    /// spaces can bound their worst-case footprint (`cap * 4 KiB`) below
    /// the default; page-heavy runs can raise it.
    pub fn with_capacity(cap: usize) -> PagePool {
        PagePool {
            free: Vec::new(),
            cap,
            hits: 0,
            misses: 0,
        }
    }

    /// Maximum number of buffers this pool retains.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// A zero-filled page, recycled from the free list when possible.
    pub fn acquire_zeroed(&mut self) -> Box<PageBuf> {
        match self.free.pop() {
            Some(mut b) => {
                self.hits += 1;
                b.fill(0);
                b
            }
            None => {
                self.misses += 1;
                PageBuf::zeroed()
            }
        }
    }

    /// A copy of `src`, recycled from the free list when possible.
    pub fn acquire_copy(&mut self, src: &PageBuf) -> Box<PageBuf> {
        match self.free.pop() {
            Some(mut b) => {
                self.hits += 1;
                b.copy_from_slice(&src[..]);
                b
            }
            None => {
                self.misses += 1;
                Box::new(src.clone())
            }
        }
    }

    /// Return a buffer to the free list (dropped if the pool is full).
    pub fn release(&mut self, page: Box<PageBuf>) {
        if self.free.len() < self.cap {
            self.free.push(page);
        }
    }

    /// Buffers currently on the free list.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True if the free list is empty.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Acquires served from the free list / from fresh allocations.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// One node's copy of the shared memory.
pub struct NodeMemory {
    pages: Vec<Option<Box<PageBuf>>>,
    state: Vec<PageState>,
    twins: BTreeMap<PageId, Box<PageBuf>>,
    pool: PagePool,
    diff_scratch: Vec<u32>,
}

impl NodeMemory {
    /// Memory of `npages` pages, all valid and zero-filled (pages are
    /// materialized lazily on first touch). Uses the default page-pool
    /// capacity; see [`NodeMemory::with_pool_capacity`].
    pub fn new(npages: usize) -> NodeMemory {
        NodeMemory::with_pool_capacity(npages, PagePool::CAP)
    }

    /// [`NodeMemory::new`] with an explicit page-pool capacity, bounding
    /// this node's recycled-buffer footprint at `pool_cap * 4 KiB`.
    pub fn with_pool_capacity(npages: usize, pool_cap: usize) -> NodeMemory {
        NodeMemory {
            pages: (0..npages).map(|_| None).collect(),
            state: vec![PageState::Valid; npages],
            twins: BTreeMap::new(),
            pool: PagePool::with_capacity(pool_cap),
            diff_scratch: Vec::new(),
        }
    }

    /// Number of pages in the address space.
    pub fn npages(&self) -> usize {
        self.pages.len()
    }

    /// Current access state of `p`.
    #[inline]
    pub fn state(&self, p: PageId) -> PageState {
        self.state[p]
    }

    /// Mark `p` stale. Content is retained: missing diffs will be applied to
    /// it. Any twin is discarded (an invalidation always happens at a sync
    /// point, after diffs were extracted).
    pub fn invalidate(&mut self, p: PageId) {
        debug_assert!(
            !self.twins.contains_key(&p),
            "invalidating page {p} with a live twin (diffs not yet extracted)"
        );
        self.state[p] = PageState::Invalid;
    }

    /// Mark `p` up to date after the protocol applied all missing diffs.
    pub fn validate(&mut self, p: PageId) {
        if self.state[p] == PageState::Invalid {
            self.state[p] = PageState::Valid;
        }
    }

    /// Simulate a crash's effect on `p`: the buffer is lost (the next
    /// materialization starts from the zero page) and the page goes
    /// `Invalid`, so the protocol must reconstruct its content before any
    /// access. Illegal on a `Dirty` page — a crash model that loses
    /// unextracted writes would break the write-ahead-log narrative.
    /// Returns true when a materialized buffer was actually dropped.
    pub fn crash_page(&mut self, p: PageId) -> bool {
        assert_ne!(
            self.state[p],
            PageState::Dirty,
            "crash_page({p}) with unextracted writes"
        );
        debug_assert!(!self.twins.contains_key(&p));
        let had = match self.pages[p].take() {
            Some(buf) => {
                self.pool.release(buf);
                true
            }
            None => false,
        };
        self.state[p] = PageState::Invalid;
        had
    }

    /// Read-only page content (zero page if never touched).
    pub fn page(&self, p: PageId) -> &PageBuf {
        match &self.pages[p] {
            Some(b) => b,
            None => zero_page(),
        }
    }

    /// Writable page content, materializing it if needed. Does **not** touch
    /// the state machine — callers go through [`NodeMemory::note_write`].
    pub fn page_mut(&mut self, p: PageId) -> &mut PageBuf {
        self.pages[p].get_or_insert_with(PageBuf::zeroed)
    }

    /// Record the first write of an interval to `p`: snapshot a twin and mark
    /// the page dirty. Must only be called on a `Valid` page; `Dirty` pages
    /// are already twinned and `Invalid` pages must be updated first.
    pub fn note_write(&mut self, p: PageId) {
        match self.state[p] {
            PageState::Dirty => {}
            PageState::Valid => {
                let twin = match &self.pages[p] {
                    Some(b) => self.pool.acquire_copy(b),
                    None => self.pool.acquire_zeroed(),
                };
                self.twins.insert(p, twin);
                self.state[p] = PageState::Dirty;
            }
            PageState::Invalid => panic!("write to invalid page {p} without update"),
        }
    }

    /// Pages dirtied in the current interval, ascending.
    pub fn dirty_pages(&self) -> Vec<PageId> {
        self.twins.keys().copied().collect()
    }

    /// End the current interval: extract a diff for every dirty page (twin
    /// vs. current), drop the twins, and downgrade the pages to `Valid`.
    /// Diffs may be empty if a page was rewritten with identical values.
    pub fn end_interval(&mut self) -> Vec<(PageId, Diff)> {
        let twins = std::mem::take(&mut self.twins);
        self.diff_scratch.clear();
        let mut out = Vec::with_capacity(twins.len());
        for (p, twin) in twins {
            let cur = match &self.pages[p] {
                Some(b) => b,
                None => zero_page(),
            };
            out.push((
                p,
                Diff::create_with_scratch(&twin, cur, &mut self.diff_scratch),
            ));
            self.state[p] = PageState::Valid;
            self.pool.release(twin);
        }
        out
    }

    /// Revert every write of the current interval to `p`: restore the page
    /// content from its twin, drop the twin, and downgrade the page to
    /// `Valid`. No-op unless `p` is dirty. Used by the correctness checker
    /// to neutralize undisciplined writes so the protocol state machine
    /// never observes them (they are reported, not published).
    pub fn discard_writes(&mut self, p: PageId) {
        if let Some(twin) = self.twins.remove(&p) {
            if let Some(cur) = &mut self.pages[p] {
                cur.copy_from_slice(&twin[..]);
            }
            self.state[p] = PageState::Valid;
            self.pool.release(twin);
        }
    }

    /// Apply a diff from another node onto the local copy of `p`.
    pub fn apply_diff(&mut self, p: PageId, d: &Diff) {
        d.apply(self.page_mut(p));
    }

    /// Apply a remote diff onto the local copy *and* onto any live twin of
    /// `p`, so the remote words do not later show up in this node's own
    /// diff (home-based protocols apply flushes mid-interval).
    pub fn apply_diff_with_twin(&mut self, p: PageId, d: &Diff) {
        d.apply(self.page_mut(p));
        if let Some(twin) = self.twins.get_mut(&p) {
            d.apply(twin);
        }
    }

    /// Pool-backed copy of the current content of `p` (whole-page replies
    /// and barrier-time rebuilds go through here to recycle buffers).
    pub fn clone_page(&mut self, p: PageId) -> Box<PageBuf> {
        match &self.pages[p] {
            Some(b) => self.pool.acquire_copy(b),
            None => self.pool.acquire_zeroed(),
        }
    }

    /// Overwrite the local copy of `p` with `content` in place, without
    /// allocating a fresh page.
    pub fn install_page(&mut self, p: PageId, content: &PageBuf) {
        self.page_mut(p).copy_from_slice(&content[..]);
    }

    /// Return a no-longer-needed page buffer to this node's free list.
    pub fn release_page(&mut self, page: Box<PageBuf>) {
        self.pool.release(page);
    }

    /// This node's page pool (for diagnostics and benchmarks).
    pub fn pool(&self) -> &PagePool {
        &self.pool
    }

    /// Bytes resident in materialized pages and twins (for diagnostics).
    pub fn resident_bytes(&self) -> usize {
        let pages = self.pages.iter().filter(|p| p.is_some()).count();
        (pages + self.twins.len()) * crate::page::PAGE_SIZE
    }
}

/// A process-wide zero page, so reads of never-touched pages need no
/// allocation.
fn zero_page() -> &'static PageBuf {
    use std::sync::OnceLock;
    static ZERO_PAGE: OnceLock<Box<PageBuf>> = OnceLock::new();
    ZERO_PAGE.get_or_init(PageBuf::zeroed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_is_zero_and_valid() {
        let m = NodeMemory::new(4);
        assert_eq!(m.state(2), PageState::Valid);
        assert!(m.page(2).iter().all(|&b| b == 0));
        assert_eq!(m.resident_bytes(), 0);
    }

    #[test]
    fn crash_page_loses_content_and_invalidates() {
        let mut m = NodeMemory::new(2);
        m.note_write(0);
        m.page_mut(0).set_word(3, 77);
        m.end_interval(); // extract the diff: page back to Valid
        assert!(m.crash_page(0), "materialized page should be dropped");
        assert_eq!(m.state(0), PageState::Invalid);
        // Once the protocol validates it again, content restarts from zero.
        m.validate(0);
        assert!(m.page(0).iter().all(|&b| b == 0));
        // A never-touched page has no buffer to lose but still goes Invalid.
        assert!(!m.crash_page(1));
        assert_eq!(m.state(1), PageState::Invalid);
    }

    #[test]
    fn write_then_end_interval_produces_diff() {
        let mut m = NodeMemory::new(2);
        m.note_write(1);
        m.page_mut(1).set_word(10, 99);
        assert_eq!(m.state(1), PageState::Dirty);
        assert_eq!(m.dirty_pages(), vec![1]);
        let diffs = m.end_interval();
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].0, 1);
        assert_eq!(diffs[0].1.word_count(), 1);
        assert_eq!(m.state(1), PageState::Valid);
        assert!(m.dirty_pages().is_empty());
    }

    #[test]
    fn rewrite_same_value_gives_empty_diff() {
        let mut m = NodeMemory::new(1);
        m.note_write(0);
        m.page_mut(0).set_word(0, 0); // same as zero fill
        let diffs = m.end_interval();
        assert!(diffs[0].1.is_empty());
    }

    #[test]
    fn second_write_in_interval_does_not_retwin() {
        let mut m = NodeMemory::new(1);
        m.note_write(0);
        m.page_mut(0).set_word(0, 1);
        m.note_write(0); // no-op: already dirty
        m.page_mut(0).set_word(1, 2);
        let diffs = m.end_interval();
        assert_eq!(diffs[0].1.word_count(), 2);
    }

    #[test]
    fn apply_diff_updates_stale_copy() {
        // Writer produces a diff; a reader applies it to its zero copy.
        let mut w = NodeMemory::new(1);
        w.note_write(0);
        w.page_mut(0).set_word(7, 42);
        let (p, d) = w.end_interval().pop().unwrap();

        let mut r = NodeMemory::new(1);
        r.invalidate(0);
        r.apply_diff(p, &d);
        r.validate(0);
        assert_eq!(r.page(0).word(7), 42);
        assert_eq!(r.state(0), PageState::Valid);
    }

    #[test]
    #[should_panic(expected = "write to invalid page")]
    fn write_to_invalid_page_is_a_bug() {
        let mut m = NodeMemory::new(1);
        m.invalidate(0);
        m.note_write(0);
    }

    #[test]
    fn pool_recycles_twins_across_intervals() {
        let mut m = NodeMemory::new(1);
        m.note_write(0);
        m.page_mut(0).set_word(0, 1);
        m.end_interval();
        assert_eq!(m.pool().len(), 1);
        m.note_write(0); // twin comes from the free list
        m.page_mut(0).set_word(0, 2);
        let diffs = m.end_interval();
        assert_eq!(m.pool().stats(), (1, 1));
        assert_eq!(diffs[0].1.word_count(), 1);
        assert_eq!(diffs[0].1.runs()[0].words, vec![2]);
    }

    #[test]
    fn pool_capacity_bounds_free_list() {
        let mut pool = PagePool::with_capacity(2);
        assert_eq!(pool.capacity(), 2);
        for _ in 0..5 {
            pool.release(PageBuf::zeroed());
        }
        // Releases beyond the configured capacity drop the page.
        assert_eq!(pool.len(), 2);
        assert_eq!(PagePool::new().capacity(), PagePool::CAP);
        // NodeMemory plumbs the capacity through to its pool.
        let m = NodeMemory::with_pool_capacity(1, 7);
        assert_eq!(m.pool().capacity(), 7);
    }

    #[test]
    fn pool_acquire_release_roundtrip() {
        let mut pool = PagePool::new();
        let mut a = pool.acquire_zeroed();
        a.set_word(3, 7);
        pool.release(a);
        assert_eq!(pool.len(), 1);
        // Recycled zeroed buffer must be scrubbed.
        let b = pool.acquire_zeroed();
        assert!(b.iter().all(|&x| x == 0));
        let src = {
            let mut s = PageBuf::zeroed();
            s.set_word(1, 5);
            s
        };
        pool.release(b);
        let c = pool.acquire_copy(&src);
        assert_eq!(c.word(1), 5);
        assert_eq!(pool.stats(), (2, 1));
    }

    #[test]
    fn clone_install_release_page() {
        let mut m = NodeMemory::new(2);
        m.note_write(0);
        m.page_mut(0).set_word(9, 33);
        m.end_interval();
        let copy = m.clone_page(0);
        assert_eq!(copy.word(9), 33);
        let mut other = NodeMemory::new(2);
        other.install_page(1, &copy);
        assert_eq!(other.page(1).word(9), 33);
        other.release_page(copy);
        assert_eq!(other.pool().len(), 1);
        // clone_page of a never-touched page is a zero page.
        let z = m.clone_page(1);
        assert!(z.iter().all(|&x| x == 0));
    }

    #[test]
    fn validate_only_affects_invalid() {
        let mut m = NodeMemory::new(1);
        m.note_write(0);
        m.validate(0); // dirty stays dirty
        assert_eq!(m.state(0), PageState::Dirty);
    }
}
