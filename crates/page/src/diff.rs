//! Word-granularity page diffs.
//!
//! A diff records the words of a page that changed relative to its *twin*
//! (the copy snapshotted at the first write of an interval), encoded as
//! maximal runs of consecutive modified words — the TreadMarks encoding.
//!
//! `VC_sd`'s *diff integration* (Huang et al., CCGrid'05) is implemented by
//! [`Diff::merge`]: any number of diffs against the same page collapse into a
//! single diff bounded by the page size, with later writes overriding earlier
//! ones.

use crate::page::{
    PageBuf, CHUNK_WORDS, PAGE_QUARTERS, PAGE_WORDS, QUARTER_BYTES, SUPER_BYTES, WORD_SIZE,
};

/// One maximal run of consecutive modified words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// Word index of the first modified word.
    pub word_off: u32,
    /// The new little-endian word values.
    pub words: Vec<u32>,
}

impl DiffRun {
    /// One past the last modified word index.
    pub fn end(&self) -> u32 {
        self.word_off + self.words.len() as u32
    }
}

/// A set of modifications to a single page: sorted, non-overlapping,
/// non-adjacent maximal runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    runs: Vec<DiffRun>,
}

/// Wire-format overhead per diff (page id + run count), in bytes.
pub const DIFF_HEADER_BYTES: usize = 8;
/// Wire-format overhead per run (offset + length), in bytes.
pub const RUN_HEADER_BYTES: usize = 4;

impl Diff {
    /// An empty diff.
    pub fn empty() -> Diff {
        Diff::default()
    }

    /// True if no words are modified.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of modified words.
    pub fn word_count(&self) -> usize {
        self.runs.iter().map(|r| r.words.len()).sum()
    }

    /// The runs, in ascending word order.
    pub fn runs(&self) -> &[DiffRun] {
        &self.runs
    }

    /// Bytes this diff would occupy on the wire.
    pub fn wire_bytes(&self) -> usize {
        DIFF_HEADER_BYTES
            + self
                .runs
                .iter()
                .map(|r| RUN_HEADER_BYTES + r.words.len() * WORD_SIZE)
                .sum::<usize>()
    }

    /// Compare `current` against its `twin` and record every changed word.
    ///
    /// Hierarchical scan: clean 256-byte superblocks are dismissed with one
    /// `memcmp`-class slice compare, dirty superblocks are scanned 16 bytes
    /// at a time (one `u128` compare per chunk), and only dirty chunks fall
    /// back to word granularity. Runs remain maximal across every boundary
    /// because a run is extended whenever its end meets the next modified
    /// word, and a clean block implies the run already closed.
    pub fn create(twin: &PageBuf, current: &PageBuf) -> Diff {
        let mut scratch = Vec::new();
        Diff::create_with_scratch(twin, current, &mut scratch)
    }

    /// [`Diff::create`] with an external word-accumulation arena: the words
    /// of the run being scanned collect in `scratch` (retaining its capacity
    /// across calls), and each finished run is allocated once at exact size.
    /// [`NodeMemory`](crate::NodeMemory) passes a per-node scratch that is
    /// reset every interval.
    pub fn create_with_scratch(twin: &PageBuf, current: &PageBuf, scratch: &mut Vec<u32>) -> Diff {
        scratch.clear();
        let mut runs: Vec<DiffRun> = Vec::new();
        let mut open: Option<u32> = None; // word_off of the run in `scratch`
        fn close(runs: &mut Vec<DiffRun>, open: &mut Option<u32>, scratch: &mut Vec<u32>) {
            if let Some(off) = open.take() {
                runs.push(DiffRun {
                    word_off: off,
                    words: scratch.as_slice().to_vec(),
                });
                scratch.clear();
            }
        }
        const SUPER_CHUNKS: usize = SUPER_BYTES / (CHUNK_WORDS * WORD_SIZE);
        const QUARTER_SUPERS: usize = QUARTER_BYTES / SUPER_BYTES;
        for q in 0..PAGE_QUARTERS {
            if twin.quarter(q) == current.quarter(q) {
                close(&mut runs, &mut open, scratch);
                continue;
            }
            for s in q * QUARTER_SUPERS..(q + 1) * QUARTER_SUPERS {
                if twin.superblock(s) == current.superblock(s) {
                    close(&mut runs, &mut open, scratch);
                    continue;
                }
                for c in s * SUPER_CHUNKS..(s + 1) * SUPER_CHUNKS {
                    let t = twin.chunk128(c);
                    let cu = current.chunk128(c);
                    if t == cu {
                        close(&mut runs, &mut open, scratch);
                        continue;
                    }
                    // Word `i` of a little-endian chunk occupies bits
                    // `32*i..32*i+32`; a nonzero XOR window marks a
                    // modified word. Fully-dirty chunks (contiguous
                    // writes, the dense/full-page case) extend the open
                    // run four words at a time without per-word branches.
                    let x = t ^ cu;
                    let base = c * CHUNK_WORDS;
                    let words = [
                        cu as u32,
                        (cu >> 32) as u32,
                        (cu >> 64) as u32,
                        (cu >> 96) as u32,
                    ];
                    if (x as u32) != 0
                        && ((x >> 32) as u32) != 0
                        && ((x >> 64) as u32) != 0
                        && ((x >> 96) as u32) != 0
                    {
                        if open.is_none() {
                            open = Some(base as u32);
                        }
                        scratch.extend_from_slice(&words);
                        continue;
                    }
                    for (i, &v) in words.iter().enumerate() {
                        if (x >> (32 * i)) as u32 == 0 {
                            close(&mut runs, &mut open, scratch);
                        } else {
                            if open.is_none() {
                                open = Some((base + i) as u32);
                            }
                            scratch.push(v);
                        }
                    }
                }
            }
        }
        close(&mut runs, &mut open, scratch);
        Diff { runs }
    }

    /// Build a diff from raw runs (used by tests and protocol decoding).
    /// Panics if the runs are not sorted, non-overlapping and in-bounds.
    pub fn from_runs(runs: Vec<DiffRun>) -> Diff {
        let mut prev_end = 0u32;
        for (i, r) in runs.iter().enumerate() {
            assert!(!r.words.is_empty(), "empty run");
            assert!(i == 0 || r.word_off > prev_end, "unsorted or adjacent runs");
            assert!(r.end() as usize <= PAGE_WORDS, "run out of bounds");
            prev_end = r.end();
        }
        Diff { runs }
    }

    /// Write the modified words into `page`.
    ///
    /// Each run is stored through [`PageBuf::set_words`] — a single
    /// bounds-checked block copy — instead of a per-word loop.
    pub fn apply(&self, page: &mut PageBuf) {
        for r in &self.runs {
            debug_assert!(
                r.end() as usize <= PAGE_WORDS,
                "diff run out of bounds: off={} len={}",
                r.word_off,
                r.words.len()
            );
            page.set_words(r.word_off as usize, &r.words);
        }
    }

    /// Diff integration: overlay `newer` on top of `self`, producing a single
    /// diff equivalent to applying `self` then `newer`.
    pub fn merge(&self, newer: &Diff) -> Diff {
        let mut runs = Vec::with_capacity(self.runs.len() + newer.runs.len());
        merge_runs(&self.runs, &newer.runs, &mut runs);
        Diff { runs }
    }

    /// In-place variant of [`Diff::merge`]. When `self` is empty this reuses
    /// `self`'s existing run storage via `clone_from` instead of a fresh
    /// allocation per run.
    pub fn merge_from(&mut self, newer: &Diff) {
        if newer.is_empty() {
            return;
        }
        if self.is_empty() {
            self.runs.clone_from(&newer.runs);
            return;
        }
        let older = std::mem::take(&mut self.runs);
        self.runs.reserve(older.len() + newer.runs.len());
        merge_runs(&older, &newer.runs, &mut self.runs);
    }
}

/// Two-pointer run merge: overlay the newer runs `b` on the older runs `a`,
/// appending sorted maximal runs to `out`. Newer words win on overlap. Walks
/// both run lists once instead of materializing a page-sized overlay.
fn merge_runs(a: &[DiffRun], b: &[DiffRun], out: &mut Vec<DiffRun>) {
    // Append `words` at `off`, coalescing with the previous run if adjacent.
    fn push(out: &mut Vec<DiffRun>, off: u32, words: &[u32]) {
        if words.is_empty() {
            return;
        }
        match out.last_mut() {
            Some(r) if r.end() == off => r.words.extend_from_slice(words),
            _ => out.push(DiffRun {
                word_off: off,
                words: words.to_vec(),
            }),
        }
    }
    // Emit the a-words below `limit`, advancing the (run index, words consumed)
    // cursor. An a-run straddling `limit` is split and its tail kept pending.
    fn copy_a(out: &mut Vec<DiffRun>, a: &[DiffRun], ai: &mut usize, done: &mut usize, limit: u32) {
        while *ai < a.len() {
            let ar = &a[*ai];
            let start = ar.word_off + *done as u32;
            if start >= limit {
                return;
            }
            let stop = ar.end().min(limit);
            push(out, start, &ar.words[*done..(stop - ar.word_off) as usize]);
            if stop == ar.end() {
                *ai += 1;
                *done = 0;
            } else {
                *done = (stop - ar.word_off) as usize;
                return;
            }
        }
    }
    // Advance the a-cursor past words below `limit` without emitting them
    // (they are overwritten by a newer run).
    fn skip_a(a: &[DiffRun], ai: &mut usize, done: &mut usize, limit: u32) {
        while *ai < a.len() {
            let ar = &a[*ai];
            if ar.end() <= limit {
                *ai += 1;
                *done = 0;
            } else {
                if ar.word_off + (*done as u32) < limit {
                    *done = (limit - ar.word_off) as usize;
                }
                return;
            }
        }
    }
    let (mut ai, mut done) = (0usize, 0usize);
    for br in b {
        copy_a(out, a, &mut ai, &mut done, br.word_off);
        skip_a(a, &mut ai, &mut done, br.end());
        push(out, br.word_off, &br.words);
    }
    copy_a(out, a, &mut ai, &mut done, PAGE_WORDS as u32);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    fn page_with(words: &[(usize, u32)]) -> Box<PageBuf> {
        let mut p = PageBuf::zeroed();
        for &(w, v) in words {
            p.set_word(w, v);
        }
        p
    }

    #[test]
    fn identical_pages_empty_diff() {
        let a = PageBuf::zeroed();
        let b = a.clone();
        let d = Diff::create(&a, &b);
        assert!(d.is_empty());
        assert_eq!(d.wire_bytes(), DIFF_HEADER_BYTES);
    }

    #[test]
    fn create_apply_roundtrip() {
        let twin = page_with(&[(0, 1), (100, 2)]);
        let cur = page_with(&[(0, 9), (100, 2), (101, 5), (1023, 7)]);
        let d = Diff::create(&twin, &cur);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        assert_eq!(&*rebuilt, &*cur);
    }

    #[test]
    fn runs_are_maximal_and_sorted() {
        let twin = PageBuf::zeroed();
        let cur = page_with(&[(3, 1), (4, 2), (5, 3), (9, 4)]);
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs().len(), 2);
        assert_eq!(d.runs()[0].word_off, 3);
        assert_eq!(d.runs()[0].words, vec![1, 2, 3]);
        assert_eq!(d.runs()[1].word_off, 9);
        assert_eq!(d.word_count(), 4);
    }

    #[test]
    fn wire_bytes_counts_runs() {
        let twin = PageBuf::zeroed();
        let cur = page_with(&[(0, 1), (10, 2)]);
        let d = Diff::create(&twin, &cur);
        assert_eq!(
            d.wire_bytes(),
            DIFF_HEADER_BYTES + 2 * (RUN_HEADER_BYTES + WORD_SIZE)
        );
    }

    #[test]
    fn merge_last_writer_wins() {
        let twin = PageBuf::zeroed();
        let a = Diff::create(&twin, &page_with(&[(0, 1), (1, 1)]));
        let b = Diff::create(&twin, &page_with(&[(1, 2), (2, 2)]));
        let m = a.merge(&b);
        let mut p = PageBuf::zeroed();
        m.apply(&mut p);
        assert_eq!(p.word(0), 1);
        assert_eq!(p.word(1), 2);
        assert_eq!(p.word(2), 2);
        // Integration collapses into a single contiguous run.
        assert_eq!(m.runs().len(), 1);
    }

    #[test]
    fn merge_equals_sequential_application() {
        let twin = PageBuf::zeroed();
        let a = Diff::create(&twin, &page_with(&[(5, 10), (6, 11)]));
        let b = Diff::create(&twin, &page_with(&[(6, 20), (200, 21)]));
        let mut seq = PageBuf::zeroed();
        a.apply(&mut seq);
        b.apply(&mut seq);
        let mut merged = PageBuf::zeroed();
        a.merge(&b).apply(&mut merged);
        assert_eq!(&*seq, &*merged);
    }

    #[test]
    fn full_page_diff_bounded() {
        let twin = PageBuf::zeroed();
        let mut cur = PageBuf::zeroed();
        for w in 0..PAGE_WORDS {
            cur.set_word(w, w as u32 + 1);
        }
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs().len(), 1);
        assert_eq!(d.word_count(), PAGE_WORDS);
        assert_eq!(
            d.wire_bytes(),
            DIFF_HEADER_BYTES + RUN_HEADER_BYTES + PAGE_SIZE
        );
    }

    #[test]
    fn merge_from_empty_is_clone() {
        let twin = PageBuf::zeroed();
        let b = Diff::create(&twin, &page_with(&[(1, 2)]));
        let mut acc = Diff::empty();
        acc.merge_from(&b);
        assert_eq!(acc, b);
    }

    /// The original word-by-word diff kernel, retained as the oracle for the
    /// randomized equivalence suite below.
    fn scalar_create(twin: &PageBuf, current: &PageBuf) -> Diff {
        let mut runs = Vec::new();
        let mut w = 0;
        while w < PAGE_WORDS {
            if twin.word(w) != current.word(w) {
                let start = w;
                let mut words = Vec::new();
                while w < PAGE_WORDS && twin.word(w) != current.word(w) {
                    words.push(current.word(w));
                    w += 1;
                }
                runs.push(DiffRun {
                    word_off: start as u32,
                    words,
                });
            } else {
                w += 1;
            }
        }
        Diff { runs }
    }

    /// The original page-sized-overlay merge, retained as the oracle.
    fn overlay_merge(older: &Diff, newer: &Diff) -> Diff {
        let mut overlay: Vec<Option<u32>> = vec![None; PAGE_WORDS];
        for d in [older, newer] {
            for r in &d.runs {
                for (i, &v) in r.words.iter().enumerate() {
                    overlay[r.word_off as usize + i] = Some(v);
                }
            }
        }
        let mut runs = Vec::new();
        let mut w = 0;
        while w < PAGE_WORDS {
            match overlay[w] {
                Some(_) => {
                    let start = w;
                    let mut words = Vec::new();
                    while let Some(Some(v)) = overlay.get(w) {
                        words.push(*v);
                        w += 1;
                    }
                    runs.push(DiffRun {
                        word_off: start as u32,
                        words,
                    });
                }
                None => w += 1,
            }
        }
        Diff { runs }
    }

    /// SplitMix64: tiny deterministic PRNG, no dependencies.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Mutate a random set of words; higher `density` touches more words.
    fn random_mutation(rng: &mut Rng, base: &PageBuf, density: usize) -> Box<PageBuf> {
        let mut p = Box::new(base.clone());
        for _ in 0..density {
            let w = rng.below(PAGE_WORDS);
            let run = 1 + rng.below(8);
            for i in 0..run {
                if w + i < PAGE_WORDS {
                    p.set_word(w + i, rng.next() as u32);
                }
            }
        }
        p
    }

    #[test]
    fn randomized_create_matches_scalar_reference() {
        let mut rng = Rng(0x5eed_2026);
        for trial in 0..200 {
            let density = [1, 4, 32, 256][trial % 4];
            let twin = random_mutation(&mut rng, &PageBuf::zeroed(), 16);
            let cur = random_mutation(&mut rng, &twin, density);
            let chunked = Diff::create(&twin, &cur);
            let scalar = scalar_create(&twin, &cur);
            assert_eq!(chunked, scalar, "trial {trial} density {density}");
        }
    }

    #[test]
    fn randomized_merge_matches_overlay_reference() {
        let mut rng = Rng(0xfeed_2026);
        let twin = PageBuf::zeroed();
        for trial in 0..200 {
            let density = [1, 4, 32, 256][trial % 4];
            let a = Diff::create(&twin, &random_mutation(&mut rng, &twin, density));
            let b = Diff::create(&twin, &random_mutation(&mut rng, &twin, density));
            let two_ptr = a.merge(&b);
            let overlay = overlay_merge(&a, &b);
            assert_eq!(two_ptr, overlay, "trial {trial} density {density}");
            let mut in_place = a.clone();
            in_place.merge_from(&b);
            assert_eq!(in_place, overlay, "merge_from trial {trial}");
        }
    }

    #[test]
    fn create_boundary_cases_match_scalar_reference() {
        let zero = PageBuf::zeroed();
        let mut full = PageBuf::zeroed();
        for w in 0..PAGE_WORDS {
            full.set_word(w, w as u32 + 1);
        }
        let cases: Vec<Box<PageBuf>> = vec![
            page_with(&[(0, 1)]),                                 // first word
            page_with(&[(PAGE_WORDS - 1, 1)]),                    // last word
            page_with(&[(2, 1), (3, 2), (4, 3), (5, 4), (6, 5)]), // chunk-straddling run
            page_with(&[(CHUNK_WORDS - 1, 1), (CHUNK_WORDS, 2)]), // exact chunk boundary
            page_with(&[(0, 1), (PAGE_WORDS - 1, 2)]),            // both extremes
            full,                                                 // full page
            zero.clone(),                                         // no change
        ];
        for (i, cur) in cases.iter().enumerate() {
            let chunked = Diff::create(&zero, cur);
            let scalar = scalar_create(&zero, cur);
            assert_eq!(chunked, scalar, "case {i}");
            let mut rebuilt = zero.clone();
            chunked.apply(&mut rebuilt);
            assert_eq!(&*rebuilt, &**cur, "roundtrip case {i}");
        }
    }

    #[test]
    fn merge_boundary_cases() {
        // Older run spans an entire newer run, with head and tail kept.
        let a = Diff::from_runs(vec![DiffRun {
            word_off: 10,
            words: (0..20).collect(),
        }]);
        let b = Diff::from_runs(vec![DiffRun {
            word_off: 15,
            words: vec![900, 901, 902],
        }]);
        let m = a.merge(&b);
        assert_eq!(m, overlay_merge(&a, &b));
        assert_eq!(m.runs().len(), 1);
        assert_eq!(m.word_count(), 20);
        // Newer run extends past the older tail and bridges into a later run.
        let a = Diff::from_runs(vec![
            DiffRun {
                word_off: 0,
                words: vec![1, 2],
            },
            DiffRun {
                word_off: 4,
                words: vec![3],
            },
        ]);
        let b = Diff::from_runs(vec![DiffRun {
            word_off: 1,
            words: vec![7, 8, 9],
        }]);
        assert_eq!(a.merge(&b), overlay_merge(&a, &b));
        // Merging with empties.
        assert_eq!(a.merge(&Diff::empty()), a);
        assert_eq!(Diff::empty().merge(&a), a);
        // Last-word runs.
        let last = Diff::from_runs(vec![DiffRun {
            word_off: PAGE_WORDS as u32 - 1,
            words: vec![5],
        }]);
        assert_eq!(a.merge(&last), overlay_merge(&a, &last));
        assert_eq!(last.merge(&a), overlay_merge(&last, &a));
    }

    #[test]
    fn merge_from_reuses_storage_when_empty() {
        let twin = PageBuf::zeroed();
        let b = Diff::create(&twin, &page_with(&[(1, 2), (50, 3)]));
        let mut acc = Diff::empty();
        acc.merge_from(&b);
        assert_eq!(acc, b);
        acc.merge_from(&Diff::empty());
        assert_eq!(acc, b);
    }

    #[test]
    #[should_panic(expected = "unsorted")]
    fn from_runs_validates() {
        Diff::from_runs(vec![
            DiffRun {
                word_off: 5,
                words: vec![1],
            },
            DiffRun {
                word_off: 2,
                words: vec![1],
            },
        ]);
    }
}
