//! Word-granularity page diffs.
//!
//! A diff records the words of a page that changed relative to its *twin*
//! (the copy snapshotted at the first write of an interval), encoded as
//! maximal runs of consecutive modified words — the TreadMarks encoding.
//!
//! `VC_sd`'s *diff integration* (Huang et al., CCGrid'05) is implemented by
//! [`Diff::merge`]: any number of diffs against the same page collapse into a
//! single diff bounded by the page size, with later writes overriding earlier
//! ones.

use crate::page::{PageBuf, PAGE_WORDS, WORD_SIZE};

/// One maximal run of consecutive modified words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// Word index of the first modified word.
    pub word_off: u32,
    /// The new little-endian word values.
    pub words: Vec<u32>,
}

impl DiffRun {
    fn end(&self) -> u32 {
        self.word_off + self.words.len() as u32
    }
}

/// A set of modifications to a single page: sorted, non-overlapping,
/// non-adjacent maximal runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    runs: Vec<DiffRun>,
}

/// Wire-format overhead per diff (page id + run count), in bytes.
pub const DIFF_HEADER_BYTES: usize = 8;
/// Wire-format overhead per run (offset + length), in bytes.
pub const RUN_HEADER_BYTES: usize = 4;

impl Diff {
    /// An empty diff.
    pub fn empty() -> Diff {
        Diff::default()
    }

    /// True if no words are modified.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of modified words.
    pub fn word_count(&self) -> usize {
        self.runs.iter().map(|r| r.words.len()).sum()
    }

    /// The runs, in ascending word order.
    pub fn runs(&self) -> &[DiffRun] {
        &self.runs
    }

    /// Bytes this diff would occupy on the wire.
    pub fn wire_bytes(&self) -> usize {
        DIFF_HEADER_BYTES
            + self
                .runs
                .iter()
                .map(|r| RUN_HEADER_BYTES + r.words.len() * WORD_SIZE)
                .sum::<usize>()
    }

    /// Compare `current` against its `twin` and record every changed word.
    pub fn create(twin: &PageBuf, current: &PageBuf) -> Diff {
        let mut runs = Vec::new();
        let mut w = 0;
        while w < PAGE_WORDS {
            if twin.word(w) != current.word(w) {
                let start = w;
                let mut words = Vec::new();
                while w < PAGE_WORDS && twin.word(w) != current.word(w) {
                    words.push(current.word(w));
                    w += 1;
                }
                runs.push(DiffRun {
                    word_off: start as u32,
                    words,
                });
            } else {
                w += 1;
            }
        }
        Diff { runs }
    }

    /// Build a diff from raw runs (used by tests and protocol decoding).
    /// Panics if the runs are not sorted, non-overlapping and in-bounds.
    pub fn from_runs(runs: Vec<DiffRun>) -> Diff {
        let mut prev_end = 0u32;
        for (i, r) in runs.iter().enumerate() {
            assert!(!r.words.is_empty(), "empty run");
            assert!(i == 0 || r.word_off > prev_end, "unsorted or adjacent runs");
            assert!(r.end() as usize <= PAGE_WORDS, "run out of bounds");
            prev_end = r.end();
        }
        Diff { runs }
    }

    /// Write the modified words into `page`.
    pub fn apply(&self, page: &mut PageBuf) {
        for r in &self.runs {
            for (i, &v) in r.words.iter().enumerate() {
                page.set_word(r.word_off as usize + i, v);
            }
        }
    }

    /// Diff integration: overlay `newer` on top of `self`, producing a single
    /// diff equivalent to applying `self` then `newer`.
    pub fn merge(&self, newer: &Diff) -> Diff {
        // Pages are only 1024 words: materialize into a sparse overlay.
        let mut overlay: Vec<Option<u32>> = vec![None; PAGE_WORDS];
        for d in [self, newer] {
            for r in &d.runs {
                for (i, &v) in r.words.iter().enumerate() {
                    overlay[r.word_off as usize + i] = Some(v);
                }
            }
        }
        let mut runs = Vec::new();
        let mut w = 0;
        while w < PAGE_WORDS {
            if overlay[w].is_some() {
                let start = w;
                let mut words = Vec::new();
                while w < PAGE_WORDS {
                    match overlay[w] {
                        Some(v) => {
                            words.push(v);
                            w += 1;
                        }
                        None => break,
                    }
                }
                runs.push(DiffRun {
                    word_off: start as u32,
                    words,
                });
            } else {
                w += 1;
            }
        }
        Diff { runs }
    }

    /// In-place variant of [`Diff::merge`].
    pub fn merge_from(&mut self, newer: &Diff) {
        if self.is_empty() {
            self.runs = newer.runs.clone();
        } else if !newer.is_empty() {
            *self = self.merge(newer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    fn page_with(words: &[(usize, u32)]) -> Box<PageBuf> {
        let mut p = PageBuf::zeroed();
        for &(w, v) in words {
            p.set_word(w, v);
        }
        p
    }

    #[test]
    fn identical_pages_empty_diff() {
        let a = PageBuf::zeroed();
        let b = a.clone();
        let d = Diff::create(&a, &b);
        assert!(d.is_empty());
        assert_eq!(d.wire_bytes(), DIFF_HEADER_BYTES);
    }

    #[test]
    fn create_apply_roundtrip() {
        let twin = page_with(&[(0, 1), (100, 2)]);
        let cur = page_with(&[(0, 9), (100, 2), (101, 5), (1023, 7)]);
        let d = Diff::create(&twin, &cur);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        assert_eq!(&*rebuilt, &*cur);
    }

    #[test]
    fn runs_are_maximal_and_sorted() {
        let twin = PageBuf::zeroed();
        let cur = page_with(&[(3, 1), (4, 2), (5, 3), (9, 4)]);
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs().len(), 2);
        assert_eq!(d.runs()[0].word_off, 3);
        assert_eq!(d.runs()[0].words, vec![1, 2, 3]);
        assert_eq!(d.runs()[1].word_off, 9);
        assert_eq!(d.word_count(), 4);
    }

    #[test]
    fn wire_bytes_counts_runs() {
        let twin = PageBuf::zeroed();
        let cur = page_with(&[(0, 1), (10, 2)]);
        let d = Diff::create(&twin, &cur);
        assert_eq!(
            d.wire_bytes(),
            DIFF_HEADER_BYTES + 2 * (RUN_HEADER_BYTES + WORD_SIZE)
        );
    }

    #[test]
    fn merge_last_writer_wins() {
        let twin = PageBuf::zeroed();
        let a = Diff::create(&twin, &page_with(&[(0, 1), (1, 1)]));
        let b = Diff::create(&twin, &page_with(&[(1, 2), (2, 2)]));
        let m = a.merge(&b);
        let mut p = PageBuf::zeroed();
        m.apply(&mut p);
        assert_eq!(p.word(0), 1);
        assert_eq!(p.word(1), 2);
        assert_eq!(p.word(2), 2);
        // Integration collapses into a single contiguous run.
        assert_eq!(m.runs().len(), 1);
    }

    #[test]
    fn merge_equals_sequential_application() {
        let twin = PageBuf::zeroed();
        let a = Diff::create(&twin, &page_with(&[(5, 10), (6, 11)]));
        let b = Diff::create(&twin, &page_with(&[(6, 20), (200, 21)]));
        let mut seq = PageBuf::zeroed();
        a.apply(&mut seq);
        b.apply(&mut seq);
        let mut merged = PageBuf::zeroed();
        a.merge(&b).apply(&mut merged);
        assert_eq!(&*seq, &*merged);
    }

    #[test]
    fn full_page_diff_bounded() {
        let twin = PageBuf::zeroed();
        let mut cur = PageBuf::zeroed();
        for w in 0..PAGE_WORDS {
            cur.set_word(w, w as u32 + 1);
        }
        let d = Diff::create(&twin, &cur);
        assert_eq!(d.runs().len(), 1);
        assert_eq!(d.word_count(), PAGE_WORDS);
        assert_eq!(
            d.wire_bytes(),
            DIFF_HEADER_BYTES + RUN_HEADER_BYTES + PAGE_SIZE
        );
    }

    #[test]
    fn merge_from_empty_is_clone() {
        let twin = PageBuf::zeroed();
        let b = Diff::create(&twin, &page_with(&[(1, 2)]));
        let mut acc = Diff::empty();
        acc.merge_from(&b);
        assert_eq!(acc, b);
    }

    #[test]
    #[should_panic(expected = "unsorted")]
    fn from_runs_validates() {
        Diff::from_runs(vec![
            DiffRun {
                word_off: 5,
                words: vec![1],
            },
            DiffRun {
                word_off: 2,
                words: vec![1],
            },
        ]);
    }
}
