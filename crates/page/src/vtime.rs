//! Vector timestamps over process intervals, used by the LRC and VC
//! protocols to track which intervals of which processes a node has seen.

use std::cmp::Ordering;
use std::fmt;

/// A vector timestamp: `vt[p]` is the number of intervals of process `p`
/// whose modifications this node has (transitively) learned about.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct VTime(Vec<u32>);

impl VTime {
    /// The zero timestamp for `n` processes.
    pub fn zero(n: usize) -> VTime {
        VTime(vec![0; n])
    }

    /// Number of process slots.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Component for process `p`.
    #[inline]
    pub fn get(&self, p: usize) -> u32 {
        self.0[p]
    }

    /// Set component for process `p`.
    pub fn set(&mut self, p: usize, v: u32) {
        self.0[p] = v;
    }

    /// Increment component `p`, returning the new value.
    pub fn bump(&mut self, p: usize) -> u32 {
        self.0[p] += 1;
        self.0[p]
    }

    /// `self[i] >= other[i]` for all `i`: this node has seen everything
    /// `other` describes.
    pub fn dominates(&self, other: &VTime) -> bool {
        debug_assert_eq!(self.0.len(), other.0.len());
        self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }

    /// Component-wise maximum (the join of the timestamp lattice).
    pub fn join(&self, other: &VTime) -> VTime {
        debug_assert_eq!(self.0.len(), other.0.len());
        VTime(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| *a.max(b))
                .collect(),
        )
    }

    /// In-place join.
    pub fn join_from(&mut self, other: &VTime) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Partial order on timestamps: `Some(Less)` iff strictly dominated.
    pub fn partial_order(&self, other: &VTime) -> Option<Ordering> {
        let d1 = self.dominates(other);
        let d2 = other.dominates(self);
        match (d1, d2) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Greater),
            (false, true) => Some(Ordering::Less),
            (false, false) => None,
        }
    }

    /// Wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        4 * self.0.len()
    }
}

impl fmt::Debug for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VT{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(v: &[u32]) -> VTime {
        VTime(v.to_vec())
    }

    #[test]
    fn zero_dominated_by_all() {
        let z = VTime::zero(3);
        assert!(vt(&[0, 1, 0]).dominates(&z));
        assert!(z.dominates(&z));
        assert!(!z.dominates(&vt(&[0, 1, 0])));
    }

    #[test]
    fn bump_and_get() {
        let mut a = VTime::zero(2);
        assert_eq!(a.bump(1), 1);
        assert_eq!(a.bump(1), 2);
        assert_eq!(a.get(0), 0);
        assert_eq!(a.get(1), 2);
    }

    #[test]
    fn join_is_lub() {
        let a = vt(&[3, 0, 5]);
        let b = vt(&[1, 4, 5]);
        let j = a.join(&b);
        assert_eq!(j, vt(&[3, 4, 5]));
        assert!(j.dominates(&a) && j.dominates(&b));
    }

    #[test]
    fn partial_order_cases() {
        assert_eq!(
            vt(&[1, 2]).partial_order(&vt(&[1, 2])),
            Some(Ordering::Equal)
        );
        assert_eq!(
            vt(&[2, 2]).partial_order(&vt(&[1, 2])),
            Some(Ordering::Greater)
        );
        assert_eq!(
            vt(&[0, 2]).partial_order(&vt(&[1, 2])),
            Some(Ordering::Less)
        );
        assert_eq!(vt(&[0, 2]).partial_order(&vt(&[1, 0])), None);
    }

    #[test]
    fn join_from_matches_join() {
        let a = vt(&[9, 0]);
        let b = vt(&[3, 7]);
        let mut c = a.clone();
        c.join_from(&b);
        assert_eq!(c, a.join(&b));
    }
}
