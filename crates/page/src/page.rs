//! Fixed-size pages, the unit of sharing in the DSM.
//!
//! The paper's testbed used a 4 KB virtual-memory page; diffs are computed at
//! 32-bit word granularity, like TreadMarks.

use std::ops::{Deref, DerefMut};

/// Bytes per page (matches the paper's Linux 2.4 / x86 testbed).
pub const PAGE_SIZE: usize = 4096;
/// Bytes per diff word.
pub const WORD_SIZE: usize = 4;
/// Words per page.
pub const PAGE_WORDS: usize = PAGE_SIZE / WORD_SIZE;
/// Words per 16-byte comparison chunk used by the diff kernels.
pub const CHUNK_WORDS: usize = 16 / WORD_SIZE;
/// Comparison chunks per page.
pub const PAGE_CHUNKS: usize = PAGE_WORDS / CHUNK_WORDS;
/// Bytes per superblock, the diff kernel's middle skip granularity: clean
/// 256-byte regions are dismissed with a single `memcmp`-class compare
/// before any chunk or word is examined.
pub const SUPER_BYTES: usize = 256;
/// Superblocks per page.
pub const PAGE_SUPERS: usize = PAGE_SIZE / SUPER_BYTES;
/// Bytes per quarter-page, the diff kernel's outermost skip granularity
/// (one wide compare dismisses a clean kilobyte).
pub const QUARTER_BYTES: usize = 1024;
/// Quarter-pages per page.
pub const PAGE_QUARTERS: usize = PAGE_SIZE / QUARTER_BYTES;

/// Index of a page within the shared address space.
pub type PageId = usize;

/// A byte address in the shared address space.
pub type Addr = usize;

/// Page containing byte address `a`.
#[inline]
pub const fn page_of(a: Addr) -> PageId {
    a / PAGE_SIZE
}

/// Byte offset of `a` within its page.
#[inline]
pub const fn offset_in_page(a: Addr) -> usize {
    a % PAGE_SIZE
}

/// First byte address of page `p`.
#[inline]
pub const fn page_base(p: PageId) -> Addr {
    p * PAGE_SIZE
}

/// Inclusive range of pages overlapped by `len` bytes starting at `a`.
/// Returns an empty range for `len == 0`.
pub fn pages_spanned(a: Addr, len: usize) -> std::ops::Range<PageId> {
    if len == 0 {
        page_of(a)..page_of(a)
    } else {
        page_of(a)..page_of(a + len - 1) + 1
    }
}

/// One 4 KB page of shared memory. Heap-allocated via `Box<PageBuf>`.
#[derive(Clone, PartialEq, Eq)]
pub struct PageBuf {
    bytes: [u8; PAGE_SIZE],
}

impl PageBuf {
    /// A zero-filled page.
    pub fn zeroed() -> Box<PageBuf> {
        Box::new(PageBuf {
            bytes: [0u8; PAGE_SIZE],
        })
    }

    /// Read the 32-bit word at word index `w`.
    #[inline]
    pub fn word(&self, w: usize) -> u32 {
        let o = w * WORD_SIZE;
        u32::from_le_bytes(self.bytes[o..o + 4].try_into().unwrap())
    }

    /// Write the 32-bit word at word index `w`.
    #[inline]
    pub fn set_word(&mut self, w: usize, v: u32) {
        let o = w * WORD_SIZE;
        self.bytes[o..o + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Write a run of consecutive words starting at word index `w` with one
    /// bounds check: the diff-apply fast path. The little-endian store loop
    /// over a single subslice compiles down to a block copy.
    #[inline]
    pub fn set_words(&mut self, w: usize, words: &[u32]) {
        let o = w * WORD_SIZE;
        let dst = &mut self.bytes[o..o + words.len() * WORD_SIZE];
        for (chunk, v) in dst.chunks_exact_mut(WORD_SIZE).zip(words) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Read the 16-byte comparison chunk at chunk index `c` as one `u128`,
    /// so the diff kernel can skip unchanged regions four words at a time.
    #[inline]
    pub fn chunk128(&self, c: usize) -> u128 {
        let o = c * CHUNK_WORDS * WORD_SIZE;
        u128::from_le_bytes(self.bytes[o..o + 16].try_into().unwrap())
    }

    /// The 256-byte superblock at index `s`, for the diff kernel's middle
    /// skip loop (slice equality compiles to a wide `memcmp`).
    #[inline]
    pub fn superblock(&self, s: usize) -> &[u8] {
        &self.bytes[s * SUPER_BYTES..(s + 1) * SUPER_BYTES]
    }

    /// The 1024-byte quarter-page at index `q`, for the diff kernel's
    /// outermost skip loop.
    #[inline]
    pub fn quarter(&self, q: usize) -> &[u8] {
        &self.bytes[q * QUARTER_BYTES..(q + 1) * QUARTER_BYTES]
    }
}

impl Deref for PageBuf {
    type Target = [u8; PAGE_SIZE];
    #[inline]
    fn deref(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }
}

impl DerefMut for PageBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero = self.bytes.iter().filter(|&&b| b != 0).count();
        write!(f, "PageBuf({nonzero} nonzero bytes)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addressing() {
        assert_eq!(page_of(0), 0);
        assert_eq!(page_of(4095), 0);
        assert_eq!(page_of(4096), 1);
        assert_eq!(offset_in_page(4097), 1);
        assert_eq!(page_base(3), 12288);
    }

    #[test]
    fn span() {
        assert_eq!(pages_spanned(0, 0), 0..0);
        assert_eq!(pages_spanned(0, 1), 0..1);
        assert_eq!(pages_spanned(0, 4096), 0..1);
        assert_eq!(pages_spanned(0, 4097), 0..2);
        assert_eq!(pages_spanned(4000, 200), 0..2);
        assert_eq!(pages_spanned(8192, 8192), 2..4);
    }

    #[test]
    fn zeroed_and_words() {
        let mut p = PageBuf::zeroed();
        assert!(p.iter().all(|&b| b == 0));
        p.set_word(0, 0xdead_beef);
        p.set_word(PAGE_WORDS - 1, 7);
        assert_eq!(p.word(0), 0xdead_beef);
        assert_eq!(p.word(PAGE_WORDS - 1), 7);
        assert_eq!(p[0], 0xef);
    }

    #[test]
    fn set_words_matches_per_word_stores() {
        let mut a = PageBuf::zeroed();
        let mut b = PageBuf::zeroed();
        let words = [1u32, 0xdead_beef, 7, u32::MAX];
        for (i, &v) in words.iter().enumerate() {
            a.set_word(100 + i, v);
        }
        b.set_words(100, &words);
        assert_eq!(&*a, &*b);
        // Last-word boundary.
        b.set_words(PAGE_WORDS - 1, &[42]);
        assert_eq!(b.word(PAGE_WORDS - 1), 42);
    }

    #[test]
    fn chunk128_sees_word_changes() {
        let mut p = PageBuf::zeroed();
        assert_eq!(p.chunk128(0), 0);
        assert_eq!(p.chunk128(PAGE_CHUNKS - 1), 0);
        p.set_word(5, 9); // word 5 lives in chunk 1 (words 4..8)
        assert_eq!(p.chunk128(0), 0);
        assert_ne!(p.chunk128(1), 0);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = PageBuf::zeroed();
        a.set_word(5, 1);
        let b = a.clone();
        a.set_word(5, 2);
        assert_eq!(b.word(5), 1);
        assert_eq!(a.word(5), 2);
    }
}
