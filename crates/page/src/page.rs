//! Fixed-size pages, the unit of sharing in the DSM.
//!
//! The paper's testbed used a 4 KB virtual-memory page; diffs are computed at
//! 32-bit word granularity, like TreadMarks.

use std::ops::{Deref, DerefMut};

/// Bytes per page (matches the paper's Linux 2.4 / x86 testbed).
pub const PAGE_SIZE: usize = 4096;
/// Bytes per diff word.
pub const WORD_SIZE: usize = 4;
/// Words per page.
pub const PAGE_WORDS: usize = PAGE_SIZE / WORD_SIZE;

/// Index of a page within the shared address space.
pub type PageId = usize;

/// A byte address in the shared address space.
pub type Addr = usize;

/// Page containing byte address `a`.
#[inline]
pub const fn page_of(a: Addr) -> PageId {
    a / PAGE_SIZE
}

/// Byte offset of `a` within its page.
#[inline]
pub const fn offset_in_page(a: Addr) -> usize {
    a % PAGE_SIZE
}

/// First byte address of page `p`.
#[inline]
pub const fn page_base(p: PageId) -> Addr {
    p * PAGE_SIZE
}

/// Inclusive range of pages overlapped by `len` bytes starting at `a`.
/// Returns an empty range for `len == 0`.
pub fn pages_spanned(a: Addr, len: usize) -> std::ops::Range<PageId> {
    if len == 0 {
        page_of(a)..page_of(a)
    } else {
        page_of(a)..page_of(a + len - 1) + 1
    }
}

/// One 4 KB page of shared memory. Heap-allocated via `Box<PageBuf>`.
#[derive(Clone, PartialEq, Eq)]
pub struct PageBuf {
    bytes: [u8; PAGE_SIZE],
}

impl PageBuf {
    /// A zero-filled page.
    pub fn zeroed() -> Box<PageBuf> {
        Box::new(PageBuf {
            bytes: [0u8; PAGE_SIZE],
        })
    }

    /// Read the 32-bit word at word index `w`.
    #[inline]
    pub fn word(&self, w: usize) -> u32 {
        let o = w * WORD_SIZE;
        u32::from_le_bytes(self.bytes[o..o + 4].try_into().unwrap())
    }

    /// Write the 32-bit word at word index `w`.
    #[inline]
    pub fn set_word(&mut self, w: usize, v: u32) {
        let o = w * WORD_SIZE;
        self.bytes[o..o + 4].copy_from_slice(&v.to_le_bytes());
    }
}

impl Deref for PageBuf {
    type Target = [u8; PAGE_SIZE];
    #[inline]
    fn deref(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }
}

impl DerefMut for PageBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero = self.bytes.iter().filter(|&&b| b != 0).count();
        write!(f, "PageBuf({nonzero} nonzero bytes)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addressing() {
        assert_eq!(page_of(0), 0);
        assert_eq!(page_of(4095), 0);
        assert_eq!(page_of(4096), 1);
        assert_eq!(offset_in_page(4097), 1);
        assert_eq!(page_base(3), 12288);
    }

    #[test]
    fn span() {
        assert_eq!(pages_spanned(0, 0), 0..0);
        assert_eq!(pages_spanned(0, 1), 0..1);
        assert_eq!(pages_spanned(0, 4096), 0..1);
        assert_eq!(pages_spanned(0, 4097), 0..2);
        assert_eq!(pages_spanned(4000, 200), 0..2);
        assert_eq!(pages_spanned(8192, 8192), 2..4);
    }

    #[test]
    fn zeroed_and_words() {
        let mut p = PageBuf::zeroed();
        assert!(p.iter().all(|&b| b == 0));
        p.set_word(0, 0xdead_beef);
        p.set_word(PAGE_WORDS - 1, 7);
        assert_eq!(p.word(0), 0xdead_beef);
        assert_eq!(p.word(PAGE_WORDS - 1), 7);
        assert_eq!(p[0], 0xef);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = PageBuf::zeroed();
        a.set_word(5, 1);
        let b = a.clone();
        a.set_word(5, 2);
        assert_eq!(b.word(5), 1);
        assert_eq!(a.word(5), 2);
    }
}
