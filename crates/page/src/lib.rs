#![warn(missing_docs)]

//! # vopp-page — paged shared-memory substrate
//!
//! The memory machinery shared by every DSM protocol in this reproduction:
//!
//! * [`PageBuf`] / addressing helpers — 4 KB pages, the unit of sharing.
//! * [`NodeMemory`] — a node's local copies with the valid/invalid/dirty
//!   state machine and twin snapshots (the simulation stand-in for
//!   `mprotect` + SIGSEGV write trapping).
//! * [`Diff`] — word-granularity run-length diffs, with the *diff
//!   integration* merge used by the optimal `VC_sd` protocol.
//! * [`VTime`] — vector timestamps over intervals.
//! * [`IntervalRecord`] / [`WriteNotice`] — the consistency metadata
//!   exchanged at synchronization points.
//! * [`SharedHeap`] — the deterministic shared-address-space allocator.

mod diff;
mod heap;
mod interval;
mod mem;
mod page;
mod vtime;

pub use diff::{Diff, DiffRun, DIFF_HEADER_BYTES, RUN_HEADER_BYTES};
pub use heap::SharedHeap;
pub use interval::{IntervalId, IntervalRecord, WriteNotice, NOTICE_WIRE_BYTES};
pub use mem::{NodeMemory, PagePool, PageState};
pub use page::{
    offset_in_page, page_base, page_of, pages_spanned, Addr, PageBuf, PageId, CHUNK_WORDS,
    PAGE_CHUNKS, PAGE_QUARTERS, PAGE_SIZE, PAGE_SUPERS, PAGE_WORDS, QUARTER_BYTES, SUPER_BYTES,
    WORD_SIZE,
};
pub use vtime::VTime;
