//! Property-based tests of the memory substrate invariants.
//!
//! Exercised over seeded pseudo-random inputs (SplitMix64) instead of a
//! property-testing framework so the suite runs without external
//! dependencies; failures print the seed for replay.

use vopp_page::{
    pages_spanned, Diff, NodeMemory, PageBuf, SharedHeap, VTime, PAGE_SIZE, PAGE_WORDS,
};

/// SplitMix64: tiny deterministic PRNG, seeded per case.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Uniform in [lo, hi).
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// A small set of sparse word writes as (index, value) pairs.
    fn writes(&mut self) -> Vec<(usize, u32)> {
        (0..self.range(0, 64))
            .map(|_| (self.range(0, PAGE_WORDS), self.next_u32()))
            .collect()
    }
}

const CASES: u64 = 64;

fn page_from(writes: &[(usize, u32)]) -> Box<PageBuf> {
    let mut p = PageBuf::zeroed();
    for &(w, v) in writes {
        p.set_word(w, v);
    }
    p
}

/// diff(twin, cur) applied to twin reconstructs cur exactly.
#[test]
fn diff_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let twin = page_from(&rng.writes());
        let cur = page_from(&rng.writes());
        let d = Diff::create(&twin, &cur);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        assert_eq!(&*rebuilt, &*cur, "seed {seed}");
    }
}

/// Diff runs are sorted, non-overlapping, non-adjacent and in bounds.
#[test]
fn diff_runs_canonical() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let d = Diff::create(&page_from(&rng.writes()), &page_from(&rng.writes()));
        let mut prev_end: Option<u32> = None;
        for r in d.runs() {
            assert!(!r.words.is_empty(), "seed {seed}");
            let end = r.word_off + r.words.len() as u32;
            assert!(end as usize <= PAGE_WORDS, "seed {seed}");
            if let Some(pe) = prev_end {
                // A gap of at least one unchanged word between runs.
                assert!(r.word_off > pe, "seed {seed}");
            }
            prev_end = Some(end);
        }
    }
}

/// Merging two diffs equals applying them in sequence (last writer wins).
#[test]
fn diff_merge_equals_sequential() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let zero = PageBuf::zeroed();
        let a = Diff::create(&zero, &page_from(&rng.writes()));
        let b = Diff::create(&zero, &page_from(&rng.writes()));
        let base = rng.writes();
        let mut seq = page_from(&base);
        a.apply(&mut seq);
        b.apply(&mut seq);
        let mut merged = page_from(&base);
        a.merge(&b).apply(&mut merged);
        assert_eq!(&*seq, &*merged, "seed {seed}");
    }
}

/// Merge is associative in effect: (a+b)+c == a+(b+c) as page transforms.
#[test]
fn diff_merge_associative() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let zero = PageBuf::zeroed();
        let a = Diff::create(&zero, &page_from(&rng.writes()));
        let b = Diff::create(&zero, &page_from(&rng.writes()));
        let c = Diff::create(&zero, &page_from(&rng.writes()));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left, right, "seed {seed}");
    }
}

/// Integrated diff never exceeds one full page of payload.
#[test]
fn diff_merge_bounded() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let zero = PageBuf::zeroed();
        let a = Diff::create(&zero, &page_from(&rng.writes()));
        let b = Diff::create(&zero, &page_from(&rng.writes()));
        let m = a.merge(&b);
        assert!(m.word_count() <= PAGE_WORDS, "seed {seed}");
        assert!(
            m.word_count() <= a.word_count() + b.word_count(),
            "seed {seed}"
        );
    }
}

/// Wire-size accounting matches the encoding exactly: header + one
/// header-plus-payload block per run.
#[test]
fn diff_wire_bytes_exact() {
    use vopp_page::{DIFF_HEADER_BYTES, RUN_HEADER_BYTES, WORD_SIZE};
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let d = Diff::create(&page_from(&rng.writes()), &page_from(&rng.writes()));
        let expect =
            DIFF_HEADER_BYTES + d.runs().len() * RUN_HEADER_BYTES + d.word_count() * WORD_SIZE;
        assert_eq!(d.wire_bytes(), expect, "seed {seed}");
    }
}

/// Vector time join is the least upper bound.
#[test]
fn vtime_join_is_lub() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let a: Vec<u32> = (0..8).map(|_| rng.range(0, 1000) as u32).collect();
        let b: Vec<u32> = (0..8).map(|_| rng.range(0, 1000) as u32).collect();
        let mut va = VTime::zero(8);
        let mut vb = VTime::zero(8);
        for i in 0..8 {
            va.set(i, a[i]);
            vb.set(i, b[i]);
        }
        let j = va.join(&vb);
        assert!(j.dominates(&va), "seed {seed}");
        assert!(j.dominates(&vb), "seed {seed}");
        // Minimality: any upper bound dominates the join.
        let mut ub = VTime::zero(8);
        for i in 0..8 {
            ub.set(i, a[i].max(b[i]));
        }
        assert!(ub.dominates(&j) && j.dominates(&ub), "seed {seed}");
    }
}

/// Domination is a partial order: reflexive and antisymmetric; join
/// commutes.
#[test]
fn vtime_partial_order_laws() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let a: Vec<u32> = (0..4).map(|_| rng.range(0, 50) as u32).collect();
        let b: Vec<u32> = (0..4).map(|_| rng.range(0, 50) as u32).collect();
        let mut va = VTime::zero(4);
        let mut vb = VTime::zero(4);
        for i in 0..4 {
            va.set(i, a[i]);
            vb.set(i, b[i]);
        }
        assert!(va.dominates(&va), "seed {seed}");
        if va.dominates(&vb) && vb.dominates(&va) {
            assert_eq!(va.clone(), vb.clone(), "seed {seed}");
        }
        assert_eq!(va.join(&vb), vb.join(&va), "seed {seed}");
    }
}

/// Heap allocations never overlap and respect alignment.
#[test]
fn heap_no_overlap() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let reqs: Vec<(usize, u32)> = (0..rng.range(1, 40))
            .map(|_| (rng.range(1, 10_000), rng.range(0, 6) as u32))
            .collect();
        let mut h = SharedHeap::new();
        let mut got: Vec<(usize, usize)> = Vec::new();
        for (len, align_pow) in reqs {
            let align = 1usize << align_pow;
            let a = h.alloc(len, align);
            assert_eq!(a % align, 0, "seed {seed}");
            for &(b, blen) in &got {
                assert!(a + len <= b || b + blen <= a, "seed {seed}: overlap");
            }
            got.push((a, len));
        }
    }
}

/// pages_spanned covers exactly the bytes of the range.
#[test]
fn pages_spanned_covers() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let addr = rng.range(0, 100_000);
        let len = rng.range(0, 20_000);
        let r = pages_spanned(addr, len);
        if len == 0 {
            assert!(r.is_empty(), "seed {seed}");
        } else {
            assert_eq!(r.start, addr / PAGE_SIZE, "seed {seed}");
            assert_eq!(r.end, (addr + len - 1) / PAGE_SIZE + 1, "seed {seed}");
        }
    }
}

/// NodeMemory interval extraction: applying the extracted diffs to a copy
/// of the pre-interval state reproduces the post-interval state.
#[test]
fn node_memory_interval_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let ws: Vec<(usize, usize, u32)> = (0..rng.range(1, 50))
            .map(|_| (rng.range(0, 4), rng.range(0, PAGE_WORDS), rng.next_u32()))
            .collect();
        let mut m = NodeMemory::new(4);
        // Pre-state: some baseline writes in a first interval.
        m.note_write(0);
        m.page_mut(0).set_word(0, 7);
        let _ = m.end_interval();
        let pre: Vec<Box<PageBuf>> = (0..4).map(|p| Box::new(m.page(p).clone())).collect();

        for &(p, w, v) in &ws {
            m.note_write(p);
            m.page_mut(p).set_word(w, v);
        }
        let diffs = m.end_interval();
        let mut rebuilt = pre;
        for (p, d) in &diffs {
            d.apply(&mut rebuilt[*p]);
        }
        for (p, page) in rebuilt.iter().enumerate() {
            assert_eq!(&**page, m.page(p), "seed {seed}");
        }
    }
}
