//! Property-based tests of the memory substrate invariants.

use proptest::prelude::*;
use vopp_page::{
    pages_spanned, Diff, NodeMemory, PageBuf, SharedHeap, VTime, PAGE_SIZE, PAGE_WORDS,
};

/// A small set of sparse word writes, representable as (index, value).
fn writes_strategy() -> impl Strategy<Value = Vec<(usize, u32)>> {
    prop::collection::vec((0..PAGE_WORDS, any::<u32>()), 0..64)
}

fn page_from(writes: &[(usize, u32)]) -> Box<PageBuf> {
    let mut p = PageBuf::zeroed();
    for &(w, v) in writes {
        p.set_word(w, v);
    }
    p
}

proptest! {
    /// diff(twin, cur) applied to twin reconstructs cur exactly.
    #[test]
    fn diff_roundtrip(tw in writes_strategy(), cw in writes_strategy()) {
        let twin = page_from(&tw);
        let cur = page_from(&cw);
        let d = Diff::create(&twin, &cur);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        prop_assert_eq!(&*rebuilt, &*cur);
    }

    /// Diff runs are sorted, non-overlapping, non-adjacent and in bounds.
    #[test]
    fn diff_runs_canonical(tw in writes_strategy(), cw in writes_strategy()) {
        let d = Diff::create(&page_from(&tw), &page_from(&cw));
        let mut prev_end: Option<u32> = None;
        for r in d.runs() {
            prop_assert!(!r.words.is_empty());
            let end = r.word_off + r.words.len() as u32;
            prop_assert!(end as usize <= PAGE_WORDS);
            if let Some(pe) = prev_end {
                // A gap of at least one unchanged word between runs.
                prop_assert!(r.word_off > pe);
            }
            prev_end = Some(end);
        }
    }

    /// Merging two diffs equals applying them in sequence (last writer wins).
    #[test]
    fn diff_merge_equals_sequential(
        aw in writes_strategy(),
        bw in writes_strategy(),
        base in writes_strategy(),
    ) {
        let zero = PageBuf::zeroed();
        let a = Diff::create(&zero, &page_from(&aw));
        let b = Diff::create(&zero, &page_from(&bw));
        let mut seq = page_from(&base);
        a.apply(&mut seq);
        b.apply(&mut seq);
        let mut merged = page_from(&base);
        a.merge(&b).apply(&mut merged);
        prop_assert_eq!(&*seq, &*merged);
    }

    /// Merge is associative in effect: (a+b)+c == a+(b+c) as page transforms.
    #[test]
    fn diff_merge_associative(
        aw in writes_strategy(),
        bw in writes_strategy(),
        cw in writes_strategy(),
    ) {
        let zero = PageBuf::zeroed();
        let a = Diff::create(&zero, &page_from(&aw));
        let b = Diff::create(&zero, &page_from(&bw));
        let c = Diff::create(&zero, &page_from(&cw));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        prop_assert_eq!(left, right);
    }

    /// Integrated diff never exceeds one full page of payload.
    #[test]
    fn diff_merge_bounded(aw in writes_strategy(), bw in writes_strategy()) {
        let zero = PageBuf::zeroed();
        let a = Diff::create(&zero, &page_from(&aw));
        let b = Diff::create(&zero, &page_from(&bw));
        let m = a.merge(&b);
        prop_assert!(m.word_count() <= PAGE_WORDS);
        prop_assert!(m.word_count() <= a.word_count() + b.word_count());
    }

    /// Wire-size accounting matches the encoding exactly: header + one
    /// header-plus-payload block per run.
    #[test]
    fn diff_wire_bytes_exact(tw in writes_strategy(), cw in writes_strategy()) {
        use vopp_page::{DIFF_HEADER_BYTES, RUN_HEADER_BYTES, WORD_SIZE};
        let d = Diff::create(&page_from(&tw), &page_from(&cw));
        let expect = DIFF_HEADER_BYTES
            + d.runs().len() * RUN_HEADER_BYTES
            + d.word_count() * WORD_SIZE;
        prop_assert_eq!(d.wire_bytes(), expect);
    }

    /// Vector time join is the least upper bound.
    #[test]
    fn vtime_join_is_lub(
        a in prop::collection::vec(0u32..1000, 8),
        b in prop::collection::vec(0u32..1000, 8),
    ) {
        let mut va = VTime::zero(8);
        let mut vb = VTime::zero(8);
        for i in 0..8 {
            va.set(i, a[i]);
            vb.set(i, b[i]);
        }
        let j = va.join(&vb);
        prop_assert!(j.dominates(&va));
        prop_assert!(j.dominates(&vb));
        // Minimality: any upper bound dominates the join.
        let mut ub = VTime::zero(8);
        for i in 0..8 {
            ub.set(i, a[i].max(b[i]));
        }
        prop_assert!(ub.dominates(&j) && j.dominates(&ub));
    }

    /// Domination is a partial order: reflexive and antisymmetric; join
    /// commutes.
    #[test]
    fn vtime_partial_order_laws(
        a in prop::collection::vec(0u32..50, 4),
        b in prop::collection::vec(0u32..50, 4),
    ) {
        let mut va = VTime::zero(4);
        let mut vb = VTime::zero(4);
        for i in 0..4 {
            va.set(i, a[i]);
            vb.set(i, b[i]);
        }
        prop_assert!(va.dominates(&va));
        if va.dominates(&vb) && vb.dominates(&va) {
            prop_assert_eq!(va.clone(), vb.clone());
        }
        prop_assert_eq!(va.join(&vb), vb.join(&va));
    }

    /// Heap allocations never overlap and respect alignment.
    #[test]
    fn heap_no_overlap(reqs in prop::collection::vec((1usize..10_000, 0u32..6), 1..40)) {
        let mut h = SharedHeap::new();
        let mut got: Vec<(usize, usize)> = Vec::new();
        for (len, align_pow) in reqs {
            let align = 1usize << align_pow;
            let a = h.alloc(len, align);
            prop_assert_eq!(a % align, 0);
            for &(b, blen) in &got {
                prop_assert!(a + len <= b || b + blen <= a, "overlap");
            }
            got.push((a, len));
        }
    }

    /// pages_spanned covers exactly the bytes of the range.
    #[test]
    fn pages_spanned_covers(addr in 0usize..100_000, len in 0usize..20_000) {
        let r = pages_spanned(addr, len);
        if len == 0 {
            prop_assert!(r.is_empty());
        } else {
            prop_assert_eq!(r.start, addr / PAGE_SIZE);
            prop_assert_eq!(r.end, (addr + len - 1) / PAGE_SIZE + 1);
        }
    }

    /// NodeMemory interval extraction: applying the extracted diffs to a copy
    /// of the pre-interval state reproduces the post-interval state.
    #[test]
    fn node_memory_interval_roundtrip(ws in prop::collection::vec((0usize..4, 0..PAGE_WORDS, any::<u32>()), 1..50)) {
        let mut m = NodeMemory::new(4);
        // Pre-state: some baseline writes in a first interval.
        m.note_write(0);
        m.page_mut(0).set_word(0, 7);
        let _ = m.end_interval();
        let pre: Vec<Box<PageBuf>> = (0..4).map(|p| Box::new(m.page(p).clone())).collect();

        for &(p, w, v) in &ws {
            m.note_write(p);
            m.page_mut(p).set_word(w, v);
        }
        let diffs = m.end_interval();
        let mut rebuilt = pre;
        for (p, d) in &diffs {
            d.apply(&mut rebuilt[*p]);
        }
        for (p, page) in rebuilt.iter().enumerate() {
            prop_assert_eq!(&**page, m.page(p));
        }
    }
}
