#![warn(missing_docs)]

//! # vopp-simnet — the cluster network substrate
//!
//! Models the paper's testbed network: a 100 Mbps switched Ethernet carrying
//! UDP datagrams, with timeout-based retransmission on top.
//!
//! * [`NetConfig`] — bandwidth/latency/loss parameters (defaults calibrated
//!   to the paper's Godzilla cluster).
//! * [`EthernetModel`] — per-link serialization, store-and-forward switch,
//!   receiver-overflow losses; plugs into the `vopp-sim` kernel.
//! * [`RpcClient`] — blocking request/reply with ~1 s retransmission
//!   timeouts; source of the `Rexmit` statistic in the paper's tables.

mod config;
mod model;
mod transport;

pub use config::{NetConfig, HEADER_BYTES};
pub use model::{EthernetModel, NetStats};
pub use transport::{reply, RpcClient, RPC_TAG_BIT};
