#![warn(missing_docs)]

//! # vopp-simnet — the cluster network substrate
//!
//! Models the paper's testbed network: a 100 Mbps switched Ethernet carrying
//! UDP datagrams, with timeout-based retransmission on top.
//!
//! * [`NetConfig`] — bandwidth/latency/loss parameters (defaults calibrated
//!   to the paper's Godzilla cluster).
//! * [`NetGen`] — named generation presets (the testbed plus 1/10/100 GbE
//!   and an RDMA-class fabric) for the modern-interconnect what-ifs.
//! * [`EthernetModel`] — per-link serialization (picosecond-resolution link
//!   occupancy), store-and-forward switch, receiver-overflow losses; plugs
//!   into the `vopp-sim` kernel.
//! * [`RpcClient`] — blocking request/reply with generation-appropriate
//!   retransmission timeouts (~1 s on the testbed); source of the `Rexmit`
//!   statistic in the paper's tables.

mod config;
mod model;
mod transport;

pub use config::{NetConfig, NetGen, HEADER_BYTES};
pub use model::{EthernetModel, NetStats};
pub use transport::{reply, RpcClient, RPC_TAG_BIT};
