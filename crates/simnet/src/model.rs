//! The switched-Ethernet [`NetModel`].
//!
//! Each node has a full-duplex link into one store-and-forward switch.
//! A datagram serializes on the sender's uplink, crosses the switch after a
//! fixed latency, then serializes on the receiver's downlink; both links are
//! modelled as busy-until timestamps, so concurrent traffic to one node
//! queues behind earlier traffic (the effect that makes centralized barrier
//! managers a bottleneck in the paper).
//!
//! Link occupancy is tracked in **picoseconds** while the simulator's event
//! clock ticks in nanoseconds. At the paper's 100 Mbps this distinction is
//! invisible (every byte is 80 ns), but at 100 GbE a minimum datagram
//! serializes in 4.64 ns — accumulating whole-ns rounded times would let N
//! back-to-back packets finish in well under N× the true wire time. The
//! ps accumulators carry the fractional part exactly; only the final
//! delivery instant is rounded (upward) to the ns event grid.
//!
//! Losses have two sources, matching the paper's observations about message
//! retransmission: a tiny base rate, and receiver-queue overflow when many
//! nodes burst at a single destination (LRC barriers, diff-request storms).
//! One-sided verbs ([`RouteRequest::reliable`]) model RDMA reliable
//! connections: they occupy the links like any datagram but bypass the loss
//! machinery entirely — no RNG draw, so protocols that never use them see an
//! unchanged loss stream.

use std::sync::Arc;

use vopp_sim::sync::Mutex;
use vopp_sim::{EventKind, NetModel, RouteRequest, SimDuration, SimTime, Tracer};

use crate::config::NetConfig;

/// Aggregate traffic counters, shared out of the model via [`Arc`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NetStats {
    /// Datagrams put on the wire (including ones later dropped).
    pub msgs: u64,
    /// Wire bytes put on the network (including headers and drops).
    pub bytes: u64,
    /// Datagrams lost.
    pub drops: u64,
    /// Self-deliveries (not counted in `msgs`/`bytes`).
    pub loopback_msgs: u64,
    /// One-sided (reliable-transport) datagrams — a subset of `msgs`.
    pub one_sided: u64,
}

/// SplitMix64: a tiny, high-quality deterministic PRNG for loss decisions.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The switched-Ethernet network model.
pub struct EthernetModel {
    cfg: NetConfig,
    /// Per-node uplink busy-until, in picoseconds.
    tx_free_ps: Vec<u64>,
    /// Per-node downlink busy-until, in picoseconds.
    rx_free_ps: Vec<u64>,
    rng: SplitMix64,
    stats: Arc<Mutex<NetStats>>,
    tracer: Option<Arc<Tracer>>,
}

impl EthernetModel {
    /// A model for `nprocs` nodes.
    pub fn new(nprocs: usize, cfg: NetConfig) -> EthernetModel {
        EthernetModel {
            rng: SplitMix64(cfg.seed),
            cfg,
            tx_free_ps: vec![0; nprocs],
            rx_free_ps: vec![0; nprocs],
            stats: Arc::new(Mutex::new(NetStats::default())),
            tracer: None,
        }
    }

    /// Handle to the live statistics (clone before moving the model into
    /// the simulation).
    pub fn stats_handle(&self) -> Arc<Mutex<NetStats>> {
        self.stats.clone()
    }

    /// Record drop events (with overflow classification — only the model
    /// knows whether a loss was congestion or background bit error) into
    /// `tracer`. Use the same tracer as the owning `Sim`.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    fn drop_probability(&self, pending_bytes_at_dst: usize) -> f64 {
        let over = pending_bytes_at_dst.saturating_sub(self.cfg.overflow_threshold_bytes);
        let p = self.cfg.base_drop_prob + over as f64 / 1024.0 * self.cfg.overflow_slope_per_kb;
        p.min(self.cfg.overflow_cap)
    }
}

impl NetModel for EthernetModel {
    fn route(&mut self, req: RouteRequest) -> Option<SimTime> {
        if req.src == req.dst {
            self.stats.lock().loopback_msgs += 1;
            return Some(req.now + self.cfg.loopback_latency);
        }
        {
            let mut s = self.stats.lock();
            s.msgs += 1;
            s.bytes += req.wire_bytes as u64;
            if req.reliable {
                s.one_sided += 1;
            }
        }
        if !req.reliable {
            // Loss decision consumes exactly one RNG draw per lossy-path
            // wire datagram, keeping the random stream aligned across
            // protocol variations. One-sided verbs ride a hardware-reliable
            // transport: no draw, no drop, no overflow accounting.
            let p = self.drop_probability(req.pending_bytes_at_dst);
            if p > 0.0 && self.rng.next_f64() < p {
                self.stats.lock().drops += 1;
                if let Some(tr) = &self.tracer {
                    tr.record(
                        req.now.nanos(),
                        req.src,
                        EventKind::NetDrop {
                            dst: req.dst,
                            wire_bytes: req.wire_bytes as u64,
                            overflow: req.pending_bytes_at_dst > self.cfg.overflow_threshold_bytes,
                        },
                    );
                }
                if std::env::var_os("VOPP_NET_DEBUG").is_some() {
                    eprintln!(
                        "[net] drop at {}: {} -> {} ({} B, {} B pending at dst, p={p:.3})",
                        req.now, req.src, req.dst, req.wire_bytes, req.pending_bytes_at_dst
                    );
                }
                return None;
            }
        }
        let now_ps = req.now.0 * 1000;
        let tx_ps = self.cfg.tx_time_ps(req.wire_bytes);
        // Sender uplink serialization.
        let tx_start = now_ps.max(self.tx_free_ps[req.src]);
        let tx_end = tx_start + tx_ps;
        self.tx_free_ps[req.src] = tx_end;
        // Switch + software latency, then receiver downlink serialization.
        let at_switch = tx_end + self.cfg.latency.0 * 1000;
        let rx_start = at_switch.max(self.rx_free_ps[req.dst]);
        let rx_end = rx_start + tx_ps;
        self.rx_free_ps[req.dst] = rx_end;
        // Round the delivery *up* to the ns event grid: `rx_end >= now_ps +
        // latency_ps`, so ceiling keeps `delivery >= now + latency` and the
        // lookahead bound below stays sound.
        Some(SimTime(rx_end.div_ceil(1000)))
    }

    fn lookahead(&self) -> Option<SimDuration> {
        // Every surviving cross-node datagram serializes on the sender
        // uplink (ending no earlier than `now`), then crosses the switch:
        // `rx_end >= tx_end + latency >= now + latency`. Congestion only
        // pushes deliveries later, and the ns rounding is a ceiling, so the
        // switch latency is a sound conservative bound.
        Some(self.cfg.latency)
    }

    fn loopback_latency(&self) -> Option<SimDuration> {
        // The loopback short-circuit above is exact, lossless, and touches
        // neither the RNG nor the link-occupancy state.
        Some(self.cfg.loopback_latency)
    }

    fn sent_count(&self) -> u64 {
        self.stats.lock().msgs
    }

    fn sent_bytes(&self) -> u64 {
        self.stats.lock().bytes
    }

    fn dropped_count(&self) -> u64 {
        self.stats.lock().drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetGen, HEADER_BYTES};
    use vopp_sim::SimDuration;

    fn req(now: u64, src: usize, dst: usize, bytes: usize, pending_bytes: usize) -> RouteRequest {
        RouteRequest {
            now: SimTime(now),
            src,
            dst,
            wire_bytes: bytes,
            pending_bytes_at_dst: pending_bytes,
            reliable: false,
        }
    }

    fn one_sided(now: u64, src: usize, dst: usize, bytes: usize) -> RouteRequest {
        RouteRequest {
            reliable: true,
            ..req(now, src, dst, bytes, 0)
        }
    }

    #[test]
    fn single_packet_time() {
        let mut m = EthernetModel::new(2, NetConfig::lossless());
        // 1250 bytes: 100us tx on each of the two links + 45us latency.
        let at = m.route(req(0, 0, 1, 1250, 0)).unwrap();
        assert_eq!(at, SimTime(100_000 + 45_000 + 100_000));
    }

    #[test]
    fn sender_link_serializes_back_to_back() {
        let mut m = EthernetModel::new(3, NetConfig::lossless());
        let a = m.route(req(0, 0, 1, 1250, 0)).unwrap();
        // Second packet to a *different* dst still waits for the uplink.
        let b = m.route(req(0, 0, 2, 1250, 0)).unwrap();
        assert_eq!(b.nanos() - a.nanos(), 100_000);
    }

    #[test]
    fn receiver_link_is_a_bottleneck() {
        let mut m = EthernetModel::new(3, NetConfig::lossless());
        // Two senders converge on node 2 at the same time: the second
        // delivery queues behind the first on node 2's downlink.
        let a = m.route(req(0, 0, 2, 1250, 0)).unwrap();
        let b = m.route(req(0, 1, 2, 1250, 0)).unwrap();
        assert_eq!(a, SimTime(245_000));
        assert_eq!(b, SimTime(345_000));
    }

    #[test]
    fn loopback_short_circuit() {
        let mut m = EthernetModel::new(2, NetConfig::lossless());
        let at = m.route(req(1_000, 1, 1, 50_000, 0)).unwrap();
        assert_eq!(at, SimTime(1_000) + SimDuration::from_micros(2));
        assert_eq!(m.sent_count(), 0);
        assert_eq!(m.stats.lock().loopback_msgs, 1);
    }

    #[test]
    fn overflow_drops_under_burst() {
        let cfg = NetConfig {
            base_drop_prob: 0.0,
            overflow_threshold_bytes: 4096,
            overflow_slope_per_kb: 1.0, // certain drop 1KB beyond threshold
            overflow_cap: 1.0,
            ..NetConfig::default()
        };
        let mut m = EthernetModel::new(2, cfg);
        assert!(m.route(req(0, 0, 1, 100, 4096)).is_some());
        assert!(m.route(req(0, 0, 1, 100, 8192)).is_none());
        assert_eq!(m.dropped_count(), 1);
    }

    #[test]
    fn base_drop_rate_statistical() {
        let cfg = NetConfig {
            base_drop_prob: 0.01,
            ..NetConfig::default()
        };
        let mut m = EthernetModel::new(2, cfg);
        let mut drops = 0;
        for i in 0..100_000 {
            if m.route(req(i, 0, 1, 100, 0)).is_none() {
                drops += 1;
            }
        }
        // ~1000 expected; allow wide tolerance.
        assert!((600..1500).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let cfg = NetConfig {
                base_drop_prob: 0.05,
                seed,
                ..NetConfig::default()
            };
            let mut m = EthernetModel::new(2, cfg);
            (0..1000)
                .map(|i| m.route(req(i, 0, 1, 64, 0)).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn lookahead_matches_switch_latency_and_bounds_deliveries() {
        let cfg = NetConfig::lossless();
        let mut m = EthernetModel::new(4, cfg.clone());
        let la = m.lookahead().unwrap();
        assert_eq!(la, cfg.latency);
        assert_eq!(m.loopback_latency().unwrap(), cfg.loopback_latency);
        // Hammer one receiver from several senders: every cross-node
        // delivery must still respect `now + lookahead`, and loopback must
        // be exactly `now + loopback_latency`.
        for i in 0..200u64 {
            let now = i * 10_000;
            let src = (i % 3) as usize;
            let at = m.route(req(now, src, 3, 1250, 0)).unwrap();
            assert!(at >= SimTime(now) + la, "delivery {at} beat lookahead");
            let lb = m.route(req(now, src, src, 64, 0)).unwrap();
            assert_eq!(lb, SimTime(now) + cfg.loopback_latency);
        }
    }

    #[test]
    fn stats_count_drops_as_sent() {
        let cfg = NetConfig {
            base_drop_prob: 1.0,
            overflow_cap: 1.0,
            ..NetConfig::default()
        };
        let mut m = EthernetModel::new(2, cfg);
        assert!(m.route(req(0, 0, 1, 500, 0)).is_none());
        // The datagram hit the wire before being lost.
        assert_eq!(m.sent_count(), 1);
        assert_eq!(m.sent_bytes(), 500);
        assert_eq!(m.dropped_count(), 1);
    }

    #[test]
    fn timing_is_exact_at_every_generation() {
        // Single-packet delivery must be exactly
        // ceil((2*tx_ps + latency_ps) / 1000) ns for every preset.
        for gen in NetGen::ALL {
            let cfg = NetConfig {
                base_drop_prob: 0.0,
                overflow_slope_per_kb: 0.0,
                ..gen.config()
            };
            let tx_ps = cfg.tx_time_ps(1250);
            let want = (2 * tx_ps + cfg.latency.0 * 1000).div_ceil(1000);
            let mut m = EthernetModel::new(2, cfg);
            let at = m.route(req(0, 0, 1, 1250, 0)).unwrap();
            assert_eq!(at, SimTime(want), "{gen}");
            assert!(at >= SimTime(0) + m.lookahead().unwrap(), "{gen}");
        }
    }

    #[test]
    fn sub_ns_serialization_accumulates_at_100g() {
        // The regression the ps accumulators fix: N minimum datagrams
        // back-to-back at 100 GbE must occupy the uplink for exactly
        // N x 4.64 ns of wire time, not N x round(4.64) = N x 5 ns or —
        // with the old truncating accumulator reset each packet —
        // far less. 1000 packets: 4640 ns of wire, not 5000, not ~4000.
        let cfg = NetGen::Eth100g.config();
        let tx_ps = cfg.tx_time_ps(HEADER_BYTES);
        assert_eq!(tx_ps, 4_640); // 4.64 ns — not representable in whole ns
        let lossless = NetConfig {
            base_drop_prob: 0.0,
            ..cfg
        };
        let mut m = EthernetModel::new(2, lossless.clone());
        let n: u64 = 1000;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = m.route(req(0, 0, 1, HEADER_BYTES, 0)).unwrap();
        }
        // Last delivery = ceil((n*tx + latency + tx) / 1000): the uplink
        // serializes all n packets, the switch adds its latency once to the
        // final one, and it serializes once more on the downlink (earlier
        // downlink arrivals finished before it got there).
        let want = (n * tx_ps + lossless.latency.0 * 1000 + tx_ps).div_ceil(1000);
        assert_eq!(last, SimTime(want));
        // Sanity on the magnitude: 1000 x 4.64ns = 4640 ns of uplink wire.
        assert_eq!(want, 2000 + 4640 + 5); // latency 2us + wire + ceil(4.64)
    }

    #[test]
    fn eth100m_ps_accumulators_stay_on_the_ns_grid() {
        // Byte-identity guard for the paper generation: at 100 Mbps every
        // quantity is a multiple of 1000 ps, so the ps rewrite must produce
        // exactly the historical whole-ns delivery times under load.
        let mut m = EthernetModel::new(3, NetConfig::lossless());
        let mut prev = 0;
        for i in 0..50u64 {
            let at = m.route(req(i * 777, 0, 2, 963, 0)).unwrap();
            let tx = NetConfig::default().tx_time(963).0;
            assert_eq!((at.0 - 45_000) % tx, 0, "delivery {at} off the tx grid");
            assert!(at.0 > prev);
            prev = at.0;
        }
    }

    #[test]
    fn one_sided_is_never_dropped_and_draws_no_rng() {
        // Certain-loss config: every lossy datagram drops, every one-sided
        // write survives, and one-sided routing leaves the RNG untouched
        // (the loss stream of subsequent lossy traffic is unchanged).
        let cfg = NetConfig {
            base_drop_prob: 0.5,
            overflow_cap: 1.0,
            ..NetConfig::default()
        };
        let pattern_without = {
            let mut m = EthernetModel::new(2, cfg.clone());
            (0..200)
                .map(|i| m.route(req(i, 0, 1, 64, 0)).is_some())
                .collect::<Vec<_>>()
        };
        let mut m = EthernetModel::new(2, cfg);
        for i in 0..50 {
            assert!(m.route(one_sided(i, 0, 1, 4096)).is_some());
        }
        let pattern_with = (0..200)
            .map(|i| m.route(req(i, 0, 1, 64, 0)).is_some())
            .collect::<Vec<_>>();
        assert_eq!(pattern_without, pattern_with);
        let s = *m.stats.lock();
        assert_eq!(s.one_sided, 50);
        assert_eq!(s.msgs, 250); // one-sided counts as wire traffic
    }

    #[test]
    fn one_sided_skips_overflow_but_still_occupies_links() {
        let cfg = NetConfig {
            base_drop_prob: 0.0,
            overflow_threshold_bytes: 0,
            overflow_slope_per_kb: 1.0,
            overflow_cap: 1.0,
            ..NetConfig::default()
        };
        let mut m = EthernetModel::new(2, cfg);
        // A lossy datagram into a saturated receiver drops...
        assert!(m.route(req(0, 0, 1, 100, 1 << 20)).is_none());
        // ...a one-sided write does not, and serializes on both links.
        let at = m
            .route(RouteRequest {
                reliable: true,
                ..req(0, 0, 1, 1250, 1 << 20)
            })
            .unwrap();
        assert_eq!(at, SimTime(245_000));
        // A later lossy packet queues behind the one-sided bytes.
        let cfg2 = NetConfig::lossless();
        let mut m2 = EthernetModel::new(2, cfg2);
        m2.route(one_sided(0, 0, 1, 1250)).unwrap();
        let b = m2.route(req(0, 0, 1, 1250, 0)).unwrap();
        assert_eq!(b, SimTime(345_000));
    }
}
