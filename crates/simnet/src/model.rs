//! The switched-Ethernet [`NetModel`].
//!
//! Each node has a full-duplex link into one store-and-forward switch.
//! A datagram serializes on the sender's uplink, crosses the switch after a
//! fixed latency, then serializes on the receiver's downlink; both links are
//! modelled as busy-until timestamps, so concurrent traffic to one node
//! queues behind earlier traffic (the effect that makes centralized barrier
//! managers a bottleneck in the paper).
//!
//! Losses have two sources, matching the paper's observations about message
//! retransmission: a tiny base rate, and receiver-queue overflow when many
//! nodes burst at a single destination (LRC barriers, diff-request storms).

use std::sync::Arc;

use vopp_sim::sync::Mutex;
use vopp_sim::{EventKind, NetModel, RouteRequest, SimDuration, SimTime, Tracer};

use crate::config::NetConfig;

/// Aggregate traffic counters, shared out of the model via [`Arc`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NetStats {
    /// Datagrams put on the wire (including ones later dropped).
    pub msgs: u64,
    /// Wire bytes put on the network (including headers and drops).
    pub bytes: u64,
    /// Datagrams lost.
    pub drops: u64,
    /// Self-deliveries (not counted in `msgs`/`bytes`).
    pub loopback_msgs: u64,
}

/// SplitMix64: a tiny, high-quality deterministic PRNG for loss decisions.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The switched-Ethernet network model.
pub struct EthernetModel {
    cfg: NetConfig,
    tx_free: Vec<SimTime>,
    rx_free: Vec<SimTime>,
    rng: SplitMix64,
    stats: Arc<Mutex<NetStats>>,
    tracer: Option<Arc<Tracer>>,
}

impl EthernetModel {
    /// A model for `nprocs` nodes.
    pub fn new(nprocs: usize, cfg: NetConfig) -> EthernetModel {
        EthernetModel {
            rng: SplitMix64(cfg.seed),
            cfg,
            tx_free: vec![SimTime::ZERO; nprocs],
            rx_free: vec![SimTime::ZERO; nprocs],
            stats: Arc::new(Mutex::new(NetStats::default())),
            tracer: None,
        }
    }

    /// Handle to the live statistics (clone before moving the model into
    /// the simulation).
    pub fn stats_handle(&self) -> Arc<Mutex<NetStats>> {
        self.stats.clone()
    }

    /// Record drop events (with overflow classification — only the model
    /// knows whether a loss was congestion or background bit error) into
    /// `tracer`. Use the same tracer as the owning `Sim`.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = Some(tracer);
    }

    fn drop_probability(&self, pending_bytes_at_dst: usize) -> f64 {
        let over = pending_bytes_at_dst.saturating_sub(self.cfg.overflow_threshold_bytes);
        let p = self.cfg.base_drop_prob + over as f64 / 1024.0 * self.cfg.overflow_slope_per_kb;
        p.min(self.cfg.overflow_cap)
    }
}

impl NetModel for EthernetModel {
    fn route(&mut self, req: RouteRequest) -> Option<SimTime> {
        if req.src == req.dst {
            self.stats.lock().loopback_msgs += 1;
            return Some(req.now + self.cfg.loopback_latency);
        }
        {
            let mut s = self.stats.lock();
            s.msgs += 1;
            s.bytes += req.wire_bytes as u64;
        }
        // Loss decision consumes exactly one RNG draw per wire datagram,
        // keeping the random stream aligned across protocol variations.
        let p = self.drop_probability(req.pending_bytes_at_dst);
        if p > 0.0 && self.rng.next_f64() < p {
            self.stats.lock().drops += 1;
            if let Some(tr) = &self.tracer {
                tr.record(
                    req.now.nanos(),
                    req.src,
                    EventKind::NetDrop {
                        dst: req.dst,
                        wire_bytes: req.wire_bytes as u64,
                        overflow: req.pending_bytes_at_dst > self.cfg.overflow_threshold_bytes,
                    },
                );
            }
            if std::env::var_os("VOPP_NET_DEBUG").is_some() {
                eprintln!(
                    "[net] drop at {}: {} -> {} ({} B, {} B pending at dst, p={p:.3})",
                    req.now, req.src, req.dst, req.wire_bytes, req.pending_bytes_at_dst
                );
            }
            return None;
        }
        let tx = self.cfg.tx_time(req.wire_bytes);
        // Sender uplink serialization.
        let tx_start = req.now.max(self.tx_free[req.src]);
        let tx_end = tx_start + tx;
        self.tx_free[req.src] = tx_end;
        // Switch + software latency, then receiver downlink serialization.
        let at_switch = tx_end + self.cfg.latency;
        let rx_start = at_switch.max(self.rx_free[req.dst]);
        let rx_end = rx_start + tx;
        self.rx_free[req.dst] = rx_end;
        Some(rx_end)
    }

    fn lookahead(&self) -> Option<SimDuration> {
        // Every surviving cross-node datagram serializes on the sender
        // uplink (ending no earlier than `now`), then crosses the switch:
        // `rx_end >= tx_end + latency >= now + latency`. Congestion only
        // pushes deliveries later, so the switch latency is a sound
        // conservative bound.
        Some(self.cfg.latency)
    }

    fn loopback_latency(&self) -> Option<SimDuration> {
        // The loopback short-circuit above is exact, lossless, and touches
        // neither the RNG nor the link-occupancy state.
        Some(self.cfg.loopback_latency)
    }

    fn sent_count(&self) -> u64 {
        self.stats.lock().msgs
    }

    fn sent_bytes(&self) -> u64 {
        self.stats.lock().bytes
    }

    fn dropped_count(&self) -> u64 {
        self.stats.lock().drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vopp_sim::SimDuration;

    fn req(now: u64, src: usize, dst: usize, bytes: usize, pending_bytes: usize) -> RouteRequest {
        RouteRequest {
            now: SimTime(now),
            src,
            dst,
            wire_bytes: bytes,
            pending_at_dst: 0,
            pending_bytes_at_dst: pending_bytes,
        }
    }

    #[test]
    fn single_packet_time() {
        let mut m = EthernetModel::new(2, NetConfig::lossless());
        // 1250 bytes: 100us tx on each of the two links + 45us latency.
        let at = m.route(req(0, 0, 1, 1250, 0)).unwrap();
        assert_eq!(at, SimTime(100_000 + 45_000 + 100_000));
    }

    #[test]
    fn sender_link_serializes_back_to_back() {
        let mut m = EthernetModel::new(3, NetConfig::lossless());
        let a = m.route(req(0, 0, 1, 1250, 0)).unwrap();
        // Second packet to a *different* dst still waits for the uplink.
        let b = m.route(req(0, 0, 2, 1250, 0)).unwrap();
        assert_eq!(b.nanos() - a.nanos(), 100_000);
    }

    #[test]
    fn receiver_link_is_a_bottleneck() {
        let mut m = EthernetModel::new(3, NetConfig::lossless());
        // Two senders converge on node 2 at the same time: the second
        // delivery queues behind the first on node 2's downlink.
        let a = m.route(req(0, 0, 2, 1250, 0)).unwrap();
        let b = m.route(req(0, 1, 2, 1250, 0)).unwrap();
        assert_eq!(a, SimTime(245_000));
        assert_eq!(b, SimTime(345_000));
    }

    #[test]
    fn loopback_short_circuit() {
        let mut m = EthernetModel::new(2, NetConfig::lossless());
        let at = m.route(req(1_000, 1, 1, 50_000, 0)).unwrap();
        assert_eq!(at, SimTime(1_000) + SimDuration::from_micros(2));
        assert_eq!(m.sent_count(), 0);
        assert_eq!(m.stats.lock().loopback_msgs, 1);
    }

    #[test]
    fn overflow_drops_under_burst() {
        let cfg = NetConfig {
            base_drop_prob: 0.0,
            overflow_threshold_bytes: 4096,
            overflow_slope_per_kb: 1.0, // certain drop 1KB beyond threshold
            overflow_cap: 1.0,
            ..NetConfig::default()
        };
        let mut m = EthernetModel::new(2, cfg);
        assert!(m.route(req(0, 0, 1, 100, 4096)).is_some());
        assert!(m.route(req(0, 0, 1, 100, 8192)).is_none());
        assert_eq!(m.dropped_count(), 1);
    }

    #[test]
    fn base_drop_rate_statistical() {
        let cfg = NetConfig {
            base_drop_prob: 0.01,
            ..NetConfig::default()
        };
        let mut m = EthernetModel::new(2, cfg);
        let mut drops = 0;
        for i in 0..100_000 {
            if m.route(req(i, 0, 1, 100, 0)).is_none() {
                drops += 1;
            }
        }
        // ~1000 expected; allow wide tolerance.
        assert!((600..1500).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let cfg = NetConfig {
                base_drop_prob: 0.05,
                seed,
                ..NetConfig::default()
            };
            let mut m = EthernetModel::new(2, cfg);
            (0..1000)
                .map(|i| m.route(req(i, 0, 1, 64, 0)).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn lookahead_matches_switch_latency_and_bounds_deliveries() {
        let cfg = NetConfig::lossless();
        let mut m = EthernetModel::new(4, cfg.clone());
        let la = m.lookahead().unwrap();
        assert_eq!(la, cfg.latency);
        assert_eq!(m.loopback_latency().unwrap(), cfg.loopback_latency);
        // Hammer one receiver from several senders: every cross-node
        // delivery must still respect `now + lookahead`, and loopback must
        // be exactly `now + loopback_latency`.
        for i in 0..200u64 {
            let now = i * 10_000;
            let src = (i % 3) as usize;
            let at = m.route(req(now, src, 3, 1250, 0)).unwrap();
            assert!(at >= SimTime(now) + la, "delivery {at} beat lookahead");
            let lb = m.route(req(now, src, src, 64, 0)).unwrap();
            assert_eq!(lb, SimTime(now) + cfg.loopback_latency);
        }
    }

    #[test]
    fn stats_count_drops_as_sent() {
        let cfg = NetConfig {
            base_drop_prob: 1.0,
            overflow_cap: 1.0,
            ..NetConfig::default()
        };
        let mut m = EthernetModel::new(2, cfg);
        assert!(m.route(req(0, 0, 1, 500, 0)).is_none());
        // The datagram hit the wire before being lost.
        assert_eq!(m.sent_count(), 1);
        assert_eq!(m.sent_bytes(), 500);
        assert_eq!(m.dropped_count(), 1);
    }
}
