//! Reliable request/reply transport over the lossy datagram network.
//!
//! The paper's DSM implementations run over UDP with timeout-based
//! retransmission; they observe that "one message retransmission results in
//! about 1 second waiting time", and that bursty centralized traffic (LRC
//! barriers) loses more messages. This module reproduces that machinery:
//! a blocking RPC with a ~1 s timeout, idempotent re-sends, and a
//! retransmission counter that feeds the `Rexmit` row of the statistics
//! tables.
//!
//! Requirements on responders (service handlers):
//! * every request must eventually produce a reply to `(src, tag)` — replies
//!   may be deferred (lock/view/barrier grants);
//! * handlers must be idempotent: a duplicate request re-sends the current
//!   answer (or updates the stored pending-reply tag).

use std::sync::Arc;

use vopp_metrics::Histogram;
use vopp_sim::{AppCtx, DeliveryClass, Packet, Payload, ProcId, SimDuration, SvcCtx};

/// High bit marking RPC-reply tags, so replies never collide with other
/// protocol messages in the mailbox.
pub const RPC_TAG_BIT: u64 = 1 << 63;

/// Per-process reliable RPC endpoint.
///
/// Not shared between threads: each simulated process owns one.
pub struct RpcClient {
    next_tag: u64,
    /// Retransmissions performed so far (the paper's `Rexmit` statistic).
    pub rexmits: u64,
    /// Round-trip latency of every completed request, including any
    /// retransmission waits. For `call_all` bursts, each request's trip is
    /// measured from the burst send to its own reply.
    pub rtt: Histogram,
    /// Timeout before a retransmission.
    pub timeout: SimDuration,
    /// Retransmissions before giving up (a real system would declare the
    /// peer dead; in the simulation running out is always a protocol bug).
    pub max_retries: u32,
}

impl Default for RpcClient {
    fn default() -> Self {
        RpcClient {
            next_tag: 0,
            rexmits: 0,
            rtt: Histogram::default(),
            timeout: SimDuration::from_secs(1),
            max_retries: 60,
        }
    }
}

impl RpcClient {
    /// An endpoint with the default 1 s retransmission timeout.
    pub fn new() -> RpcClient {
        RpcClient::default()
    }

    /// An endpoint whose retransmission timeout matches the network it runs
    /// over ([`NetConfig::rexmit_timeout`]): exactly the historical 1 s on
    /// the paper's testbed, milliseconds on modern generations — a loss on
    /// an RDMA-class fabric must not stall the protocol six orders of
    /// magnitude past the round trip.
    pub fn for_net(cfg: &crate::config::NetConfig) -> RpcClient {
        RpcClient::with_timeout(cfg.rexmit_timeout)
    }

    /// An endpoint with the given retransmission timeout. The retry budget
    /// scales inversely so the give-up horizon stays at the historical
    /// ~60 s of unanswered waiting regardless of how short one try is: a
    /// deferred grant (view or lock held elsewhere) legitimately outlasts
    /// many millisecond-scale tries on a modern generation.
    pub fn with_timeout(timeout: SimDuration) -> RpcClient {
        let horizon_ns: u64 = 60 * 1_000_000_000;
        let max_retries = horizon_ns.div_ceil(timeout.nanos().max(1)).max(60) as u32;
        RpcClient {
            timeout,
            max_retries,
            ..RpcClient::default()
        }
    }

    /// Send `msg` to the service handler of `dst` and block until the reply
    /// arrives, retransmitting on timeout. `wire_bytes` is the request's
    /// on-wire size including headers.
    ///
    /// The request is allocated once; retransmissions re-send the same
    /// shared payload.
    pub fn call<M>(&mut self, ctx: &AppCtx<'_>, dst: ProcId, wire_bytes: usize, msg: M) -> Packet
    where
        M: Send + Sync + 'static,
    {
        let tag = RPC_TAG_BIT | self.next_tag;
        self.next_tag += 1;
        // Discard stale duplicate replies from earlier calls.
        ctx.purge_filter(|p| p.tag & RPC_TAG_BIT != 0 && p.tag < tag);
        let started = ctx.now();
        let payload: Payload = Arc::new(msg);
        let mut tries = 0;
        loop {
            ctx.send(dst, wire_bytes, DeliveryClass::Svc, tag, payload.clone());
            match ctx.recv_filter_timeout(self.timeout, |p| p.tag == tag) {
                Some(pkt) => {
                    self.rtt.record((ctx.now() - started).nanos());
                    // A retransmitted request may have produced a duplicate
                    // reply that is already queued; drop it now so no later
                    // receive can match this satisfied tag.
                    ctx.purge_filter(|p| p.tag == tag);
                    return pkt;
                }
                None => {
                    tries += 1;
                    self.rexmits += 1;
                    ctx.trace(vopp_sim::EventKind::Rexmit { dst, tag });
                    assert!(
                        tries <= self.max_retries,
                        "rpc to {dst} got no reply after {tries} retransmissions"
                    );
                }
            }
        }
    }

    /// Issue several requests concurrently and block until every reply has
    /// arrived (the DSM fault path fetches diffs from all writers of a page
    /// in parallel, like TreadMarks). Replies are returned in call order;
    /// each call retransmits independently on timeout.
    pub fn call_all<M>(&mut self, ctx: &AppCtx<'_>, calls: &[(ProcId, usize, M)]) -> Vec<Packet>
    where
        M: Clone + Send + Sync + 'static,
    {
        if calls.is_empty() {
            return Vec::new();
        }
        let base = self.next_tag;
        self.next_tag += calls.len() as u64;
        let tag_of = |i: usize| RPC_TAG_BIT | (base + i as u64);
        ctx.purge_filter(|p| p.tag & RPC_TAG_BIT != 0 && p.tag < tag_of(0));
        let started = ctx.now();
        // One allocation per request, shared with every retransmission.
        let payloads: Vec<Payload> = calls
            .iter()
            .map(|(_, _, msg)| Arc::new(msg.clone()) as Payload)
            .collect();
        for (i, (dst, bytes, _)) in calls.iter().enumerate() {
            ctx.send(
                *dst,
                *bytes,
                DeliveryClass::Svc,
                tag_of(i),
                payloads[i].clone(),
            );
        }
        let mut out = Vec::with_capacity(calls.len());
        for (i, (dst, bytes, _)) in calls.iter().enumerate() {
            let tag = tag_of(i);
            let mut tries = 0;
            loop {
                match ctx.recv_filter_timeout(self.timeout, |p| p.tag == tag) {
                    Some(pkt) => {
                        // Use the packet's arrival stamp, not the dequeue
                        // time: replies are drained in call order, so a
                        // fast reply dequeued after a slow earlier tag
                        // would otherwise inherit that tag's wait and
                        // inflate the histogram.
                        self.rtt.record((pkt.arrived - started).nanos());
                        out.push(pkt);
                        break;
                    }
                    None => {
                        tries += 1;
                        self.rexmits += 1;
                        ctx.trace(vopp_sim::EventKind::Rexmit { dst: *dst, tag });
                        assert!(
                            tries <= self.max_retries,
                            "rpc to {dst} got no reply after {tries} retransmissions"
                        );
                        ctx.send(*dst, *bytes, DeliveryClass::Svc, tag, payloads[i].clone());
                    }
                }
            }
        }
        // Duplicate replies for already-satisfied tags of *this* burst may
        // have queued up while later slots were drained; purge them so no
        // later receive can match a stale reply.
        let last = tag_of(calls.len() - 1);
        ctx.purge_filter(|p| p.tag & RPC_TAG_BIT != 0 && p.tag >= tag_of(0) && p.tag <= last);
        out
    }

    /// Like [`RpcClient::call`] with a custom timeout (barrier waits use a
    /// longer one, since the reply is legitimately deferred until every
    /// process arrives).
    pub fn call_with_timeout<M>(
        &mut self,
        ctx: &AppCtx<'_>,
        dst: ProcId,
        wire_bytes: usize,
        msg: M,
        timeout: SimDuration,
    ) -> Packet
    where
        M: Send + Sync + 'static,
    {
        let saved = self.timeout;
        self.timeout = timeout;
        let r = self.call(ctx, dst, wire_bytes, msg);
        self.timeout = saved;
        r
    }
}

/// Reply to a request previously received by a service handler: echoes the
/// request tag so the blocked caller's filter matches.
pub fn reply(svc: &mut SvcCtx<'_>, dst: ProcId, wire_bytes: usize, tag: u64, payload: Payload) {
    debug_assert!(tag & RPC_TAG_BIT != 0, "replying to a non-rpc tag");
    svc.send(dst, wire_bytes, DeliveryClass::App, tag, payload);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;
    use crate::model::EthernetModel;
    use vopp_sim::Sim;

    /// Echo service: replies with the request value + 1.
    fn echo_sim(cfg: NetConfig, calls: u32) -> (Vec<u64>, u64) {
        let mut sim = Sim::new(2, Box::new(EthernetModel::new(2, cfg)));
        sim.set_handler(
            1,
            Box::new(|svc, pkt| {
                let tag = pkt.tag;
                let src = pkt.src;
                let v = pkt.expect::<u64>();
                reply(svc, src, 64, tag, Arc::new(v + 1));
            }),
        );
        let out = sim.run(move |ctx| {
            if ctx.me() == 0 {
                let mut rpc = RpcClient::new();
                let mut got = Vec::new();
                for i in 0..calls as u64 {
                    got.push(rpc.call(&ctx, 1, 64, i).expect::<u64>());
                }
                (got, rpc.rexmits)
            } else {
                (Vec::new(), 0)
            }
        });
        out.results.into_iter().next().unwrap()
    }

    #[test]
    fn rpc_over_lossless_net() {
        let (got, rexmits) = echo_sim(NetConfig::lossless(), 50);
        assert_eq!(got, (1..=50).collect::<Vec<_>>());
        assert_eq!(rexmits, 0);
    }

    #[test]
    fn rpc_survives_heavy_loss() {
        let cfg = NetConfig {
            base_drop_prob: 0.3,
            ..NetConfig::default()
        };
        let (got, rexmits) = echo_sim(cfg, 50);
        assert_eq!(got, (1..=50).collect::<Vec<_>>());
        // With 30% loss each way, retransmissions are certain over 50 calls.
        assert!(rexmits > 0, "expected retransmissions");
    }

    #[test]
    fn duplicate_replies_are_purged() {
        // A request whose reply is slow enough to force a retransmission
        // produces two replies; the duplicate must not confuse later calls.
        let cfg = NetConfig {
            base_drop_prob: 0.0,
            latency: SimDuration::from_millis(700), // rtt 1.4s > 1s timeout
            ..NetConfig::lossless()
        };
        let (got, rexmits) = echo_sim(cfg, 5);
        assert_eq!(got, (1..=5).collect::<Vec<_>>());
        assert!(rexmits >= 5);
    }

    #[test]
    fn rtt_histogram_records_every_call() {
        let mut sim = Sim::new(2, Box::new(EthernetModel::new(2, NetConfig::lossless())));
        sim.set_handler(
            1,
            Box::new(|svc, pkt| {
                let (tag, src) = (pkt.tag, pkt.src);
                let v = pkt.expect::<u64>();
                reply(svc, src, 64, tag, Arc::new(v));
            }),
        );
        let out = sim.run(|ctx| {
            if ctx.me() == 0 {
                let mut rpc = RpcClient::new();
                for i in 0..10u64 {
                    rpc.call(&ctx, 1, 64, i);
                }
                let s = rpc.rtt.summary();
                (s.count, s.p50_ns, s.max_ns)
            } else {
                (0, 0, 0)
            }
        });
        let (count, p50, max) = out.results[0];
        assert_eq!(count, 10);
        assert!(p50 > 0 && max > 0, "round trips must take virtual time");
        assert!(max >= p50);
    }

    #[test]
    fn call_all_rtt_uses_arrival_time() {
        // Fan-out where the first tag's reply only comes after a ~1 s
        // retransmission (node 1 ignores the first request) while the
        // second tag's reply arrives within microseconds. Replies are
        // drained in call order, so the fast reply is dequeued ~1 s after
        // it arrived; its recorded RTT must reflect its own arrival, not
        // the dequeue time after the slow tag.
        let mut sim = Sim::new(3, Box::new(EthernetModel::new(3, NetConfig::lossless())));
        let mut first = true;
        sim.set_handler(
            1,
            Box::new(move |svc, pkt| {
                if first {
                    first = false; // swallow the first request
                    return;
                }
                let (tag, src) = (pkt.tag, pkt.src);
                let v = pkt.expect::<u64>();
                reply(svc, src, 64, tag, Arc::new(v + 1));
            }),
        );
        sim.set_handler(
            2,
            Box::new(|svc, pkt| {
                let (tag, src) = (pkt.tag, pkt.src);
                let v = pkt.expect::<u64>();
                reply(svc, src, 64, tag, Arc::new(v + 1));
            }),
        );
        let out = sim.run(|ctx| {
            if ctx.me() == 0 {
                let mut rpc = RpcClient::new();
                let replies = rpc.call_all(&ctx, &[(1, 64, 0u64), (2, 64, 0u64)]);
                assert_eq!(replies.len(), 2);
                (rpc.rtt.count(), rpc.rtt.sum_ns(), rpc.rtt.max_ns())
            } else {
                (0, 0, 0)
            }
        });
        let (count, sum, max) = out.results[0];
        assert_eq!(count, 2);
        // With arrival-time attribution the fast reply's RTT is a fraction
        // of the slow one's; dequeue-time attribution would make both
        // roughly `max` and double the sum.
        assert!(
            sum < max + max / 2,
            "fast fan-out reply inherited the slow tag's wait: sum {sum} max {max}"
        );
    }

    #[test]
    fn call_all_purges_satisfied_tag_stragglers() {
        // Node 1's reply is duplicated in the network; node 2's reply is
        // slow, keeping the caller inside call_all long enough for the
        // duplicate of the already-satisfied first tag to be queued. It
        // must be purged before call_all returns so no later receive can
        // match a stale RPC reply.
        let mut sim = Sim::new(3, Box::new(EthernetModel::new(3, NetConfig::lossless())));
        sim.set_handler(
            1,
            Box::new(|svc, pkt| {
                let (tag, src) = (pkt.tag, pkt.src);
                let v = pkt.expect::<u64>();
                reply(svc, src, 64, tag, Arc::new(v + 1));
                reply(svc, src, 64, tag, Arc::new(v + 1)); // duplicate
            }),
        );
        sim.set_handler(
            2,
            Box::new(|svc, pkt| {
                let (tag, src) = (pkt.tag, pkt.src);
                let v = pkt.expect::<u64>();
                reply(svc, src, 1_000_000, tag, Arc::new(v + 1)); // ~80 ms
            }),
        );
        let out = sim.run(|ctx| {
            if ctx.me() == 0 {
                let mut rpc = RpcClient::new();
                let replies = rpc.call_all(&ctx, &[(1, 64, 1u64), (2, 64, 2u64)]);
                let vals: Vec<u64> = replies.into_iter().map(|p| p.expect::<u64>()).collect();
                assert_eq!(vals, vec![2, 3]);
                ctx.mailbox_len()
            } else {
                0
            }
        });
        assert_eq!(out.results[0], 0, "stale duplicate reply left in mailbox");
    }

    #[test]
    fn for_net_matches_the_generation_timeout() {
        use crate::config::NetGen;
        assert_eq!(
            RpcClient::for_net(&NetConfig::default()).timeout,
            SimDuration::from_secs(1)
        );
        for gen in NetGen::ALL {
            let cfg = gen.config();
            let rpc = RpcClient::for_net(&cfg);
            assert_eq!(rpc.timeout, cfg.rexmit_timeout);
            // The give-up horizon stays ~constant: shorter tries, more of
            // them. The paper preset keeps the historical 60 retries.
            assert!(
                rpc.timeout.nanos() * rpc.max_retries as u64 >= 60_000_000_000,
                "{gen}: horizon shrank"
            );
        }
        assert_eq!(RpcClient::new().max_retries, 60);
        assert_eq!(
            RpcClient::with_timeout(SimDuration::from_secs(1)).max_retries,
            60
        );
    }

    #[test]
    fn loss_on_a_modern_generation_retries_at_its_own_timescale() {
        // Regression for the hardcoded 1 s timeout: a swallowed request on
        // 10 GbE must be retried after that generation's 25 ms timeout, not
        // the paper testbed's 1 s — otherwise one loss costs ~40x the
        // generation-appropriate stall.
        use crate::config::NetGen;
        let cfg = NetConfig {
            base_drop_prob: 0.0,
            ..NetGen::Eth10g.config()
        };
        let rexmit = cfg.rexmit_timeout;
        let mut sim = Sim::new(2, Box::new(EthernetModel::new(2, cfg.clone())));
        let mut first = true;
        sim.set_handler(
            1,
            Box::new(move |svc, pkt| {
                if first {
                    first = false; // swallow the first request
                    return;
                }
                let (tag, src) = (pkt.tag, pkt.src);
                let v = pkt.expect::<u64>();
                reply(svc, src, 64, tag, Arc::new(v + 1));
            }),
        );
        let out = sim.run(move |ctx| {
            if ctx.me() == 0 {
                let mut rpc = RpcClient::for_net(&cfg);
                let v = rpc.call(&ctx, 1, 64, 41u64).expect::<u64>();
                (v, rpc.rexmits, ctx.now())
            } else {
                (0, 0, ctx.now())
            }
        });
        let (v, rexmits, finished) = out.results[0];
        assert_eq!(v, 42);
        assert_eq!(rexmits, 1);
        // One retransmission wait plus a round trip: far below the paper's
        // 1 s, at least the generation timeout.
        assert!(finished >= vopp_sim::SimTime::ZERO + rexmit);
        assert!(
            finished < vopp_sim::SimTime::ZERO + rexmit + rexmit,
            "retry did not happen at the generation timescale: {finished}"
        );
    }

    #[test]
    fn one_sided_write_does_not_wake_a_blocked_receiver() {
        // The defining property of a one-sided verb: data lands in the
        // preposted buffer with no remote CPU involvement. A receiver
        // blocked in recv must not be woken, and the write must be
        // invisible to receive filters — only an explicit poll sees it.
        let sim = Sim::new(2, Box::new(EthernetModel::new(2, NetConfig::lossless())));
        let out = sim.run(|ctx| {
            if ctx.me() == 0 {
                ctx.send(1, 4096, DeliveryClass::OneSided, 7, Arc::new(123u64));
                0
            } else {
                // The write is in flight well before this 10 ms deadline;
                // the timeout firing proves no wake and no filter match.
                assert!(ctx.recv_timeout(SimDuration::from_millis(10)).is_none());
                assert!(ctx.poll_one_sided(0, 99).is_none(), "wrong tag matched");
                assert!(ctx.poll_one_sided(1, 7).is_none(), "wrong src matched");
                let pkt = ctx.poll_one_sided(0, 7).expect("write did not land");
                pkt.expect::<u64>()
            }
        });
        assert_eq!(out.results[1], 123);
    }

    #[test]
    fn one_sided_write_lands_before_a_trailing_control_message() {
        // The ordering VC_rdma relies on: a one-sided write issued before a
        // control message on the same link is delivered first (FIFO link
        // occupancy), so the control handler always finds the data present.
        let mut sim = Sim::new(2, Box::new(EthernetModel::new(2, NetConfig::lossless())));
        sim.set_handler(
            1,
            Box::new(|svc, pkt| {
                let (rpc_tag, src) = (pkt.tag, pkt.src);
                let grant_tag = pkt.expect::<u64>();
                let data = svc
                    .take_one_sided(src, grant_tag)
                    .expect("control message arrived before its one-sided write");
                let v = data.expect::<u64>();
                reply(svc, src, 64, rpc_tag, Arc::new(v));
            }),
        );
        let out = sim.run(|ctx| {
            if ctx.me() == 0 {
                // Large one-sided payload first, small control message after:
                // if ordering were by size rather than FIFO, the control
                // message would win the race and the handler would panic.
                ctx.send(1, 60_000, DeliveryClass::OneSided, 42, Arc::new(999u64));
                let mut rpc = RpcClient::new();
                rpc.call(&ctx, 1, 64, 42u64).expect::<u64>()
            } else {
                0
            }
        });
        assert_eq!(out.results[0], 999);
    }

    #[test]
    #[should_panic(expected = "no reply")]
    fn rpc_gives_up_eventually() {
        let mut sim = Sim::new(
            2,
            Box::new(EthernetModel::new(
                2,
                NetConfig {
                    base_drop_prob: 1.0,
                    overflow_cap: 1.0,
                    ..NetConfig::default()
                },
            )),
        );
        sim.set_handler(1, Box::new(|_, _| {}));
        sim.run(|ctx| {
            if ctx.me() == 0 {
                let mut rpc = RpcClient::new();
                rpc.max_retries = 3;
                rpc.call(&ctx, 1, 64, 0u64);
            } else {
                // Idle long enough for proc 0's retries to play out, then
                // finish so only the panic (not a deadlock) can end the run.
                ctx.sleep(SimDuration::from_secs(30));
            }
        });
    }
}
