//! Network configuration, calibrated to the paper's testbed — plus the
//! modern-interconnect generations the what-if experiments sweep over.
//!
//! Godzilla: 32 PCs (350 MHz, Linux 2.4) on a switched 100 Mbps Ethernet,
//! DSM messaging over UDP with ~1 s retransmission timeouts. That testbed is
//! [`NetGen::Eth100m`] and stays byte-for-byte the [`NetConfig::default`];
//! the later generations rescale bandwidth, latency, loss and the
//! retransmission timeout to ask how the paper's LRC-vs-VC verdict shifts
//! once the network stops being the bottleneck (ROADMAP item 3).

use vopp_sim::SimDuration;

/// Fixed per-datagram wire overhead: Ethernet (14+4) + IP (20) + UDP (8) +
/// DSM protocol header (12) bytes.
pub const HEADER_BYTES: usize = 58;

/// Parameters of the switched-Ethernet model.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Link bandwidth in bits per second (both directions, full duplex).
    pub bandwidth_bps: f64,
    /// Fixed one-way delay: propagation + store-and-forward switch +
    /// interrupt/UDP-stack software overhead on both hosts.
    pub latency: SimDuration,
    /// Delivery delay for messages a node sends to itself (no wire).
    pub loopback_latency: SimDuration,
    /// Probability that any datagram is lost for reasons unrelated to load
    /// (bit errors, kernel buffer pressure).
    pub base_drop_prob: f64,
    /// Receive-buffer occupancy (bytes of queued, undelivered datagrams)
    /// above which overload losses begin — models the era's small kernel
    /// socket buffers overflowing under bursts at one node.
    pub overflow_threshold_bytes: usize,
    /// Additional drop probability per KB of occupancy beyond the threshold.
    pub overflow_slope_per_kb: f64,
    /// Upper bound on the overload drop probability.
    pub overflow_cap: f64,
    /// Default RPC retransmission timeout on this network. The paper's
    /// testbed observed ~1 s per retransmission (UDP + kernel timers); a
    /// modern generation retransmits on a scale matched to its RTT, so one
    /// loss no longer stalls six orders of magnitude past the round trip.
    pub rexmit_timeout: SimDuration,
    /// Seed for the loss RNG (runs are deterministic per seed).
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            bandwidth_bps: 100e6,
            latency: SimDuration::from_micros(45),
            loopback_latency: SimDuration::from_micros(2),
            base_drop_prob: 2e-6,
            overflow_threshold_bytes: 48 * 1024,
            overflow_slope_per_kb: 0.004,
            overflow_cap: 0.6,
            rexmit_timeout: SimDuration::from_secs(1),
            seed: 0x9E3779B97F4A7C15,
        }
    }
}

impl NetConfig {
    /// A lossless variant (used by tests and the MPI baseline sanity runs).
    pub fn lossless() -> NetConfig {
        NetConfig {
            base_drop_prob: 0.0,
            overflow_slope_per_kb: 0.0,
            ..NetConfig::default()
        }
    }

    /// Transmission time of `bytes` on one link, in integer picoseconds.
    /// This is the resolution the link-occupancy accumulators run at: at
    /// 100 GbE a minimum datagram serializes in under 5 ns, so whole-ns
    /// rounding would lose most of each packet's occupancy and let N
    /// back-to-back packets serialize in far less than N× the wire time.
    pub fn tx_time_ps(&self, bytes: usize) -> u64 {
        (bytes as f64 * 8.0e12 / self.bandwidth_bps).round() as u64
    }

    /// Transmission time of `bytes` on one link, rounded to the simulator's
    /// ns tick. Display/estimation only — timing-critical link occupancy
    /// accumulates [`NetConfig::tx_time_ps`] instead.
    pub fn tx_time(&self, bytes: usize) -> SimDuration {
        SimDuration((self.tx_time_ps(bytes) + 500) / 1000)
    }
}

/// A named network generation: the paper's testbed plus the modern
/// interconnects the `netgen` table family sweeps over. Each is just a
/// [`NetConfig`] preset; `eth100m` is bit-for-bit [`NetConfig::default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetGen {
    /// The paper's testbed: switched 100 Mbps Ethernet, 45 µs one-way,
    /// ~1 s retransmission timeout. The byte-identity baseline.
    Eth100m,
    /// Gigabit Ethernet, interrupt-driven UDP stack.
    Eth1g,
    /// 10 GbE with a leaner stack (µs-scale latency).
    Eth10g,
    /// 100 GbE datacenter Ethernet.
    Eth100g,
    /// RDMA-class interconnect: ~1 µs one-way for small messages
    /// (800 ns switch+NIC latency plus serialization), sub-µs loopback,
    /// hardware-reliable transport (no loss machinery), credit-based flow
    /// control instead of socket-buffer overflow.
    Rdma,
}

impl NetGen {
    /// Every generation, oldest first.
    pub const ALL: [NetGen; 5] = [
        NetGen::Eth100m,
        NetGen::Eth1g,
        NetGen::Eth10g,
        NetGen::Eth100g,
        NetGen::Rdma,
    ];

    /// Stable label used in cell keys, CLI flags and artifact names.
    pub fn label(self) -> &'static str {
        match self {
            NetGen::Eth100m => "eth100m",
            NetGen::Eth1g => "1g",
            NetGen::Eth10g => "10g",
            NetGen::Eth100g => "100g",
            NetGen::Rdma => "rdma",
        }
    }

    /// Parse a [`NetGen::label`].
    pub fn parse(s: &str) -> Option<NetGen> {
        NetGen::ALL.into_iter().find(|g| g.label() == s)
    }

    /// The generation's [`NetConfig`] preset. All presets share the default
    /// loss seed so protocol comparisons within a generation see the same
    /// loss stream.
    pub fn config(self) -> NetConfig {
        match self {
            NetGen::Eth100m => NetConfig::default(),
            NetGen::Eth1g => NetConfig {
                bandwidth_bps: 1e9,
                latency: SimDuration::from_micros(20),
                loopback_latency: SimDuration::from_micros(1),
                base_drop_prob: 1e-6,
                overflow_threshold_bytes: 256 * 1024,
                rexmit_timeout: SimDuration::from_millis(250),
                ..NetConfig::default()
            },
            NetGen::Eth10g => NetConfig {
                bandwidth_bps: 10e9,
                latency: SimDuration::from_micros(5),
                loopback_latency: SimDuration::from_nanos(500),
                base_drop_prob: 1e-7,
                overflow_threshold_bytes: 1024 * 1024,
                rexmit_timeout: SimDuration::from_millis(25),
                ..NetConfig::default()
            },
            NetGen::Eth100g => NetConfig {
                bandwidth_bps: 100e9,
                latency: SimDuration::from_micros(2),
                loopback_latency: SimDuration::from_nanos(250),
                base_drop_prob: 1e-8,
                overflow_threshold_bytes: 4 * 1024 * 1024,
                rexmit_timeout: SimDuration::from_millis(5),
                ..NetConfig::default()
            },
            NetGen::Rdma => NetConfig {
                bandwidth_bps: 100e9,
                latency: SimDuration::from_nanos(800),
                loopback_latency: SimDuration::from_nanos(150),
                // Reliable-connection hardware retransmits below the
                // timescale modelled here; the sim-level loss machinery is
                // off entirely.
                base_drop_prob: 0.0,
                overflow_threshold_bytes: usize::MAX / 2,
                overflow_slope_per_kb: 0.0,
                // Software-level give-up timer for the control plane.
                rexmit_timeout: SimDuration::from_millis(1),
                ..NetConfig::default()
            },
        }
    }
}

impl std::fmt::Display for NetGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_100mbps() {
        let c = NetConfig::default();
        // 1250 bytes = 10_000 bits = 100us at 100 Mbps.
        assert_eq!(c.tx_time(1250), SimDuration::from_micros(100));
        // A 4 KB page + headers is a little over 330us.
        let t = c.tx_time(4096 + HEADER_BYTES);
        assert!(t > SimDuration::from_micros(330) && t < SimDuration::from_micros(340));
    }

    #[test]
    fn tx_time_ps_is_exact_at_every_generation() {
        // Power-of-ten bandwidths give integer ps-per-byte: 80_000 ps at
        // 100 Mbps down to 80 ps at 100 GbE.
        for (gen, per_byte_ps) in [
            (NetGen::Eth100m, 80_000),
            (NetGen::Eth1g, 8_000),
            (NetGen::Eth10g, 800),
            (NetGen::Eth100g, 80),
            (NetGen::Rdma, 80),
        ] {
            let c = gen.config();
            assert_eq!(c.tx_time_ps(1), per_byte_ps, "{gen}");
            assert_eq!(c.tx_time_ps(1250), 1250 * per_byte_ps, "{gen}");
        }
        // Sub-ns regime: a minimum datagram at 100 GbE is 4.64 ns — whole-ns
        // math would halve it.
        assert_eq!(NetGen::Eth100g.config().tx_time_ps(HEADER_BYTES), 4_640);
    }

    #[test]
    fn lossless_has_no_drops() {
        let c = NetConfig::lossless();
        assert_eq!(c.base_drop_prob, 0.0);
        assert_eq!(c.overflow_slope_per_kb, 0.0);
    }

    #[test]
    fn eth100m_preset_is_the_default() {
        // The standing byte-identity invariant: the paper generation must be
        // exactly the historical default config, field for field.
        let g = NetGen::Eth100m.config();
        let d = NetConfig::default();
        assert_eq!(g.bandwidth_bps, d.bandwidth_bps);
        assert_eq!(g.latency, d.latency);
        assert_eq!(g.loopback_latency, d.loopback_latency);
        assert_eq!(g.base_drop_prob, d.base_drop_prob);
        assert_eq!(g.overflow_threshold_bytes, d.overflow_threshold_bytes);
        assert_eq!(g.overflow_slope_per_kb, d.overflow_slope_per_kb);
        assert_eq!(g.overflow_cap, d.overflow_cap);
        assert_eq!(g.rexmit_timeout, SimDuration::from_secs(1));
        assert_eq!(g.seed, d.seed);
    }

    #[test]
    fn generation_labels_round_trip() {
        for g in NetGen::ALL {
            assert_eq!(NetGen::parse(g.label()), Some(g));
        }
        assert_eq!(NetGen::parse("400g"), None);
    }

    #[test]
    fn rexmit_timeouts_shrink_with_the_generation() {
        let mut prev = None;
        for g in NetGen::ALL {
            let t = g.config().rexmit_timeout;
            if let Some(p) = prev {
                assert!(t < p, "{g} timeout {t} not below its predecessor {p}");
            }
            prev = Some(t);
        }
        assert_eq!(
            NetGen::Eth100m.config().rexmit_timeout,
            SimDuration::from_secs(1)
        );
    }
}
