//! Network configuration, calibrated to the paper's testbed.
//!
//! Godzilla: 32 PCs (350 MHz, Linux 2.4) on a switched 100 Mbps Ethernet,
//! DSM messaging over UDP with ~1 s retransmission timeouts.

use vopp_sim::SimDuration;

/// Fixed per-datagram wire overhead: Ethernet (14+4) + IP (20) + UDP (8) +
/// DSM protocol header (12) bytes.
pub const HEADER_BYTES: usize = 58;

/// Parameters of the switched-Ethernet model.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Link bandwidth in bits per second (both directions, full duplex).
    pub bandwidth_bps: f64,
    /// Fixed one-way delay: propagation + store-and-forward switch +
    /// interrupt/UDP-stack software overhead on both hosts.
    pub latency: SimDuration,
    /// Delivery delay for messages a node sends to itself (no wire).
    pub loopback_latency: SimDuration,
    /// Probability that any datagram is lost for reasons unrelated to load
    /// (bit errors, kernel buffer pressure).
    pub base_drop_prob: f64,
    /// Receive-buffer occupancy (bytes of queued, undelivered datagrams)
    /// above which overload losses begin — models the era's small kernel
    /// socket buffers overflowing under bursts at one node.
    pub overflow_threshold_bytes: usize,
    /// Additional drop probability per KB of occupancy beyond the threshold.
    pub overflow_slope_per_kb: f64,
    /// Upper bound on the overload drop probability.
    pub overflow_cap: f64,
    /// Seed for the loss RNG (runs are deterministic per seed).
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            bandwidth_bps: 100e6,
            latency: SimDuration::from_micros(45),
            loopback_latency: SimDuration::from_micros(2),
            base_drop_prob: 2e-6,
            overflow_threshold_bytes: 48 * 1024,
            overflow_slope_per_kb: 0.004,
            overflow_cap: 0.6,
            seed: 0x9E3779B97F4A7C15,
        }
    }
}

impl NetConfig {
    /// A lossless variant (used by tests and the MPI baseline sanity runs).
    pub fn lossless() -> NetConfig {
        NetConfig {
            base_drop_prob: 0.0,
            overflow_slope_per_kb: 0.0,
            ..NetConfig::default()
        }
    }

    /// Transmission time of `bytes` on one link.
    pub fn tx_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_100mbps() {
        let c = NetConfig::default();
        // 1250 bytes = 10_000 bits = 100us at 100 Mbps.
        assert_eq!(c.tx_time(1250), SimDuration::from_micros(100));
        // A 4 KB page + headers is a little over 330us.
        let t = c.tx_time(4096 + HEADER_BYTES);
        assert!(t > SimDuration::from_micros(330) && t < SimDuration::from_micros(340));
    }

    #[test]
    fn lossless_has_no_drops() {
        let c = NetConfig::lossless();
        assert_eq!(c.base_drop_prob, 0.0);
        assert_eq!(c.overflow_slope_per_kb, 0.0);
    }
}
