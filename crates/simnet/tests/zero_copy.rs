//! Allocation accounting for the zero-copy payload path.
//!
//! Packets carry `Arc<dyn Any + Send + Sync>` payloads end-to-end, so a
//! broadcast to N destinations and every RPC retransmission share one
//! message allocation. These tests count constructor and `Clone` calls of
//! an instrumented message type to prove it: each test uses its own static
//! counters because all tests share one process.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vopp_sim::{DeliveryClass, Payload, Sim};
use vopp_simnet::{reply, EthernetModel, NetConfig, RpcClient};

const NODES: usize = 33; // one broadcaster + 32 receivers
const TAG: u64 = 0xB40AD;

static BCAST_NEW: AtomicU64 = AtomicU64::new(0);
static BCAST_CLONE: AtomicU64 = AtomicU64::new(0);

/// A payload that counts how many times it is allocated and cloned.
struct BcastMsg {
    data: Vec<u8>,
}

impl BcastMsg {
    fn new(len: usize) -> BcastMsg {
        BCAST_NEW.fetch_add(1, Ordering::Relaxed);
        BcastMsg {
            data: vec![0xAB; len],
        }
    }
}

impl Clone for BcastMsg {
    fn clone(&self) -> Self {
        BCAST_CLONE.fetch_add(1, Ordering::Relaxed);
        BcastMsg {
            data: self.data.clone(),
        }
    }
}

#[test]
fn broadcast_to_32_nodes_allocates_payload_once() {
    let sim = Sim::new(
        NODES,
        Box::new(EthernetModel::new(NODES, NetConfig::lossless())),
    );
    let out = sim.run(|ctx| {
        if ctx.me() == 0 {
            // One allocation; each destination gets a refcount bump only.
            let payload: Payload = Arc::new(BcastMsg::new(4096));
            for dst in 1..NODES {
                ctx.send(dst, 4096, DeliveryClass::App, TAG, payload.clone());
            }
            0
        } else {
            let pkt = ctx.recv_filter(|p| p.tag == TAG);
            // Borrow the shared allocation; never deep-copy it.
            let msg = pkt.expect_arc::<BcastMsg>();
            assert_eq!(msg.data.len(), 4096);
            msg.data[0] as u64
        }
    });
    assert_eq!(out.results[1..], vec![0xAB; NODES - 1]);
    assert_eq!(
        BCAST_NEW.load(Ordering::Relaxed),
        1,
        "broadcast payload must be allocated exactly once"
    );
    assert_eq!(
        BCAST_CLONE.load(Ordering::Relaxed),
        0,
        "broadcast must never deep-copy the payload"
    );
}

static RPC_NEW: AtomicU64 = AtomicU64::new(0);
static RPC_CLONE: AtomicU64 = AtomicU64::new(0);

struct RpcMsg {
    value: u64,
}

impl RpcMsg {
    fn new(value: u64) -> RpcMsg {
        RPC_NEW.fetch_add(1, Ordering::Relaxed);
        RpcMsg { value }
    }
}

impl Clone for RpcMsg {
    fn clone(&self) -> Self {
        RPC_CLONE.fetch_add(1, Ordering::Relaxed);
        RpcMsg { value: self.value }
    }
}

#[test]
fn retransmissions_share_the_request_allocation() {
    // A reply slower than the RPC timeout forces at least one
    // retransmission per call; the retransmit must re-send the original
    // allocation, not a copy.
    let cfg = NetConfig {
        base_drop_prob: 0.0,
        latency: vopp_sim::SimDuration::from_millis(700), // rtt 1.4s > 1s timeout
        ..NetConfig::lossless()
    };
    let mut sim = Sim::new(2, Box::new(EthernetModel::new(2, cfg)));
    sim.set_handler(
        1,
        Box::new(|svc, pkt| {
            let (tag, src) = (pkt.tag, pkt.src);
            // The client retains the request for retransmission, so the
            // refcount exceeds one here; borrow it shared.
            let msg = pkt.expect_arc::<RpcMsg>();
            reply(svc, src, 64, tag, Arc::new(msg.value + 1));
        }),
    );
    let out = sim.run(|ctx| {
        if ctx.me() == 0 {
            let mut rpc = RpcClient::new();
            let got = rpc.call(&ctx, 1, 64, RpcMsg::new(41)).expect::<u64>();
            (got, rpc.rexmits)
        } else {
            (0, 0)
        }
    });
    let (got, rexmits) = out.results[0];
    assert_eq!(got, 42);
    assert!(rexmits >= 1, "test requires at least one retransmission");
    assert_eq!(RPC_NEW.load(Ordering::Relaxed), 1);
    assert_eq!(
        RPC_CLONE.load(Ordering::Relaxed),
        0,
        "retransmissions must share the original request allocation"
    );
}
