//! Property tests of the network model: per-pair FIFO delivery, causality,
//! bandwidth accounting.
//!
//! Exercised over seeded pseudo-random inputs (SplitMix64) instead of a
//! property-testing framework so the suite runs without external
//! dependencies; failures print the seed for replay.

use vopp_sim::{NetModel, RouteRequest, SimTime};
use vopp_simnet::{EthernetModel, NetConfig};

/// SplitMix64, the same generator the network model uses for loss decisions.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [lo, hi).
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

const CASES: u64 = 64;

fn req(now: u64, src: usize, dst: usize, bytes: usize) -> RouteRequest {
    RouteRequest {
        now: SimTime(now),
        src,
        dst,
        wire_bytes: bytes,
        pending_bytes_at_dst: 0,
        reliable: false,
    }
}

/// Arrivals never precede sends, and consecutive sends over the same
/// (src, dst) pair arrive in order (links are FIFO).
#[test]
fn fifo_and_causal() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let sizes: Vec<usize> = (0..rng.range(1, 50))
            .map(|_| rng.range(1, 20_000))
            .collect();
        let mut m = EthernetModel::new(2, NetConfig::lossless());
        let mut now = 0u64;
        let mut last_arrival = SimTime::ZERO;
        for s in sizes {
            now += 100; // sender issues periodically
            let at = m.route(req(now, 0, 1, s)).unwrap();
            assert!(at > SimTime(now), "seed {seed}: arrival must be after send");
            assert!(
                at >= last_arrival,
                "seed {seed}: same-pair delivery must be FIFO"
            );
            last_arrival = at;
        }
    }
}

/// A saturated link delivers at exactly the configured bandwidth: the
/// last arrival of a back-to-back burst is bounded below by total bytes
/// over bandwidth.
#[test]
fn bandwidth_is_respected() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let sizes: Vec<usize> = (0..rng.range(2, 40))
            .map(|_| rng.range(100, 5_000))
            .collect();
        let cfg = NetConfig::lossless();
        let bw = cfg.bandwidth_bps;
        let mut m = EthernetModel::new(2, cfg);
        let total: usize = sizes.iter().sum();
        let mut last = SimTime::ZERO;
        for s in &sizes {
            last = m.route(req(0, 0, 1, *s)).unwrap();
        }
        let min_ns = total as f64 * 8.0 / bw * 1e9;
        assert!(
            last.nanos() as f64 >= min_ns,
            "seed {seed}: burst of {total} B arrived too fast: {last}"
        );
        assert_eq!(m.sent_bytes(), total as u64, "seed {seed}");
    }
}

/// Different destination links do not interfere on the receive side:
/// two single packets from different senders to different receivers
/// take identical time.
#[test]
fn independent_pairs_have_equal_latency() {
    for seed in 0..CASES {
        let bytes = Rng(seed).range(1, 10_000);
        let mut m = EthernetModel::new(4, NetConfig::lossless());
        let a = m.route(req(0, 0, 1, bytes)).unwrap();
        let b = m.route(req(0, 2, 3, bytes)).unwrap();
        assert_eq!(a, b, "seed {seed}: {bytes} B");
    }
}

/// Loopback never consumes wire statistics.
#[test]
fn loopback_is_free() {
    for seed in 0..CASES {
        let n = Rng(seed).range(1, 100);
        let mut m = EthernetModel::new(2, NetConfig::default());
        for i in 0..n {
            let at = m.route(req(i as u64 * 10, 1, 1, 5000)).unwrap();
            assert!(at.nanos() > i as u64 * 10, "seed {seed}");
        }
        assert_eq!(m.sent_count(), 0, "seed {seed}");
        assert_eq!(m.sent_bytes(), 0, "seed {seed}");
    }
}

#[test]
fn full_duplex_links() {
    // Simultaneous opposite-direction transfers do not serialize against
    // each other (tx and rx are separate resources).
    let cfg = NetConfig::lossless();
    let mut m = EthernetModel::new(2, cfg);
    let a = m.route(req(0, 0, 1, 5000)).unwrap();
    let b = m.route(req(0, 1, 0, 5000)).unwrap();
    assert_eq!(a, b, "full duplex: directions are independent");
}
