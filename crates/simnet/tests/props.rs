//! Property tests of the network model: per-pair FIFO delivery, causality,
//! bandwidth accounting.

use proptest::prelude::*;
use vopp_sim::{NetModel, RouteRequest, SimTime};
use vopp_simnet::{EthernetModel, NetConfig};

fn req(now: u64, src: usize, dst: usize, bytes: usize) -> RouteRequest {
    RouteRequest {
        now: SimTime(now),
        src,
        dst,
        wire_bytes: bytes,
        pending_at_dst: 0,
        pending_bytes_at_dst: 0,
    }
}

proptest! {
    /// Arrivals never precede sends, and consecutive sends over the same
    /// (src, dst) pair arrive in order (links are FIFO).
    #[test]
    fn fifo_and_causal(sizes in prop::collection::vec(1usize..20_000, 1..50)) {
        let mut m = EthernetModel::new(2, NetConfig::lossless());
        let mut now = 0u64;
        let mut last_arrival = SimTime::ZERO;
        for s in sizes {
            now += 100; // sender issues periodically
            let at = m.route(req(now, 0, 1, s)).unwrap();
            prop_assert!(at > SimTime(now), "arrival must be after send");
            prop_assert!(at >= last_arrival, "same-pair delivery must be FIFO");
            last_arrival = at;
        }
    }

    /// A saturated link delivers at exactly the configured bandwidth: the
    /// last arrival of a back-to-back burst is bounded below by total bytes
    /// over bandwidth.
    #[test]
    fn bandwidth_is_respected(sizes in prop::collection::vec(100usize..5_000, 2..40)) {
        let cfg = NetConfig::lossless();
        let bw = cfg.bandwidth_bps;
        let mut m = EthernetModel::new(2, cfg);
        let total: usize = sizes.iter().sum();
        let mut last = SimTime::ZERO;
        for s in &sizes {
            last = m.route(req(0, 0, 1, *s)).unwrap();
        }
        let min_ns = total as f64 * 8.0 / bw * 1e9;
        prop_assert!(
            last.nanos() as f64 >= min_ns,
            "burst of {total} B arrived too fast: {last}"
        );
        prop_assert_eq!(m.sent_bytes(), total as u64);
    }

    /// Different destination links do not interfere on the receive side:
    /// two single packets from different senders to different receivers
    /// take identical time.
    #[test]
    fn independent_pairs_have_equal_latency(bytes in 1usize..10_000) {
        let mut m = EthernetModel::new(4, NetConfig::lossless());
        let a = m.route(req(0, 0, 1, bytes)).unwrap();
        let b = m.route(req(0, 2, 3, bytes)).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Loopback never consumes wire statistics.
    #[test]
    fn loopback_is_free(n in 1usize..100) {
        let mut m = EthernetModel::new(2, NetConfig::default());
        for i in 0..n {
            let at = m.route(req(i as u64 * 10, 1, 1, 5000)).unwrap();
            prop_assert!(at.nanos() > i as u64 * 10);
        }
        prop_assert_eq!(m.sent_count(), 0);
        prop_assert_eq!(m.sent_bytes(), 0);
    }
}

#[test]
fn full_duplex_links() {
    // Simultaneous opposite-direction transfers do not serialize against
    // each other (tx and rx are separate resources).
    let cfg = NetConfig::lossless();
    let mut m = EthernetModel::new(2, cfg);
    let a = m.route(req(0, 0, 1, 5000)).unwrap();
    let b = m.route(req(0, 1, 0, 5000)).unwrap();
    assert_eq!(a, b, "full duplex: directions are independent");
}
